// GWAS survival analysis — the paper's motivating scenario (Section II's
// worked example): time to death after treatment start in a clinical
// trial, censored at last follow-up, tested gene-by-gene with Cox-score
// SKAT statistics.
//
// This example plants a true signal: the SNPs of one gene get a hazard
// effect, so carriers die sooner. Both resampling methods (Algorithms 2
// and 3) are run and must agree on the hit; we also compare against the
// asymptotic chi-square approximation per SNP and show the multiple-
// testing adjustments.
//
//   ./gwas_survival
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "stats/cox_score.hpp"
#include "stats/distributions_math.hpp"
#include "stats/pvalue.hpp"
#include "support/distributions.hpp"

namespace {

/// Generates genotypes first, then survival with a genotype-dependent
/// hazard for the causal gene's SNPs.
ss::simdata::SyntheticDataset PlantSignal(std::uint32_t causal_gene,
                                          double log_hazard_per_allele) {
  ss::simdata::GeneratorConfig config;
  config.num_patients = 600;
  config.num_snps = 1500;
  config.num_sets = 75;
  config.seed = 424242;
  ss::simdata::SyntheticDataset dataset = ss::simdata::Generate(config);

  // Up to three of the gene's SNPs are causal, each contributing
  // `log_hazard_per_allele` to the log hazard — a strong, localized
  // signal, as in a functional variant cluster.
  const auto& gene_snps = dataset.sets[causal_gene].snps;
  const std::size_t num_causal = std::min<std::size_t>(3, gene_snps.size());
  ss::Rng rng(9001);
  for (std::uint32_t i = 0; i < config.num_patients; ++i) {
    double dosage = 0.0;
    for (std::size_t c = 0; c < num_causal; ++c) {
      dosage += dataset.genotypes.by_snp[gene_snps[c]][i];
    }
    const double rate =
        (1.0 / 12.0) * std::exp(log_hazard_per_allele * dosage);
    dataset.survival.time[i] = ss::SampleExponential(rng, rate);
    dataset.survival.event[i] = ss::SampleBernoulli(rng, 0.85) ? 1 : 0;
  }
  return dataset;
}

}  // namespace

int main() {
  using namespace ss;

  const std::uint32_t causal_gene = 7;
  const simdata::SyntheticDataset dataset = PlantSignal(causal_gene, 0.8);
  std::printf("Clinical-trial study: %zu patients, %u SNPs, %zu genes; "
              "causal gene = %u (%zu SNPs)\n",
              dataset.survival.n(), dataset.genotypes.num_snps(),
              dataset.sets.size(), causal_gene,
              dataset.sets[causal_gene].snps.size());

  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(6);
  engine::EngineContext ctx(options);

  core::PipelineConfig config;
  config.seed = 31337;

  // Algorithm 3 (Monte Carlo), B = 999.
  core::SkatPipeline mc_pipeline =
      core::SkatPipeline::FromMemory(ctx, dataset, config);
  const core::ResamplingResult mc = core::RunResampling(mc_pipeline, {core::ResamplingMethod::kMonteCarlo, 999}).scores;
  std::printf("\n-- Monte Carlo (Lin), B=999 --\n%s",
              core::FormatTopHits(mc, 5).c_str());

  // Algorithm 2 (permutation), B = 99 (deliberately fewer — it is the
  // expensive method; that asymmetry is the paper's point).
  engine::EngineContext ctx2(options);
  core::SkatPipeline perm_pipeline =
      core::SkatPipeline::FromMemory(ctx2, dataset, config);
  const core::ResamplingResult perm =
      core::RunResampling(perm_pipeline, {core::ResamplingMethod::kPermutation, 99}).scores;
  std::printf("\n-- Permutation, B=99 --\n%s",
              core::FormatTopHits(perm, 5).c_str());

  // With only B=99 permutations several genes can tie at the smallest
  // attainable p-value (1/(B+1)), so test for membership in the tie.
  const bool mc_hit =
      mc.PValue(causal_gene) <= mc.RankedPValues().front().second + 1e-12;
  const bool perm_hit =
      perm.PValue(causal_gene) <= perm.RankedPValues().front().second + 1e-12;
  std::printf("\nCausal gene at the smallest p-value: Monte Carlo %s, "
              "permutation %s\n", mc_hit ? "yes" : "NO",
              perm_hit ? "yes" : "NO");

  // Asymptotic per-SNP sanity check: the causal gene's SNPs should carry
  // small chi-square p-values.
  const stats::RiskSetIndex index(dataset.survival);
  double min_p_causal = 1.0;
  for (std::uint32_t snp : dataset.sets[causal_gene].snps) {
    const auto u = stats::CoxScoreContributions(dataset.survival, index,
                                                dataset.genotypes.by_snp[snp]);
    min_p_causal = std::min(
        min_p_causal, stats::ScoreTestPValue(stats::CoxScoreStatistic(u),
                                             stats::CoxScoreVariance(u)));
  }
  std::printf("Smallest asymptotic per-SNP p-value inside the causal gene: "
              "%.2e\n", min_p_causal);

  // Multiple-testing control across all genes.
  std::vector<double> pvalues;
  for (const auto& set : dataset.sets) pvalues.push_back(mc.PValue(set.id));
  const auto bonferroni = stats::BonferroniAdjust(pvalues);
  const auto bh = stats::BenjaminiHochbergAdjust(pvalues);
  std::printf("Causal gene after adjustment: Bonferroni p=%.4f, BH q=%.4f\n",
              bonferroni[causal_gene], bh[causal_gene]);
  return (mc_hit && perm_hit) ? 0 : 1;
}
