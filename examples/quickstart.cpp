// Quickstart: the 60-second tour of SparkScore-C++.
//
// Generates a small synthetic GWAS study (the paper's Section III model),
// stages it in the mini-DFS, runs the SKAT pipeline (Algorithm 1) on a
// simulated 6-node cluster, estimates per-gene p-values with Lin's Monte
// Carlo resampling (Algorithm 3), and prints the top hits.
//
//   ./quickstart
#include <cstdio>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"

int main() {
  using namespace ss;

  // 1. A mini-DFS standing in for HDFS: 4 data nodes, 2-way replication.
  dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 64});

  // 2. Synthetic study per the paper's Section III generative model.
  simdata::GeneratorConfig generator;
  generator.num_patients = 500;   // n
  generator.num_snps = 2000;      // m
  generator.num_sets = 100;       // K genes
  generator.seed = 2016;
  const auto paths = simdata::GenerateToDfs(dfs, "/quickstart", generator);
  if (!paths.ok()) {
    std::fprintf(stderr, "staging failed: %s\n",
                 paths.status().ToString().c_str());
    return 1;
  }
  std::printf("Staged study: %u patients x %u SNPs in %u gene sets (%llu "
              "bytes across DFS replicas)\n",
              generator.num_patients, generator.num_snps, generator.num_sets,
              static_cast<unsigned long long>(dfs.TotalBytesStored()));

  // 3. An engine context simulating the paper's 6 x m3.2xlarge EMR cluster.
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(6);
  options.seed = 2016;
  engine::EngineContext ctx(options, &dfs);

  // 4. Open the study through Algorithm 1's dataflow.
  core::PipelineConfig config;
  config.seed = 2016;
  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }

  // 5. Monte Carlo resampling (Algorithm 3), 500 replicates. Replicates
  // run in batches of 100: each batch is ONE engine pass over the cached
  // U RDD; results are bitwise identical for any batch size (batch 1
  // recovers one-pass-per-replicate scheduling).
  core::ResamplingRequest request;
  request.method = core::ResamplingMethod::kMonteCarlo;
  request.replicates = 500;
  request.batch_size = 100;
  const core::ResamplingResult result =
      core::RunResampling(pipeline.value(), request).scores;

  // 6. Report.
  std::printf("\n%s\n", core::SummarizeResult(result).c_str());
  std::fputs(core::FormatTopHits(result, 10).c_str(), stdout);

  const auto cache = ctx.cache().stats();
  std::printf("\nEngine: %llu tasks, U-RDD cache %llu hits / %llu misses "
              "(Algorithm 3 reused the cached contributions %llu times)\n",
              static_cast<unsigned long long>(ctx.tasks_completed()),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.hits));
  return 0;
}
