// Variant-by-variant GWAS scan — the paper introduction's first analysis
// category — with Westfall-Young resampling-based multiplicity control
// and a covariate-adjusted contrast.
//
// Scenario: a case/control study where disease risk depends on one causal
// SNP and on age; age also correlates with a second, non-causal SNP
// (population-structure-style confounding). The unadjusted scan flags
// both SNPs; the covariate-adjusted score keeps the causal one and drops
// the confounded one.
//
//   ./variant_scan
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "stats/covariates.hpp"
#include "support/distributions.hpp"
#include "support/table.hpp"

int main() {
  using namespace ss;

  const std::uint32_t num_snps = 600;
  const std::uint32_t n = 1200;
  const std::uint32_t causal_snp = 17;
  const std::uint32_t confounded_snp = 101;

  simdata::GeneratorConfig config;
  config.num_patients = n;
  config.num_snps = num_snps;
  config.num_sets = 10;
  config.seed = 4711;
  simdata::SyntheticDataset dataset = simdata::Generate(config);

  // Phenotype: logit P(case) = -1 + 0.9*G_causal + 0.06*age, where age is
  // partly driven by the confounded SNP's genotype.
  Rng rng(2024);
  stats::BinaryData disease;
  std::vector<double> age(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double g_causal = dataset.genotypes.by_snp[causal_snp][i];
    const double g_conf = dataset.genotypes.by_snp[confounded_snp][i];
    age[i] = 50.0 + 8.0 * g_conf + SampleNormal(rng) * 6.0;
    const double logit = -1.0 + 0.9 * g_causal + 0.06 * (age[i] - 50.0);
    disease.value.push_back(
        SampleBernoulli(rng, 1.0 / (1.0 + std::exp(-logit))) ? 1 : 0);
  }
  std::printf("Case/control scan: %u samples, %u SNPs; causal SNP %u, "
              "age-confounded SNP %u, case rate %.2f\n",
              n, num_snps, causal_snp, confounded_snp, disease.CaseRate());

  // ---- Unadjusted distributed scan -----------------------------------------
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(6);
  engine::EngineContext ctx(options);
  std::vector<simdata::SnpRecord> records;
  for (std::uint32_t j = 0; j < num_snps; ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  core::VariantScanConfig scan_config;
  scan_config.replicates = 199;
  scan_config.seed = 31;
  const core::VariantScanResult scan = core::RunVariantScan(
      ctx, engine::Parallelize(ctx, records, 8),
      stats::Phenotype::Binomial(disease), scan_config);

  Table top("Unadjusted scan — top SNPs",
            {"rank", "snp", "score", "asymptotic p", "empirical p",
             "maxT adj. p"});
  const auto ranked = scan.RankedByAsymptoticP();
  for (std::size_t r = 0; r < 5; ++r) {
    const std::uint32_t snp = ranked[r];
    const core::VariantStats& s = scan.by_snp.at(snp);
    top.AddRow({std::to_string(r + 1), std::to_string(snp),
                Table::Num(s.score, 2),
                Table::Num(s.asymptotic_p, 6),
                Table::Num(scan.EmpiricalP(snp), 4),
                Table::Num(scan.MaxTAdjustedP(snp), 4)});
  }
  top.Print();

  const bool causal_found = ranked[0] == causal_snp || ranked[1] == causal_snp;
  const bool confounded_flagged =
      std::find(ranked.begin(), ranked.begin() + 5, confounded_snp) !=
      ranked.begin() + 5;
  std::printf("\nCausal SNP in top 2: %s; confounded SNP in top 5 "
              "(spuriously): %s\n",
              causal_found ? "yes" : "NO",
              confounded_flagged ? "yes" : "no");

  // ---- Covariate-adjusted contrast ------------------------------------------
  // Adjusting for age must keep the causal SNP significant and shrink the
  // confounded SNP's z-score toward noise.
  auto adjusted = stats::AdjustedScoreEngine::Binomial(disease, {age});
  if (!adjusted.ok()) {
    std::fprintf(stderr, "adjustment failed: %s\n",
                 adjusted.status().ToString().c_str());
    return 1;
  }
  auto z_of = [&](std::uint32_t snp, bool with_adjustment) {
    std::vector<double> u =
        with_adjustment
            ? adjusted.value().Contributions(dataset.genotypes.by_snp[snp])
            : stats::LogisticScoreContributions(disease, disease.CaseRate(),
                                                dataset.genotypes.by_snp[snp]);
    const double score = std::accumulate(u.begin(), u.end(), 0.0);
    double variance = 0.0;
    for (double v : u) variance += v * v;
    return variance > 0 ? score / std::sqrt(variance) : 0.0;
  };
  Table contrast("Effect of adjusting for age (z-scores)",
                 {"snp", "role", "unadjusted z", "adjusted z"});
  contrast.AddRow({std::to_string(causal_snp), "causal",
                   Table::Num(z_of(causal_snp, false), 2),
                   Table::Num(z_of(causal_snp, true), 2)});
  contrast.AddRow({std::to_string(confounded_snp), "age-confounded",
                   Table::Num(z_of(confounded_snp, false), 2),
                   Table::Num(z_of(confounded_snp, true), 2)});
  contrast.Print();

  const bool causal_survives = std::fabs(z_of(causal_snp, true)) > 3.0;
  const bool confounder_drops = std::fabs(z_of(confounded_snp, true)) < 3.0 &&
                                std::fabs(z_of(confounded_snp, false)) > 3.0;
  std::printf("\nAdjustment keeps causal signal: %s; removes confounded "
              "signal: %s\n",
              causal_survives ? "yes" : "NO",
              confounder_drops ? "yes" : "NO");
  return (causal_found && causal_survives && confounder_drops) ? 0 : 1;
}
