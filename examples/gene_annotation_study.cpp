// Positional gene-set study — the paper's data model end to end.
//
// Section II of the paper represents SNPs as (chr, pos) and genes as
// (chr, start, end), with SNP-set I_k holding "all SNPs j whose positions
// lie within gene k". This example generates an annotated genome, derives
// the SNP-sets by interval containment (instead of Section III's
// arbitrary composition), runs both the SKAT pipeline and the SKAT-O
// combination on a simulated cluster, and reports the hit with its
// genomic coordinates.
//
//   ./gene_annotation_study
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "simdata/annotation.hpp"
#include "support/distributions.hpp"

int main() {
  using namespace ss;

  // 1. An annotated genome: 8 chromosomes, 60 genes, 1500 SNPs.
  simdata::GenomeConfig genome_config;
  genome_config.num_chromosomes = 8;
  genome_config.num_genes = 60;
  genome_config.num_snps = 1500;
  genome_config.genic_fraction = 0.85;
  genome_config.seed = 99;
  const simdata::GenomeAnnotation genome = simdata::GenerateGenome(genome_config);
  const auto sets = genome.DeriveSnpSets();
  std::printf("Genome: %zu genes, %u SNPs (%u genic); %zu non-empty "
              "interval-derived SNP-sets\n",
              genome.genes().size(), genome.num_snps(), genome.GenicSnpCount(),
              sets.size());

  // 2. Genotypes + phenotype; one mid-sized gene carries the causal burden.
  simdata::GeneratorConfig data_config;
  data_config.num_patients = 500;
  data_config.num_snps = genome.num_snps();
  data_config.num_sets = 1;  // sets come from the annotation instead
  data_config.seed = 100;
  simdata::SyntheticDataset dataset = simdata::Generate(data_config);
  dataset.sets = sets;

  // Pick the first set with 3-10 SNPs as the causal gene.
  std::uint32_t causal_gene = sets.front().id;
  std::vector<std::uint32_t> causal_snps = sets.front().snps;
  for (const auto& set : sets) {
    if (set.snps.size() >= 3 && set.snps.size() <= 10) {
      causal_gene = set.id;
      causal_snps = set.snps;
      break;
    }
  }
  Rng rng(7);
  for (std::uint32_t i = 0; i < data_config.num_patients; ++i) {
    double dosage = 0.0;
    for (std::size_t c = 0; c < std::min<std::size_t>(3, causal_snps.size());
         ++c) {
      dosage += dataset.genotypes.by_snp[causal_snps[c]][i];
    }
    dataset.survival.time[i] =
        SampleExponential(rng, (1.0 / 12.0) * std::exp(0.7 * dosage));
    dataset.survival.event[i] = SampleBernoulli(rng, 0.85) ? 1 : 0;
  }
  const simdata::Gene* causal_meta = nullptr;
  for (const auto& gene : genome.genes()) {
    if (gene.id == causal_gene) causal_meta = &gene;
  }
  std::printf("Causal gene: %s (chr%u:%llu-%llu), %zu SNPs\n",
              causal_meta->name.c_str(), causal_meta->chromosome,
              static_cast<unsigned long long>(causal_meta->start),
              static_cast<unsigned long long>(causal_meta->end),
              causal_snps.size());

  // 3. Distributed SKAT (Algorithm 3) and SKAT-O over the derived sets.
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(6);
  engine::EngineContext ctx(options);
  core::PipelineConfig config;
  config.seed = 2023;
  core::SkatPipeline pipeline =
      core::SkatPipeline::FromMemory(ctx, dataset, config);

  const core::ResamplingResult skat = core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 499}).scores;
  std::printf("\n-- SKAT (Monte Carlo, B=499) --\n%s",
              core::FormatTopHits(skat, 5).c_str());

  const core::SkatOResult skato = core::RunResampling(pipeline, {core::ResamplingMethod::kSkatO, 199}).skato;
  const auto skato_ranked = skato.RankedPValues();
  std::printf("\n-- SKAT-O (B=199) top hits --\n");
  for (std::size_t r = 0; r < 3 && r < skato_ranked.size(); ++r) {
    const auto& per_set = skato.by_set.at(skato_ranked[r].first);
    std::printf("  #%zu gene %u: SKAT=%.1f burden=%.1f p=%.4f\n", r + 1,
                skato_ranked[r].first, per_set.skat, per_set.burden,
                skato_ranked[r].second);
  }

  const bool skat_hit = skat.RankedPValues().front().first == causal_gene;
  const bool skato_hit = skato_ranked.front().first == causal_gene;
  std::printf("\nCausal gene ranked #1: SKAT %s, SKAT-O %s\n",
              skat_hit ? "yes" : "NO", skato_hit ? "yes" : "NO");
  return (skat_hit && skato_hit) ? 0 : 1;
}
