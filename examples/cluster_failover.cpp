// Fault-tolerance walkthrough — the Spark property the paper leans on
// ("harnesses the fault-tolerant features of Spark").
//
// The example runs a Monte Carlo analysis while killing a node mid-job:
//   1. a DFS data node dies -> block reads fail over to replicas;
//   2. an executor node dies -> its cached U-RDD partitions vanish and are
//      rebuilt through lineage;
//   3. re-replication repairs DFS redundancy afterwards.
// The analysis results must be identical to an undisturbed run.
//
//   ./cluster_failover
#include <cstdio>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"

int main() {
  using namespace ss;

  simdata::GeneratorConfig generator;
  generator.num_patients = 300;
  generator.num_snps = 1000;
  generator.num_sets = 50;
  generator.seed = 1234;

  core::PipelineConfig config;
  config.seed = 1234;
  const std::uint64_t replicates = 200;

  // ---- Reference run: no failures. ----------------------------------------
  core::ResamplingResult reference;
  {
    dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 32});
    const auto paths = simdata::GenerateToDfs(dfs, "/study", generator);
    engine::EngineContext::Options options;
    options.topology = cluster::EmrCluster(4);
    engine::EngineContext ctx(options, &dfs);
    auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
    reference = core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, replicates}).scores;
  }
  std::printf("Reference run complete: %s\n",
              core::SummarizeResult(reference).c_str());

  // ---- Chaos run: node 2 dies mid-analysis. --------------------------------
  dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 32});
  const auto paths = simdata::GenerateToDfs(dfs, "/study", generator);

  cluster::FaultInjector faults;
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(4);
  engine::EngineContext ctx(options, &dfs, &faults);

  // The injector's node-failure callback already drops node 2's cached
  // partitions (wired by the context); additionally kill its DFS role so
  // block reads must fail over too.
  faults.SetOnNodeFailure([&ctx, &dfs](int node) {
    ctx.FailNode(node);
    dfs.KillNode(node);
    std::printf(">>> node %d failed (cache dropped + DFS replicas lost)\n",
                node);
  });
  faults.FailNodeAfterTasks(2, 40);  // mid-observed-computation

  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  const core::ResamplingResult chaotic =
      core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, replicates}).scores;
  std::printf("Chaos run complete:     %s\n",
              core::SummarizeResult(chaotic).c_str());
  std::printf("Node 2 failure fired: %s; cached partitions dropped by "
              "failure: %llu\n",
              faults.HasFired(2) ? "yes" : "no",
              static_cast<unsigned long long>(
                  ctx.cache().stats().dropped_by_failure));

  // ---- Verify equality. ------------------------------------------------------
  bool identical = reference.observed.size() == chaotic.observed.size();
  for (const auto& [set_id, score] : reference.observed) {
    if (!chaotic.observed.contains(set_id) ||
        std::abs(chaotic.observed.at(set_id) - score) > 1e-9 ||
        chaotic.exceed.at(set_id) != reference.exceed.at(set_id)) {
      identical = false;
      std::printf("MISMATCH at set %u\n", set_id);
    }
  }
  std::printf("\nResults identical to the undisturbed run: %s\n",
              identical ? "YES — lineage + replication recovered everything"
                        : "NO — fault recovery failed");

  // ---- Repair and report. -----------------------------------------------------
  dfs.ReviveNode(2);
  const int repaired = dfs.RepairReplication();
  std::printf("DFS re-replication after node revival repaired %d block "
              "replicas\n", repaired);
  return identical ? 0 : 1;
}
