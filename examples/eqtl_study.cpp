// eQTL-style analysis with a quantitative phenotype — the extension the
// paper's abstract names ("readily extended to analysis of DNA and RNA
// sequencing data, including expression quantitative trait loci (eQTL)
// ... studies").
//
// The phenotype is a simulated gene-expression level driven by a cis
// regulatory SNP plus noise; the analysis runs the same SKAT dataflow with
// the Gaussian score model instead of the Cox model, demonstrating the
// pluggable "Score Statistics (Cox, Binomial, Gaussian, etc.)" layer of
// the paper's Figure 1.
//
//   ./eqtl_study
#include <cmath>
#include <cstdio>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "support/distributions.hpp"

int main() {
  using namespace ss;

  // Genotypes and gene structure from the standard generator.
  simdata::GeneratorConfig config;
  config.num_patients = 400;
  config.num_snps = 1200;
  config.num_sets = 60;
  config.seed = 777;
  const simdata::SyntheticDataset dataset = simdata::Generate(config);

  // Expression phenotype: baseline + per-allele effect of one cis SNP.
  const std::uint32_t cis_gene = 13;
  const std::uint32_t cis_snp = dataset.sets[cis_gene].snps.front();
  const double effect_per_allele = 0.8;
  Rng rng(555);
  stats::QuantitativeData expression;
  expression.value.reserve(config.num_patients);
  for (std::uint32_t i = 0; i < config.num_patients; ++i) {
    const double g = dataset.genotypes.by_snp[cis_snp][i];
    expression.value.push_back(10.0 + effect_per_allele * g +
                               SampleNormal(rng));
  }
  std::printf("eQTL study: %u samples, %u SNPs, %u genes; cis SNP %u in "
              "gene %u, effect %.2f sd/allele\n",
              config.num_patients, config.num_snps, config.num_sets, cis_snp,
              cis_gene, effect_per_allele);

  // Build the pipeline from parts with the Gaussian model.
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(6);
  engine::EngineContext ctx(options);

  std::vector<simdata::SnpRecord> records;
  records.reserve(dataset.genotypes.num_snps());
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  core::PipelineConfig pipeline_config;
  pipeline_config.model = stats::ScoreModel::kGaussian;
  pipeline_config.seed = 888;
  core::SkatPipeline pipeline(
      ctx, pipeline_config, engine::Parallelize(ctx, records, 8),
      stats::Phenotype::Gaussian(expression), dataset.weights, dataset.sets);

  const core::ResamplingResult result = core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 999}).scores;
  std::printf("\n%s\n", core::SummarizeResult(result).c_str());
  std::fputs(core::FormatTopHits(result, 5).c_str(), stdout);

  const bool hit = result.RankedPValues().front().first == cis_gene;
  std::printf("\ncis gene ranked #1: %s (p=%.4f)\n", hit ? "yes" : "NO",
              result.PValue(cis_gene));

  // Contrast: the same expression phenotype dichotomized at the median and
  // analyzed with the Binomial model — the third plug of Figure 1.
  stats::BinaryData high_expression;
  const double median = [&]() {
    std::vector<double> sorted = expression.value;
    std::sort(sorted.begin(), sorted.end());
    return sorted[sorted.size() / 2];
  }();
  for (double v : expression.value) {
    high_expression.value.push_back(v > median ? 1 : 0);
  }
  engine::EngineContext ctx2(options);
  core::PipelineConfig binary_config;
  binary_config.model = stats::ScoreModel::kBinomial;
  binary_config.seed = 888;
  core::SkatPipeline binary_pipeline(
      ctx2, binary_config, engine::Parallelize(ctx2, records, 8),
      stats::Phenotype::Binomial(high_expression), dataset.weights,
      dataset.sets);
  const core::ResamplingResult binary_result =
      core::RunResampling(binary_pipeline, {core::ResamplingMethod::kMonteCarlo, 499}).scores;
  std::printf("\nBinomial (dichotomized) model: cis gene p=%.4f (power is "
              "lower after dichotomization, as expected)\n",
              binary_result.PValue(cis_gene));
  return hit ? 0 : 1;
}
