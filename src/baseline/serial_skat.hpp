// Serial (engine-free) reference implementation of the SparkScore
// analysis: observed SKAT statistics plus permutation and Monte Carlo
// resampling, computed in a single thread directly over in-memory arrays.
//
// Two roles:
//   1. Correctness oracle — the distributed pipeline must reproduce these
//      numbers bit-for-bit from the same seed (cross-validated in tests).
//   2. The "native" comparator a practitioner would run on one machine,
//      used by the benches to report parallel speedup honestly.
#pragma once

#include <cstdint>
#include <vector>

#include "simdata/generator.hpp"
#include "stats/score_engine.hpp"
#include "stats/skat.hpp"

namespace ss::baseline {

/// Outcome of a resampling analysis over K SNP-sets.
struct SkatAnalysis {
  std::vector<double> observed;            ///< S_k^0 per set (sets order).
  std::vector<std::uint64_t> exceed_count; ///< #{b : S_k^b >= S_k^0}.
  std::uint64_t replicates = 0;            ///< B.

  /// Empirical p-value of set k ((c+1)/(B+1)).
  double PValue(std::size_t k) const;
};

/// Inputs by reference; the genotype matrix can be large.
struct SkatInputs {
  const simdata::GenotypeMatrix* genotypes = nullptr;
  const stats::Phenotype* phenotype = nullptr;
  const std::vector<double>* weights = nullptr;   ///< ω_j per SNP.
  const std::vector<stats::SnpSet>* sets = nullptr;
};

/// Observed statistics only (Algorithm 1, serial).
SkatAnalysis SerialObserved(const SkatInputs& inputs);

/// Permutation resampling (Algorithm 2, serial): B full recomputations
/// over shuffled phenotypes.
SkatAnalysis SerialPermutation(const SkatInputs& inputs, std::uint64_t seed,
                               std::uint64_t replicates);

/// Lin's Monte Carlo resampling (Algorithm 3, serial): the observed
/// per-patient contributions are computed once and reused by every
/// replicate as Ũ_j = Σ_i Z_i U_ij.
SkatAnalysis SerialMonteCarlo(const SkatInputs& inputs, std::uint64_t seed,
                              std::uint64_t replicates);

/// Per-replicate per-set Monte Carlo statistics S_k^b; result[b][k]
/// corresponds to (replicate b, (*inputs.sets)[k]). The bit-for-bit
/// oracle for the batched distributed driver's per-replicate stream
/// (core::ProgressSink::OnReplicateScores).
std::vector<std::vector<double>> SerialMonteCarloReplicateStatistics(
    const SkatInputs& inputs, std::uint64_t seed, std::uint64_t replicates);

/// SerialMonteCarlo evaluated through the batched machinery — Z blocks of
/// `batch_size` replicates (stats::MonteCarloZBlock) and the blocked
/// stats::BatchedReplicateScores kernel — instead of per-replicate dot
/// products. Must be bitwise equal to SerialMonteCarlo for every batch
/// size; this is the serial half of the batching-invariance argument the
/// distributed driver relies on (cross-checked in tests).
SkatAnalysis SerialMonteCarloBatched(const SkatInputs& inputs,
                                     std::uint64_t seed,
                                     std::uint64_t replicates,
                                     std::uint64_t batch_size);

}  // namespace ss::baseline
