#include "baseline/serial_skat.hpp"

#include <algorithm>
#include <unordered_map>

#include "stats/pvalue.hpp"
#include "stats/resampling.hpp"
#include "support/status.hpp"

namespace ss::baseline {
namespace {

void CheckInputs(const SkatInputs& inputs) {
  SS_CHECK(inputs.genotypes != nullptr);
  SS_CHECK(inputs.phenotype != nullptr);
  SS_CHECK(inputs.weights != nullptr);
  SS_CHECK(inputs.sets != nullptr);
  SS_CHECK(inputs.genotypes->num_patients == inputs.phenotype->n());
  SS_CHECK(inputs.weights->size() == inputs.genotypes->num_snps());
}

/// SKAT statistics for all sets given per-SNP marginal scores U_j.
std::vector<double> SkatFromScores(const SkatInputs& inputs,
                                   const std::vector<double>& scores) {
  std::unordered_map<std::uint32_t, double> squared;
  squared.reserve(scores.size());
  for (std::uint32_t j = 0; j < scores.size(); ++j) {
    squared[j] = scores[j] * scores[j];
  }
  std::unordered_map<std::uint32_t, double> weights;
  weights.reserve(inputs.weights->size());
  for (std::uint32_t j = 0; j < inputs.weights->size(); ++j) {
    weights[j] = (*inputs.weights)[j];
  }
  return stats::SkatStatistics(*inputs.sets, squared, weights);
}

/// Marginal scores U_j for all SNPs under `engine`'s phenotype.
std::vector<double> MarginalScores(const SkatInputs& inputs,
                                   const stats::ScoreEngine& engine) {
  const std::uint32_t m = inputs.genotypes->num_snps();
  std::vector<double> scores(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    double total = 0.0;
    for (double u : engine.Contributions(inputs.genotypes->by_snp[j])) {
      total += u;
    }
    scores[j] = total;
  }
  return scores;
}

/// Observed per-patient contributions U_ij (by SNP) plus the marginal
/// scores U_j — the Algorithm 3 state computed once and reused by every
/// replicate (what caching makes cheap in the distributed version).
struct ObservedContributions {
  std::vector<std::vector<double>> by_snp;
  std::vector<double> scores;
};

ObservedContributions ComputeObservedContributions(
    const SkatInputs& inputs, const stats::ScoreEngine& engine) {
  const std::uint32_t m = inputs.genotypes->num_snps();
  ObservedContributions observed;
  observed.by_snp.resize(m);
  observed.scores.resize(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    observed.by_snp[j] = engine.Contributions(inputs.genotypes->by_snp[j]);
    double total = 0.0;
    for (double u : observed.by_snp[j]) total += u;
    observed.scores[j] = total;
  }
  return observed;
}

}  // namespace

double SkatAnalysis::PValue(std::size_t k) const {
  return stats::EmpiricalPValue(exceed_count[k], replicates);
}

SkatAnalysis SerialObserved(const SkatInputs& inputs) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);
  SkatAnalysis analysis;
  analysis.observed = SkatFromScores(inputs, MarginalScores(inputs, engine));
  analysis.exceed_count.assign(inputs.sets->size(), 0);
  return analysis;
}

SkatAnalysis SerialPermutation(const SkatInputs& inputs, std::uint64_t seed,
                               std::uint64_t replicates) {
  SkatAnalysis analysis = SerialObserved(inputs);
  analysis.replicates = replicates;
  const stats::PermutationPlan plan(seed, inputs.phenotype->n(), replicates);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    // Full recomputation per replicate: new phenotype ordering, new
    // SNP-invariant structures, new scores — exactly Algorithm 2.
    const stats::Phenotype permuted = inputs.phenotype->Permuted(plan.Get(b));
    stats::ScoreEngine engine(permuted);
    const std::vector<double> statistics =
        SkatFromScores(inputs, MarginalScores(inputs, engine));
    for (std::size_t k = 0; k < statistics.size(); ++k) {
      if (statistics[k] >= analysis.observed[k]) ++analysis.exceed_count[k];
    }
  }
  return analysis;
}

SkatAnalysis SerialMonteCarlo(const SkatInputs& inputs, std::uint64_t seed,
                              std::uint64_t replicates) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);
  const std::uint32_t m = inputs.genotypes->num_snps();
  const ObservedContributions observed =
      ComputeObservedContributions(inputs, engine);

  SkatAnalysis analysis;
  analysis.observed = SkatFromScores(inputs, observed.scores);
  analysis.exceed_count.assign(inputs.sets->size(), 0);
  analysis.replicates = replicates;

  const stats::MonteCarloWeights mc(seed, inputs.phenotype->n(), replicates);
  std::vector<double> replicate_scores(m);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    const std::vector<double>& z = mc.Get(b);
    for (std::uint32_t j = 0; j < m; ++j) {
      replicate_scores[j] =
          stats::MonteCarloReplicateScore(observed.by_snp[j], z);
    }
    const std::vector<double> statistics =
        SkatFromScores(inputs, replicate_scores);
    for (std::size_t k = 0; k < statistics.size(); ++k) {
      if (statistics[k] >= analysis.observed[k]) ++analysis.exceed_count[k];
    }
  }
  return analysis;
}

std::vector<std::vector<double>> SerialMonteCarloReplicateStatistics(
    const SkatInputs& inputs, std::uint64_t seed, std::uint64_t replicates) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);
  const std::uint32_t m = inputs.genotypes->num_snps();
  const ObservedContributions observed =
      ComputeObservedContributions(inputs, engine);

  const stats::MonteCarloWeights mc(seed, inputs.phenotype->n(), replicates);
  std::vector<std::vector<double>> statistics;
  statistics.reserve(replicates);
  std::vector<double> replicate_scores(m);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    const std::vector<double>& z = mc.Get(b);
    for (std::uint32_t j = 0; j < m; ++j) {
      replicate_scores[j] =
          stats::MonteCarloReplicateScore(observed.by_snp[j], z);
    }
    statistics.push_back(SkatFromScores(inputs, replicate_scores));
  }
  return statistics;
}

SkatAnalysis SerialMonteCarloBatched(const SkatInputs& inputs,
                                     std::uint64_t seed,
                                     std::uint64_t replicates,
                                     std::uint64_t batch_size) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);
  const std::uint32_t m = inputs.genotypes->num_snps();
  const ObservedContributions observed =
      ComputeObservedContributions(inputs, engine);

  SkatAnalysis analysis;
  analysis.observed = SkatFromScores(inputs, observed.scores);
  analysis.exceed_count.assign(inputs.sets->size(), 0);
  analysis.replicates = replicates;

  const std::uint64_t batch = std::max<std::uint64_t>(1, batch_size);
  const std::size_t n = inputs.phenotype->n();
  std::vector<std::vector<double>> block_scores(m);  // [snp][replicate]
  std::vector<double> replicate_scores(m);
  for (std::uint64_t begin = 0; begin < replicates; begin += batch) {
    const std::size_t count =
        static_cast<std::size_t>(std::min(replicates, begin + batch) - begin);
    const std::vector<double> zblock =
        stats::MonteCarloZBlock(seed, n, begin, count);
    for (std::uint32_t j = 0; j < m; ++j) {
      stats::BatchedReplicateScores(observed.by_snp[j], zblock.data(), count,
                                    &block_scores[j]);
    }
    for (std::size_t r = 0; r < count; ++r) {
      for (std::uint32_t j = 0; j < m; ++j) {
        replicate_scores[j] = block_scores[j][r];
      }
      const std::vector<double> statistics =
          SkatFromScores(inputs, replicate_scores);
      for (std::size_t k = 0; k < statistics.size(); ++k) {
        if (statistics[k] >= analysis.observed[k]) ++analysis.exceed_count[k];
      }
    }
  }
  return analysis;
}

}  // namespace ss::baseline
