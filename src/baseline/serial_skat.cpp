#include "baseline/serial_skat.hpp"

#include <unordered_map>

#include "stats/pvalue.hpp"
#include "stats/resampling.hpp"
#include "support/status.hpp"

namespace ss::baseline {
namespace {

void CheckInputs(const SkatInputs& inputs) {
  SS_CHECK(inputs.genotypes != nullptr);
  SS_CHECK(inputs.phenotype != nullptr);
  SS_CHECK(inputs.weights != nullptr);
  SS_CHECK(inputs.sets != nullptr);
  SS_CHECK(inputs.genotypes->num_patients == inputs.phenotype->n());
  SS_CHECK(inputs.weights->size() == inputs.genotypes->num_snps());
}

/// SKAT statistics for all sets given per-SNP marginal scores U_j.
std::vector<double> SkatFromScores(const SkatInputs& inputs,
                                   const std::vector<double>& scores) {
  std::unordered_map<std::uint32_t, double> squared;
  squared.reserve(scores.size());
  for (std::uint32_t j = 0; j < scores.size(); ++j) {
    squared[j] = scores[j] * scores[j];
  }
  std::unordered_map<std::uint32_t, double> weights;
  weights.reserve(inputs.weights->size());
  for (std::uint32_t j = 0; j < inputs.weights->size(); ++j) {
    weights[j] = (*inputs.weights)[j];
  }
  return stats::SkatStatistics(*inputs.sets, squared, weights);
}

/// Marginal scores U_j for all SNPs under `engine`'s phenotype.
std::vector<double> MarginalScores(const SkatInputs& inputs,
                                   const stats::ScoreEngine& engine) {
  const std::uint32_t m = inputs.genotypes->num_snps();
  std::vector<double> scores(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    double total = 0.0;
    for (double u : engine.Contributions(inputs.genotypes->by_snp[j])) {
      total += u;
    }
    scores[j] = total;
  }
  return scores;
}

}  // namespace

double SkatAnalysis::PValue(std::size_t k) const {
  return stats::EmpiricalPValue(exceed_count[k], replicates);
}

SkatAnalysis SerialObserved(const SkatInputs& inputs) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);
  SkatAnalysis analysis;
  analysis.observed = SkatFromScores(inputs, MarginalScores(inputs, engine));
  analysis.exceed_count.assign(inputs.sets->size(), 0);
  return analysis;
}

SkatAnalysis SerialPermutation(const SkatInputs& inputs, std::uint64_t seed,
                               std::uint64_t replicates) {
  SkatAnalysis analysis = SerialObserved(inputs);
  analysis.replicates = replicates;
  const stats::PermutationPlan plan(seed, inputs.phenotype->n(), replicates);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    // Full recomputation per replicate: new phenotype ordering, new
    // SNP-invariant structures, new scores — exactly Algorithm 2.
    const stats::Phenotype permuted = inputs.phenotype->Permuted(plan.Get(b));
    stats::ScoreEngine engine(permuted);
    const std::vector<double> statistics =
        SkatFromScores(inputs, MarginalScores(inputs, engine));
    for (std::size_t k = 0; k < statistics.size(); ++k) {
      if (statistics[k] >= analysis.observed[k]) ++analysis.exceed_count[k];
    }
  }
  return analysis;
}

SkatAnalysis SerialMonteCarlo(const SkatInputs& inputs, std::uint64_t seed,
                              std::uint64_t replicates) {
  CheckInputs(inputs);
  stats::ScoreEngine engine(*inputs.phenotype);

  // Observed contributions, computed once and reused by all replicates —
  // the Algorithm 3 trick that caching makes cheap in the distributed
  // version.
  const std::uint32_t m = inputs.genotypes->num_snps();
  std::vector<std::vector<double>> contributions(m);
  std::vector<double> observed_scores(m);
  for (std::uint32_t j = 0; j < m; ++j) {
    contributions[j] = engine.Contributions(inputs.genotypes->by_snp[j]);
    double total = 0.0;
    for (double u : contributions[j]) total += u;
    observed_scores[j] = total;
  }

  SkatAnalysis analysis;
  analysis.observed = SkatFromScores(inputs, observed_scores);
  analysis.exceed_count.assign(inputs.sets->size(), 0);
  analysis.replicates = replicates;

  const stats::MonteCarloWeights mc(seed, inputs.phenotype->n(), replicates);
  std::vector<double> replicate_scores(m);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    const std::vector<double>& z = mc.Get(b);
    for (std::uint32_t j = 0; j < m; ++j) {
      replicate_scores[j] =
          stats::MonteCarloReplicateScore(contributions[j], z);
    }
    const std::vector<double> statistics =
        SkatFromScores(inputs, replicate_scores);
    for (std::size_t k = 0; k < statistics.size(); ++k) {
      if (statistics[k] >= analysis.observed[k]) ++analysis.exceed_count[k];
    }
  }
  return analysis;
}

}  // namespace ss::baseline
