#include "core/store_source.hpp"

#include <atomic>
#include <utility>

#include "core/record_traits.hpp"  // IWYU pragma: keep (ApproxBytes for PackedSnpRecord)
#include "engine/approx_bytes.hpp"
#include "engine/profile.hpp"
#include "simdata/store_codec.hpp"
#include "support/stopwatch.hpp"

namespace ss::core {

StoreGenotypeNode::StoreGenotypeNode(
    engine::EngineContext* ctx, std::shared_ptr<dfs::GenotypeStore> store,
    std::shared_ptr<const std::vector<std::uint8_t>> membership)
    : engine::Node<stats::PackedSnpRecord>(
          ctx, "genotypeStore(" + store->path() + ")",
          store->num_partitions(), {}),
      store_(std::move(store)),
      membership_(std::move(membership)) {
  // The prefetch lane materializes partitions of this node straight from
  // the mmap. The fetcher may outlive any single stage but not the node:
  // ~StoreGenotypeNode unregisters and drains before `this` dies.
  ctx_->cache().RegisterFetcher(
      id(), [this](std::uint32_t partition) -> engine::FetchedPartition {
        Stopwatch stopwatch;
        Result<std::vector<stats::PackedSnpRecord>> records =
            Materialize(partition);
        if (!records.ok()) return {};  // demand path surfaces the error
        auto value = std::make_shared<std::vector<stats::PackedSnpRecord>>(
            std::move(records).value());
        const std::uint64_t bytes = engine::ApproxBytesOfPartition(*value);
        return {std::move(value), bytes, stopwatch.ElapsedSeconds()};
      });
}

StoreGenotypeNode::~StoreGenotypeNode() {
  ctx_->cache().UnregisterFetcher(id());
}

std::vector<stats::PackedSnpRecord> StoreGenotypeNode::ComputePartition(
    std::uint32_t index, engine::TaskContext&) {
  Result<std::vector<stats::PackedSnpRecord>> records = Materialize(index);
  if (!records.ok()) {
    // Retryable like a DFS read: the scheduler's attempts surface a
    // corrupt store as a job failure with the store diagnostic.
    throw engine::TaskFailure("genotype store read failed: " +
                              records.status().ToString());
  }
  return std::move(records).value();
}

Result<std::vector<stats::PackedSnpRecord>> StoreGenotypeNode::Materialize(
    std::uint32_t index) const {
  static std::atomic<std::uint64_t>& packed_bytes =
      engine::CounterRegistry::Global().Get("genotype.packed_bytes");
  static std::atomic<std::uint64_t>& unpacked_bytes =
      engine::CounterRegistry::Global().Get("genotype.unpacked_bytes");

  Result<std::vector<std::uint8_t>> payload = [&] {
    engine::PhaseTimer fetch_phase(engine::TaskPhase::kFetch);
    return store_->ReadGenotypeFrame(index);
  }();
  if (!payload.ok()) return payload.status();

  engine::PhaseTimer decode_phase(engine::TaskPhase::kDecode);
  Result<std::vector<stats::PackedSnpRecord>> decoded =
      simdata::DecodeGenotypePartition(payload.value());
  if (!decoded.ok()) return decoded.status();

  const std::vector<std::uint8_t>& member = *membership_;
  std::vector<stats::PackedSnpRecord> records;
  records.reserve(decoded.value().size());
  for (stats::PackedSnpRecord& record : decoded.value()) {
    if (record.snp >= member.size() || member[record.snp] == 0) continue;
    // Same byte accounting as the text path's pack step, so the run
    // report's packed/unpacked ratio stays comparable across sources.
    unpacked_bytes.fetch_add(record.genotypes.size(),
                             std::memory_order_relaxed);
    packed_bytes.fetch_add(record.genotypes.payload().size(),
                           std::memory_order_relaxed);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ss::core
