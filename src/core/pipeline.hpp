// Algorithm 1: the SKAT dataflow on the minispark engine.
//
// Pipeline stages, numbered as in the paper:
//   1.  read input text files from the (mini-)DFS;
//   2.  Weights RDD:   line -> (SNP j, ω_j²);
//   3.  GM RDD:        line -> (SNP j, [G_1j ... G_nj]);
//   4.  FGM RDD:       filter GM to the union of all SNP-sets;
//   5.  broadcast the phenotype pairs (wrapped in a ScoreEngine that also
//       carries the SNP-invariant b_i risk counts) to all nodes;
//   6-7. U RDD:        (SNP j, [U_1j ... U_nj]);
//   8.  InnerSigma:    (SNP j, U_j²) with U_j = Σ_i U_ij;
//   9.  Join:          Weights ⋈ InnerSigma on SNP;
//   10. SNP score:     (SNP j, ω_j² U_j²);
//   11-12. per-set aggregation: S_k = Σ_{j∈I_k} score_j, returned as the
//       HashMap (SNP-set -> S_k).
//
// The U RDD is exposed so Algorithm 3 can cache and reuse it; Algorithm 2
// instead re-executes steps 6-12 per replicate with a permuted phenotype.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/record_traits.hpp"  // IWYU pragma: keep (codec/byte-size traits)
#include "engine/broadcast.hpp"
#include "engine/dataset.hpp"
#include "simdata/dfs_writer.hpp"
#include "simdata/generator.hpp"
#include "simdata/text_format.hpp"
#include "stats/kernels/packed_genotype.hpp"
#include "stats/linalg.hpp"
#include "stats/score_engine.hpp"
#include "stats/skat.hpp"
#include "support/status.hpp"

namespace ss::core {

/// Per-set observed statistics, keyed by set id (the paper's "HashMap").
using SetScores = std::unordered_map<std::uint32_t, double>;

struct PipelineConfig {
  stats::ScoreModel model = stats::ScoreModel::kCox;

  /// Reduce partitions for the joins/aggregations (spark.default.parallelism).
  std::uint32_t num_reducers = 8;

  /// Partitions for in-memory genotype sources (DFS sources use one
  /// partition per block instead).
  std::uint32_t num_partitions = 8;

  /// Cache the U RDD (prerequisite of Algorithm 3; Experiment B ablates it).
  bool cache_contributions = true;

  /// Memory budget for the engine's partition cache, applied to the
  /// context when the pipeline is built; 0 keeps the context's own
  /// setting. A budget small enough to force eviction makes cached U
  /// partitions spill to the second tier (see engine/cache_manager.hpp);
  /// the constrained-memory benches set this.
  std::uint64_t cache_budget_bytes = 0;

  /// Store filtered genotypes as 2-bit packed blocks
  /// (stats::PackedGenotypeBlock): ~4x fewer bytes per cached/spilled
  /// genotype partition under `cache_budget=`, decoded to dosages just
  /// before scoring. Packing is lossless, so results are bitwise
  /// identical either way; `pack=0` in the CLI/benches is the ablation.
  bool pack_genotypes = true;

  /// Evaluate Cox contributions with the paper's per-patient formulation
  /// (O(n²) per SNP) instead of this library's O(n) risk-set path. Same
  /// values; reproduces the paper's cost regime. The timing benches set
  /// this; see stats/score_engine.hpp.
  bool paper_faithful_scores = false;

  /// When non-empty (and the context has a DFS), the observed U RDD is
  /// checkpointed to this DFS path after its first materialization,
  /// truncating its lineage: replicates then read the replicated
  /// checkpoint instead of recomputing from the genotype inputs after a
  /// failure — the right trade for very long resampling chains.
  std::string checkpoint_contributions_path;

  /// Seed for the resampling plans layered on top (Algorithms 2/3).
  std::uint64_t seed = 2016;

  /// Monte Carlo replicates per engine pass (Algorithm 3): each batch
  /// broadcasts an n×R Z block and computes all R replicate scores in one
  /// blocked kernel over the cached U partitions, amortizing the
  /// per-pass scheduling cost. Results are bitwise invariant to this
  /// knob; 1 recovers one-pass-per-replicate scheduling (the ablation
  /// baseline). 0 is treated as 1.
  std::uint64_t resampling_batch_size = 64;
};

class SkatPipeline {
 public:
  /// Opens a study staged in the context's MiniDfs (Algorithm 1 steps 1-5).
  /// The phenotype and SNP-sets are small and driver-resident (as in the
  /// paper, which broadcasts the former and holds the latter in the
  /// closure); genotypes and weights stay distributed.
  static Result<SkatPipeline> Open(engine::EngineContext& ctx,
                                   const simdata::StudyPaths& paths,
                                   const PipelineConfig& config);

  /// Opens a cohort staged in a memory-mapped genotype store
  /// (simdata::GenerateToStore) — no MiniDfs, no re-ingest: the phenotype,
  /// weights and SNP-sets decode from the store's aux frames and the
  /// genotype matrix becomes a StoreGenotypeNode streaming packed frames
  /// off the mmap (pack_genotypes is implied). When `expected_fingerprint`
  /// is set and does not match the file's, refuses with InvalidArgument
  /// naming both fingerprints and the store's provenance description —
  /// a stale store never silently stands in for different parameters.
  static Result<SkatPipeline> OpenFromStore(
      engine::EngineContext& ctx, const std::string& store_path,
      const PipelineConfig& config,
      std::optional<std::uint64_t> expected_fingerprint = std::nullopt);

  /// Builds the same pipeline from an in-memory dataset (tests, examples).
  static SkatPipeline FromMemory(engine::EngineContext& ctx,
                                 const simdata::SyntheticDataset& dataset,
                                 const PipelineConfig& config);

  /// Builds from parts: a genotype dataset plus driver-side phenotype,
  /// weights and sets (the extension point for custom studies).
  SkatPipeline(engine::EngineContext& ctx, const PipelineConfig& config,
               engine::Dataset<simdata::SnpRecord> genotypes,
               stats::Phenotype phenotype, std::vector<double> weights,
               std::vector<stats::SnpSet> sets);

  /// Steps 6-12 with the observed phenotype: S_k⁰ per set. The first call
  /// materializes (and, if configured, caches) the U RDD.
  SetScores ComputeObserved();

  /// Steps 8-12 reusing the (cached) observed U RDD with Monte Carlo
  /// multipliers z (Algorithm 3's modified step 8): S̃_k per set.
  SetScores ComputeMonteCarloReplicate(const std::vector<double>& multipliers);

  /// Per-set (SKAT, burden) statistic pair, for the SKAT-O combination:
  /// SKAT = Σ ω²U², burden = (Σ ωU)². Observed phenotype; materializes
  /// the U RDD like ComputeObserved.
  std::unordered_map<std::uint32_t, std::pair<double, double>>
  ComputeObservedSkatBurden();

  /// The same pair under Monte Carlo multipliers (cached U reuse).
  std::unordered_map<std::uint32_t, std::pair<double, double>>
  ComputeMonteCarloSkatBurdenReplicate(const std::vector<double>& multipliers);

  /// Algorithm 3's modified step 8 for a whole batch: per SNP, the signed
  /// replicate scores Ũ_jb = Σ_i Z_ib U_ij for all `count` replicates of a
  /// patient-major Z block (stats::MonteCarloZBlock layout), computed in
  /// ONE engine pass over the cached U partitions with the blocked
  /// stats::BatchedReplicateScores kernel. The per-set folds (steps 9-12)
  /// happen driver-side in the resampling driver, in the serial oracle's
  /// canonical accumulation order — see core/resampling_methods.hpp.
  std::unordered_map<std::uint32_t, std::vector<double>>
  ComputeMonteCarloScoreBlock(const std::vector<double>& zblock,
                              std::size_t count);

  /// Observed per-SNP marginal scores U_j = Σ_i U_ij collected to the
  /// driver (one double per filtered SNP), for the batched drivers'
  /// canonical observed fold. Materializes the U RDD like ComputeObserved.
  std::unordered_map<std::uint32_t, double> CollectObservedScores();

  /// Driver-resident unsquared weights ω_j, collected once and memoized.
  const std::unordered_map<std::uint32_t, double>& DriverWeights();

  /// Per-set weighted Gram matrix M_ab = ω_a ω_b Σ_i U_ia U_ib over the
  /// observed U RDD (set members in declaration order; filtered-out SNPs
  /// contribute zero rows/columns and are skipped). Under the Monte Carlo
  /// null the replicate statistic is exactly Σ_m λ_m χ²₁ with λ_m the
  /// eigenvalues of this matrix — the input to the analytic tail methods
  /// (stats/adaptive_pvalue.hpp). Materializes the U RDD like
  /// ComputeObserved.
  std::unordered_map<std::uint32_t, stats::Matrix> CollectSetGramMatrices();

  /// Steps 6-12 from scratch under a permuted phenotype (Algorithm 2).
  SetScores ComputePermutationReplicate(const std::vector<std::uint32_t>& perm);

  const PipelineConfig& config() const { return config_; }
  const stats::Phenotype& phenotype() const { return phenotype_; }
  const std::vector<stats::SnpSet>& sets() const { return sets_; }
  engine::EngineContext& context() { return *ctx_; }

  /// Number of patients.
  std::size_t n() const { return phenotype_.n(); }

  /// Drops the cached U RDD (between bench configurations).
  void UnpersistContributions();

 private:
  /// Empty shell for OpenFromStore, which assembles the members itself
  /// (there is no SnpRecord dataset to hand the public constructor).
  SkatPipeline() = default;

  /// (SNP, per-patient contributions) under `engine` — steps 6-7.
  engine::Dataset<std::pair<std::uint32_t, std::vector<double>>> BuildU(
      const engine::Broadcast<stats::ScoreEngine>& engine) const;

  /// Steps 8-12 from a U dataset: aggregate to per-set scores.
  SetScores SetScoresFromU(
      const engine::Dataset<std::pair<std::uint32_t, std::vector<double>>>& u)
      const;

  /// Steps 9-12 from per-SNP squared marginal scores.
  SetScores SetScoresFromInnerSigma(
      const engine::Dataset<std::pair<std::uint32_t, double>>& inner_sigma)
      const;

  /// Per-set (Σ ω²U², Σ ωU) accumulation from per-SNP signed scores; the
  /// SKAT-O building block (burden = square of the second component).
  std::unordered_map<std::uint32_t, std::pair<double, double>>
  SkatBurdenFromScores(
      const engine::Dataset<std::pair<std::uint32_t, double>>& scores) const;

  /// Materializes the U RDD if needed (shared by all observed paths).
  void EnsureUBuilt();

  engine::EngineContext* ctx_ = nullptr;
  PipelineConfig config_;

  engine::Dataset<simdata::SnpRecord> fgm_;  ///< Filtered genotype RDD (step 4).

  /// 2-bit packed form of fgm_ (the cached/spilled genotype format when
  /// `pack_genotypes` is set); all U builds decode from this instead.
  engine::Dataset<stats::PackedSnpRecord> fgm_packed_;
  engine::Dataset<std::pair<std::uint32_t, double>> weights_sq_;  ///< Step 2.
  engine::Dataset<std::pair<std::uint32_t, double>> weights_;  ///< Unsquared ω (SKAT-O path).
  stats::Phenotype phenotype_;
  std::vector<stats::SnpSet> sets_;

  /// snp -> ids of sets containing it (broadcast for step 11).
  engine::Broadcast<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>>
      snp_to_sets_;

  /// Observed-phenotype U RDD, kept so Algorithm 3 reuses it.
  engine::Dataset<std::pair<std::uint32_t, std::vector<double>>> u_observed_;
  bool u_built_ = false;

  /// Memoized DriverWeights() result.
  std::unordered_map<std::uint32_t, double> driver_weights_;
  bool driver_weights_built_ = false;
};

}  // namespace ss::core
