// Human-readable reporting of analysis results (examples and benches).
#pragma once

#include <string>

#include "core/resampling_methods.hpp"
#include "dfs/dfs.hpp"

namespace ss::core {

/// Renders the top `top_k` SNP-sets by p-value as an ASCII table.
std::string FormatTopHits(const ResamplingResult& result, std::size_t top_k);

/// One-line summary: replicates, sets, smallest p-value.
std::string SummarizeResult(const ResamplingResult& result);

/// Persists a result to the DFS as a text file with one
/// "set observed exceed replicates pvalue" line per SNP-set, sorted by
/// ascending p-value — the artifact a downstream pipeline would consume.
Status WriteResultToDfs(const ResamplingResult& result, dfs::MiniDfs& dfs,
                        const std::string& path);

/// Reads back a result file written by WriteResultToDfs (p-values are
/// recomputed from the counters, so the round trip is exact).
Result<ResamplingResult> ReadResultFromDfs(const dfs::MiniDfs& dfs,
                                           const std::string& path);

}  // namespace ss::core
