#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>

#include "core/record_traits.hpp"  // IWYU pragma: keep (ApproxBytesImpl specializations)
#include "core/store_source.hpp"
#include "dfs/genotype_store.hpp"
#include "engine/dataset_ops.hpp"
#include "simdata/store_codec.hpp"
#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "stats/kernels/kernels.hpp"
#include "stats/resampling.hpp"
#include "support/log.hpp"

namespace ss::core {
namespace {

using engine::Dataset;
using simdata::SnpRecord;

/// Parses one genotype line inside a task; malformed input is a task
/// failure (fails the job after retries rather than skewing results).
SnpRecord ParseSnpRecordOrThrow(const std::string& line) {
  Result<SnpRecord> record = simdata::ParseSnpRecord(line);
  if (!record.ok()) {
    throw engine::TaskFailure(record.status().ToString());
  }
  return std::move(record).value();
}

std::pair<std::uint32_t, double> ParseWeightSquaredOrThrow(
    const std::string& line) {
  Result<simdata::WeightRecord> record = simdata::ParseWeight(line);
  if (!record.ok()) {
    throw engine::TaskFailure(record.status().ToString());
  }
  // Step 2 emits (SNP j, ω_j²).
  return {record.value().snp, record.value().weight * record.value().weight};
}

std::pair<std::uint32_t, double> ParseWeightOrThrow(const std::string& line) {
  Result<simdata::WeightRecord> record = simdata::ParseWeight(line);
  if (!record.ok()) {
    throw engine::TaskFailure(record.status().ToString());
  }
  return {record.value().snp, record.value().weight};
}

/// snp -> list of containing set ids (step 11's aggregation map).
std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> BuildSnpToSets(
    const std::vector<stats::SnpSet>& sets) {
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> map;
  for (const stats::SnpSet& set : sets) {
    for (std::uint32_t snp : set.snps) {
      map[snp].push_back(set.id);
    }
  }
  return map;
}

/// Membership bitmap over 0..max_snp for the step-4 filter.
std::vector<std::uint8_t> BuildMembership(
    const std::vector<stats::SnpSet>& sets) {
  std::uint32_t max_snp = 0;
  for (const stats::SnpSet& set : sets) {
    for (std::uint32_t snp : set.snps) max_snp = std::max(max_snp, snp);
  }
  std::vector<std::uint8_t> member(max_snp + 1, 0);
  for (const stats::SnpSet& set : sets) {
    for (std::uint32_t snp : set.snps) member[snp] = 1;
  }
  return member;
}

}  // namespace

SkatPipeline::SkatPipeline(engine::EngineContext& ctx,
                           const PipelineConfig& config,
                           Dataset<SnpRecord> genotypes,
                           stats::Phenotype phenotype,
                           std::vector<double> weights,
                           std::vector<stats::SnpSet> sets)
    : ctx_(&ctx), config_(config), phenotype_(std::move(phenotype)),
      sets_(std::move(sets)) {
  SS_CHECK(!sets_.empty());

  if (config_.cache_budget_bytes != 0) {
    ctx.cache().SetCapacityBytes(config_.cache_budget_bytes);
  }

  // Every run reports which kernel tier it executed with (the gauge
  // lands in the metrics JSON "kernel" section).
  engine::CounterRegistry::Global()
      .Get("kernel.dispatch")
      .store(static_cast<std::uint64_t>(stats::kernels::ActiveDispatchLevel()),
             std::memory_order_relaxed);

  // Step 4: filter the genotype matrix to the union of all SNP-sets. The
  // membership bitmap is broadcast (it is tiny relative to genotypes).
  auto membership = engine::MakeBroadcast(ctx, BuildMembership(sets_));
  fgm_ = genotypes.Filter([membership](const SnpRecord& record) {
    return record.snp < membership->size() && (*membership)[record.snp] != 0;
  });

  if (config_.pack_genotypes) {
    // The genotype partitions that live in the cache (and spill under a
    // budget) are the 2-bit packed form — 4x fewer bytes. The byte
    // counters track both representations so the run report can show
    // the savings; lineage recomputation re-adds to both, preserving
    // the packed/unpacked ratio.
    auto& registry = engine::CounterRegistry::Global();
    std::atomic<std::uint64_t>* packed_bytes =
        &registry.Get("genotype.packed_bytes");
    std::atomic<std::uint64_t>* unpacked_bytes =
        &registry.Get("genotype.unpacked_bytes");
    fgm_packed_ = fgm_.Map(
        [packed_bytes, unpacked_bytes](const SnpRecord& record) {
          stats::PackedSnpRecord packed{
              record.snp, stats::PackedGenotypeBlock::Pack(record.genotypes)};
          unpacked_bytes->fetch_add(record.genotypes.size(),
                                    std::memory_order_relaxed);
          packed_bytes->fetch_add(packed.genotypes.payload().size(),
                                  std::memory_order_relaxed);
          return packed;
        });
    if (config_.cache_contributions) {
      // Permutation replicates rebuild U from genotypes every pass;
      // caching the packed form keeps that rebuild off the parse chain
      // at a quarter of the unpacked footprint.
      fgm_packed_.Cache();
    }
  }

  // Step 2 result, from driver-side weights (in-memory construction path).
  std::vector<std::pair<std::uint32_t, double>> weight_sq_pairs;
  std::vector<std::pair<std::uint32_t, double>> weight_pairs;
  weight_sq_pairs.reserve(weights.size());
  weight_pairs.reserve(weights.size());
  for (std::uint32_t j = 0; j < weights.size(); ++j) {
    weight_sq_pairs.push_back({j, weights[j] * weights[j]});
    weight_pairs.push_back({j, weights[j]});
  }
  weights_sq_ =
      engine::Parallelize(ctx, weight_sq_pairs, config_.num_partitions);
  weights_ = engine::Parallelize(ctx, weight_pairs, config_.num_partitions);

  snp_to_sets_ = engine::MakeBroadcast(ctx, BuildSnpToSets(sets_));
}

Result<SkatPipeline> SkatPipeline::Open(engine::EngineContext& ctx,
                                        const simdata::StudyPaths& paths,
                                        const PipelineConfig& config) {
  SS_CHECK(ctx.dfs() != nullptr);

  // Phenotype: small, read whole on the driver then broadcast (step 5).
  // The file's "#model" header selects Cox/Gaussian/Binomial.
  Result<std::vector<std::string>> phenotype_lines =
      ctx.dfs()->ReadTextFile(paths.phenotype);
  if (!phenotype_lines.ok()) return phenotype_lines.status();
  Result<stats::Phenotype> phenotype =
      simdata::ParsePhenotypeFile(phenotype_lines.value());
  if (!phenotype.ok()) return phenotype.status();

  // SNP-sets: also small and driver-resident.
  Result<std::vector<std::string>> set_lines =
      ctx.dfs()->ReadTextFile(paths.snp_sets);
  if (!set_lines.ok()) return set_lines.status();
  std::vector<stats::SnpSet> sets;
  sets.reserve(set_lines.value().size());
  for (const std::string& line : set_lines.value()) {
    Result<stats::SnpSet> set = simdata::ParseSnpSet(line);
    if (!set.ok()) return set.status();
    sets.push_back(std::move(set).value());
  }

  // Weights: distributed parse (step 2). Note: unlike the in-memory
  // constructor we keep them as a dataset end-to-end.
  Dataset<std::string> weight_lines = engine::TextFile(ctx, paths.weights);
  Dataset<std::pair<std::uint32_t, double>> weights_sq =
      weight_lines.Map(ParseWeightSquaredOrThrow);
  Dataset<std::pair<std::uint32_t, double>> weights_unsquared =
      weight_lines.Map(ParseWeightOrThrow);

  // Genotype matrix: distributed parse (step 3), one partition per block.
  Dataset<SnpRecord> genotypes =
      engine::TextFile(ctx, paths.genotypes).Map(ParseSnpRecordOrThrow);

  SkatPipeline pipeline(ctx, config, genotypes, std::move(phenotype).value(),
                        /*weights=*/{}, sets);
  pipeline.weights_sq_ = weights_sq;  // replace the (empty) in-memory weights
  pipeline.weights_ = weights_unsquared;
  // The staged file's model is authoritative.
  pipeline.config_.model = pipeline.phenotype_.model;
  return pipeline;
}

Result<SkatPipeline> SkatPipeline::OpenFromStore(
    engine::EngineContext& ctx, const std::string& store_path,
    const PipelineConfig& config,
    std::optional<std::uint64_t> expected_fingerprint) {
  auto store_or = dfs::GenotypeStore::Open(store_path);
  if (!store_or.ok()) return store_or.status();
  std::shared_ptr<dfs::GenotypeStore> store = std::move(store_or).value();

  if (expected_fingerprint.has_value() &&
      *expected_fingerprint != store->fingerprint()) {
    // Never silently re-ingest over a mismatch: the caller asked for one
    // specific cohort and this file holds another.
    return Status(
        StatusCode::kInvalidArgument,
        "genotype store fingerprint mismatch at " + store_path +
            ": expected " + std::to_string(*expected_fingerprint) +
            " but the file has " + std::to_string(store->fingerprint()) +
            " (staged as: " + store->description() +
            "); restage the store or pass the parameters it was staged with");
  }

  // Aux frames -> driver-side phenotype / weights / SNP-sets, through the
  // same strict parsers as the DFS text path.
  auto phenotype_bytes = store->ReadAuxFrame(dfs::StoreFrameKind::kPhenotype);
  if (!phenotype_bytes.ok()) return phenotype_bytes.status();
  Result<stats::Phenotype> phenotype = simdata::ParsePhenotypeFile(
      simdata::DecodeTextLines(phenotype_bytes.value()));
  if (!phenotype.ok()) return phenotype.status();

  auto set_bytes = store->ReadAuxFrame(dfs::StoreFrameKind::kSets);
  if (!set_bytes.ok()) return set_bytes.status();
  std::vector<stats::SnpSet> sets;
  for (const std::string& line :
       simdata::DecodeTextLines(set_bytes.value())) {
    Result<stats::SnpSet> set = simdata::ParseSnpSet(line);
    if (!set.ok()) return set.status();
    sets.push_back(std::move(set).value());
  }
  if (sets.empty()) {
    return Status(StatusCode::kInvalidArgument,
                  "genotype store " + store_path + " has no SNP-sets");
  }

  auto weight_bytes = store->ReadAuxFrame(dfs::StoreFrameKind::kWeights);
  if (!weight_bytes.ok()) return weight_bytes.status();
  std::vector<std::pair<std::uint32_t, double>> weight_sq_pairs;
  std::vector<std::pair<std::uint32_t, double>> weight_pairs;
  for (const std::string& line :
       simdata::DecodeTextLines(weight_bytes.value())) {
    Result<simdata::WeightRecord> record = simdata::ParseWeight(line);
    if (!record.ok()) return record.status();
    weight_sq_pairs.push_back(
        {record.value().snp, record.value().weight * record.value().weight});
    weight_pairs.push_back({record.value().snp, record.value().weight});
  }

  SkatPipeline pipeline;
  pipeline.ctx_ = &ctx;
  pipeline.config_ = config;
  pipeline.config_.pack_genotypes = true;  // store frames ARE packed
  pipeline.config_.model = phenotype.value().model;  // staged file rules
  pipeline.phenotype_ = std::move(phenotype).value();
  pipeline.sets_ = std::move(sets);

  if (pipeline.config_.cache_budget_bytes != 0) {
    ctx.cache().SetCapacityBytes(pipeline.config_.cache_budget_bytes);
  }
  engine::CounterRegistry::Global()
      .Get("kernel.dispatch")
      .store(static_cast<std::uint64_t>(stats::kernels::ActiveDispatchLevel()),
             std::memory_order_relaxed);

  // Step 4's filter happens inside the store node (membership bitmap);
  // steps 1 + 3 collapse into frame read + decode off the mmap.
  auto membership = std::make_shared<const std::vector<std::uint8_t>>(
      BuildMembership(pipeline.sets_));
  auto node = std::make_shared<StoreGenotypeNode>(&ctx, std::move(store),
                                                  std::move(membership));
  if (pipeline.config_.cache_contributions) {
    // Cache decoded partitions under the budget, but evict by dropping:
    // the store is this dataset's durable tier, so a spill copy would
    // just double the I/O (see StoreGenotypeNode).
    node->EnableCache();
    node->DisableCacheSpill();
  }
  pipeline.fgm_packed_ =
      engine::Dataset<stats::PackedSnpRecord>(&ctx, std::move(node));

  pipeline.weights_sq_ = engine::Parallelize(ctx, weight_sq_pairs,
                                             pipeline.config_.num_partitions);
  pipeline.weights_ =
      engine::Parallelize(ctx, weight_pairs, pipeline.config_.num_partitions);
  pipeline.snp_to_sets_ =
      engine::MakeBroadcast(ctx, BuildSnpToSets(pipeline.sets_));
  return pipeline;
}

SkatPipeline SkatPipeline::FromMemory(engine::EngineContext& ctx,
                                      const simdata::SyntheticDataset& dataset,
                                      const PipelineConfig& config) {
  std::vector<SnpRecord> records;
  records.reserve(dataset.genotypes.num_snps());
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  Dataset<SnpRecord> genotypes =
      engine::Parallelize(ctx, records, config.num_partitions);
  return SkatPipeline(ctx, config, genotypes,
                      stats::Phenotype::Cox(dataset.survival),
                      dataset.weights, dataset.sets);
}

Dataset<std::pair<std::uint32_t, std::vector<double>>> SkatPipeline::BuildU(
    const engine::Broadcast<stats::ScoreEngine>& engine) const {
  // Steps 6-7: per-SNP contributions under the broadcast phenotype.
  if (config_.pack_genotypes) {
    // Decode the 2-bit block back to dosages at the point of use; the
    // roundtrip is lossless so scores are bitwise unchanged. The unpack
    // is profiled as decode time (untraced: one span per record would
    // flood the Chrome trace; coalescing keeps the accounting exact).
    return fgm_packed_.Map([engine](const stats::PackedSnpRecord& record) {
      std::vector<std::uint8_t> dosages;
      {
        ss::engine::PhaseTimer decode_phase(ss::engine::TaskPhase::kDecode,
                                            /*trace=*/false);
        record.genotypes.UnpackInto(&dosages);
      }
      return std::pair<std::uint32_t, std::vector<double>>(
          record.snp, engine->Contributions(dosages));
    });
  }
  return fgm_.Map([engine](const SnpRecord& record) {
    return std::pair<std::uint32_t, std::vector<double>>(
        record.snp, engine->Contributions(record.genotypes));
  });
}

SetScores SkatPipeline::SetScoresFromInnerSigma(
    const Dataset<std::pair<std::uint32_t, double>>& inner_sigma) const {
  // Step 9: join with squared weights. Step 10: per-SNP score.
  auto joined = engine::Join(weights_sq_, inner_sigma, config_.num_reducers);
  auto snp_scores =
      joined.Map([](const std::pair<std::uint32_t, std::pair<double, double>>&
                        record) {
        return std::pair<std::uint32_t, double>(
            record.first, record.second.first * record.second.second);
      });

  // Steps 11-12: scatter each SNP's score to its containing sets and sum.
  auto map = snp_to_sets_;
  auto set_contributions = snp_scores.FlatMap(
      [map](const std::pair<std::uint32_t, double>& record) {
        std::vector<std::pair<std::uint32_t, double>> out;
        auto it = map->find(record.first);
        if (it != map->end()) {
          out.reserve(it->second.size());
          for (std::uint32_t set_id : it->second) {
            out.push_back({set_id, record.second});
          }
        }
        return out;
      });
  auto set_scores = engine::ReduceByKey(
      set_contributions, [](double a, double b) { return a + b; },
      config_.num_reducers);
  SetScores observed = engine::CollectAsMap(set_scores, "collect-set-scores");
  // Sets none of whose SNPs survived filtering score 0.
  for (const stats::SnpSet& set : sets_) {
    observed.try_emplace(set.id, 0.0);
  }
  return observed;
}

SetScores SkatPipeline::SetScoresFromU(
    const Dataset<std::pair<std::uint32_t, std::vector<double>>>& u) const {
  // Step 8: U_j² = (Σ_i U_ij)².
  auto inner_sigma = u.Map(
      [](const std::pair<std::uint32_t, std::vector<double>>& record) {
        double total = 0.0;
        for (double contribution : record.second) total += contribution;
        return std::pair<std::uint32_t, double>(record.first, total * total);
      });
  return SetScoresFromInnerSigma(inner_sigma);
}

void SkatPipeline::EnsureUBuilt() {
  if (u_built_) return;
  auto engine_bcast = engine::MakeBroadcast(
      *ctx_, stats::ScoreEngine(phenotype_, config_.paper_faithful_scores));
  u_observed_ = BuildU(engine_bcast);
  if (!config_.checkpoint_contributions_path.empty() &&
      ctx_->dfs() != nullptr) {
    // Persist U to the DFS and continue from the truncated-lineage
    // dataset; a node failure now re-reads replicated blocks instead of
    // recomputing scores from the genotype inputs.
    auto checkpointed = engine::Checkpoint(
        u_observed_, config_.checkpoint_contributions_path);
    if (checkpointed.ok()) {
      u_observed_ = std::move(checkpointed).value();
    } else {
      SS_LOG(kWarn, "sparkscore")
          << "U checkpoint failed (" << checkpointed.status().ToString()
          << "); continuing with lineage recovery";
    }
  }
  if (config_.cache_contributions) {
    u_observed_.Cache();  // Algorithm 3 step 2
  }
  u_built_ = true;
}

SetScores SkatPipeline::ComputeObserved() {
  engine::TraceSpan span(engine::Tracer::Global(), "algo", "observed skat");
  EnsureUBuilt();
  return SetScoresFromU(u_observed_);
}

std::unordered_map<std::uint32_t, std::pair<double, double>>
SkatPipeline::SkatBurdenFromScores(
    const Dataset<std::pair<std::uint32_t, double>>& scores) const {
  // Join the signed per-SNP scores with the unsquared weights, then
  // accumulate (ω²U², ωU) per set; burden = (Σ ωU)² on the driver.
  auto joined = engine::Join(weights_, scores, config_.num_reducers);
  auto map = snp_to_sets_;
  using PairStat = std::pair<double, double>;  // (Σ ω²U², Σ ωU)
  auto set_contributions = joined.FlatMap(
      [map](const std::pair<std::uint32_t, std::pair<double, double>>& record) {
        const double w = record.second.first;
        const double u = record.second.second;
        std::vector<std::pair<std::uint32_t, PairStat>> out;
        auto it = map->find(record.first);
        if (it != map->end()) {
          out.reserve(it->second.size());
          for (std::uint32_t set_id : it->second) {
            out.push_back({set_id, {w * w * u * u, w * u}});
          }
        }
        return out;
      });
  auto per_set = engine::ReduceByKey(
      set_contributions,
      [](const PairStat& a, const PairStat& b) {
        return PairStat{a.first + b.first, a.second + b.second};
      },
      config_.num_reducers);
  auto collected = engine::CollectAsMap(per_set, "collect-skat-burden");
  std::unordered_map<std::uint32_t, std::pair<double, double>> result;
  for (const auto& [set_id, pair] : collected) {
    // Second component becomes the burden statistic (square of Σ ωU).
    result[set_id] = {pair.first, pair.second * pair.second};
  }
  for (const stats::SnpSet& set : sets_) {
    result.try_emplace(set.id, std::pair<double, double>{0.0, 0.0});
  }
  return result;
}

std::unordered_map<std::uint32_t, std::pair<double, double>>
SkatPipeline::ComputeObservedSkatBurden() {
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "observed skat+burden");
  EnsureUBuilt();
  auto scores = u_observed_.Map(
      [](const std::pair<std::uint32_t, std::vector<double>>& record) {
        double total = 0.0;
        for (double contribution : record.second) total += contribution;
        return std::pair<std::uint32_t, double>(record.first, total);
      });
  return SkatBurdenFromScores(scores);
}

std::unordered_map<std::uint32_t, std::pair<double, double>>
SkatPipeline::ComputeMonteCarloSkatBurdenReplicate(
    const std::vector<double>& multipliers) {
  SS_CHECK(u_built_);
  SS_CHECK(multipliers.size() == n());
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "monte-carlo skat+burden replicate");
  auto z = engine::MakeBroadcast(*ctx_, multipliers);
  auto scores = u_observed_.Map(
      [z](const std::pair<std::uint32_t, std::vector<double>>& record) {
        double total = 0.0;
        const std::vector<double>& multiplier = *z;
        for (std::size_t i = 0; i < record.second.size(); ++i) {
          total += multiplier[i] * record.second[i];
        }
        return std::pair<std::uint32_t, double>(record.first, total);
      });
  return SkatBurdenFromScores(scores);
}

std::unordered_map<std::uint32_t, std::vector<double>>
SkatPipeline::ComputeMonteCarloScoreBlock(const std::vector<double>& zblock,
                                          std::size_t count) {
  SS_CHECK(u_built_);  // ComputeObserved must run first (Algorithm 3 step 1)
  SS_CHECK(zblock.size() == count * n());
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "monte-carlo score block",
                         {engine::Arg("replicates", count)});
  auto z = engine::MakeBroadcast(*ctx_, zblock);
  auto scored = u_observed_.MapPartitions(
      [z, count](std::uint32_t,
                 const std::vector<std::pair<std::uint32_t,
                                             std::vector<double>>>& records) {
        std::vector<std::pair<std::uint32_t, std::vector<double>>> out;
        out.reserve(records.size());
        std::vector<double> scores;
        for (const auto& record : records) {
          stats::BatchedReplicateScores(record.second, z->data(), count,
                                        &scores);
          out.push_back({record.first, scores});
        }
        return out;
      });
  return engine::CollectAsMap(scored, "collect-score-block");
}

std::unordered_map<std::uint32_t, double> SkatPipeline::CollectObservedScores() {
  EnsureUBuilt();
  auto scores = u_observed_.Map(
      [](const std::pair<std::uint32_t, std::vector<double>>& record) {
        double total = 0.0;
        for (double contribution : record.second) total += contribution;
        return std::pair<std::uint32_t, double>(record.first, total);
      });
  return engine::CollectAsMap(scores, "collect-observed-scores");
}

const std::unordered_map<std::uint32_t, double>& SkatPipeline::DriverWeights() {
  if (!driver_weights_built_) {
    driver_weights_ = engine::CollectAsMap(weights_, "collect-weights");
    driver_weights_built_ = true;
  }
  return driver_weights_;
}

std::unordered_map<std::uint32_t, stats::Matrix>
SkatPipeline::CollectSetGramMatrices() {
  EnsureUBuilt();
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "collect set gram matrices");
  // Driver-side copy of the per-SNP contribution vectors; set sizes are a
  // few to a few dozen members, so d×d Grams are tiny — the n-vectors
  // dominate and are the same bytes the score-block collect moves.
  const auto u_by_snp = engine::CollectAsMap(u_observed_, "collect-u-vectors");
  const std::unordered_map<std::uint32_t, double>& weights = DriverWeights();
  std::unordered_map<std::uint32_t, stats::Matrix> grams;
  grams.reserve(sets_.size());
  for (const stats::SnpSet& set : sets_) {
    // Members with live (unfiltered) U vectors, in declaration order.
    std::vector<const std::vector<double>*> u;
    std::vector<double> w;
    for (std::uint32_t snp : set.snps) {
      auto u_it = u_by_snp.find(snp);
      if (u_it == u_by_snp.end()) continue;  // SNP filtered out
      auto w_it = weights.find(snp);
      u.push_back(&u_it->second);
      w.push_back(w_it == weights.end() ? 1.0 : w_it->second);
    }
    const std::size_t d = u.size();
    stats::Matrix gram(d, d);
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) {
        double dot = 0.0;
        const std::vector<double>& ua = *u[a];
        const std::vector<double>& ub = *u[b];
        for (std::size_t i = 0; i < ua.size(); ++i) dot += ua[i] * ub[i];
        const double m = w[a] * w[b] * dot;
        gram.at(a, b) = m;
        gram.at(b, a) = m;
      }
    }
    grams.emplace(set.id, std::move(gram));
  }
  return grams;
}

SetScores SkatPipeline::ComputeMonteCarloReplicate(
    const std::vector<double>& multipliers) {
  SS_CHECK(u_built_);  // ComputeObserved must run first (Algorithm 3 step 1)
  SS_CHECK(multipliers.size() == n());
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "monte-carlo replicate");
  auto z = engine::MakeBroadcast(*ctx_, multipliers);
  // Algorithm 3's modification of step 8: Ũ_j = Σ_i Z_i U_ij, squared.
  auto inner_sigma = u_observed_.Map(
      [z](const std::pair<std::uint32_t, std::vector<double>>& record) {
        double total = 0.0;
        const std::vector<double>& multiplier = *z;
        for (std::size_t i = 0; i < record.second.size(); ++i) {
          total += multiplier[i] * record.second[i];
        }
        return std::pair<std::uint32_t, double>(record.first, total * total);
      });
  return SetScoresFromInnerSigma(inner_sigma);
}

SetScores SkatPipeline::ComputePermutationReplicate(
    const std::vector<std::uint32_t>& perm) {
  // Algorithm 2: rebroadcast a permuted phenotype and rerun steps 6-12.
  engine::TraceSpan span(engine::Tracer::Global(), "algo",
                         "permutation replicate");
  auto engine_bcast = engine::MakeBroadcast(
      *ctx_, stats::ScoreEngine(phenotype_.Permuted(perm),
                                config_.paper_faithful_scores));
  return SetScoresFromU(BuildU(engine_bcast));
}

void SkatPipeline::UnpersistContributions() {
  if (u_built_) u_observed_.Unpersist();
}

}  // namespace ss::core
