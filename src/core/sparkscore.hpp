// Umbrella header: everything a SparkScore user needs.
//
//   #include "core/sparkscore.hpp"
//
//   ss::dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2});
//   ss::engine::EngineContext ctx({.topology = ss::cluster::EmrCluster(6)},
//                                 &dfs);
//   auto paths = ss::simdata::GenerateToDfs(dfs, "/study", {...}).value();
//   auto pipeline = ss::core::SkatPipeline::Open(ctx, paths, {}).value();
//   auto run = ss::core::RunResampling(
//       pipeline, {ss::core::ResamplingMethod::kMonteCarlo, /*B=*/1000});
//   std::cout << ss::core::FormatTopHits(run.scores, 10);
#pragma once

#include "core/autotune.hpp"      // IWYU pragma: export
#include "core/pipeline.hpp"      // IWYU pragma: export
#include "core/report.hpp"        // IWYU pragma: export
#include "core/resampling_methods.hpp"  // IWYU pragma: export
#include "core/variant_scan.hpp"  // IWYU pragma: export
