// Variant-by-variant analysis — the first of the two GWAS analysis
// categories in the paper's introduction ("studying the effect of single
// variants with respect to a phenotype"), run on the same engine dataflow
// as the SNP-set pipeline.
//
// Per SNP j the scan reports:
//   * the marginal score U_j and its null variance V_j = Σ_i U_ij²;
//   * the asymptotic p-value P(χ²(1) >= U_j²/V_j);
//   * the Monte Carlo empirical p-value over B multiplier replicates
//     (reusing the cached U RDD exactly as Algorithm 3 does); and
//   * the Westfall-Young single-step maxT family-wise adjusted p-value,
//     whose per-replicate max is reduced tree-style on the cluster.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "engine/dataset.hpp"
#include "simdata/text_format.hpp"
#include "stats/score_engine.hpp"

namespace ss::core {

struct VariantScanConfig {
  std::uint64_t seed = 2016;
  std::uint64_t replicates = 100;  ///< B Monte Carlo replicates.
  std::uint32_t num_partitions = 8;
  bool paper_faithful_scores = false;
};

/// Per-SNP observed quantities.
struct VariantStats {
  double score = 0.0;       ///< U_j.
  double variance = 0.0;    ///< V_j.
  double statistic = 0.0;   ///< T_j = U_j²/V_j (0 for monomorphic SNPs).
  double asymptotic_p = 1.0;
};

struct VariantScanResult {
  std::unordered_map<std::uint32_t, VariantStats> by_snp;
  std::unordered_map<std::uint32_t, std::uint64_t> exceed;  ///< #{T̃_bj >= T_j}.
  std::vector<double> replicate_max;  ///< max_j T̃_bj per replicate.
  std::uint64_t replicates = 0;

  /// Monte Carlo empirical p-value, (c+1)/(B+1).
  double EmpiricalP(std::uint32_t snp) const;

  /// Westfall-Young single-step maxT adjusted p-value.
  double MaxTAdjustedP(std::uint32_t snp) const;

  /// SNP ids sorted by ascending asymptotic p-value.
  std::vector<std::uint32_t> RankedByAsymptoticP() const;
};

/// Runs the scan over a genotype dataset with a driver-resident phenotype.
VariantScanResult RunVariantScan(engine::EngineContext& ctx,
                                 const engine::Dataset<simdata::SnpRecord>& genotypes,
                                 const stats::Phenotype& phenotype,
                                 const VariantScanConfig& config);

}  // namespace ss::core
