// Algorithms 2 and 3: resampling inference drivers over the SkatPipeline.
//
// Both compute the observed scores S_k⁰ first, then run B replicates and
// count, per SNP-set, how many replicate statistics S_k^b meet or exceed
// S_k⁰ (the paper's counter_k). The empirical p-value follows directly.
//
//   * kPermutation — Algorithm 2: each replicate shuffles the phenotype
//     pairs and re-executes the full pipeline (steps 6-12).
//   * kMonteCarlo — Algorithm 3: replicates reuse the cached observed
//     U RDD with fresh N(0,1) multipliers; only steps 8-12 re-execute.
//   * kSkatO — the SKAT-O combination assessed over the same Monte Carlo
//     replicate pool.
//
// All methods share one batched driver loop: replicates are scheduled in
// batches of `ResamplingRequest::batch_size`. For the Monte Carlo methods
// a batch is ONE engine pass — an n×R Z block is broadcast and a blocked
// multiply-accumulate kernel computes every replicate's per-SNP scores
// over the cached U partitions (stats::BatchedReplicateScores); the
// per-set folds then run driver-side in the serial oracle's canonical
// accumulation order. Results are bitwise invariant to the batch size,
// the thread count, and the partitioning, and the Monte Carlo
// ResamplingResult is bitwise equal to baseline::SerialMonteCarlo from
// the same seed. Permutation re-executes the full pipeline per replicate
// (its cost model is the point of Experiment A), so for it a batch is a
// scheduling/telemetry unit only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "engine/executor.hpp"
#include "support/status.hpp"

namespace ss::core {

/// How per-set p-values are computed (the adaptive p-value engine; the
/// analytic machinery itself lives in stats/adaptive_pvalue.hpp).
enum class PValueMethod {
  kResampling,   ///< Pure resampling counts (legacy default).
  kAnalytic,     ///< Liu moment-matched analytic tail; zero replicates.
  kSaddlepoint,  ///< Kuonen saddlepoint analytic tail; zero replicates.
  kHybrid,       ///< Saddlepoint screen; resampling only for small-p sets.
};

/// Parses a CLI `pmethod=` token: resampling|analytic|saddlepoint|hybrid.
Result<PValueMethod> ParsePValueMethod(const std::string& token);

/// Per-set adaptive-inference record. Present only for adaptive runs
/// (pvalue_method != kResampling or early_stop != 0); legacy runs leave
/// ResamplingResult::inference empty and are byte-identical to before.
struct SetInference {
  /// Analytic tail p-value (Liu or saddlepoint, per the method). 1.0 for
  /// sets that were never screened (kResampling with early stopping).
  double analytic_p = 1.0;

  /// Replicates this set actually consumed (≤ B; 0 if screened out).
  std::uint64_t replicates_used = 0;

  /// The Besag–Clifford stopper fired before B replicates.
  bool early_stopped = false;

  /// Resampling refinement ran for this set (its p-value comes from
  /// counts, not the analytic screen).
  bool refined = false;
};

/// Result of a resampling run, keyed by SNP-set id.
struct ResamplingResult {
  SetScores observed;                                      ///< S_k⁰.
  std::unordered_map<std::uint32_t, std::uint64_t> exceed; ///< counter_k.
  std::uint64_t replicates = 0;                            ///< B.

  /// Adaptive per-set inference; EMPTY for legacy pure-resampling runs.
  std::unordered_map<std::uint32_t, SetInference> inference;

  /// Besag–Clifford exceedance target h of the run (0 = no early stop).
  std::uint64_t early_stop_h = 0;

  /// P-value for one set. Legacy runs: the empirical (c+1)/(B+1).
  /// Adaptive runs route through the set's SetInference: analytic tail
  /// for unrefined sets, counts over the consumed replicates for refined
  /// ones (h/L when early-stopped — stats::PValueFromCounts).
  double PValue(std::uint32_t set_id) const;

  /// (set id, p-value) sorted ascending by p-value.
  std::vector<std::pair<std::uint32_t, double>> RankedPValues() const;
};

/// SKAT-O extension (Lee et al., the paper's [17]): per set, the optimal
/// ρ-combination of the SKAT and burden statistics, with the min-p
/// combination assessed over the same Monte Carlo replicate pool.
struct SkatOResult {
  /// Per set id: observed SKAT, observed burden, combined p-value.
  struct PerSet {
    double skat = 0.0;
    double burden = 0.0;
    double pvalue = 1.0;
  };
  std::unordered_map<std::uint32_t, PerSet> by_set;
  std::uint64_t replicates = 0;

  /// (set id, p-value) sorted ascending.
  std::vector<std::pair<std::uint32_t, double>> RankedPValues() const;
};

/// Observer of a resampling run. Batching breaks the old assumption that
/// one replicate is one engine pass, so progress is reported at both
/// granularities: batch boundaries delimit engine work, replicate events
/// fire once per counted replicate. All callbacks run on the driver
/// thread; default implementations ignore the event.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;

  /// Batch `batch_index` covering replicates [begin, end) is about to
  /// execute (one engine pass for the Monte Carlo methods).
  virtual void OnBatchBegin(std::uint64_t /*batch_index*/,
                            std::uint64_t /*begin*/, std::uint64_t /*end*/) {}

  /// Replicate b's per-set statistics S_k^b, emitted just before
  /// OnReplicate(b). Permutation and Monte Carlo only (SKAT-O replicates
  /// carry ρ-grids, not a single statistic per set).
  virtual void OnReplicateScores(std::uint64_t /*b*/,
                                 const SetScores& /*scores*/) {}

  /// Replicate b has been folded into the exceedance counters.
  virtual void OnReplicate(std::uint64_t /*b*/) {}

  virtual void OnBatchEnd(std::uint64_t /*batch_index*/,
                          std::uint64_t /*begin*/, std::uint64_t /*end*/) {}
};

enum class ResamplingMethod {
  kPermutation,  ///< Algorithm 2.
  kMonteCarlo,   ///< Algorithm 3 (Lin 2005).
  kSkatO,        ///< SKAT-O over the Monte Carlo replicate pool.
};

/// One resampling run, fully specified. This is the engine's ONLY public
/// resampling driver API (the former per-method entry points
/// RunPermutationMethod/RunMonteCarloMethod/RunSkatOMethod are gone).
struct ResamplingRequest {
  ResamplingRequest() = default;
  /// The common case in one line:
  /// `RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 1000})`.
  ResamplingRequest(ResamplingMethod method_in, std::uint64_t replicates_in)
      : method(method_in), replicates(replicates_in) {}

  ResamplingMethod method = ResamplingMethod::kMonteCarlo;

  /// B. 0 computes only the observed statistics.
  std::uint64_t replicates = 0;

  /// Replicates per scheduled batch; 0 defers to the pipeline's
  /// PipelineConfig::resampling_batch_size. Bitwise-irrelevant to the
  /// results; 1 recovers one-engine-pass-per-replicate scheduling.
  std::uint64_t batch_size = 0;

  /// Seed for the resampling plans; unset defers to PipelineConfig::seed.
  std::optional<std::uint64_t> seed;

  /// P-value engine for kPermutation/kMonteCarlo (ignored with a warning
  /// by kSkatO). kResampling is the legacy pure-counting path and leaves
  /// results byte-identical to before this knob existed. The analytic
  /// tails are EXACT for the Monte Carlo null (the replicate statistic is
  /// exactly Σ λ_m χ²₁ there) and the standard asymptotic approximation
  /// for the permutation null.
  PValueMethod pvalue_method = PValueMethod::kResampling;

  /// kHybrid only: sets whose analytic screen p-value is below this get
  /// resampling refinement; the rest keep the analytic tail and consume
  /// zero replicates.
  double refine_threshold = 0.01;

  /// Besag–Clifford sequential early stopping: a set stops consuming
  /// replicates once `early_stop` exceedances have been observed, with
  /// the estimate p̂ = h/L (conservatively biased up by ≈ p/h).
  /// 0 disables (exhaustive counting).
  /// Stopping decisions are made per-replicate in the canonical order, so
  /// results are bitwise invariant to batch size / threads / prefetch.
  std::uint64_t early_stop = 0;

  /// Optional progress observer; not owned, may be null.
  ProgressSink* sink = nullptr;

  /// Async-executor knobs for this run (prefetch depth, I/O threads,
  /// background spill). Applied to the pipeline's engine context before
  /// the first batch and sticky thereafter; unset keeps the context's
  /// current configuration. Bitwise-irrelevant to the results —
  /// `exec.prefetch_depth = 0` ablates the async path entirely.
  std::optional<engine::ExecConfig> exec;
};

/// Outcome of RunResampling: `scores` is populated for kPermutation and
/// kMonteCarlo, `skato` for kSkatO.
struct ResamplingRun {
  ResamplingMethod method = ResamplingMethod::kMonteCarlo;
  ResamplingResult scores;
  SkatOResult skato;
};

/// Unified entry point for all resampling methods. Note the SKAT-O min-p
/// evaluation is O(B²·|grid|) per set on the driver, so B in the hundreds
/// is the practical range for kSkatO (as in the SKAT-O literature).
ResamplingRun RunResampling(SkatPipeline& pipeline,
                            const ResamplingRequest& request);

}  // namespace ss::core
