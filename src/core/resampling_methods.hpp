// Algorithms 2 and 3: resampling inference drivers over the SkatPipeline.
//
// Both compute the observed scores S_k⁰ first, then run B replicates and
// count, per SNP-set, how many replicate statistics S_k^b meet or exceed
// S_k⁰ (the paper's counter_k). The empirical p-value follows directly.
//
//   * PermutationMethod — Algorithm 2: each replicate shuffles the
//     phenotype pairs and re-executes the full pipeline (steps 6-12).
//   * MonteCarloMethod — Algorithm 3: replicates reuse the cached observed
//     U RDD with fresh N(0,1) multipliers; only steps 8-12 re-execute.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"

namespace ss::core {

/// Result of a resampling run, keyed by SNP-set id.
struct ResamplingResult {
  SetScores observed;                                      ///< S_k⁰.
  std::unordered_map<std::uint32_t, std::uint64_t> exceed; ///< counter_k.
  std::uint64_t replicates = 0;                            ///< B.

  /// Empirical p-value (c+1)/(B+1) for one set.
  double PValue(std::uint32_t set_id) const;

  /// (set id, p-value) sorted ascending by p-value.
  std::vector<std::pair<std::uint32_t, double>> RankedPValues() const;
};

/// Progress hook invoked after each replicate (benches time sub-ranges).
using ReplicateCallback = std::function<void(std::uint64_t b)>;

/// Algorithm 2. `replicates` == 0 computes only the observed statistics.
ResamplingResult RunPermutationMethod(SkatPipeline& pipeline,
                                      std::uint64_t replicates,
                                      const ReplicateCallback& on_replicate = {});

/// Algorithm 3. Requires pipeline.config().cache_contributions for the
/// cached-U fast path; without it the U lineage is recomputed per
/// replicate (the paper's "w/o caching" configuration in Experiment B).
ResamplingResult RunMonteCarloMethod(SkatPipeline& pipeline,
                                     std::uint64_t replicates,
                                     const ReplicateCallback& on_replicate = {});

/// SKAT-O extension (Lee et al., the paper's [17]): per set, the optimal
/// ρ-combination of the SKAT and burden statistics, with the min-p
/// combination assessed over the same Monte Carlo replicate pool.
struct SkatOResult {
  /// Per set id: observed SKAT, observed burden, combined p-value.
  struct PerSet {
    double skat = 0.0;
    double burden = 0.0;
    double pvalue = 1.0;
  };
  std::unordered_map<std::uint32_t, PerSet> by_set;
  std::uint64_t replicates = 0;

  /// (set id, p-value) sorted ascending.
  std::vector<std::pair<std::uint32_t, double>> RankedPValues() const;
};

/// Runs the SKAT-O analysis with B Monte Carlo replicates. Note the
/// min-p evaluation is O(B²·|grid|) per set on the driver, so B in the
/// hundreds is the practical range (as in the SKAT-O literature).
SkatOResult RunSkatOMethod(SkatPipeline& pipeline, std::uint64_t replicates,
                           const ReplicateCallback& on_replicate = {});

}  // namespace ss::core
