#include "core/resampling_methods.hpp"

#include <algorithm>

#include "engine/trace.hpp"
#include "stats/burden.hpp"
#include "stats/pvalue.hpp"
#include "stats/resampling.hpp"

namespace ss::core {
namespace {

/// counter_k update shared by both algorithms: compare a replicate's
/// scores against the observed ones.
void CountExceedances(const SetScores& observed, const SetScores& replicate,
                      std::unordered_map<std::uint32_t, std::uint64_t>* exceed) {
  for (const auto& [set_id, observed_score] : observed) {
    auto it = replicate.find(set_id);
    const double replicate_score = it == replicate.end() ? 0.0 : it->second;
    if (replicate_score >= observed_score) ++(*exceed)[set_id];
  }
}

void InitCounters(const SetScores& observed,
                  std::unordered_map<std::uint32_t, std::uint64_t>* exceed) {
  for (const auto& [set_id, score] : observed) (*exceed)[set_id] = 0;
}

}  // namespace

double ResamplingResult::PValue(std::uint32_t set_id) const {
  auto it = exceed.find(set_id);
  const std::uint64_t count = it == exceed.end() ? replicates : it->second;
  return stats::EmpiricalPValue(count, replicates);
}

std::vector<std::pair<std::uint32_t, double>> ResamplingResult::RankedPValues()
    const {
  std::vector<std::pair<std::uint32_t, double>> ranked;
  ranked.reserve(observed.size());
  for (const auto& [set_id, score] : observed) {
    ranked.push_back({set_id, PValue(set_id)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.second < b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  return ranked;
}

ResamplingResult RunPermutationMethod(SkatPipeline& pipeline,
                                      std::uint64_t replicates,
                                      const ReplicateCallback& on_replicate) {
  ResamplingResult result;
  result.observed = pipeline.ComputeObserved();
  result.replicates = replicates;
  InitCounters(result.observed, &result.exceed);

  // Algorithm 2 step 2: all B shufflings are derived from the seed up
  // front, so replicate b is reproducible in isolation.
  const stats::PermutationPlan plan(pipeline.config().seed, pipeline.n(),
                                    replicates);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    engine::TraceSpan span(engine::Tracer::Global(), "replicate",
                           "permutation b=" + std::to_string(b),
                           {engine::Arg("algorithm", "permutation"),
                            engine::Arg("b", b)});
    const SetScores replicate =
        pipeline.ComputePermutationReplicate(plan.Get(b));
    CountExceedances(result.observed, replicate, &result.exceed);
    if (on_replicate) on_replicate(b);
  }
  return result;
}

std::vector<std::pair<std::uint32_t, double>> SkatOResult::RankedPValues()
    const {
  std::vector<std::pair<std::uint32_t, double>> ranked;
  ranked.reserve(by_set.size());
  for (const auto& [set_id, per_set] : by_set) {
    ranked.push_back({set_id, per_set.pvalue});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second < b.second || (a.second == b.second && a.first < b.first);
  });
  return ranked;
}

SkatOResult RunSkatOMethod(SkatPipeline& pipeline, std::uint64_t replicates,
                           const ReplicateCallback& on_replicate) {
  const std::vector<double> rho_grid = stats::SkatORhoGrid();

  // Observed (SKAT, burden) pair and grid per set.
  const auto observed = pipeline.ComputeObservedSkatBurden();
  std::unordered_map<std::uint32_t, std::vector<double>> observed_grids;
  SkatOResult result;
  result.replicates = replicates;
  for (const auto& [set_id, pair] : observed) {
    SkatOResult::PerSet per_set;
    per_set.skat = pair.first;
    per_set.burden = pair.second;
    result.by_set[set_id] = per_set;
    observed_grids[set_id] =
        stats::SkatOGridStatistics(pair.second, pair.first, rho_grid);
  }

  // Replicate grids, from the cached U RDD.
  std::unordered_map<std::uint32_t, std::vector<std::vector<double>>>
      replicate_grids;
  const stats::MonteCarloWeights weights(pipeline.config().seed, pipeline.n(),
                                         replicates);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    engine::TraceSpan span(engine::Tracer::Global(), "replicate",
                           "skat-o b=" + std::to_string(b),
                           {engine::Arg("algorithm", "skat-o"),
                            engine::Arg("b", b)});
    const auto replicate =
        pipeline.ComputeMonteCarloSkatBurdenReplicate(weights.Get(b));
    for (const auto& [set_id, pair] : replicate) {
      replicate_grids[set_id].push_back(
          stats::SkatOGridStatistics(pair.second, pair.first, rho_grid));
    }
    if (on_replicate) on_replicate(b);
  }

  // Min-p combination per set.
  for (auto& [set_id, per_set] : result.by_set) {
    auto grids_it = replicate_grids.find(set_id);
    if (grids_it == replicate_grids.end()) continue;
    per_set.pvalue =
        stats::SkatOPValue(observed_grids.at(set_id), grids_it->second);
  }
  return result;
}

ResamplingResult RunMonteCarloMethod(SkatPipeline& pipeline,
                                     std::uint64_t replicates,
                                     const ReplicateCallback& on_replicate) {
  ResamplingResult result;
  result.observed = pipeline.ComputeObserved();
  result.replicates = replicates;
  InitCounters(result.observed, &result.exceed);

  // Algorithm 3 step 3: B x n multipliers from the seed.
  const stats::MonteCarloWeights weights(pipeline.config().seed, pipeline.n(),
                                         replicates);
  for (std::uint64_t b = 0; b < replicates; ++b) {
    engine::TraceSpan span(engine::Tracer::Global(), "replicate",
                           "monte-carlo b=" + std::to_string(b),
                           {engine::Arg("algorithm", "monte-carlo"),
                            engine::Arg("b", b)});
    const SetScores replicate =
        pipeline.ComputeMonteCarloReplicate(weights.Get(b));
    CountExceedances(result.observed, replicate, &result.exceed);
    if (on_replicate) on_replicate(b);
  }
  return result;
}

}  // namespace ss::core
