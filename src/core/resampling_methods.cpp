#include "core/resampling_methods.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <string>

#include "engine/trace.hpp"
#include "stats/adaptive_pvalue.hpp"
#include "stats/burden.hpp"
#include "stats/kernels/kernels.hpp"
#include "stats/pvalue.hpp"
#include "stats/resampling.hpp"
#include "support/log.hpp"

namespace ss::core {
namespace {

/// counter_k update shared by both algorithms: compare a replicate's
/// scores against the observed ones.
void CountExceedances(const SetScores& observed, const SetScores& replicate,
                      std::unordered_map<std::uint32_t, std::uint64_t>* exceed) {
  for (const auto& [set_id, observed_score] : observed) {
    auto it = replicate.find(set_id);
    const double replicate_score = it == replicate.end() ? 0.0 : it->second;
    if (replicate_score >= observed_score) ++(*exceed)[set_id];
  }
}

void InitCounters(const SetScores& observed,
                  std::unordered_map<std::uint32_t, std::uint64_t>* exceed) {
  for (const auto& [set_id, score] : observed) (*exceed)[set_id] = 0;
}

std::uint64_t EffectiveBatchSize(const SkatPipeline& pipeline,
                                 const ResamplingRequest& request) {
  const std::uint64_t batch = request.batch_size != 0
                                  ? request.batch_size
                                  : pipeline.config().resampling_batch_size;
  return std::max<std::uint64_t>(1, batch);
}

/// Double-buffers Z-block generation on the I/O lane: while batch k's
/// score block computes and folds, batch k+1's n×R multiplier block is
/// generated concurrently. stats::MonteCarloZBlock is a pure function of
/// (seed, n, begin, count) — per-replicate splittable RNG streams — so
/// WHERE it runs cannot change a single bit of it; the lane only moves
/// the generation off the critical path. With the lane ablated
/// (prefetch=0 → context.io() == nullptr) every block is generated
/// inline, byte-for-byte the old schedule.
class ZBlockPrefetcher {
 public:
  ZBlockPrefetcher(engine::AsyncExecutor* io, std::uint64_t seed,
                   std::size_t n, std::uint64_t replicates,
                   std::uint64_t batch_size)
      : io_(io),
        seed_(seed),
        n_(n),
        replicates_(replicates),
        batch_size_(batch_size) {}

  /// The Z-block for [begin, begin+count): the in-flight one when the
  /// lane was generating exactly that range, else generated inline; then
  /// the NEXT batch's generation is queued. The driver-side wait for an
  /// in-flight block shows up as a `prefetch`-category trace span.
  std::vector<double> Take(std::uint64_t begin, std::size_t count) {
    static std::atomic<std::uint64_t>& zblock_prefetches =
        engine::CounterRegistry::Global().Get("exec.zblock_prefetches");
    std::vector<double> zblock;
    if (next_.valid() && next_begin_ == begin && next_count_ == count) {
      engine::TraceSpan span(engine::Tracer::Global(), "prefetch",
                             "zblock wait",
                             {engine::Arg("b_begin", begin),
                              engine::Arg("count", count)});
      zblock = next_.get();
      zblock_prefetches.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (next_.valid()) next_.get();  // stale; discard the bytes
      zblock = stats::MonteCarloZBlock(seed_, n_, begin, count);
    }
    Schedule(begin + count);
    return zblock;
  }

 private:
  void Schedule(std::uint64_t begin) {
    if (io_ == nullptr || begin >= replicates_) return;
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch_size_, replicates_ - begin));
    next_begin_ = begin;
    next_count_ = count;
    next_ = io_->Submit([seed = seed_, n = n_, begin, count]() {
      return stats::MonteCarloZBlock(seed, n, begin, count);
    });
  }

  engine::AsyncExecutor* const io_;
  const std::uint64_t seed_;
  const std::size_t n_;
  const std::uint64_t replicates_;
  const std::uint64_t batch_size_;
  std::future<std::vector<double>> next_;
  std::uint64_t next_begin_ = 0;
  std::size_t next_count_ = 0;
};

/// The shared driver loop: splits 0..B into [begin, end) ranges of at
/// most `batch_size` replicates and hands each to `body`, wrapped in the
/// batch-level telemetry (trace span, counters, accumulated wall time)
/// and the sink's batch boundaries. `body` returns whether scheduling
/// should continue: false stops the loop at the batch boundary (the
/// early-stopping drivers use this once every set's stopper has fired —
/// per-set counters stay replicate-exact, only the SCHEDULED replicate
/// count is batch-granular).
template <typename Body>
void RunBatches(const char* algorithm, std::uint64_t replicates,
                std::uint64_t batch_size, ProgressSink* sink,
                const Body& body) {
  static std::atomic<std::uint64_t>& batches =
      engine::CounterRegistry::Global().Get("resampling.batches");
  static std::atomic<std::uint64_t>& replicate_count =
      engine::CounterRegistry::Global().Get("resampling.replicates");
  static std::atomic<std::uint64_t>& batch_nanos =
      engine::CounterRegistry::Global().Get("resampling.batch_nanos");
  std::uint64_t batch_index = 0;
  for (std::uint64_t begin = 0; begin < replicates;
       begin += batch_size, ++batch_index) {
    const std::uint64_t end = std::min(replicates, begin + batch_size);
    if (sink != nullptr) sink->OnBatchBegin(batch_index, begin, end);
    bool keep_going = true;
    {
      engine::TraceSpan span(
          engine::Tracer::Global(), "batch",
          std::string(algorithm) + " batch " + std::to_string(batch_index),
          {engine::Arg("algorithm", algorithm), engine::Arg("b_begin", begin),
           engine::Arg("b_end", end)});
      engine::ScopedCounterTimer timer(batch_nanos);
      keep_going = body(begin, end);
    }
    batches.fetch_add(1, std::memory_order_relaxed);
    replicate_count.fetch_add(end - begin, std::memory_order_relaxed);
    if (sink != nullptr) sink->OnBatchEnd(batch_index, begin, end);
    if (!keep_going) break;
  }
}

/// Steps 9-12 on the driver: per-set SKAT fold of per-SNP marginal
/// scores, in exactly stats::SkatStatistic's accumulation order (set
/// members in declaration order, `w * w * squared` per SNP) — the serial
/// oracle's order, independent of partitioning, shuffle order, thread
/// count, and batch size.
SetScores FoldObservedScores(
    const std::vector<stats::SnpSet>& sets,
    const std::unordered_map<std::uint32_t, double>& snp_scores,
    const std::unordered_map<std::uint32_t, double>& weights) {
  SetScores out;
  out.reserve(sets.size());
  for (const stats::SnpSet& set : sets) {
    double statistic = 0.0;
    for (std::uint32_t snp : set.snps) {
      auto score_it = snp_scores.find(snp);
      if (score_it == snp_scores.end()) continue;  // SNP filtered out
      auto weight_it = weights.find(snp);
      const double w = weight_it == weights.end() ? 1.0 : weight_it->second;
      const double squared = score_it->second * score_it->second;
      statistic += w * w * squared;
    }
    out[set.id] = statistic;
  }
  return out;
}

/// The batched form of FoldObservedScores: folds all `count` replicates
/// of a score block in one sweep over the sets. Each replicate's
/// accumulator follows the same canonical order, so element r is bitwise
/// equal to folding replicate r alone.
std::vector<SetScores> FoldReplicateScores(
    const std::vector<stats::SnpSet>& sets,
    const std::unordered_map<std::uint32_t, std::vector<double>>& block,
    const std::unordered_map<std::uint32_t, double>& weights,
    std::size_t count) {
  std::vector<SetScores> out(count);
  std::vector<double> acc(count);
  for (const stats::SnpSet& set : sets) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::uint32_t snp : set.snps) {
      auto score_it = block.find(snp);
      if (score_it == block.end()) continue;  // SNP filtered out
      auto weight_it = weights.find(snp);
      const double w = weight_it == weights.end() ? 1.0 : weight_it->second;
      const std::vector<double>& scores = score_it->second;
      // Routed kernel; w*w precomputed here evaluates exactly like the
      // original `w * w * squared` left-to-right expression.
      stats::kernels::ActiveKernels().skat_fold(scores.data(), count, w * w,
                                                acc.data());
    }
    for (std::size_t r = 0; r < count; ++r) out[r][set.id] = acc[r];
  }
  return out;
}

/// Per-set (SKAT, burden) pairs for all replicates of a score block, in
/// the same canonical order; burden = (Σ_j ω_j Ũ_jb)² on the driver.
std::vector<std::unordered_map<std::uint32_t, std::pair<double, double>>>
FoldSkatBurdenScores(
    const std::vector<stats::SnpSet>& sets,
    const std::unordered_map<std::uint32_t, std::vector<double>>& block,
    const std::unordered_map<std::uint32_t, double>& weights,
    std::size_t count) {
  std::vector<std::unordered_map<std::uint32_t, std::pair<double, double>>>
      out(count);
  std::vector<double> skat(count);
  std::vector<double> burden_sum(count);
  for (const stats::SnpSet& set : sets) {
    std::fill(skat.begin(), skat.end(), 0.0);
    std::fill(burden_sum.begin(), burden_sum.end(), 0.0);
    for (std::uint32_t snp : set.snps) {
      auto score_it = block.find(snp);
      if (score_it == block.end()) continue;  // SNP filtered out
      auto weight_it = weights.find(snp);
      const double w = weight_it == weights.end() ? 1.0 : weight_it->second;
      const std::vector<double>& scores = score_it->second;
      stats::kernels::ActiveKernels().skat_burden_fold(
          scores.data(), count, w, w * w, skat.data(), burden_sum.data());
    }
    for (std::size_t r = 0; r < count; ++r) {
      out[r][set.id] = {skat[r], burden_sum[r] * burden_sum[r]};
    }
  }
  return out;
}

/// FNV-1a over (B, sorted set ids, observed bit patterns, counters).
/// Folded into the order-independent `resampling.result_hash` counter so
/// two processes can assert bitwise-identical results by comparing their
/// run-metrics JSON (the bench_smoke batch-invariance gate).
std::uint64_t HashResamplingResult(const ResamplingResult& result) {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 1099511628211ULL;
    }
  };
  mix(result.replicates);
  std::vector<std::uint32_t> ids;
  ids.reserve(result.observed.size());
  for (const auto& [set_id, score] : result.observed) ids.push_back(set_id);
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t set_id : ids) {
    const double observed = result.observed.at(set_id);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &observed, sizeof(bits));
    mix(set_id);
    mix(bits);
    auto it = result.exceed.find(set_id);
    mix(it == result.exceed.end() ? 0 : it->second);
  }
  // Adaptive fields are mixed ONLY when present, so the hash of a legacy
  // pure-resampling run is byte-identical to the pre-adaptive engine (the
  // bench_smoke / kernel-matrix cross-process gates compare it).
  if (!result.inference.empty()) {
    mix(result.early_stop_h);
    for (std::uint32_t set_id : ids) {
      auto it = result.inference.find(set_id);
      if (it == result.inference.end()) continue;
      const SetInference& info = it->second;
      std::uint64_t pbits = 0;
      std::memcpy(&pbits, &info.analytic_p, sizeof(pbits));
      mix(set_id);
      mix(pbits);
      mix(info.replicates_used);
      mix(static_cast<std::uint64_t>(info.early_stopped ? 1 : 0) |
          static_cast<std::uint64_t>(info.refined ? 2 : 0));
    }
  }
  return hash;
}

void RecordResultHash(const ResamplingResult& result) {
  engine::CounterRegistry::Global().Add("resampling.result_hash",
                                        HashResamplingResult(result));
}

/// An adaptive run takes the screen/stopper path; anything else keeps the
/// legacy body bit-for-bit (including its result hash).
bool IsAdaptive(const ResamplingRequest& request) {
  return request.pvalue_method != PValueMethod::kResampling ||
         request.early_stop != 0;
}

/// Analytic screen: per-set null spectrum from the weighted Gram, then
/// the Liu (kAnalytic) or saddlepoint (kSaddlepoint/kHybrid — tail
/// accuracy is what the hybrid screen is for) tail at the observed
/// statistic. Populates result->inference with refined=false entries.
void AnalyticScreen(SkatPipeline& pipeline, PValueMethod method,
                    ResamplingResult* result) {
  static std::atomic<std::uint64_t>& screens =
      engine::CounterRegistry::Global().Get("pvalue.analytic_screens");
  engine::TraceSpan span(engine::Tracer::Global(), "algo", "analytic screen");
  const auto grams = pipeline.CollectSetGramMatrices();
  for (const auto& [set_id, observed] : result->observed) {
    std::vector<double> lambda;
    auto it = grams.find(set_id);
    if (it != grams.end()) lambda = stats::NullSpectrumFromGram(it->second);
    SetInference info;
    info.analytic_p = method == PValueMethod::kAnalytic
                          ? stats::LiuPValue(lambda, observed)
                          : stats::SaddlepointPValue(lambda, observed);
    result->inference[set_id] = info;
    screens.fetch_add(1, std::memory_order_relaxed);
  }
}

/// One Besag–Clifford stopper per set that will consume replicates:
/// every set for pure resampling with early stopping, none for the pure
/// analytic methods, and the screened-in (p < refine_threshold) sets for
/// hybrid. Marks those sets refined in result->inference.
std::unordered_map<std::uint32_t, stats::SequentialStopper> MakeStoppers(
    const ResamplingRequest& request, ResamplingResult* result) {
  static std::atomic<std::uint64_t>& refined_sets =
      engine::CounterRegistry::Global().Get("pvalue.refined_sets");
  std::unordered_map<std::uint32_t, stats::SequentialStopper> stoppers;
  for (const auto& [set_id, observed] : result->observed) {
    bool refine = false;
    switch (request.pvalue_method) {
      case PValueMethod::kResampling:
        refine = true;
        break;
      case PValueMethod::kAnalytic:
      case PValueMethod::kSaddlepoint:
        refine = false;
        break;
      case PValueMethod::kHybrid:
        refine = result->inference.at(set_id).analytic_p <
                 request.refine_threshold;
        break;
    }
    if (!refine) continue;
    stoppers.emplace(set_id, stats::SequentialStopper(request.early_stop));
    result->inference[set_id].refined = true;  // creates the entry for
                                               // kResampling + early stop
  }
  refined_sets.fetch_add(stoppers.size(), std::memory_order_relaxed);
  return stoppers;
}

/// Offers replicate r's scores to every live stopper. Returns true while
/// at least one set is still consuming replicates.
bool OfferReplicate(
    const SetScores& observed, const SetScores& replicate,
    std::unordered_map<std::uint32_t, stats::SequentialStopper>* stoppers) {
  bool any_active = false;
  for (auto& [set_id, stopper] : *stoppers) {
    auto it = replicate.find(set_id);
    const double replicate_score = it == replicate.end() ? 0.0 : it->second;
    stopper.Offer(replicate_score >= observed.at(set_id));
    if (!stopper.stopped()) any_active = true;
  }
  return any_active;
}

/// Moves the stopper tallies into the result and accounts the savings.
/// pvalue.replicates_saved = Σ_sets (B − replicates_used) — a pure
/// function of the per-set replicate-exact counts, so it is invariant to
/// batch size / threads / prefetch even though the SCHEDULED replicate
/// count is batch-granular.
void FinalizeAdaptive(
    const ResamplingRequest& request,
    const std::unordered_map<std::uint32_t, stats::SequentialStopper>&
        stoppers,
    ResamplingResult* result) {
  static std::atomic<std::uint64_t>& early_stops =
      engine::CounterRegistry::Global().Get("pvalue.early_stops");
  static std::atomic<std::uint64_t>& replicates_saved =
      engine::CounterRegistry::Global().Get("pvalue.replicates_saved");
  for (auto& [set_id, info] : result->inference) {
    auto it = stoppers.find(set_id);
    if (it == stoppers.end()) {
      // Screened out: the analytic tail stands in for all B replicates.
      replicates_saved.fetch_add(request.replicates,
                                 std::memory_order_relaxed);
      continue;
    }
    const stats::SequentialStopper& stopper = it->second;
    result->exceed[set_id] = stopper.exceed();
    info.replicates_used = stopper.used();
    info.early_stopped = stopper.stopped();
    if (stopper.stopped()) {
      early_stops.fetch_add(1, std::memory_order_relaxed);
    }
    replicates_saved.fetch_add(request.replicates - stopper.used(),
                               std::memory_order_relaxed);
  }
}

/// Algorithm 3, batched: one engine pass per batch over the cached U RDD,
/// canonical driver-side folds. The observed statistics are folded in the
/// same canonical order, so the whole ResamplingResult — not only the
/// counters — is bitwise equal to baseline::SerialMonteCarlo's analysis
/// from the same seed, for every batch size and thread count.
ResamplingResult RunBatchedMonteCarlo(SkatPipeline& pipeline,
                                      const ResamplingRequest& request) {
  ResamplingResult result;
  result.replicates = request.replicates;
  const std::unordered_map<std::uint32_t, double> observed_scores = [&] {
    engine::TraceSpan span(engine::Tracer::Global(), "algo", "observed skat");
    return pipeline.CollectObservedScores();
  }();
  const std::unordered_map<std::uint32_t, double>& weights =
      pipeline.DriverWeights();
  result.observed =
      FoldObservedScores(pipeline.sets(), observed_scores, weights);
  InitCounters(result.observed, &result.exceed);

  const std::uint64_t seed = request.seed.value_or(pipeline.config().seed);
  const std::uint64_t batch_size = EffectiveBatchSize(pipeline, request);

  if (IsAdaptive(request)) {
    result.early_stop_h = request.early_stop;
    if (request.pvalue_method != PValueMethod::kResampling) {
      AnalyticScreen(pipeline, request.pvalue_method, &result);
    }
    auto stoppers = MakeStoppers(request, &result);
    if (!stoppers.empty() && request.replicates > 0) {
      ZBlockPrefetcher zblocks(pipeline.context().io(), seed, pipeline.n(),
                               request.replicates, batch_size);
      RunBatches(
          "monte-carlo", request.replicates, batch_size, request.sink,
          [&](std::uint64_t begin, std::uint64_t end) {
            const std::size_t count = end - begin;
            const std::vector<double> zblock = zblocks.Take(begin, count);
            const auto block =
                pipeline.ComputeMonteCarloScoreBlock(zblock, count);
            const std::vector<SetScores> replicate_scores =
                FoldReplicateScores(pipeline.sets(), block, weights, count);
            bool any_active = false;
            for (std::size_t r = 0; r < count; ++r) {
              any_active = OfferReplicate(result.observed, replicate_scores[r],
                                          &stoppers);
              if (request.sink != nullptr) {
                request.sink->OnReplicateScores(begin + r, replicate_scores[r]);
                request.sink->OnReplicate(begin + r);
              }
            }
            return any_active;
          });
    }
    FinalizeAdaptive(request, stoppers, &result);
    RecordResultHash(result);
    return result;
  }

  ZBlockPrefetcher zblocks(pipeline.context().io(), seed, pipeline.n(),
                           request.replicates, batch_size);
  RunBatches(
      "monte-carlo", request.replicates, batch_size,
      request.sink, [&](std::uint64_t begin, std::uint64_t end) {
        const std::size_t count = end - begin;
        // Algorithm 3 step 3, per batch: (end-begin) × n multipliers from
        // the per-replicate streams (bitwise invariant to batching);
        // double-buffered on the I/O lane when prefetch is enabled.
        const std::vector<double> zblock = zblocks.Take(begin, count);
        const auto block = pipeline.ComputeMonteCarloScoreBlock(zblock, count);
        const std::vector<SetScores> replicate_scores =
            FoldReplicateScores(pipeline.sets(), block, weights, count);
        for (std::size_t r = 0; r < count; ++r) {
          CountExceedances(result.observed, replicate_scores[r],
                           &result.exceed);
          if (request.sink != nullptr) {
            request.sink->OnReplicateScores(begin + r, replicate_scores[r]);
            request.sink->OnReplicate(begin + r);
          }
        }
        return true;
      });
  RecordResultHash(result);
  return result;
}

/// Algorithm 2: every replicate re-executes the full pipeline, so a batch
/// is a scheduling/telemetry unit rather than a fused engine pass. The
/// observed statistics keep the engine's fold (replicates flow through
/// the same path, keeping the exceedance comparisons aligned).
ResamplingResult RunBatchedPermutation(SkatPipeline& pipeline,
                                       const ResamplingRequest& request) {
  ResamplingResult result;
  result.observed = pipeline.ComputeObserved();
  result.replicates = request.replicates;
  InitCounters(result.observed, &result.exceed);

  const std::uint64_t seed = request.seed.value_or(pipeline.config().seed);
  // Algorithm 2 step 2: all B shufflings are derived from the seed up
  // front, so replicate b is reproducible in isolation.
  const stats::PermutationPlan plan(seed, pipeline.n(), request.replicates);

  if (IsAdaptive(request)) {
    result.early_stop_h = request.early_stop;
    if (request.pvalue_method != PValueMethod::kResampling) {
      // For permutation the Σ λ χ²₁ tail is the standard asymptotic
      // approximation, not exact as under the Monte Carlo null.
      AnalyticScreen(pipeline, request.pvalue_method, &result);
    }
    auto stoppers = MakeStoppers(request, &result);
    if (!stoppers.empty() && request.replicates > 0) {
      RunBatches(
          "permutation", request.replicates,
          EffectiveBatchSize(pipeline, request), request.sink,
          [&](std::uint64_t begin, std::uint64_t end) {
            bool any_active = false;
            for (std::uint64_t b = begin; b < end; ++b) {
              engine::TraceSpan span(engine::Tracer::Global(), "replicate",
                                     "permutation b=" + std::to_string(b),
                                     {engine::Arg("algorithm", "permutation"),
                                      engine::Arg("b", b)});
              const SetScores replicate =
                  pipeline.ComputePermutationReplicate(plan.Get(b));
              any_active =
                  OfferReplicate(result.observed, replicate, &stoppers);
              if (request.sink != nullptr) {
                request.sink->OnReplicateScores(b, replicate);
                request.sink->OnReplicate(b);
              }
              // Full-pipeline replicates are expensive; unlike the batched
              // Monte Carlo block (already computed), stop mid-batch.
              if (!any_active) break;
            }
            return any_active;
          });
    }
    FinalizeAdaptive(request, stoppers, &result);
    RecordResultHash(result);
    return result;
  }

  RunBatches(
      "permutation", request.replicates, EffectiveBatchSize(pipeline, request),
      request.sink, [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t b = begin; b < end; ++b) {
          engine::TraceSpan span(engine::Tracer::Global(), "replicate",
                                 "permutation b=" + std::to_string(b),
                                 {engine::Arg("algorithm", "permutation"),
                                  engine::Arg("b", b)});
          const SetScores replicate =
              pipeline.ComputePermutationReplicate(plan.Get(b));
          CountExceedances(result.observed, replicate, &result.exceed);
          if (request.sink != nullptr) {
            request.sink->OnReplicateScores(b, replicate);
            request.sink->OnReplicate(b);
          }
        }
        return true;
      });
  RecordResultHash(result);
  return result;
}

/// SKAT-O over the batched Monte Carlo replicate pool: each batch reuses
/// the same score block as the plain Monte Carlo method and folds per-set
/// (SKAT, burden) pairs canonically on the driver.
SkatOResult RunBatchedSkatO(SkatPipeline& pipeline,
                            const ResamplingRequest& request) {
  const std::vector<double> rho_grid = stats::SkatORhoGrid();

  // Observed (SKAT, burden) pair and grid per set.
  const auto observed = pipeline.ComputeObservedSkatBurden();
  std::unordered_map<std::uint32_t, std::vector<double>> observed_grids;
  SkatOResult result;
  result.replicates = request.replicates;
  for (const auto& [set_id, pair] : observed) {
    SkatOResult::PerSet per_set;
    per_set.skat = pair.first;
    per_set.burden = pair.second;
    result.by_set[set_id] = per_set;
    observed_grids[set_id] =
        stats::SkatOGridStatistics(pair.second, pair.first, rho_grid);
  }

  const std::unordered_map<std::uint32_t, double>& weights =
      pipeline.DriverWeights();
  const std::uint64_t seed = request.seed.value_or(pipeline.config().seed);
  std::unordered_map<std::uint32_t, std::vector<std::vector<double>>>
      replicate_grids;
  const std::uint64_t batch_size = EffectiveBatchSize(pipeline, request);
  ZBlockPrefetcher zblocks(pipeline.context().io(), seed, pipeline.n(),
                           request.replicates, batch_size);
  RunBatches(
      "skat-o", request.replicates, batch_size,
      request.sink, [&](std::uint64_t begin, std::uint64_t end) {
        const std::size_t count = end - begin;
        const std::vector<double> zblock = zblocks.Take(begin, count);
        const auto block = pipeline.ComputeMonteCarloScoreBlock(zblock, count);
        const auto pairs =
            FoldSkatBurdenScores(pipeline.sets(), block, weights, count);
        for (std::size_t r = 0; r < count; ++r) {
          for (const auto& [set_id, pair] : pairs[r]) {
            replicate_grids[set_id].push_back(
                stats::SkatOGridStatistics(pair.second, pair.first, rho_grid));
          }
          if (request.sink != nullptr) request.sink->OnReplicate(begin + r);
        }
        return true;
      });

  // Min-p combination per set.
  for (auto& [set_id, per_set] : result.by_set) {
    auto grids_it = replicate_grids.find(set_id);
    if (grids_it == replicate_grids.end()) continue;
    per_set.pvalue =
        stats::SkatOPValue(observed_grids.at(set_id), grids_it->second);
  }
  return result;
}

}  // namespace

Result<PValueMethod> ParsePValueMethod(const std::string& token) {
  if (token == "resampling") return PValueMethod::kResampling;
  if (token == "analytic") return PValueMethod::kAnalytic;
  if (token == "saddlepoint") return PValueMethod::kSaddlepoint;
  if (token == "hybrid") return PValueMethod::kHybrid;
  return Status::InvalidArgument(
      "pmethod must be resampling|analytic|saddlepoint|hybrid, got '" + token +
      "'");
}

double ResamplingResult::PValue(std::uint32_t set_id) const {
  auto info_it = inference.find(set_id);
  if (info_it != inference.end()) {
    const SetInference& info = info_it->second;
    if (!info.refined) return info.analytic_p;
    auto it = exceed.find(set_id);
    const std::uint64_t count =
        it == exceed.end() ? info.replicates_used : it->second;
    return stats::PValueFromCounts(count, info.replicates_used,
                                   info.early_stopped);
  }
  auto it = exceed.find(set_id);
  const std::uint64_t count = it == exceed.end() ? replicates : it->second;
  return stats::EmpiricalPValue(count, replicates);
}

std::vector<std::pair<std::uint32_t, double>> ResamplingResult::RankedPValues()
    const {
  std::vector<std::pair<std::uint32_t, double>> ranked;
  ranked.reserve(observed.size());
  for (const auto& [set_id, score] : observed) {
    ranked.push_back({set_id, PValue(set_id)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.second < b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  return ranked;
}

std::vector<std::pair<std::uint32_t, double>> SkatOResult::RankedPValues()
    const {
  std::vector<std::pair<std::uint32_t, double>> ranked;
  ranked.reserve(by_set.size());
  for (const auto& [set_id, per_set] : by_set) {
    ranked.push_back({set_id, per_set.pvalue});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second < b.second || (a.second == b.second && a.first < b.first);
  });
  return ranked;
}

ResamplingRun RunResampling(SkatPipeline& pipeline,
                            const ResamplingRequest& request) {
  if (request.exec.has_value()) {
    pipeline.context().ApplyExecConfig(*request.exec);
  }
  ResamplingRun run;
  run.method = request.method;
  switch (request.method) {
    case ResamplingMethod::kPermutation:
      run.scores = RunBatchedPermutation(pipeline, request);
      break;
    case ResamplingMethod::kMonteCarlo:
      run.scores = RunBatchedMonteCarlo(pipeline, request);
      break;
    case ResamplingMethod::kSkatO:
      if (IsAdaptive(request)) {
        SS_LOG(kWarn, "sparkscore")
            << "adaptive p-value options (pmethod/early_stop) are ignored "
               "for SKAT-O: its min-p combination needs the full replicate "
               "pool";
      }
      run.skato = RunBatchedSkatO(pipeline, request);
      break;
  }
  return run;
}

}  // namespace ss::core
