// Lineage source over a memory-mapped genotype store.
//
// A StoreGenotypeNode is a parentless Node<stats::PackedSnpRecord> whose
// partitions come straight from an opened dfs::GenotypeStore: compute =
// read the partition's checksummed frame from the mmap, decode the
// packed records, filter by SNP-set membership. It replaces the whole
// textFile -> parse -> filter -> pack prefix of Algorithm 1 for cohorts
// that were staged once with simdata::GenerateToStore.
//
// The store IS the spill tier for this dataset: cached partitions are
// admitted without a spill codec (DisableCacheSpill), so eviction under
// `cache_budget=` is a plain drop and a later miss re-reads the frame —
// never a redundant second on-disk copy. The node also registers a
// cache fetcher so the async executor's prefetch lane streams frames
// `prefetch=` ahead of the compute wave directly off the mmap.
#pragma once

#include <memory>
#include <vector>

#include "dfs/genotype_store.hpp"
#include "engine/node.hpp"
#include "stats/kernels/packed_genotype.hpp"
#include "support/status.hpp"

namespace ss::core {

class StoreGenotypeNode final : public engine::Node<stats::PackedSnpRecord> {
 public:
  /// `membership[snp] != 0` keeps the SNP (step 4's filter); SNPs at or
  /// past `membership.size()` are dropped. Registers a prefetch fetcher
  /// for this node with the context's cache.
  StoreGenotypeNode(
      engine::EngineContext* ctx, std::shared_ptr<dfs::GenotypeStore> store,
      std::shared_ptr<const std::vector<std::uint8_t>> membership);

  /// Blocks until no prefetch fetch of this node is in flight.
  ~StoreGenotypeNode() override;

  std::vector<stats::PackedSnpRecord> ComputePartition(
      std::uint32_t index, engine::TaskContext& task) override;

  const dfs::GenotypeStore& store() const { return *store_; }

 private:
  /// Frame read + decode + membership filter (shared by the task path
  /// and the prefetch fetcher).
  Result<std::vector<stats::PackedSnpRecord>> Materialize(
      std::uint32_t index) const;

  std::shared_ptr<dfs::GenotypeStore> store_;
  std::shared_ptr<const std::vector<std::uint8_t>> membership_;
};

}  // namespace ss::core
