// Auto-tuning support (paper Experiment C / Fig 6-7 / Tables VI-VIII).
//
// The tuner replays a recorded job profile across candidate topologies via
// the VirtualScheduler and reports the predicted makespans — the
// "investigate Spark parameter options for tuning" direction the paper's
// conclusion names. Candidate generators mirror the paper's two sweeps:
// strong scaling over node counts, and container-shape sweeps at a fixed
// node count (validated against the YARN-like ResourceManager so only
// placeable configurations are considered).
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "cluster/virtual_scheduler.hpp"
#include "engine/context.hpp"
#include "support/status.hpp"

namespace ss::core {

/// One candidate configuration and its predicted runtime.
struct TuningPoint {
  std::string name;
  cluster::ClusterTopology topology;
  cluster::MakespanReport report;
};

/// Table VI: EMR clusters of the given node counts (1 executor/node,
/// 8 cores each — the strong-scaling sweep).
std::vector<cluster::ClusterTopology> StrongScalingCandidates(
    const std::vector<int>& node_counts);

/// Table VIII: the three container shapes on 36 nodes — 42x(10 GiB, 6
/// cores), 84x(5 GiB, 3 cores), 126x(3 GiB, 2 cores). (The paper's table
/// lists memory only for the first row; the others are chosen to fill the
/// same 36-node memory budget, which is the YARN constraint that matters.)
std::vector<cluster::ClusterTopology> ContainerSweepCandidates();

/// True if `topology`'s executors can actually be granted on its nodes by
/// a YARN-like RM using the memory-only calculator.
bool IsPlaceable(const cluster::ClusterTopology& topology);

/// Replays the context's recorded metrics across candidates; results are
/// sorted by predicted makespan (fastest first). Unplaceable candidates
/// are skipped.
std::vector<TuningPoint> TuneAcross(
    const engine::EngineContext& ctx,
    const std::vector<cluster::ClusterTopology>& candidates);

/// Convenience: fastest candidate, or InvalidArgument if none placeable.
Result<TuningPoint> PickBest(const engine::EngineContext& ctx,
                             const std::vector<cluster::ClusterTopology>& candidates);

}  // namespace ss::core
