#include "core/variant_scan.hpp"

#include <algorithm>

#include "core/record_traits.hpp"  // IWYU pragma: keep (ApproxBytesImpl specializations)
#include "engine/broadcast.hpp"
#include "stats/distributions_math.hpp"
#include "stats/pvalue.hpp"
#include "stats/resampling.hpp"

namespace ss::core {

double VariantScanResult::EmpiricalP(std::uint32_t snp) const {
  auto it = exceed.find(snp);
  const std::uint64_t count = it == exceed.end() ? replicates : it->second;
  return stats::EmpiricalPValue(count, replicates);
}

double VariantScanResult::MaxTAdjustedP(std::uint32_t snp) const {
  auto it = by_snp.find(snp);
  if (it == by_snp.end() || replicate_max.empty()) return 1.0;
  std::size_t count = 0;
  for (double max_stat : replicate_max) {
    if (max_stat >= it->second.statistic) ++count;
  }
  return static_cast<double>(count + 1) /
         static_cast<double>(replicate_max.size() + 1);
}

std::vector<std::uint32_t> VariantScanResult::RankedByAsymptoticP() const {
  std::vector<std::uint32_t> snps;
  snps.reserve(by_snp.size());
  for (const auto& [snp, stats_j] : by_snp) snps.push_back(snp);
  std::sort(snps.begin(), snps.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double pa = by_snp.at(a).asymptotic_p;
    const double pb = by_snp.at(b).asymptotic_p;
    return pa < pb || (pa == pb && a < b);
  });
  return snps;
}

VariantScanResult RunVariantScan(
    engine::EngineContext& ctx,
    const engine::Dataset<simdata::SnpRecord>& genotypes,
    const stats::Phenotype& phenotype, const VariantScanConfig& config) {
  using Contribution = std::pair<std::uint32_t, std::vector<double>>;

  // Steps 5-7 of Algorithm 1: broadcast the phenotype (as a ScoreEngine)
  // and build the cached contributions RDD.
  auto engine_bcast = engine::MakeBroadcast(
      ctx, stats::ScoreEngine(phenotype, config.paper_faithful_scores));
  auto u = genotypes.Map([engine_bcast](const simdata::SnpRecord& record) {
    return Contribution(record.snp, engine_bcast->Contributions(record.genotypes));
  });
  u.Cache();

  // Observed per-SNP statistics.
  VariantScanResult result;
  result.replicates = config.replicates;
  auto observed = u.Map([](const Contribution& record) {
    double score = 0.0;
    double variance = 0.0;
    for (double contribution : record.second) {
      score += contribution;
      variance += contribution * contribution;
    }
    return std::pair<std::uint32_t, std::pair<double, double>>(
        record.first, {score, variance});
  });
  for (const auto& [snp, sv] : observed.Collect("variant-observed")) {
    VariantStats stats_j;
    stats_j.score = sv.first;
    stats_j.variance = sv.second;
    stats_j.statistic =
        sv.second > 0.0 ? sv.first * sv.first / sv.second : 0.0;
    stats_j.asymptotic_p = stats::ScoreTestPValue(sv.first, sv.second);
    result.by_snp[snp] = stats_j;
    result.exceed[snp] = 0;
  }

  // Monte Carlo replicates over the cached U RDD: per replicate, the
  // standardized statistic T̃_j = (Σ Z_i U_ij)²/V_j per SNP, plus the
  // per-partition max for the Westfall-Young family-wise adjustment.
  const stats::MonteCarloWeights weights(config.seed, phenotype.n(),
                                         config.replicates);
  result.replicate_max.reserve(config.replicates);
  for (std::uint64_t b = 0; b < config.replicates; ++b) {
    auto z = engine::MakeBroadcast(ctx, weights.Get(b));
    auto replicate_stats = u.Map([z](const Contribution& record) {
      double resampled = 0.0;
      double variance = 0.0;
      const std::vector<double>& multiplier = *z;
      for (std::size_t i = 0; i < record.second.size(); ++i) {
        resampled += multiplier[i] * record.second[i];
        variance += record.second[i] * record.second[i];
      }
      const double statistic =
          variance > 0.0 ? resampled * resampled / variance : 0.0;
      return std::pair<std::uint32_t, double>(record.first, statistic);
    });
    double replicate_max = 0.0;
    for (const auto& [snp, statistic] :
         replicate_stats.Collect("variant-replicate")) {
      auto it = result.by_snp.find(snp);
      if (it != result.by_snp.end() && statistic >= it->second.statistic) {
        ++result.exceed[snp];
      }
      replicate_max = std::max(replicate_max, statistic);
    }
    result.replicate_max.push_back(replicate_max);
  }
  return result;
}

}  // namespace ss::core
