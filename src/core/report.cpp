#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/string_util.hpp"
#include "support/table.hpp"

namespace ss::core {

std::string FormatTopHits(const ResamplingResult& result, std::size_t top_k) {
  Table table("Top SNP-sets by empirical p-value",
              {"rank", "set", "S_k (observed)", "exceed/B", "p-value"});
  const auto ranked = result.RankedPValues();
  const std::size_t rows = std::min(top_k, ranked.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto [set_id, pvalue] = ranked[r];
    const std::uint64_t count =
        result.exceed.count(set_id) ? result.exceed.at(set_id) : 0;
    table.AddRow({std::to_string(r + 1), std::to_string(set_id),
                  Table::Num(result.observed.at(set_id), 4),
                  std::to_string(count) + "/" + std::to_string(result.replicates),
                  Table::Num(pvalue, 5)});
  }
  return table.ToString();
}

Status WriteResultToDfs(const ResamplingResult& result, dfs::MiniDfs& dfs,
                        const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(result.observed.size() + 1);
  lines.push_back("# set observed exceed replicates pvalue");
  for (const auto& [set_id, pvalue] : result.RankedPValues()) {
    const std::uint64_t count =
        result.exceed.count(set_id) ? result.exceed.at(set_id) : 0;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%u %.17g %llu %llu %.17g", set_id,
                  result.observed.at(set_id),
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(result.replicates), pvalue);
    lines.emplace_back(buf);
  }
  return dfs.WriteTextFile(path, lines);
}

Result<ResamplingResult> ReadResultFromDfs(const dfs::MiniDfs& dfs,
                                           const std::string& path) {
  Result<std::vector<std::string>> lines = dfs.ReadTextFile(path);
  if (!lines.ok()) return lines.status();
  ResamplingResult result;
  for (const std::string& line : lines.value()) {
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> tokens;
    for (std::string& part : Split(line, ' ')) {
      if (!part.empty()) tokens.push_back(std::move(part));
    }
    if (tokens.size() != 5) {
      return Status::InvalidArgument("bad result line: " + line);
    }
    std::uint32_t set_id = 0;
    double observed = 0.0;
    std::int64_t exceed = 0;
    std::int64_t replicates = 0;
    if (!ParseU32(tokens[0], &set_id) || !ParseDouble(tokens[1], &observed) ||
        !ParseI64(tokens[2], &exceed) || !ParseI64(tokens[3], &replicates) ||
        exceed < 0 || replicates < 0) {
      return Status::InvalidArgument("bad result line: " + line);
    }
    result.observed[set_id] = observed;
    result.exceed[set_id] = static_cast<std::uint64_t>(exceed);
    result.replicates = static_cast<std::uint64_t>(replicates);
  }
  return result;
}

std::string SummarizeResult(const ResamplingResult& result) {
  double min_p = 1.0;
  std::uint32_t best_set = 0;
  for (const auto& [set_id, score] : result.observed) {
    const double p = result.PValue(set_id);
    if (p < min_p) {
      min_p = p;
      best_set = set_id;
    }
  }
  std::ostringstream out;
  out << result.observed.size() << " SNP-sets, B=" << result.replicates
      << " replicates; best set " << best_set << " (p=" << min_p << ")";
  return out.str();
}

}  // namespace ss::core
