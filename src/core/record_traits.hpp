// ApproxBytes specializations for the record types SparkScore moves
// through the engine (cache accounting and shuffle/broadcast metering).
// Must be included before any Dataset<...> of these types is instantiated;
// pipeline.hpp does so.
#pragma once

#include <unordered_map>

#include "engine/approx_bytes.hpp"
#include "engine/codec.hpp"
#include "simdata/text_format.hpp"
#include "stats/kernels/packed_genotype.hpp"
#include "stats/score_engine.hpp"

namespace ss::engine::internal {

template <>
struct ApproxBytesImpl<ss::simdata::SnpRecord> {
  static std::size_t Of(const ss::simdata::SnpRecord& record) {
    // capacity(), not size(): the cache budget must account for the
    // bytes the vector actually owns — parsers and push_back growth
    // commonly over-allocate, and those slack bytes are resident.
    return sizeof(record.snp) + sizeof(record.genotypes) +
           record.genotypes.capacity() * sizeof(std::uint8_t);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::PackedGenotypeBlock> {
  static std::size_t Of(const ss::stats::PackedGenotypeBlock& block) {
    return sizeof(block) + block.payload().capacity() * sizeof(std::uint8_t);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::PackedSnpRecord> {
  static std::size_t Of(const ss::stats::PackedSnpRecord& record) {
    return sizeof(record.snp) + ApproxBytesOf(record.genotypes);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::Phenotype> {
  static std::size_t Of(const ss::stats::Phenotype& phenotype) {
    // Each patient carries one double plus one byte in whichever arm of
    // the union is active.
    return phenotype.n() * (sizeof(double) + 1) + sizeof(phenotype);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::ScoreEngine> {
  static std::size_t Of(const ss::stats::ScoreEngine& engine) {
    // Phenotype plus the Cox risk-set index (two u32 per patient).
    return ApproxBytesOf(engine.phenotype()) +
           engine.n() * 2 * sizeof(std::uint32_t);
  }
};

}  // namespace ss::engine::internal

namespace ss::engine {

/// Checkpoint serialization for genotype records.
template <>
struct Codec<ss::simdata::SnpRecord> {
  static void Encode(BinaryWriter& writer,
                     const ss::simdata::SnpRecord& record) {
    writer.WriteU32(record.snp);
    writer.WritePodVector(record.genotypes);
  }
  static ss::simdata::SnpRecord Decode(BinaryReader& reader) {
    ss::simdata::SnpRecord record;
    record.snp = reader.ReadU32();
    record.genotypes = reader.ReadPodVector<std::uint8_t>();
    return record;
  }
};

/// Spill/checkpoint serialization for 2-bit packed genotype records.
template <>
struct Codec<ss::stats::PackedSnpRecord> {
  static void Encode(BinaryWriter& writer,
                     const ss::stats::PackedSnpRecord& record) {
    writer.WriteU32(record.snp);
    writer.WriteU8(record.genotypes.packed() ? 1 : 0);
    writer.WriteU32(static_cast<std::uint32_t>(record.genotypes.size()));
    writer.WritePodVector(record.genotypes.payload());
  }
  static ss::stats::PackedSnpRecord Decode(BinaryReader& reader) {
    ss::stats::PackedSnpRecord record;
    record.snp = reader.ReadU32();
    const bool packed = reader.ReadU8() != 0;
    const std::uint32_t size = reader.ReadU32();
    record.genotypes = ss::stats::PackedGenotypeBlock::FromPayload(
        size, packed, reader.ReadPodVector<std::uint8_t>());
    return record;
  }
};

// Genotype partitions (both representations) may cross the cache's
// spill tier: the Codecs above round-trip them exactly.
template <>
inline constexpr bool kSpillable<ss::simdata::SnpRecord> = true;

template <>
inline constexpr bool kSpillable<ss::stats::PackedSnpRecord> = true;

}  // namespace ss::engine
