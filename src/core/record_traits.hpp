// ApproxBytes specializations for the record types SparkScore moves
// through the engine (cache accounting and shuffle/broadcast metering).
// Must be included before any Dataset<...> of these types is instantiated;
// pipeline.hpp does so.
#pragma once

#include <unordered_map>

#include "engine/approx_bytes.hpp"
#include "engine/codec.hpp"
#include "simdata/text_format.hpp"
#include "stats/score_engine.hpp"

namespace ss::engine::internal {

template <>
struct ApproxBytesImpl<ss::simdata::SnpRecord> {
  static std::size_t Of(const ss::simdata::SnpRecord& record) {
    return sizeof(record.snp) + ApproxBytesOf(record.genotypes);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::Phenotype> {
  static std::size_t Of(const ss::stats::Phenotype& phenotype) {
    // Each patient carries one double plus one byte in whichever arm of
    // the union is active.
    return phenotype.n() * (sizeof(double) + 1) + sizeof(phenotype);
  }
};

template <>
struct ApproxBytesImpl<ss::stats::ScoreEngine> {
  static std::size_t Of(const ss::stats::ScoreEngine& engine) {
    // Phenotype plus the Cox risk-set index (two u32 per patient).
    return ApproxBytesOf(engine.phenotype()) +
           engine.n() * 2 * sizeof(std::uint32_t);
  }
};

}  // namespace ss::engine::internal

namespace ss::engine {

/// Checkpoint serialization for genotype records.
template <>
struct Codec<ss::simdata::SnpRecord> {
  static void Encode(BinaryWriter& writer,
                     const ss::simdata::SnpRecord& record) {
    writer.WriteU32(record.snp);
    writer.WritePodVector(record.genotypes);
  }
  static ss::simdata::SnpRecord Decode(BinaryReader& reader) {
    ss::simdata::SnpRecord record;
    record.snp = reader.ReadU32();
    record.genotypes = reader.ReadPodVector<std::uint8_t>();
    return record;
  }
};

}  // namespace ss::engine
