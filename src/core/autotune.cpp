#include "core/autotune.hpp"

#include <algorithm>
#include <sstream>

#include "cluster/resource_manager.hpp"

namespace ss::core {
namespace {

std::string NameOf(const cluster::ClusterTopology& topology) {
  std::ostringstream name;
  name << topology.num_nodes << "n x " << topology.executors_per_node
       << "e x " << topology.cores_per_executor << "c";
  return name.str();
}

}  // namespace

std::vector<cluster::ClusterTopology> StrongScalingCandidates(
    const std::vector<int>& node_counts) {
  std::vector<cluster::ClusterTopology> candidates;
  candidates.reserve(node_counts.size());
  for (int nodes : node_counts) {
    candidates.push_back(cluster::EmrCluster(nodes));
  }
  return candidates;
}

std::vector<cluster::ClusterTopology> ContainerSweepCandidates() {
  // Table VII: 36 nodes, 1M SNPs. Table VIII rows:
  return {
      cluster::ContainerConfig(36, 42, 10.0, 6),
      cluster::ContainerConfig(36, 84, 5.0, 3),
      cluster::ContainerConfig(36, 126, 3.0, 2),
  };
}

bool IsPlaceable(const cluster::ClusterTopology& topology) {
  cluster::ResourceManager rm(topology.instance, topology.num_nodes,
                              cluster::ResourceCalculator::kMemoryOnly);
  const cluster::ContainerRequest request{topology.memory_per_executor_gib,
                                          topology.cores_per_executor};
  return rm.AllocateMany(request, topology.TotalExecutors()).ok();
}

std::vector<TuningPoint> TuneAcross(
    const engine::EngineContext& ctx,
    const std::vector<cluster::ClusterTopology>& candidates) {
  std::vector<TuningPoint> points;
  points.reserve(candidates.size());
  for (const cluster::ClusterTopology& topology : candidates) {
    if (!IsPlaceable(topology)) continue;
    TuningPoint point;
    point.name = NameOf(topology);
    point.topology = topology;
    point.report = ctx.ReplayOn(topology);
    points.push_back(std::move(point));
  }
  std::sort(points.begin(), points.end(),
            [](const TuningPoint& a, const TuningPoint& b) {
              return a.report.total_s < b.report.total_s;
            });
  return points;
}

Result<TuningPoint> PickBest(
    const engine::EngineContext& ctx,
    const std::vector<cluster::ClusterTopology>& candidates) {
  std::vector<TuningPoint> points = TuneAcross(ctx, candidates);
  if (points.empty()) {
    return Status::InvalidArgument("no placeable candidate topology");
  }
  return points.front();
}

}  // namespace ss::core
