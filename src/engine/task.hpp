// Per-task execution context and metrics.
//
// A task is the unit the scheduler retries and accounts: the computation of
// one partition of one dataset within one stage. Narrow dependencies are
// pipelined inside a task (computing a MapNode partition pulls its parent's
// partition in the same call stack), exactly like Spark.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "support/rng.hpp"

namespace ss::engine {

/// What one task attempt did; aggregated into StageMetrics.
struct TaskMetrics {
  double compute_seconds = 0.0;       ///< Wall time of the attempt.
  std::uint64_t records_out = 0;      ///< Records in the produced partition.
  std::uint64_t shuffle_write_bytes = 0;
  std::uint64_t shuffle_read_bytes = 0;
  int attempt = 0;                    ///< 0 for first attempt.
};

/// Handed to every task; identifies it and provides per-task randomness.
class TaskContext {
 public:
  TaskContext(std::uint64_t stage_id, std::uint32_t partition, int attempt,
              int executor, int node, std::uint64_t job_seed)
      : stage_id_(stage_id),
        partition_(partition),
        attempt_(attempt),
        executor_(executor),
        node_(node),
        job_seed_(job_seed) {}

  std::uint64_t stage_id() const { return stage_id_; }
  std::uint32_t partition() const { return partition_; }
  int attempt() const { return attempt_; }
  int executor() const { return executor_; }
  int node() const { return node_; }

  /// Deterministic per-(stage, partition, salt) generator — independent of
  /// the attempt number so a retried task reproduces the same randomness,
  /// and independent of scheduling order across partitions.
  Rng MakeRng(std::uint64_t salt = 0) const {
    Rng base(job_seed_);
    return base.Split(stage_id_ * 0x1000003ULL + partition_)
        .Split(salt + 1);
  }

  TaskMetrics& metrics() { return metrics_; }
  const TaskMetrics& metrics() const { return metrics_; }

 private:
  std::uint64_t stage_id_;
  std::uint32_t partition_;
  int attempt_;
  int executor_;
  int node_;
  std::uint64_t job_seed_;
  TaskMetrics metrics_;
};

/// Exception type used for injected/task-internal failures the scheduler
/// should retry.
class TaskFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace ss::engine
