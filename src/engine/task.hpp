// Per-task execution context and metrics.
//
// A task is the unit the scheduler retries and accounts: the computation of
// one partition of one dataset within one stage. Narrow dependencies are
// pipelined inside a task (computing a MapNode partition pulls its parent's
// partition in the same call stack), exactly like Spark.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace ss::engine {

/// Lifecycle phases of one task attempt, recorded by the timeline
/// profiler (see profile.hpp). kQueueWait and kCompute are derived:
/// queue-wait is the span from stage submission to the attempt starting
/// on a worker, and compute is the attempt's wall time minus every
/// explicitly timed sub-phase — so the phases of a task always sum to
/// its total by construction.
enum class TaskPhase : std::uint8_t {
  kQueueWait = 0,   ///< Stage submitted -> attempt starts on a worker.
  kFetch = 1,       ///< Input fetch: DFS block read, shuffle bucket read.
  kDecode = 2,      ///< Spill-frame reload/decode, packed-genotype unpack.
  kCompute = 3,     ///< Kernel/closure execution (the unattributed rest).
  kSpillWrite = 4,  ///< Spill-frame encode + write forced by this task.
  kHandoff = 5,     ///< Result copy-out to the driver's stage buffer.
  kPrefetch = 6,    ///< Issuing prefetch jobs to the I/O lane.
  kIoWait = 7,      ///< Blocked on an in-flight I/O-lane reload.
};

inline constexpr std::size_t kNumTaskPhases = 8;

/// Lowercase stable identifier used in the metrics JSON and trace.
const char* TaskPhaseName(TaskPhase phase);

/// One explicitly timed sub-phase of a task attempt. Timestamps are raw
/// steady-clock nanoseconds (same clock as TaskTimeline's). Consecutive
/// bursts of the same phase (e.g. per-record packed-genotype decode) are
/// coalesced into one span whose `end_ns - begin_ns` is the exact
/// accumulated duration — so for a coalesced span only `begin_ns` is a
/// real timestamp; the Chrome trace keeps the individual bursts.
struct PhaseSpan {
  TaskPhase phase = TaskPhase::kCompute;
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
};

/// Full lifecycle record of one (final, successful) task attempt.
/// Collected only while profiling is enabled (profile.hpp); flows
/// through TaskMetrics into StageMetrics and the run-metrics timeline.
struct TaskTimeline {
  std::uint32_t partition = 0;
  std::uint32_t worker = 0;      ///< Physical pool worker (driver = ~0u).
  std::int64_t enqueue_ns = 0;   ///< Stage submission (steady clock).
  std::int64_t start_ns = 0;     ///< Attempt began on the worker.
  std::int64_t end_ns = 0;       ///< Attempt finished.
  std::uint64_t records_out = 0;
  std::uint64_t bytes = 0;       ///< Shuffle R+W bytes moved by the task.
  std::vector<PhaseSpan> phases; ///< Explicit sub-phases (fetch/decode/...).
};

/// What one task attempt did; aggregated into StageMetrics.
struct TaskMetrics {
  double compute_seconds = 0.0;       ///< Wall time of the attempt.
  std::uint64_t records_out = 0;      ///< Records in the produced partition.
  std::uint64_t shuffle_write_bytes = 0;
  std::uint64_t shuffle_read_bytes = 0;
  int attempt = 0;                    ///< 0 for first attempt.
  bool profiled = false;              ///< True when `timeline` was collected.
  TaskTimeline timeline;              ///< Phase timeline (profiling only).
};

/// Handed to every task; identifies it and provides per-task randomness.
class TaskContext {
 public:
  TaskContext(std::uint64_t stage_id, std::uint32_t partition, int attempt,
              int executor, int node, std::uint64_t job_seed)
      : stage_id_(stage_id),
        partition_(partition),
        attempt_(attempt),
        executor_(executor),
        node_(node),
        job_seed_(job_seed) {}

  std::uint64_t stage_id() const { return stage_id_; }
  std::uint32_t partition() const { return partition_; }
  int attempt() const { return attempt_; }
  int executor() const { return executor_; }
  int node() const { return node_; }

  /// Deterministic per-(stage, partition, salt) generator — independent of
  /// the attempt number so a retried task reproduces the same randomness,
  /// and independent of scheduling order across partitions.
  Rng MakeRng(std::uint64_t salt = 0) const {
    Rng base(job_seed_);
    return base.Split(stage_id_ * 0x1000003ULL + partition_)
        .Split(salt + 1);
  }

  TaskMetrics& metrics() { return metrics_; }
  const TaskMetrics& metrics() const { return metrics_; }

 private:
  std::uint64_t stage_id_;
  std::uint32_t partition_;
  int attempt_;
  int executor_;
  int node_;
  std::uint64_t job_seed_;
  TaskMetrics metrics_;
};

/// Exception type used for injected/task-internal failures the scheduler
/// should retry.
class TaskFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace ss::engine
