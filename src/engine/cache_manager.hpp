// In-memory partition cache with LRU eviction — the engine's equivalent of
// Spark's BlockManager MEMORY_ONLY storage level.
//
// Entries are type-erased (`shared_ptr<void>` owning a `vector<T>`); the
// typed layer in node.hpp does the casts. Each entry records the simulated
// node where the computing task ran so that an injected node failure drops
// exactly that node's cached partitions, forcing lineage recomputation —
// the fault-tolerance property Spark's RDD paper centres on and that
// SparkScore's Algorithm 3 relies on for its cached U RDD.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "support/check.hpp"

namespace ss::engine {

/// Identifies a cached partition: (dataset node id, partition index).
struct CacheKey {
  std::uint64_t node_id = 0;
  std::uint32_t partition = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.node_id * 0x9e3779b97f4a7c15ULL) ^
           key.partition;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dropped_by_failure = 0;
  std::uint64_t bytes_cached = 0;  ///< Current occupancy.
};

class CacheManager {
 public:
  /// `capacity_bytes` caps total occupancy; 0 means unlimited.
  explicit CacheManager(std::uint64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached partition or nullptr (counting a hit/miss).
  std::shared_ptr<void> Lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting LRU entries if over budget.
  /// Oversized single entries (larger than the whole budget) are admitted
  /// and the cache simply holds only them; matching Spark, the computation
  /// must still succeed even if caching is ineffective.
  void Insert(const CacheKey& key, std::shared_ptr<void> value,
              std::uint64_t bytes, int node);

  /// Removes all partitions of a dataset (Dataset::Unpersist).
  void DropDataset(std::uint64_t node_id);

  /// Removes everything cached on a simulated node (node failure).
  /// Returns the number of partitions dropped.
  int DropNode(int node);

  /// Drops everything.
  void Clear();

  CacheStats stats() const;
  std::size_t entry_count() const;

 private:
  struct Entry {
    std::shared_ptr<void> value;
    std::uint64_t bytes = 0;
    int node = 0;
    std::list<CacheKey>::iterator lru_it;
  };

  void EvictIfNeededLocked() SS_REQUIRES(mutex_);
  void EraseLocked(const CacheKey& key) SS_REQUIRES(mutex_);

  const std::uint64_t capacity_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_
      SS_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ SS_GUARDED_BY(mutex_);  ///< Front = MRU.
  CacheStats stats_ SS_GUARDED_BY(mutex_);
};

}  // namespace ss::engine
