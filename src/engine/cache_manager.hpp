// Tiered partition cache — the engine's equivalent of Spark's BlockManager
// MEMORY_AND_DISK storage level.
//
// Tier 1 is memory: type-erased entries (`shared_ptr<void>` owning a
// `vector<T>`; the typed layer in node.hpp does the casts). Tier 2 is the
// spill store (spill_tier.hpp): when the memory budget forces an eviction
// and the entry carries a SpillCodec, its encoded bytes move to the spill
// tier instead of being discarded, and a later miss reloads + decodes them
// — far cheaper than replaying the lineage for expensive partitions (the
// cached U RDD of SparkScore's Algorithm 3 pays the score computation B
// times without it). A corrupt or missing spill frame simply degrades the
// miss to a lineage recompute, so results never depend on the spill tier.
//
// Eviction is cost-based rather than pure LRU: each resident entry knows
// what it would cost to bring back — its decode/reload estimate when a
// valid spill copy exists or it can be spilled, else its recorded compute
// time — and the victim is the entry with the cheapest restore cost per
// byte (ties fall to least-recently-used). Each entry also records the
// simulated node where the computing task ran so that an injected node
// failure drops exactly that node's memory-resident partitions (spill
// frames model reliable storage and survive), forcing lineage
// recomputation — the fault-tolerance property the RDD paper centres on.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cache_key.hpp"
#include "engine/spill_tier.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::engine {

class AsyncExecutor;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dropped_by_failure = 0;
  std::uint64_t bytes_cached = 0;  ///< Current memory-tier occupancy.
  // Spill tier (see docs/OBSERVABILITY.md):
  std::uint64_t spills = 0;         ///< Frames written on eviction.
  std::uint64_t spill_bytes = 0;    ///< Cumulative framed bytes written.
  std::uint64_t reloads = 0;        ///< Misses served from spill.
  std::uint64_t reload_nanos = 0;   ///< Wall time inside reload+decode.
  std::uint64_t spill_corrupt = 0;  ///< Corrupt/missing frames detected.
  std::uint64_t bytes_spilled = 0;  ///< Current spill-tier occupancy.
};

/// Serialize/deserialize hooks a typed caller attaches at Insert time so
/// the type-erased manager can move the entry across tiers. Both must be
/// thread-safe and must round-trip bitwise (Codec<T> is; see codec.hpp).
/// Default-constructed (empty) means the entry is not spillable and is
/// discarded on eviction exactly as the memory-only cache did.
struct SpillCodec {
  std::function<std::vector<std::uint8_t>(const std::shared_ptr<void>&)>
      encode;
  std::function<std::shared_ptr<void>(const std::vector<std::uint8_t>&)>
      decode;

  bool usable() const { return encode != nullptr && decode != nullptr; }
};

/// One partition materialized from an external backing store (the
/// genotype store): the decoded value, its memory charge, and the fetch
/// wall time. A null `value` means the fetch failed; the cache admits
/// nothing and the eventual demand lookup surfaces the error.
struct FetchedPartition {
  std::shared_ptr<void> value;
  std::uint64_t bytes = 0;
  double fetch_seconds = 0.0;
};

/// Reads + decodes one partition from a backing store. Must be
/// thread-safe (it runs on the I/O lane, outside the cache lock) and must
/// not call back into the cache.
using PartitionFetcher = std::function<FetchedPartition(std::uint32_t)>;

/// Cache construction knobs (EngineContext::Options mirrors these).
struct CacheOptions {
  /// Memory-tier budget in bytes; 0 means unlimited (nothing ever spills).
  std::uint64_t capacity_bytes = 0;

  /// Master switch for the spill tier; off restores the memory-only
  /// evict-means-discard behaviour (the differential-test baseline).
  bool spill_enabled = true;

  /// Where spill frames live: empty keeps them in an in-memory
  /// dfs::BlockStore, a path writes real files under that directory.
  std::string spill_dir;
};

class CacheManager {
 public:
  explicit CacheManager(CacheOptions options)
      : options_(std::move(options)), spill_(options_.spill_dir) {}

  /// `capacity_bytes` caps the memory tier; 0 means unlimited.
  explicit CacheManager(std::uint64_t capacity_bytes = 0)
      : CacheManager(CacheOptions{capacity_bytes, true, std::string()}) {}

  /// Returns the cached partition or nullptr (counting a hit/miss). A
  /// memory miss consults the spill tier first: a valid frame is decoded,
  /// re-admitted to memory, and returned (a "reload"); a corrupt or
  /// missing frame counts `spill_corrupt` and falls through to nullptr so
  /// the caller recomputes from lineage.
  ///
  /// The frame read + decode runs OUTSIDE the cache lock: concurrent
  /// lookups of other keys proceed, and a second lookup of the same key
  /// waits for the in-flight reload (task-side that wait is the `io_wait`
  /// phase + `exec.io_wait_nanos`) instead of duplicating it.
  std::shared_ptr<void> Lookup(const CacheKey& key);

  /// Advisory warm-up from the I/O lane: if `key`'s only copy is a spill
  /// frame, reload + decode + re-admit it exactly as a Lookup miss would —
  /// but without touching hit/miss accounting, so observable cache stats
  /// stay comparable across prefetch depths. No-op when the key is memory-
  /// resident, already being reloaded, or unknown. Counts
  /// `exec.prefetch_reloads` when a frame was actually moved.
  ///
  /// A prefetch only fills SPARE capacity: when admitting the partition
  /// would push the memory tier over budget — forcing an eviction — the
  /// lane declines (counting `exec.prefetch_declined`) instead. An
  /// eviction forced from the prefetch lane displaces exactly the
  /// partitions the compute frontier is about to consume, so at tight
  /// budgets an eager lane turns each spilled partition into ~1.5
  /// reloads; declining keeps the demand path's working set intact.
  ///
  /// Returns true when the key is now (or already was) memory-resident —
  /// a hit, a completed reload, or a completed fetch — or when the
  /// cache deliberately declined as above. False means the cache has
  /// nothing to offer for this key (never computed, no spill copy, no
  /// fetcher): the caller may fall through to a coarser target, e.g.
  /// the store-backed ancestor of an uncomputed derived partition.
  bool Prefetch(const CacheKey& key);

  /// Declares that dataset `node_id`'s partitions can be materialized
  /// from a backing store (the mmap'd genotype store). A Prefetch of a
  /// key that is neither cached nor spilled then FETCHES it instead of
  /// no-opping — the store IS the spill tier for such datasets, so the
  /// prefetch lane streams frames ahead of the compute wave. Demand
  /// lookups are unaffected (the miss recomputes, which reads the store
  /// through the node's own ComputePartition). Admitted fetches count
  /// `store.prefetch_frames`, not cache hits/misses/insertions.
  void RegisterFetcher(std::uint64_t node_id, PartitionFetcher fetcher);

  /// Removes the fetcher and BLOCKS until no fetch for `node_id` is in
  /// flight, so a fetcher's captures (the store handle) outlive every
  /// use. Must be called before the backing dataset dies.
  void UnregisterFetcher(std::uint64_t node_id);

  /// Wires (or clears, io == nullptr) the I/O lane used for background
  /// spill writes. With `spill_async` set, evictions move the frame
  /// encode+write onto the lane: the evicted value stays readable from the
  /// pending-write entry (a lookup re-admits it without any decode), and a
  /// failed background write erases the spill copy and counts
  /// `exec.spill_async_failures` once — the next access degrades to a
  /// lineage recompute, never to wrong data.
  void SetIoExecutor(AsyncExecutor* io, bool spill_async);

  /// Inserts (or refreshes) an entry, rebalancing against the budget.
  /// Oversized single entries (larger than the whole budget) are admitted
  /// and the cache simply holds only them; matching Spark, the computation
  /// must still succeed even if caching is ineffective.
  ///
  /// `compute_seconds` is the lineage cost of this partition (what a
  /// recompute would pay, from the task stopwatch) and `codec` the
  /// optional cross-tier serializer; both feed the eviction policy.
  void Insert(const CacheKey& key, std::shared_ptr<void> value,
              std::uint64_t bytes, int node, double compute_seconds = 0.0,
              SpillCodec codec = {});

  /// Removes all partitions of a dataset from both tiers
  /// (Dataset::Unpersist).
  void DropDataset(std::uint64_t node_id);

  /// Removes everything cached in memory on a simulated node (node
  /// failure). Spill frames survive — they model reliable local storage,
  /// like Spark blocks persisted to disk surviving an executor OOM.
  /// Returns the number of partitions dropped.
  int DropNode(int node);

  /// Drops everything in both tiers.
  void Clear();

  /// Re-applies the memory budget (0 = unlimited), spilling/evicting down
  /// to the new value. Lets PipelineConfig::cache_budget_bytes constrain a
  /// context after construction.
  void SetCapacityBytes(std::uint64_t capacity_bytes);

  /// Fault-injection hook: corrupts (`drop` false) or deletes (`drop`
  /// true) every spill frame. Subsequent reload attempts detect the loss,
  /// count `spill_corrupt`, and fall back to lineage recompute. Returns
  /// the number of frames injured.
  int InjureSpill(bool drop);

  CacheStats stats() const;
  std::size_t entry_count() const;        ///< Memory-tier entries.
  std::size_t spilled_count() const;      ///< Spill-tier-only entries.
  const CacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<void> value;
    std::uint64_t bytes = 0;
    int node = 0;
    double compute_seconds = 0.0;  ///< Lineage cost (recompute estimate).
    SpillCodec codec;
    /// True while the spill tier holds a current frame for this entry
    /// (set on reload); re-evicting it skips the encode + write.
    bool spill_valid = false;
    std::list<CacheKey>::iterator lru_it;
  };

  /// An entry whose only copy lives in the spill tier (or, while a
  /// background write is in flight, in `pending_value`).
  struct SpilledEntry {
    std::uint64_t bytes = 0;  ///< Decoded (memory) size, for re-admission.
    int node = 0;
    double compute_seconds = 0.0;
    SpillCodec codec;
    /// Non-null while an async spill write is in flight: the decoded
    /// value, kept so a lookup can re-admit without any frame I/O and so
    /// the write job can tell whether it is still current.
    std::shared_ptr<void> pending_value;
  };

  /// One deferred background frame write, collected under the lock by an
  /// eviction and handed to the I/O lane only after the lock is released
  /// (blocking on the bounded queue while holding kCache could deadlock
  /// against a completion that needs it).
  struct SpillJob {
    CacheKey key;
    std::shared_ptr<void> value;
    SpillCodec codec;
  };

  bool spill_enabled() const { return options_.spill_enabled; }
  /// True when admitting `bytes_hint` more bytes would force an eviction
  /// (the prefetch lane declines in that case; see Prefetch).
  bool PrefetchWouldEvictLocked(std::uint64_t bytes_hint) const
      SS_REQUIRES(mutex_);
  /// Restore-cost-per-byte the eviction policy minimizes.
  double RestoreCostPerByteLocked(const Entry& entry) const
      SS_REQUIRES(mutex_);
  void EvictIfNeededLocked(std::vector<SpillJob>* jobs) SS_REQUIRES(mutex_);
  void EvictOneLocked(std::vector<SpillJob>* jobs) SS_REQUIRES(mutex_);
  void EraseLocked(const CacheKey& key) SS_REQUIRES(mutex_);
  void DropSpilledLocked(const CacheKey& key) SS_REQUIRES(mutex_);
  /// What the locked phase of a lookup decided.
  enum class Step {
    kReturn,  ///< Resolved (hit, pending re-admit, or plain miss).
    kRetry,   ///< Waited out an in-flight reload; re-evaluate from the top.
    kReload,  ///< This thread claimed the reload; run it outside the lock.
    kFetch,   ///< Claimed a backing-store fetch (prefetch only).
  };

  /// Shared Lookup/Prefetch body; `prefetch` suppresses hit/miss counting.
  /// `handled` (prefetch only, may be null) reports whether the cache did
  /// or had anything for the key — false only on the no-op path (never
  /// computed, no spill copy, no fetcher).
  std::shared_ptr<void> LookupOrReload(const CacheKey& key, bool prefetch,
                                       bool* handled = nullptr);
  Step ResolveLocked(const CacheKey& key, bool prefetch,
                     support::UniqueLock& lock, std::shared_ptr<void>* result,
                     SpillCodec* codec, PartitionFetcher* fetcher,
                     std::vector<SpillJob>* jobs, bool* handled)
      SS_REQUIRES(mutex_);
  /// The claimed reload: frame read + decode with the lock RELEASED, then
  /// re-lock to publish (or to degrade: corrupt frame, superseding insert,
  /// concurrent drop). Always un-claims and wakes waiters.
  std::shared_ptr<void> FinishReload(const CacheKey& key, bool prefetch,
                                     const SpillCodec& codec);
  /// The claimed backing-store fetch: run `fetcher` with the lock
  /// RELEASED, then re-lock to admit (unless a concurrent insert/reload
  /// superseded it, or the fetch failed). Always un-claims and wakes
  /// waiters, including an UnregisterFetcher blocked on this key.
  std::shared_ptr<void> FinishFetch(const CacheKey& key,
                                    const PartitionFetcher& fetcher);
  bool InflightLocked(const CacheKey& key) const SS_REQUIRES(mutex_);
  /// Hands collected write jobs to `io` (inline fallback on shutdown).
  void FlushSpillJobs(std::vector<SpillJob> jobs, AsyncExecutor* io);
  void BackgroundSpillWrite(const SpillJob& job);

  const CacheOptions options_;
  SpillTier spill_;
  mutable support::RankedMutex mutex_{support::lock_rank::kCache};
  std::uint64_t capacity_bytes_ SS_GUARDED_BY(mutex_) =
      options_.capacity_bytes;
  /// Mean observed reload cost per byte, EWMA over completed reloads;
  /// prices the restore cost of spillable entries before any reload has
  /// been measured (seeded at ~1 GB/s).
  double reload_seconds_per_byte_ SS_GUARDED_BY(mutex_) = 1e-9;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_
      SS_GUARDED_BY(mutex_);
  std::unordered_map<CacheKey, SpilledEntry, CacheKeyHash> spilled_
      SS_GUARDED_BY(mutex_);
  std::list<CacheKey> lru_ SS_GUARDED_BY(mutex_);  ///< Front = MRU.
  CacheStats stats_ SS_GUARDED_BY(mutex_);
  /// Keys whose reload (frame read + decode) or backing-store fetch is
  /// running outside the lock.
  std::vector<CacheKey> inflight_ SS_GUARDED_BY(mutex_);
  /// Backing-store fetchers by dataset id (RegisterFetcher).
  std::unordered_map<std::uint64_t, PartitionFetcher> fetchers_
      SS_GUARDED_BY(mutex_);
  std::condition_variable_any inflight_cv_;
  /// The I/O lane; null = no lane (prefetch ablated), background spill off.
  AsyncExecutor* io_ SS_GUARDED_BY(mutex_) = nullptr;
  bool spill_async_ SS_GUARDED_BY(mutex_) = false;
};

}  // namespace ss::engine
