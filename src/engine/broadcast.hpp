// Broadcast variables: read-only values shipped once to every executor.
//
// Algorithm 1 step 5 broadcasts the phenotype pairs <(Y_i, Δ_i)> to all
// cluster nodes so every genotype partition's tasks can compute U_ij
// locally. In-process there is nothing to ship, but the byte volume is
// recorded so the virtual scheduler charges the broadcast fan-out when
// replaying the job on a simulated topology.
#pragma once

#include <memory>
#include <utility>

#include "engine/approx_bytes.hpp"
#include "engine/context.hpp"
#include "engine/trace.hpp"

namespace ss::engine {

template <typename T>
class Broadcast;

template <typename T>
Broadcast<T> MakeBroadcast(EngineContext& ctx, T value);

template <typename T>
class Broadcast {
 public:
  Broadcast() = default;

  const T& value() const { return *value_; }
  const T& operator*() const { return *value_; }
  const T* operator->() const { return value_.get(); }
  explicit operator bool() const { return value_ != nullptr; }

 private:
  friend Broadcast<T> MakeBroadcast<T>(EngineContext&, T);
  explicit Broadcast(std::shared_ptr<const T> value)
      : value_(std::move(value)) {}

  std::shared_ptr<const T> value_;
};

/// Creates a broadcast of `value`, charging driver->executors traffic.
template <typename T>
Broadcast<T> MakeBroadcast(EngineContext& ctx, T value) {
  const std::uint64_t bytes = ApproxBytesOf(value);
  const int executors = ctx.topology().TotalExecutors();
  // Spark's TorrentBroadcast distributes peer-to-peer, so the driver pays
  // ~one copy and executors share the rest; total volume is still
  // bytes x executors across the fabric.
  ctx.metrics().RecordBroadcast(bytes * static_cast<std::uint64_t>(executors));
  Tracer::Global().Instant("broadcast", "publish",
                           {Arg("bytes", bytes), Arg("executors", executors)});
  return Broadcast<T>(std::make_shared<const T>(std::move(value)));
}

}  // namespace ss::engine
