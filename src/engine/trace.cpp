#include "engine/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

namespace ss::engine {
namespace {

/// Cap per thread buffer (~a few hundred MB worst case across a big
/// pool); beyond it events are counted as dropped rather than silently
/// growing without bound during very long traced runs.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t NextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1);
}

}  // namespace

Tracer::Tracer() : tracer_id_(NextTracerId()), epoch_ns_(NowNs()) {}

Tracer& Tracer::Global() {
  // ss-lint: allow(naked-new) leaked singleton, usable during teardown
  static Tracer* global = new Tracer();
  return *global;
}

Tracer::ThreadLog* Tracer::LogForThisThread() {
  // One-entry cache keyed by tracer id; ids are never reused, so a stale
  // entry for a destroyed tracer can never alias a live one.
  thread_local struct {
    std::uint64_t tracer_id = 0;
    ThreadLog* log = nullptr;
  } cache;
  if (cache.tracer_id == tracer_id_) return cache.log;
  auto log = std::make_shared<ThreadLog>();
  {
    support::MutexLock lock(logs_mutex_);
    log->tid = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(log);
  }
  cache.tracer_id = tracer_id_;
  cache.log = log.get();
  return cache.log;
}

void Tracer::Record(TraceEvent event) {
  ThreadLog* log = LogForThisThread();
  event.ts_ns = NowNs() - epoch_ns_.load(std::memory_order_relaxed);
  event.tid = log->tid;
  support::MutexLock lock(log->mutex);
  if (log->events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  log->events.push_back(std::move(event));
}

void Tracer::Begin(const char* category, std::string name, TraceArgs args) {
  if (!enabled()) return;
  Record({TraceEvent::Phase::kBegin, 0, 0, std::move(name), category,
          std::move(args)});
}

void Tracer::End(const char* category, std::string name, TraceArgs args) {
  if (!enabled()) return;
  Record({TraceEvent::Phase::kEnd, 0, 0, std::move(name), category,
          std::move(args)});
}

void Tracer::Instant(const char* category, std::string name, TraceArgs args) {
  if (!enabled()) return;
  Record({TraceEvent::Phase::kInstant, 0, 0, std::move(name), category,
          std::move(args)});
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> merged;
  {
    support::MutexLock registry_lock(logs_mutex_);
    for (const auto& log : logs_) {
      support::MutexLock log_lock(log->mutex);
      merged.insert(merged.end(), log->events.begin(), log->events.end());
    }
  }
  // Stable: preserves each thread's append order among equal timestamps,
  // which keeps B/E nesting valid per tid.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return merged;
}

void Tracer::Clear() {
  support::MutexLock registry_lock(logs_mutex_);
  for (const auto& log : logs_) {
    support::MutexLock log_lock(log->mutex);
    log->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(NowNs(), std::memory_order_relaxed);
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[64];
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += JsonEscape(event.name);
    out += "\",\"cat\":\"";
    out += JsonEscape(event.category);
    out += "\",\"ph\":\"";
    out += static_cast<char>(event.phase);
    // Chrome's ts unit is microseconds.
    std::snprintf(buffer, sizeof(buffer), "%.3f",
                  static_cast<double>(event.ts_ns) / 1000.0);
    out += "\",\"ts\":";
    out += buffer;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    if (event.phase == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& arg : event.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(arg.first) + "\":\"" +
               JsonEscape(arg.second) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeTraceJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << ChromeTraceJson();
  return static_cast<bool>(file);
}

CounterRegistry& CounterRegistry::Global() {
  // ss-lint: allow(naked-new) leaked singleton, usable during teardown
  static CounterRegistry* global = new CounterRegistry();
  return *global;
}

std::atomic<std::uint64_t>& CounterRegistry::Get(const std::string& name) {
  support::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::Snapshot()
    const {
  support::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) {
    out.push_back({name, value->load(std::memory_order_relaxed)});
  }
  return out;
}

void CounterRegistry::ResetAll() {
  support::MutexLock lock(mutex_);
  for (auto& [name, value] : counters_) {
    value->store(0, std::memory_order_relaxed);
  }
}

ScopedCounterTimer::ScopedCounterTimer(std::atomic<std::uint64_t>& counter)
    : counter_(counter), start_ns_(NowNs()) {}

ScopedCounterTimer::~ScopedCounterTimer() {
  const std::int64_t elapsed = NowNs() - start_ns_;
  if (elapsed > 0) {
    counter_.fetch_add(static_cast<std::uint64_t>(elapsed),
                       std::memory_order_relaxed);
  }
}

}  // namespace ss::engine
