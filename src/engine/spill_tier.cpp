#include "engine/spill_tier.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/binary_io.hpp"
#include "support/log.hpp"

namespace ss::engine {

namespace {

/// Frame layout (little-endian, built with BinaryWriter):
///   u64 magic | u64 FNV-1a checksum of payload | u64 payload size | payload
constexpr std::uint64_t kSpillMagic = 0x53'53'50'49'4c'4c'30'31ULL;  // "SSPILL01"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);

std::vector<std::uint8_t> BuildFrame(const std::vector<std::uint8_t>& payload) {
  BinaryWriter writer;
  writer.WriteU64(kSpillMagic);
  writer.WriteU64(Checksum(payload));
  writer.WriteU64(payload.size());
  std::vector<std::uint8_t> frame = writer.TakeBytes();
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

/// Manual header parse (no BinaryReader: its bounds checks SS_CHECK-abort,
/// and a corrupt frame must surface as a Status, not a crash).
std::uint64_t HeaderField(const std::vector<std::uint8_t>& frame,
                          std::size_t index) {
  std::uint64_t value = 0;
  std::memcpy(&value, frame.data() + index * sizeof(std::uint64_t),
              sizeof(value));
  return value;
}

Result<std::vector<std::uint8_t>> ParseFrame(std::vector<std::uint8_t> frame,
                                             const std::string& what) {
  if (frame.size() < kHeaderBytes) {
    return Status::DataLoss("spill frame truncated: " + what);
  }
  if (HeaderField(frame, 0) != kSpillMagic) {
    return Status::DataLoss("spill frame has bad magic: " + what);
  }
  const std::uint64_t checksum = HeaderField(frame, 1);
  const std::uint64_t size = HeaderField(frame, 2);
  if (frame.size() != kHeaderBytes + size) {
    return Status::DataLoss("spill frame has bad length: " + what);
  }
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderBytes, frame.end());
  if (Checksum(payload) != checksum) {
    return Status::DataLoss("spill frame failed checksum: " + what);
  }
  return payload;
}

dfs::BlockId BlockIdFor(const CacheKey& key) {
  return dfs::BlockId{key.node_id, key.partition};
}

std::string KeyName(const CacheKey& key) {
  return "spill-" + std::to_string(key.node_id) + "-" +
         std::to_string(key.partition) + ".bin";
}

}  // namespace

SpillTier::SpillTier(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      SS_LOG(kWarn, "spill") << "cannot create spill_dir " << dir_ << ": "
                             << ec.message() << " (spill writes will fail "
                             << "and misses fall back to lineage)";
    }
  }
}

std::string SpillTier::FilePathFor(const CacheKey& key) const {
  return dir_ + "/" + KeyName(key);
}

void SpillTier::WriteFrameLocked(const CacheKey& key,
                                 const std::vector<std::uint8_t>& frame) {
  SS_ASSERT_HELD(mutex_);
  if (dir_.empty()) {
    store_.Put(BlockIdFor(key), frame);
    return;
  }
  std::ofstream out(FilePathFor(key), std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
}

std::vector<std::uint8_t> SpillTier::ReadFrameLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  if (dir_.empty()) {
    Result<std::vector<std::uint8_t>> block = store_.Get(BlockIdFor(key));
    return block.ok() ? std::move(block).value()
                      : std::vector<std::uint8_t>{};
  }
  std::ifstream in(FilePathFor(key), std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void SpillTier::EraseLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = frames_.find(key);
  if (it == frames_.end()) return;
  bytes_stored_ -= it->second;
  frames_.erase(it);
  if (dir_.empty()) {
    store_.Erase(BlockIdFor(key));
  } else {
    std::error_code ec;
    std::filesystem::remove(FilePathFor(key), ec);
  }
}

Status SpillTier::Put(const CacheKey& key,
                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame = BuildFrame(payload);
  const std::uint64_t frame_bytes = frame.size();
  support::MutexLock lock(mutex_);
  EraseLocked(key);  // refresh semantics
  WriteFrameLocked(key, frame);
  if (!dir_.empty()) {
    // Verify the write landed (full disk, unwritable dir, ...); a frame we
    // cannot read back must not be advertised.
    if (ReadFrameLocked(key).size() != frame_bytes) {
      std::error_code ec;
      std::filesystem::remove(FilePathFor(key), ec);
      return Status::Unavailable("spill write failed: " + FilePathFor(key));
    }
  }
  frames_[key] = frame_bytes;
  bytes_stored_ += frame_bytes;
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> SpillTier::Get(const CacheKey& key) {
  support::MutexLock lock(mutex_);
  auto it = frames_.find(key);
  if (it == frames_.end()) {
    return Status::NotFound("no spill frame for " + KeyName(key));
  }
  std::vector<std::uint8_t> frame = ReadFrameLocked(key);
  if (frame.empty()) {
    // Backend lost the frame (injected deletion, spill_dir wiped).
    EraseLocked(key);
    return Status::DataLoss("spill frame missing: " + KeyName(key));
  }
  Result<std::vector<std::uint8_t>> payload =
      ParseFrame(std::move(frame), KeyName(key));
  if (!payload.ok()) EraseLocked(key);  // do not re-detect the same loss
  return payload;
}

void SpillTier::Erase(const CacheKey& key) {
  support::MutexLock lock(mutex_);
  EraseLocked(key);
}

void SpillTier::Clear() {
  support::MutexLock lock(mutex_);
  std::vector<CacheKey> keys;
  keys.reserve(frames_.size());
  for (const auto& [key, bytes] : frames_) keys.push_back(key);
  for (const CacheKey& key : keys) EraseLocked(key);
}

int SpillTier::CorruptAll() {
  support::MutexLock lock(mutex_);
  int touched = 0;
  for (const auto& [key, bytes] : frames_) {
    std::vector<std::uint8_t> frame = ReadFrameLocked(key);
    if (frame.size() <= kHeaderBytes) continue;  // nothing to flip
    // Flip one payload byte so the checksum — not the framing — trips.
    frame[kHeaderBytes + (frame.size() - kHeaderBytes) / 2] ^= 0xFF;
    WriteFrameLocked(key, frame);
    ++touched;
  }
  return touched;
}

int SpillTier::DropAll() {
  support::MutexLock lock(mutex_);
  int dropped = 0;
  for (const auto& [key, bytes] : frames_) {
    // Delete the backing frame but keep the index entry: the next Get must
    // observe the loss (and count it) rather than silently skip spill.
    if (dir_.empty()) {
      store_.Erase(BlockIdFor(key));
    } else {
      std::error_code ec;
      std::filesystem::remove(FilePathFor(key), ec);
    }
    ++dropped;
  }
  return dropped;
}

std::size_t SpillTier::frame_count() const {
  support::MutexLock lock(mutex_);
  return frames_.size();
}

std::uint64_t SpillTier::bytes_stored() const {
  support::MutexLock lock(mutex_);
  return bytes_stored_;
}

}  // namespace ss::engine
