// Extended dataset operations, layered over dataset.hpp's primitives:
// pair-value transforms, distinct, outer joins, cogroup, global sort
// (sampled range partitioning), repartitioning, partial actions
// (Take/Top), aggregation, text output, and DFS checkpointing with
// lineage truncation.
//
// Everything here composes the existing nodes; only CoalesceNode and
// CheckpointNode introduce new lineage node types.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>

#include "engine/codec.hpp"
#include "engine/dataset.hpp"

namespace ss::engine {

namespace nodes {

/// Merges the parent's partitions into fewer, contiguous ones (narrow
/// dependency — no shuffle, preserves order; Spark's coalesce(n)).
template <typename T>
class CoalesceNode final : public Node<T> {
 public:
  CoalesceNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent,
               std::uint32_t num_partitions)
      : Node<T>(ctx, "coalesce", num_partitions, {parent}),
        parent_(std::move(parent)) {
    SS_CHECK(num_partitions >= 1);
  }

  std::vector<T> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    // Partition i owns the contiguous parent range [begin, end).
    const std::uint32_t parents = parent_->num_partitions();
    const std::uint32_t mine = this->num_partitions();
    const std::uint32_t begin =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(index) * parents / mine);
    const std::uint32_t end = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(index + 1) * parents / mine);
    std::vector<T> out;
    for (std::uint32_t p = begin; p < end; ++p) {
      auto part = parent_->Get(p, task);
      out.insert(out.end(), part->begin(), part->end());
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
};

/// Reads a checkpoint written by Checkpoint(): a source node with no
/// parents (lineage truncated), one partition per DFS block.
template <typename T>
class CheckpointNode final : public Node<T> {
 public:
  CheckpointNode(EngineContext* ctx, std::string path,
                 std::uint32_t num_partitions)
      : Node<T>(ctx, "checkpoint(" + path + ")", num_partitions, {}),
        path_(std::move(path)) {}

  std::vector<T> ComputePartition(std::uint32_t index,
                                  TaskContext&) override {
    SS_CHECK(this->ctx_->dfs() != nullptr);
    Result<std::vector<std::uint8_t>> bytes =
        this->ctx_->dfs()->ReadBinaryBlock(path_, index);
    if (!bytes.ok()) {
      throw TaskFailure("checkpoint read failed: " + bytes.status().ToString());
    }
    return DecodePartition<T>(bytes.value());
  }

 private:
  std::string path_;
};

/// Pairwise zip of two datasets with identical partitioning (Spark's
/// zip: same partition count AND same per-partition element counts,
/// checked at run time).
template <typename A, typename B>
class ZipNode final : public Node<std::pair<A, B>> {
 public:
  ZipNode(EngineContext* ctx, std::shared_ptr<Node<A>> left,
          std::shared_ptr<Node<B>> right)
      : Node<std::pair<A, B>>(ctx, "zip", left->num_partitions(),
                              {left, right}),
        left_(std::move(left)),
        right_(std::move(right)) {
    SS_CHECK(left_->num_partitions() == right_->num_partitions());
  }

  std::vector<std::pair<A, B>> ComputePartition(std::uint32_t index,
                                                TaskContext& task) override {
    auto left = left_->Get(index, task);
    auto right = right_->Get(index, task);
    if (left->size() != right->size()) {
      throw TaskFailure("zip: partitions have different sizes");
    }
    std::vector<std::pair<A, B>> out;
    out.reserve(left->size());
    for (std::size_t i = 0; i < left->size(); ++i) {
      out.push_back({(*left)[i], (*right)[i]});
    }
    return out;
  }

 private:
  std::shared_ptr<Node<A>> left_;
  std::shared_ptr<Node<B>> right_;
};

}  // namespace nodes

// -- Pair-value conveniences --------------------------------------------------

/// Transforms values, keeping keys (Spark's mapValues).
template <typename K, typename V, typename F,
          typename U = std::invoke_result_t<F, const V&>>
Dataset<std::pair<K, U>> MapValues(const Dataset<std::pair<K, V>>& ds, F fn) {
  return ds.Map([fn = std::move(fn)](const std::pair<K, V>& record) {
    return std::pair<K, U>(record.first, fn(record.second));
  });
}

template <typename K, typename V>
Dataset<K> Keys(const Dataset<std::pair<K, V>>& ds) {
  return ds.Map([](const std::pair<K, V>& record) { return record.first; });
}

template <typename K, typename V>
Dataset<V> Values(const Dataset<std::pair<K, V>>& ds) {
  return ds.Map([](const std::pair<K, V>& record) { return record.second; });
}

/// Count per key, on the driver.
template <typename K, typename V>
std::unordered_map<K, std::uint64_t> CountByKey(
    const Dataset<std::pair<K, V>>& ds, std::uint32_t num_partitions) {
  auto ones = MapValues(ds, [](const V&) { return std::uint64_t{1}; });
  return CollectAsMap(
      ReduceByKey(ones, [](std::uint64_t a, std::uint64_t b) { return a + b; },
                  num_partitions),
      "countByKey");
}

// -- Set-like operations --------------------------------------------------------

/// Removes duplicates (requires std::hash<T> and operator==).
template <typename T>
Dataset<T> Distinct(const Dataset<T>& ds, std::uint32_t num_partitions) {
  auto keyed = ds.Map([](const T& value) {
    return std::pair<T, std::uint8_t>(value, 0);
  });
  auto unique = ReduceByKey(
      keyed, [](std::uint8_t a, std::uint8_t) { return a; }, num_partitions);
  return Keys(unique);
}

/// Elements of `left` also present in `right`, deduplicated (Spark's
/// intersection).
template <typename T>
Dataset<T> Intersection(const Dataset<T>& left, const Dataset<T>& right,
                        std::uint32_t num_partitions) {
  auto tag = [](std::uint8_t bit) {
    return [bit](const T& value) {
      return std::pair<T, std::uint8_t>(value, bit);
    };
  };
  auto merged = ReduceByKey(
      left.Map(tag(1)).Union(right.Map(tag(2))),
      [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      },
      num_partitions);
  return Keys(merged.Filter([](const std::pair<T, std::uint8_t>& record) {
    return record.second == 3;  // seen on both sides
  }));
}

/// Elements of `left` not present in `right`, deduplicated (Spark's
/// subtract, up to duplicate handling).
template <typename T>
Dataset<T> Subtract(const Dataset<T>& left, const Dataset<T>& right,
                    std::uint32_t num_partitions) {
  auto tag = [](std::uint8_t bit) {
    return [bit](const T& value) {
      return std::pair<T, std::uint8_t>(value, bit);
    };
  };
  auto merged = ReduceByKey(
      left.Map(tag(1)).Union(right.Map(tag(2))),
      [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      },
      num_partitions);
  return Keys(merged.Filter([](const std::pair<T, std::uint8_t>& record) {
    return record.second == 1;  // left only
  }));
}

// -- Relational operations -------------------------------------------------------

/// Left outer join: every left record appears; unmatched rights are
/// nullopt.
template <typename K, typename A, typename B>
Dataset<std::pair<K, std::pair<A, std::optional<B>>>> LeftOuterJoin(
    const Dataset<std::pair<K, A>>& left, const Dataset<std::pair<K, B>>& right,
    std::uint32_t num_partitions) {
  auto grouped_left = GroupByKey(left, num_partitions);
  auto grouped_right = GroupByKey(right, num_partitions);
  auto cogrouped = Join(grouped_left, grouped_right, num_partitions);
  using Out = std::pair<K, std::pair<A, std::optional<B>>>;
  // Keys present on the left but absent on the right never reach the
  // inner join above, so emit them separately from the left groups.
  auto matched = cogrouped.FlatMap(
      [](const std::pair<K, std::pair<std::vector<A>, std::vector<B>>>& row) {
        std::vector<Out> out;
        for (const A& a : row.second.first) {
          for (const B& b : row.second.second) {
            out.push_back({row.first, {a, b}});
          }
        }
        return out;
      });
  auto right_keys = CollectAsMap(
      MapValues(grouped_right, [](const std::vector<B>&) { return std::uint8_t{1}; }),
      "leftOuterJoin-rightKeys");
  auto right_key_set = MakeBroadcast(*left.context(), std::move(right_keys));
  auto unmatched = grouped_left.FlatMap(
      [right_key_set](const std::pair<K, std::vector<A>>& row) {
        std::vector<Out> out;
        if (!right_key_set->contains(row.first)) {
          for (const A& a : row.second) {
            out.push_back({row.first, {a, std::nullopt}});
          }
        }
        return out;
      });
  return matched.Union(unmatched);
}

/// Full cogroup: (K, (all A values, all B values)), including keys present
/// on only one side.
template <typename K, typename A, typename B>
Dataset<std::pair<K, std::pair<std::vector<A>, std::vector<B>>>> CoGroup(
    const Dataset<std::pair<K, A>>& left, const Dataset<std::pair<K, B>>& right,
    std::uint32_t num_partitions) {
  // Tag each side, shuffle together, then split per key.
  using Tagged = std::pair<K, std::pair<std::uint8_t, std::pair<A, B>>>;
  auto tag_left = left.Map([](const std::pair<K, A>& r) {
    return Tagged{r.first, {0, {r.second, B{}}}};
  });
  auto tag_right = right.Map([](const std::pair<K, B>& r) {
    return Tagged{r.first, {1, {A{}, r.second}}};
  });
  auto grouped = GroupByKey(tag_left.Union(tag_right), num_partitions);
  using Out = std::pair<K, std::pair<std::vector<A>, std::vector<B>>>;
  return grouped.Map(
      [](const std::pair<K, std::vector<std::pair<std::uint8_t, std::pair<A, B>>>>& row) {
        Out out{row.first, {}};
        for (const auto& [tag, values] : row.second) {
          if (tag == 0) {
            out.second.first.push_back(values.first);
          } else {
            out.second.second.push_back(values.second);
          }
        }
        return out;
      });
}

// -- Sorting ------------------------------------------------------------------------

/// Globally sorts by `key_fn` using sampled range partitioning (Spark's
/// sortBy): boundaries come from a driver-side sample, records shuffle to
/// their range bucket, each bucket sorts locally; concatenating the
/// output partitions yields the total order.
template <typename T, typename F, typename K = std::invoke_result_t<F, const T&>>
Dataset<T> SortBy(const Dataset<T>& ds, F key_fn, std::uint32_t num_partitions) {
  SS_CHECK(num_partitions >= 1);
  // A ~20% sample picks the range boundaries. An unlucky (even empty)
  // sample only skews the balance, never correctness: upper_bound over
  // fewer boundaries still maps every key to a valid bucket.
  std::vector<K> sample;
  for (const T& value : ds.Sample(0.2, /*salt=*/0xB0D5).Collect("sortBy-sample")) {
    sample.push_back(key_fn(value));
  }
  std::sort(sample.begin(), sample.end());
  std::vector<K> boundaries;
  for (std::uint32_t b = 1; b < num_partitions && !sample.empty(); ++b) {
    boundaries.push_back(sample[sample.size() * b / num_partitions]);
  }
  auto bounds = MakeBroadcast(*ds.context(), std::move(boundaries));

  auto keyed = ds.Map([key_fn](const T& value) {
    return std::pair<K, T>(key_fn(value), value);
  });
  auto ranged = PartitionByKey(
      keyed, num_partitions, [bounds](const K& key, std::uint32_t) {
        return static_cast<std::uint32_t>(
            std::upper_bound(bounds->begin(), bounds->end(), key) -
            bounds->begin());
      });
  auto sorted = ranged.MapPartitions(
      [](std::uint32_t, const std::vector<std::pair<K, T>>& records) {
        std::vector<std::pair<K, T>> copy = records;
        std::stable_sort(copy.begin(), copy.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        std::vector<T> out;
        out.reserve(copy.size());
        for (auto& [key, value] : copy) out.push_back(std::move(value));
        return out;
      });
  return sorted;
}

// -- Structural operations -------------------------------------------------------------

/// Narrow merge into fewer partitions (preserves order, no shuffle).
template <typename T>
Dataset<T> Coalesce(const Dataset<T>& ds, std::uint32_t num_partitions) {
  return Dataset<T>(ds.context(), std::make_shared<nodes::CoalesceNode<T>>(
                                      ds.context(), ds.node(), num_partitions));
}

/// Rebalances into `num_partitions` via a round-robin shuffle.
template <typename T>
Dataset<T> Repartition(const Dataset<T>& ds, std::uint32_t num_partitions) {
  auto keyed = ds.MapPartitions(
      [](std::uint32_t index, const std::vector<T>& records) {
        std::vector<std::pair<std::uint64_t, T>> out;
        out.reserve(records.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
          // Offset by the partition index so elements spread evenly.
          out.push_back({index * 0x9e3779b9ULL + i, records[i]});
        }
        return out;
      });
  return Values(PartitionByKey(keyed, num_partitions));
}

/// Pairwise zip with `other` (same partition count and sizes).
template <typename A, typename B>
Dataset<std::pair<A, B>> Zip(const Dataset<A>& left, const Dataset<B>& right) {
  return Dataset<std::pair<A, B>>(
      left.context(), std::make_shared<nodes::ZipNode<A, B>>(
                          left.context(), left.node(), right.node()));
}

// -- Partial & aggregating actions --------------------------------------------------------

/// First `n` elements in partition order, computing only as many
/// partitions as needed (Spark's take()).
template <typename T>
std::vector<T> Take(const Dataset<T>& ds, std::size_t n) {
  std::vector<T> out;
  auto node = ds.node();
  node->EnsureReady();
  for (std::uint32_t p = 0; p < node->num_partitions() && out.size() < n; ++p) {
    ds.context()->RunTasks("take", 1, [&](TaskContext& task) {
      auto part = node->Get(p, task);
      for (const T& value : *part) {
        if (out.size() >= n) break;
        out.push_back(value);
      }
    });
  }
  return out;
}

/// First element; FailedPrecondition via StatusError if empty.
template <typename T>
T First(const Dataset<T>& ds) {
  std::vector<T> one = Take(ds, 1);
  if (one.empty()) {
    throw StatusError(Status::FailedPrecondition("First() on empty dataset"));
  }
  return std::move(one.front());
}

/// Smallest `n` elements under `cmp` (Spark's takeOrdered): per-partition
/// partial sort, then a driver-side merge.
template <typename T, typename Cmp = std::less<T>>
std::vector<T> TakeOrdered(const Dataset<T>& ds, std::size_t n, Cmp cmp = {}) {
  auto partial = ds.MapPartitions(
      [n, cmp](std::uint32_t, const std::vector<T>& records) {
        std::vector<T> copy = records;
        const std::size_t keep = std::min(n, copy.size());
        std::partial_sort(copy.begin(),
                          copy.begin() + static_cast<std::ptrdiff_t>(keep),
                          copy.end(), cmp);
        copy.resize(keep);
        return copy;
      });
  std::vector<T> merged = partial.Collect("takeOrdered");
  std::sort(merged.begin(), merged.end(), cmp);
  if (merged.size() > n) merged.resize(n);
  return merged;
}

/// Largest `n` elements (Spark's top()).
template <typename T>
std::vector<T> Top(const Dataset<T>& ds, std::size_t n) {
  return TakeOrdered(ds, n, std::greater<T>());
}

/// Runs `fn` over every element for its side effects (Spark's foreach).
/// `fn` executes on task threads — it must be thread-safe and, because
/// failed tasks are retried, idempotent-friendly (use Accumulator for
/// counters rather than raw shared state).
template <typename T, typename F>
void Foreach(const Dataset<T>& ds, F fn,
             const std::string& label = "foreach") {
  auto node = ds.node();
  node->EnsureReady();
  ds.context()->RunTasks(label, node->num_partitions(),
                         [&](TaskContext& task) {
                           auto part = node->Get(task.partition(), task);
                           task.metrics().records_out = part->size();
                           for (const T& value : *part) fn(value);
                         });
}

/// Occurrence count per distinct value, on the driver (Spark's
/// countByValue).
template <typename T>
std::unordered_map<T, std::uint64_t> CountByValue(
    const Dataset<T>& ds, std::uint32_t num_partitions) {
  auto keyed = ds.Map([](const T& value) {
    return std::pair<T, std::uint64_t>(value, 1);
  });
  return CollectAsMap(
      ReduceByKey(keyed,
                  [](std::uint64_t a, std::uint64_t b) { return a + b; },
                  num_partitions),
      "countByValue");
}

/// Two-level aggregation (Spark's aggregate): `seq_op` folds records into
/// a per-partition accumulator starting from `zero`; `comb_op` merges the
/// partition accumulators on the driver.
template <typename T, typename Acc, typename SeqOp, typename CombOp>
Acc Aggregate(const Dataset<T>& ds, Acc zero, SeqOp seq_op, CombOp comb_op) {
  auto partials = ds.MapPartitions(
      [zero, seq_op](std::uint32_t, const std::vector<T>& records) {
        Acc acc = zero;
        for (const T& record : records) acc = seq_op(acc, record);
        return std::vector<Acc>{acc};
      });
  Acc total = zero;
  for (const Acc& partial : partials.Collect("aggregate")) {
    total = comb_op(total, partial);
  }
  return total;
}

// -- Output & checkpointing ---------------------------------------------------------------------

/// Writes one DFS text file per partition under `directory`
/// ("<directory>/part-00000", ...), like saveAsTextFile. Tasks write
/// concurrently; the DFS handles placement and replication.
inline Status SaveAsTextFile(const Dataset<std::string>& ds,
                             const std::string& directory) {
  if (ds.context()->dfs() == nullptr) {
    return Status::FailedPrecondition("no DFS attached to the context");
  }
  auto node = ds.node();
  node->EnsureReady();
  // Guards first_error. Function-local (see the per_map_mutex note in
  // dataset.hpp), so the field cannot carry SS_GUARDED_BY.
  // ss-lint: allow(guarded-by-coverage) guards function-local first_error
  support::RankedMutex status_mutex{support::lock_rank::kSaveStatus};
  Status first_error;
  ds.context()->RunTasks(
      "saveAsTextFile(" + directory + ")", node->num_partitions(),
      [&](TaskContext& task) {
        auto part = node->Get(task.partition(), task);
        char name[32];
        std::snprintf(name, sizeof(name), "/part-%05u", task.partition());
        const Status status = ds.context()->dfs()->WriteTextFile(
            directory + name, *part);
        if (!status.ok()) {
          support::MutexLock lock(status_mutex);
          if (first_error.ok()) first_error = status;
        }
      });
  return first_error;
}

/// Persists the dataset's partitions to the DFS and returns a new dataset
/// reading from them with TRUNCATED lineage (no parents). Long resampling
/// chains checkpoint their expensive intermediates so recovery does not
/// recompute from the original inputs. Requires Codec<T>.
template <typename T>
Result<Dataset<T>> Checkpoint(const Dataset<T>& ds, const std::string& path) {
  if (ds.context()->dfs() == nullptr) {
    return Status::FailedPrecondition("no DFS attached to the context");
  }
  std::vector<std::vector<T>> partitions = RunStage(*ds.node(), "checkpoint");
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(partitions.size());
  for (const auto& partition : partitions) {
    blocks.push_back(EncodePartition(partition));
  }
  SS_RETURN_IF_ERROR(ds.context()->dfs()->WriteBinaryFile(path, blocks));
  return Dataset<T>(ds.context(),
                    std::make_shared<nodes::CheckpointNode<T>>(
                        ds.context(), path,
                        static_cast<std::uint32_t>(blocks.size())));
}

/// Reopens an existing checkpoint (e.g. in a later session).
template <typename T>
Result<Dataset<T>> OpenCheckpoint(EngineContext& ctx, const std::string& path) {
  if (ctx.dfs() == nullptr) {
    return Status::FailedPrecondition("no DFS attached to the context");
  }
  Result<std::uint32_t> blocks = ctx.dfs()->BlockCount(path);
  if (!blocks.ok()) return blocks.status();
  return Dataset<T>(&ctx, std::make_shared<nodes::CheckpointNode<T>>(
                              &ctx, path, blocks.value()));
}

}  // namespace ss::engine
