// Key type shared by the partition cache's two tiers (cache_manager.hpp,
// spill_tier.hpp): one cached partition is (dataset node id, partition).
#pragma once

#include <cstdint>
#include <functional>

namespace ss::engine {

/// Identifies a cached partition: (dataset node id, partition index).
struct CacheKey {
  std::uint64_t node_id = 0;
  std::uint32_t partition = 0;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.node_id * 0x9e3779b97f4a7c15ULL) ^
           key.partition;
  }
};

}  // namespace ss::engine
