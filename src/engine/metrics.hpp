// Stage/job metrics collection.
//
// Every job run through the EngineContext appends one StageMetrics per
// stage (the reduce stage of a shuffle and its map stage are distinct
// stages, as in Spark's DAG). The recorder converts the collected metrics
// into a cluster::JobProfile so the VirtualScheduler can replay the same
// work onto an arbitrary simulated topology — this is how the scaling
// benches (Figs 6-7) are produced on a single physical machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/virtual_scheduler.hpp"
#include "engine/cache_manager.hpp"
#include "engine/task.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::engine {

/// Aggregated metrics of one stage.
struct StageMetrics {
  std::uint64_t stage_id = 0;
  std::string label;
  std::vector<double> task_seconds;  ///< Final (successful) attempt each.
  std::uint64_t shuffle_read_bytes = 0;
  std::uint64_t shuffle_write_bytes = 0;
  std::uint64_t records_out = 0;
  int failed_attempts = 0;

  /// Timeline profiling (profile.hpp). begin/end are driver-side stage
  /// submission/completion on the steady clock; queue_peak is the pool's
  /// pending-queue high-watermark while the stage ran; timelines holds the
  /// final-attempt phase timeline of each task (empty when profiling off).
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t queue_peak = 0;
  std::vector<TaskTimeline> timelines;
};

class MetricsRecorder {
 public:
  /// Opens a new stage; returns its id. Stamps the stage's begin
  /// timestamp (steady clock). Thread-safe.
  std::uint64_t BeginStage(const std::string& label, std::uint32_t num_tasks);

  /// Closes a stage: stamps its end timestamp and records the pool's
  /// queue-depth high-watermark observed while the stage ran.
  void EndStage(std::uint64_t stage_id, std::uint64_t queue_peak);

  /// Records one successful task attempt's metrics (including its phase
  /// timeline when `metrics.profiled`).
  void RecordTask(std::uint64_t stage_id, const TaskMetrics& metrics);

  /// Counts a failed attempt (for retry accounting).
  void RecordFailure(std::uint64_t stage_id);

  /// Adds broadcast traffic (driver -> every executor once).
  void RecordBroadcast(std::uint64_t bytes);

  /// Stages recorded since construction or the last Reset.
  std::vector<StageMetrics> stages() const;
  std::uint64_t broadcast_bytes() const;

  /// Converts recorded stages into a replayable job profile.
  cluster::JobProfile ToJobProfile() const;

  /// Clears all recorded stages (benches call this between configurations).
  void Reset();

 private:
  mutable support::RankedMutex mutex_{support::lock_rank::kMetrics};
  std::vector<StageMetrics> stages_ SS_GUARDED_BY(mutex_);
  std::uint64_t next_stage_id_ SS_GUARDED_BY(mutex_) = 1;
  std::uint64_t broadcast_bytes_ SS_GUARDED_BY(mutex_) = 0;
};

/// Renders recorded stages as an ASCII table (the engine's equivalent of
/// the Spark UI's stage list): id, label, tasks, total/max task seconds,
/// shuffle volumes, failed attempts.
std::string FormatStageReport(const std::vector<StageMetrics>& stages);

/// FormatStageReport plus the storage/traffic summary the stage table
/// alone hides: cache hit/miss/eviction counts and broadcast bytes next
/// to the total shuffle volumes.
std::string FormatRunReport(const std::vector<StageMetrics>& stages,
                            const CacheStats& cache,
                            std::uint64_t broadcast_bytes);

/// Machine-readable run summary (schema "sparkscore-run-metrics-v2"):
/// per-stage task-time stats and log-bucket histograms, shuffle volumes,
/// retry counts, cache hit/miss, broadcast bytes, the task-timeline
/// profile (critical path, per-stage phase breakdown, worker utilization,
/// skew/straggler stats — see profile.hpp), and a dump of the
/// process-global CounterRegistry. Every v1 key is unchanged; v2 adds the
/// `timeline` section. `straggler_mad_k` is the MAD multiple above the
/// median task time at which a task is flagged as a straggler. Field
/// reference in docs/OBSERVABILITY.md; validated by tools/check_trace.py.
std::string RunMetricsJson(const std::vector<StageMetrics>& stages,
                           const CacheStats& cache,
                           std::uint64_t broadcast_bytes,
                           std::uint64_t tasks_completed,
                           double straggler_mad_k = 3.0);

}  // namespace ss::engine
