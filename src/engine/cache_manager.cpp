#include "engine/cache_manager.hpp"

#include <algorithm>
#include <vector>

#include "engine/executor.hpp"
#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace ss::engine {

namespace {

std::atomic<std::uint64_t>& CacheCounter(const char* name) {
  return CounterRegistry::Global().Get(name);
}

}  // namespace

std::shared_ptr<void> CacheManager::Lookup(const CacheKey& key) {
  return LookupOrReload(key, /*prefetch=*/false);
}

bool CacheManager::Prefetch(const CacheKey& key) {
  bool handled = false;
  LookupOrReload(key, /*prefetch=*/true, &handled);
  return handled;
}

std::shared_ptr<void> CacheManager::LookupOrReload(const CacheKey& key,
                                                   bool prefetch,
                                                   bool* handled) {
  for (;;) {
    Step step = Step::kReturn;
    std::shared_ptr<void> result;
    SpillCodec codec;
    PartitionFetcher fetcher;
    std::vector<SpillJob> jobs;
    AsyncExecutor* io = nullptr;
    {
      support::UniqueLock lock(mutex_);
      step = ResolveLocked(key, prefetch, lock, &result, &codec, &fetcher,
                           &jobs, handled);
      io = io_;
    }
    FlushSpillJobs(std::move(jobs), io);
    switch (step) {
      case Step::kReturn:
        return result;
      case Step::kRetry:
        continue;
      case Step::kReload:
        return FinishReload(key, prefetch, codec);
      case Step::kFetch:
        return FinishFetch(key, fetcher);
    }
  }
}

CacheManager::Step CacheManager::ResolveLocked(
    const CacheKey& key, bool prefetch, support::UniqueLock& lock,
    std::shared_ptr<void>* result, SpillCodec* codec,
    PartitionFetcher* fetcher, std::vector<SpillJob>* jobs, bool* handled) {
  // Every resolution counts as "handled" for a prefetch except the
  // explicit no-op fall-through below (nothing cached, spilled, or
  // fetchable) — that one is the chain's cue to try a coarser target.
  if (handled != nullptr) *handled = true;
  static std::atomic<std::uint64_t>& hits = CacheCounter("cache.hits");
  static std::atomic<std::uint64_t>& misses = CacheCounter("cache.misses");
  static std::atomic<std::uint64_t>& reloads = CacheCounter("cache.reloads");
  static std::atomic<std::uint64_t>& prefetch_reloads =
      CacheCounter("exec.prefetch_reloads");
  static std::atomic<std::uint64_t>& prefetch_declined =
      CacheCounter("exec.prefetch_declined");
  static std::atomic<std::uint64_t>& io_wait_nanos =
      CacheCounter("exec.io_wait_nanos");

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    *result = it->second.value;
    if (prefetch) return Step::kReturn;  // already warm; leave LRU alone
    ++stats_.hits;
    hits.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("cache", "hit",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition)});
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // move to front
    return Step::kReturn;
  }

  if (InflightLocked(key)) {
    // Another thread (usually the I/O lane) is already reloading this
    // key. A prefetch has nothing to add; a lookup waits for the value —
    // that wait IS the overlap win when the lane started early enough.
    if (prefetch) return Step::kReturn;
    PhaseTimer io_wait_phase(TaskPhase::kIoWait);
    Stopwatch wait_watch;
    inflight_cv_.wait(lock, [this, &key]() SS_REQUIRES(mutex_) {
      return !InflightLocked(key);
    });
    io_wait_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, wait_watch.ElapsedNanos())),
        std::memory_order_relaxed);
    return Step::kRetry;
  }

  auto sit = spilled_.find(key);
  if (sit == spilled_.end()) {
    if (prefetch) {
      // Not cached, not spilled — but a dataset with a registered
      // fetcher can be materialized straight from its backing store, so
      // the prefetch lane streams the frame in ahead of the compute
      // wave. Demand lookups never take this path: their miss recomputes
      // through the node, which reads the store itself.
      auto fit = fetchers_.find(key.node_id);
      if (fit != fetchers_.end()) {
        // The frame's decoded size is unknown until fetched; size the
        // admission by the mean resident partition instead.
        const std::uint64_t hint =
            entries_.empty() ? 0 : stats_.bytes_cached / entries_.size();
        if (PrefetchWouldEvictLocked(hint)) {
          prefetch_declined.fetch_add(1, std::memory_order_relaxed);
          return Step::kReturn;
        }
        inflight_.push_back(key);
        *fetcher = fit->second;
        return Step::kFetch;
      }
      if (handled != nullptr) *handled = false;
    } else {
      ++stats_.misses;
      misses.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().Instant("cache", "miss",
                               {Arg("dataset", key.node_id),
                                Arg("partition", key.partition)});
    }
    *result = nullptr;
    return Step::kReturn;
  }

  if (prefetch && PrefetchWouldEvictLocked(sit->second.bytes)) {
    // Spilled, but re-admitting would evict someone else — a prefetch
    // never trades resident partitions for speculative ones.
    prefetch_declined.fetch_add(1, std::memory_order_relaxed);
    *result = nullptr;
    return Step::kReturn;
  }

  if (sit->second.pending_value != nullptr) {
    // The background frame write hasn't landed yet, so the decoded value
    // is still at hand: re-admit it with no frame I/O at all. spill_valid
    // stays false — the in-flight job sees it was superseded and erases
    // whatever frame it wrote.
    std::shared_ptr<void> value = sit->second.pending_value;
    SpilledEntry spilled = std::move(sit->second);
    spilled_.erase(sit);
    lru_.push_front(key);
    entries_[key] = Entry{value,
                          spilled.bytes,
                          spilled.node,
                          spilled.compute_seconds,
                          std::move(spilled.codec),
                          /*spill_valid=*/false,
                          lru_.begin()};
    stats_.bytes_cached += spilled.bytes;
    ++stats_.reloads;
    reloads.fetch_add(1, std::memory_order_relaxed);
    if (prefetch) {
      prefetch_reloads.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++stats_.hits;
      hits.fetch_add(1, std::memory_order_relaxed);
    }
    Tracer::Global().Instant("spill", "reload (pending write)",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition)});
    EvictIfNeededLocked(jobs);
    *result = value;
    return Step::kReturn;
  }

  // Claim the reload; the frame read + decode happens with the lock
  // released so hits on other keys (and other reloads) proceed.
  inflight_.push_back(key);
  *codec = sit->second.codec;
  return Step::kReload;
}

std::shared_ptr<void> CacheManager::FinishReload(const CacheKey& key,
                                                 bool prefetch,
                                                 const SpillCodec& codec) {
  static std::atomic<std::uint64_t>& hits = CacheCounter("cache.hits");
  static std::atomic<std::uint64_t>& misses = CacheCounter("cache.misses");
  static std::atomic<std::uint64_t>& reloads = CacheCounter("cache.reloads");
  static std::atomic<std::uint64_t>& reload_nanos =
      CacheCounter("cache.reload_nanos");
  static std::atomic<std::uint64_t>& corrupt =
      CacheCounter("cache.spill_corrupt");
  static std::atomic<std::uint64_t>& prefetch_reloads =
      CacheCounter("exec.prefetch_reloads");

  // The reload (frame read + checksum + decode) is decode time on the
  // task that triggered the miss; on the I/O lane the timer is inert and
  // the surrounding `prefetch` trace span carries the cost instead.
  std::shared_ptr<void> value;
  Status failure = Status::Ok();
  std::uint64_t nanos = 0;
  {
    PhaseTimer decode_phase(TaskPhase::kDecode);
    Stopwatch stopwatch;
    Result<std::vector<std::uint8_t>> payload = spill_.Get(key);
    if (payload.ok()) {
      value = codec.decode(payload.value());
    } else {
      failure = payload.status();
    }
    nanos = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, stopwatch.ElapsedNanos()));
  }

  std::shared_ptr<void> result;
  std::vector<SpillJob> jobs;
  AsyncExecutor* io = nullptr;
  {
    support::MutexLock lock(mutex_);
    io = io_;
    inflight_.erase(std::find(inflight_.begin(), inflight_.end(), key));
    auto entry_it = entries_.find(key);
    auto sit = spilled_.find(key);
    if (entry_it != entries_.end()) {
      // A concurrent Insert refreshed the key while we were decoding; its
      // value supersedes ours (and already dropped the stale frame).
      result = entry_it->second.value;
      if (!prefetch) {
        ++stats_.hits;
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (value == nullptr) {
      // Corrupt or missing frame: degrade to a plain miss so the caller
      // recomputes from lineage. Results never depend on the spill tier.
      ++stats_.spill_corrupt;
      corrupt.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().Instant("spill", "corrupt",
                               {Arg("dataset", key.node_id),
                                Arg("partition", key.partition),
                                Arg("error", failure.ToString())});
      SS_LOG(kWarn, "spill")
          << "spill reload failed, falling back to lineage: "
          << failure.ToString();
      if (sit != spilled_.end()) spilled_.erase(sit);
      if (!prefetch) {
        ++stats_.misses;
        misses.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (sit == spilled_.end()) {
      // Dropped (Unpersist/Clear) while the reload was in flight; the
      // decoded bytes are orphaned and the caller recomputes.
      if (!prefetch) {
        ++stats_.misses;
        misses.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Re-admit to the memory tier as MRU; the frame stays valid so a
      // re-eviction skips the encode + write.
      SpilledEntry spilled = std::move(sit->second);
      spilled_.erase(sit);
      lru_.push_front(key);
      entries_[key] = Entry{value,
                            spilled.bytes,
                            spilled.node,
                            spilled.compute_seconds,
                            std::move(spilled.codec),
                            /*spill_valid=*/true,
                            lru_.begin()};
      stats_.bytes_cached += spilled.bytes;
      ++stats_.reloads;
      stats_.reload_nanos += nanos;
      reloads.fetch_add(1, std::memory_order_relaxed);
      reload_nanos.fetch_add(nanos, std::memory_order_relaxed);
      const double per_byte =
          (static_cast<double>(nanos) / 1e9) /
          static_cast<double>(std::max<std::uint64_t>(1, spilled.bytes));
      reload_seconds_per_byte_ =
          0.7 * reload_seconds_per_byte_ + 0.3 * per_byte;
      if (prefetch) {
        prefetch_reloads.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++stats_.hits;
        hits.fetch_add(1, std::memory_order_relaxed);
      }
      Tracer::Global().Instant("spill", "reload",
                               {Arg("dataset", key.node_id),
                                Arg("partition", key.partition),
                                Arg("bytes", stats_.bytes_cached),
                                Arg("nanos", nanos)});
      EvictIfNeededLocked(&jobs);  // re-admission may go over budget
      result = value;
    }
  }
  inflight_cv_.notify_all();
  FlushSpillJobs(std::move(jobs), io);
  return result;
}

std::shared_ptr<void> CacheManager::FinishFetch(
    const CacheKey& key, const PartitionFetcher& fetcher) {
  static std::atomic<std::uint64_t>& prefetch_frames =
      CacheCounter("store.prefetch_frames");

  // The store read + decode runs with the lock released; concurrent
  // lookups of other keys (and a demand lookup of THIS key, which waits
  // on the in-flight claim) proceed.
  FetchedPartition fetched;
  {
    PhaseTimer fetch_phase(TaskPhase::kFetch);
    fetched = fetcher(key.partition);
  }

  std::shared_ptr<void> result;
  std::vector<SpillJob> jobs;
  AsyncExecutor* io = nullptr;
  {
    support::MutexLock lock(mutex_);
    io = io_;
    inflight_.erase(std::find(inflight_.begin(), inflight_.end(), key));
    auto entry_it = entries_.find(key);
    if (entry_it != entries_.end()) {
      // A concurrent insert (the demand compute finished first) already
      // holds the authoritative value.
      result = entry_it->second.value;
    } else if (fetched.value != nullptr && !spilled_.count(key)) {
      // Admit as MRU with an EMPTY codec: evicting a store-backed
      // partition is a plain drop — the store is its spill tier, and
      // writing a second spill copy would double the I/O for nothing.
      // `node` 0 = the fetch ran on no simulated node; a node-failure
      // drop of node 0's partitions just re-fetches.
      lru_.push_front(key);
      entries_[key] = Entry{fetched.value,        fetched.bytes,
                            /*node=*/0,           fetched.fetch_seconds,
                            SpillCodec{},         /*spill_valid=*/false,
                            lru_.begin()};
      stats_.bytes_cached += fetched.bytes;
      prefetch_frames.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().Instant("store", "prefetch admit",
                               {Arg("dataset", key.node_id),
                                Arg("partition", key.partition),
                                Arg("bytes", fetched.bytes)});
      EvictIfNeededLocked(&jobs);
      result = fetched.value;
    }
    // Fetch failed (null value): admit nothing. The demand lookup will
    // miss, recompute through the node, and surface the store error.
  }
  inflight_cv_.notify_all();
  FlushSpillJobs(std::move(jobs), io);
  return result;
}

void CacheManager::RegisterFetcher(std::uint64_t node_id,
                                   PartitionFetcher fetcher) {
  SS_CHECK(fetcher != nullptr);
  support::MutexLock lock(mutex_);
  fetchers_[node_id] = std::move(fetcher);
}

void CacheManager::UnregisterFetcher(std::uint64_t node_id) {
  support::UniqueLock lock(mutex_);
  fetchers_.erase(node_id);
  // Wait out in-flight fetches of this dataset so the fetcher's captures
  // (the mmap'd store) are provably unused when the caller tears down.
  inflight_cv_.wait(lock, [this, node_id]() SS_REQUIRES(mutex_) {
    return std::none_of(
        inflight_.begin(), inflight_.end(),
        [node_id](const CacheKey& key) { return key.node_id == node_id; });
  });
}

void CacheManager::Insert(const CacheKey& key, std::shared_ptr<void> value,
                          std::uint64_t bytes, int node,
                          double compute_seconds, SpillCodec codec) {
  static std::atomic<std::uint64_t>& insertions =
      CacheCounter("cache.insertions");
  std::vector<SpillJob> jobs;
  AsyncExecutor* io = nullptr;
  {
    support::MutexLock lock(mutex_);
    io = io_;
    EraseLocked(key);        // refresh semantics...
    DropSpilledLocked(key);  // ...including any stale spill copy
    lru_.push_front(key);
    entries_[key] = Entry{std::move(value),  bytes,
                          node,              compute_seconds,
                          std::move(codec),  /*spill_valid=*/false,
                          lru_.begin()};
    stats_.bytes_cached += bytes;
    ++stats_.insertions;
    insertions.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("cache", "put",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition),
                              Arg("bytes", bytes), Arg("node", node)});
    EvictIfNeededLocked(&jobs);
  }
  FlushSpillJobs(std::move(jobs), io);
}

bool CacheManager::PrefetchWouldEvictLocked(std::uint64_t bytes_hint) const {
  SS_ASSERT_HELD(mutex_);
  return capacity_bytes_ != 0 &&
         stats_.bytes_cached + bytes_hint > capacity_bytes_;
}

double CacheManager::RestoreCostPerByteLocked(const Entry& entry) const {
  SS_ASSERT_HELD(mutex_);
  // If the entry can live in the spill tier, evicting it costs a reload;
  // otherwise the only way back is a lineage recompute.
  const double restore_seconds =
      spill_enabled() && entry.codec.usable()
          ? reload_seconds_per_byte_ * static_cast<double>(entry.bytes)
          : entry.compute_seconds;
  return restore_seconds /
         static_cast<double>(std::max<std::uint64_t>(1, entry.bytes));
}

void CacheManager::EvictIfNeededLocked(std::vector<SpillJob>* jobs) {
  SS_ASSERT_HELD(mutex_);
  if (capacity_bytes_ == 0) return;
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    EvictOneLocked(jobs);
  }
}

void CacheManager::EvictOneLocked(std::vector<SpillJob>* jobs) {
  SS_ASSERT_HELD(mutex_);
  static std::atomic<std::uint64_t>& evictions =
      CacheCounter("cache.evictions");
  static std::atomic<std::uint64_t>& spills = CacheCounter("cache.spills");
  static std::atomic<std::uint64_t>& spill_bytes =
      CacheCounter("cache.spill_bytes");

  // Victim = cheapest restore cost per byte; ties fall to the least
  // recently used. The MRU front entry (just inserted or reloaded) is
  // exempt, preserving the old "never evict the only entry" guarantee.
  auto victim_it = lru_.end();
  double victim_cost = 0.0;
  for (auto it = std::next(lru_.begin()); it != lru_.end(); ++it) {
    const double cost = RestoreCostPerByteLocked(entries_.at(*it));
    if (victim_it == lru_.end() || cost <= victim_cost) {
      victim_it = it;
      victim_cost = cost;
    }
  }
  SS_CHECK(victim_it != lru_.end());
  const CacheKey victim = *victim_it;
  Entry& entry = entries_.at(victim);

  if (spill_enabled() && entry.codec.usable()) {
    if (entry.spill_valid) {
      // The spill tier already holds a current frame: move tiers free.
      Tracer::Global().Instant("spill", "spill",
                               {Arg("dataset", victim.node_id),
                                Arg("partition", victim.partition),
                                Arg("bytes", 0)});
      spilled_[victim] = SpilledEntry{entry.bytes, entry.node,
                                      entry.compute_seconds,
                                      std::move(entry.codec),
                                      /*pending_value=*/nullptr};
    } else if (spill_async_ && io_ != nullptr && jobs != nullptr) {
      // Defer the encode + write to the I/O lane; the value rides along
      // in pending_value so lookups before the write lands stay cheap.
      // Counted (cache.spills / exec.spill_async_writes) on completion.
      SpillCodec codec = entry.codec;
      spilled_[victim] = SpilledEntry{entry.bytes, entry.node,
                                      entry.compute_seconds,
                                      std::move(entry.codec), entry.value};
      jobs->push_back(SpillJob{victim, entry.value, std::move(codec)});
      Tracer::Global().Instant("spill", "spill scheduled",
                               {Arg("dataset", victim.node_id),
                                Arg("partition", victim.partition)});
    } else {
      // Encode + frame write is spill-write time on the task whose
      // insert/reload forced this eviction.
      bool frame_ok = false;
      std::uint64_t payload_bytes = 0;
      {
        PhaseTimer spill_phase(TaskPhase::kSpillWrite);
        const std::vector<std::uint8_t> payload =
            entry.codec.encode(entry.value);
        payload_bytes = payload.size();
        const Status put = spill_.Put(victim, payload);
        frame_ok = put.ok();
        if (!frame_ok) {
          SS_LOG(kWarn, "spill") << "spill write failed, discarding instead: "
                                 << put.ToString();
        }
      }
      if (frame_ok) {
        ++stats_.spills;
        stats_.spill_bytes += payload_bytes;
        spills.fetch_add(1, std::memory_order_relaxed);
        spill_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
        Tracer::Global().Instant("spill", "spill",
                                 {Arg("dataset", victim.node_id),
                                  Arg("partition", victim.partition),
                                  Arg("bytes", payload_bytes)});
        spilled_[victim] = SpilledEntry{entry.bytes, entry.node,
                                        entry.compute_seconds,
                                        std::move(entry.codec),
                                        /*pending_value=*/nullptr};
      }
    }
  }
  Tracer::Global().Instant("cache", "evict",
                           {Arg("dataset", victim.node_id),
                            Arg("partition", victim.partition)});
  EraseLocked(victim);
  ++stats_.evictions;
  evictions.fetch_add(1, std::memory_order_relaxed);
}

void CacheManager::FlushSpillJobs(std::vector<SpillJob> jobs,
                                  AsyncExecutor* io) {
  for (SpillJob& job : jobs) {
    bool queued = false;
    // On a lane worker (a prefetch evicted entries), Enqueue would block
    // on the very queue this thread is supposed to drain — run inline.
    if (io != nullptr && !AsyncExecutor::OnLaneThread()) {
      SpillJob copy = job;
      queued = io->Enqueue(
          [this, moved = std::move(copy)]() { BackgroundSpillWrite(moved); });
    }
    // Lane gone (shutdown mid-flush) or running on the lane itself: the
    // frame still must exist — the spilled_ entry promises it — so write
    // it right here.
    if (!queued) BackgroundSpillWrite(job);
  }
}

void CacheManager::BackgroundSpillWrite(const SpillJob& job) {
  static std::atomic<std::uint64_t>& spills = CacheCounter("cache.spills");
  static std::atomic<std::uint64_t>& spill_bytes =
      CacheCounter("cache.spill_bytes");
  static std::atomic<std::uint64_t>& async_writes =
      CacheCounter("exec.spill_async_writes");
  static std::atomic<std::uint64_t>& async_failures =
      CacheCounter("exec.spill_async_failures");

  {
    // A key can be evicted, re-admitted from its pending value, and
    // evicted again before this job runs — each eviction queues a job for
    // the SAME value, and an earlier duplicate may already have written
    // the frame and cleared pending_value. Only the job the entry still
    // names (pending_value == our value) may write; everyone else must
    // leave the tier alone, or they would erase a frame the entry
    // promises (the reload then NotFounds and miscounts spill_corrupt).
    support::MutexLock lock(mutex_);
    auto it = spilled_.find(job.key);
    if (it == spilled_.end() ||
        it->second.pending_value.get() != job.value.get()) {
      return;
    }
  }

  const std::vector<std::uint8_t> payload = job.codec.encode(job.value);
  const Status put = spill_.Put(job.key, payload);

  support::MutexLock lock(mutex_);
  auto it = spilled_.find(job.key);
  const bool current = it != spilled_.end() &&
                       it->second.pending_value.get() == job.value.get();
  if (put.ok()) {
    if (current) {
      it->second.pending_value.reset();  // the frame is authoritative now
      ++stats_.spills;
      stats_.spill_bytes += payload.size();
      spills.fetch_add(1, std::memory_order_relaxed);
      spill_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
      async_writes.fetch_add(1, std::memory_order_relaxed);
      Tracer::Global().Instant("spill", "spill",
                               {Arg("dataset", job.key.node_id),
                                Arg("partition", job.key.partition),
                                Arg("bytes", payload.size())});
    } else if (it != spilled_.end()) {
      // Another write finalized (pending cleared: identical bytes — keys
      // decode deterministically) or superseded it (that job overwrites
      // next). Either way the entry still promises a frame: keep it.
    } else {
      // The spilled entry vanished while we wrote. If the key was
      // re-admitted to memory off its frame (spill_valid), the frame is
      // still promised; otherwise our write is an orphan — remove it.
      auto mem = entries_.find(job.key);
      const bool promised =
          mem != entries_.end() && mem->second.spill_valid;
      if (!promised) spill_.Erase(job.key);
    }
  } else {
    // Counted exactly once per lost frame; the entry is erased so the
    // next access degrades to a lineage recompute, never to wrong data.
    async_failures.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("spill", "async write failed",
                             {Arg("dataset", job.key.node_id),
                              Arg("partition", job.key.partition),
                              Arg("error", put.ToString())});
    SS_LOG(kWarn, "spill") << "async spill write failed, entry degrades to "
                           << "lineage recompute: " << put.ToString();
    if (current) spilled_.erase(it);
  }
}

bool CacheManager::InflightLocked(const CacheKey& key) const {
  SS_ASSERT_HELD(mutex_);
  return std::find(inflight_.begin(), inflight_.end(), key) !=
         inflight_.end();
}

void CacheManager::SetIoExecutor(AsyncExecutor* io, bool spill_async) {
  support::MutexLock lock(mutex_);
  io_ = io;
  spill_async_ = spill_async && io != nullptr;
}

void CacheManager::EraseLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  stats_.bytes_cached -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void CacheManager::DropSpilledLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return;
  spilled_.erase(it);
  spill_.Erase(key);
}

void CacheManager::DropDataset(std::uint64_t node_id) {
  support::MutexLock lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (key.node_id == node_id) victims.push_back(key);
  }
  for (const CacheKey& key : victims) EraseLocked(key);
  victims.clear();
  for (const auto& [key, entry] : spilled_) {
    if (key.node_id == node_id) victims.push_back(key);
  }
  for (const CacheKey& key : victims) DropSpilledLocked(key);
}

int CacheManager::DropNode(int node) {
  static std::atomic<std::uint64_t>& dropped =
      CacheCounter("cache.dropped_by_failure");
  support::MutexLock lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (entry.node == node) victims.push_back(key);
  }
  for (const CacheKey& key : victims) {
    // The memory copy dies with the node, but a valid spill frame models
    // reliable storage and survives: the next miss reloads instead of
    // recomputing, exactly like Spark disk blocks outliving an executor.
    Entry& entry = entries_.at(key);
    if (spill_enabled() && entry.spill_valid && entry.codec.usable()) {
      spilled_[key] = SpilledEntry{entry.bytes, entry.node,
                                   entry.compute_seconds,
                                   std::move(entry.codec),
                                   /*pending_value=*/nullptr};
    }
    EraseLocked(key);
  }
  stats_.dropped_by_failure += victims.size();
  dropped.fetch_add(victims.size(), std::memory_order_relaxed);
  if (!victims.empty()) {
    SS_LOG(kInfo, "cache") << "node " << node << " failure dropped "
                           << victims.size() << " cached partitions";
  }
  return static_cast<int>(victims.size());
}

void CacheManager::Clear() {
  support::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  spilled_.clear();
  spill_.Clear();
  stats_.bytes_cached = 0;
}

void CacheManager::SetCapacityBytes(std::uint64_t capacity_bytes) {
  std::vector<SpillJob> jobs;
  AsyncExecutor* io = nullptr;
  {
    support::MutexLock lock(mutex_);
    io = io_;
    capacity_bytes_ = capacity_bytes;
    EvictIfNeededLocked(&jobs);
  }
  FlushSpillJobs(std::move(jobs), io);
}

int CacheManager::InjureSpill(bool drop) {
  // Let in-flight background writes land first so the injury hits every
  // frame the run believes it has (and no write resurrects one after).
  AsyncExecutor* io = nullptr;
  {
    support::MutexLock lock(mutex_);
    io = io_;
  }
  if (io != nullptr) io->Drain();
  support::MutexLock lock(mutex_);
  const int injured = drop ? spill_.DropAll() : spill_.CorruptAll();
  // Frames belonging to memory-resident entries are garbage now; force a
  // fresh encode + write if those entries are evicted again.
  for (auto& [key, entry] : entries_) entry.spill_valid = false;
  Tracer::Global().Instant("spill", drop ? "injected loss" : "injected corruption",
                           {Arg("frames", injured)});
  SS_LOG(kInfo, "spill") << "injected spill "
                         << (drop ? "loss" : "corruption") << " of "
                         << injured << " frames";
  return injured;
}

CacheStats CacheManager::stats() const {
  support::MutexLock lock(mutex_);
  CacheStats stats = stats_;
  stats.bytes_spilled = spill_.bytes_stored();
  return stats;
}

std::size_t CacheManager::entry_count() const {
  support::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t CacheManager::spilled_count() const {
  support::MutexLock lock(mutex_);
  return spilled_.size();
}

}  // namespace ss::engine
