#include "engine/cache_manager.hpp"

#include <algorithm>
#include <vector>

#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace ss::engine {

namespace {

std::atomic<std::uint64_t>& CacheCounter(const char* name) {
  return CounterRegistry::Global().Get(name);
}

}  // namespace

std::shared_ptr<void> CacheManager::Lookup(const CacheKey& key) {
  static std::atomic<std::uint64_t>& hits = CacheCounter("cache.hits");
  static std::atomic<std::uint64_t>& misses = CacheCounter("cache.misses");
  support::MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    hits.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("cache", "hit",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition)});
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // move to front
    return it->second.value;
  }
  if (std::shared_ptr<void> reloaded = ReloadFromSpillLocked(key)) {
    // Reloads count as hits: the caller gets the partition without a
    // lineage recompute, which is the property hit rates measure.
    ++stats_.hits;
    hits.fetch_add(1, std::memory_order_relaxed);
    return reloaded;
  }
  ++stats_.misses;
  misses.fetch_add(1, std::memory_order_relaxed);
  Tracer::Global().Instant("cache", "miss",
                           {Arg("dataset", key.node_id),
                            Arg("partition", key.partition)});
  return nullptr;
}

std::shared_ptr<void> CacheManager::ReloadFromSpillLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  static std::atomic<std::uint64_t>& reloads = CacheCounter("cache.reloads");
  static std::atomic<std::uint64_t>& reload_nanos =
      CacheCounter("cache.reload_nanos");
  static std::atomic<std::uint64_t>& corrupt =
      CacheCounter("cache.spill_corrupt");
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return nullptr;

  // The reload (frame read + checksum + decode) is decode time on the
  // task that triggered the miss.
  PhaseTimer decode_phase(TaskPhase::kDecode);
  Stopwatch stopwatch;
  Result<std::vector<std::uint8_t>> payload = spill_.Get(key);
  if (!payload.ok()) {
    // Corrupt or missing frame: degrade to a plain miss so the caller
    // recomputes from lineage. Results never depend on the spill tier.
    ++stats_.spill_corrupt;
    corrupt.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("spill", "corrupt",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition),
                              Arg("error", payload.status().ToString())});
    SS_LOG(kWarn, "spill") << "spill reload failed, falling back to lineage: "
                           << payload.status().ToString();
    spilled_.erase(it);
    return nullptr;
  }

  SpilledEntry spilled = std::move(it->second);
  std::shared_ptr<void> value = spilled.codec.decode(payload.value());
  const std::uint64_t nanos =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, stopwatch.ElapsedNanos()));
  spilled_.erase(it);

  // Re-admit to the memory tier as MRU; the frame stays valid so a
  // re-eviction skips the encode + write.
  lru_.push_front(key);
  entries_[key] =
      Entry{value,       spilled.bytes,           spilled.node,
            spilled.compute_seconds, std::move(spilled.codec),
            /*spill_valid=*/true,    lru_.begin()};
  stats_.bytes_cached += spilled.bytes;
  ++stats_.reloads;
  stats_.reload_nanos += nanos;
  reloads.fetch_add(1, std::memory_order_relaxed);
  reload_nanos.fetch_add(nanos, std::memory_order_relaxed);
  const double per_byte = (static_cast<double>(nanos) / 1e9) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, spilled.bytes));
  reload_seconds_per_byte_ =
      0.7 * reload_seconds_per_byte_ + 0.3 * per_byte;
  Tracer::Global().Instant("spill", "reload",
                           {Arg("dataset", key.node_id),
                            Arg("partition", key.partition),
                            Arg("bytes", stats_.bytes_cached),
                            Arg("nanos", nanos)});
  EvictIfNeededLocked();  // re-admission may push memory over budget
  return value;
}

void CacheManager::Insert(const CacheKey& key, std::shared_ptr<void> value,
                          std::uint64_t bytes, int node,
                          double compute_seconds, SpillCodec codec) {
  static std::atomic<std::uint64_t>& insertions =
      CacheCounter("cache.insertions");
  support::MutexLock lock(mutex_);
  EraseLocked(key);         // refresh semantics...
  DropSpilledLocked(key);   // ...including any stale spill copy
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value),  bytes,
                        node,              compute_seconds,
                        std::move(codec),  /*spill_valid=*/false,
                        lru_.begin()};
  stats_.bytes_cached += bytes;
  ++stats_.insertions;
  insertions.fetch_add(1, std::memory_order_relaxed);
  Tracer::Global().Instant("cache", "put",
                           {Arg("dataset", key.node_id),
                            Arg("partition", key.partition),
                            Arg("bytes", bytes), Arg("node", node)});
  EvictIfNeededLocked();
}

double CacheManager::RestoreCostPerByteLocked(const Entry& entry) const {
  SS_ASSERT_HELD(mutex_);
  // If the entry can live in the spill tier, evicting it costs a reload;
  // otherwise the only way back is a lineage recompute.
  const double restore_seconds =
      spill_enabled() && entry.codec.usable()
          ? reload_seconds_per_byte_ * static_cast<double>(entry.bytes)
          : entry.compute_seconds;
  return restore_seconds /
         static_cast<double>(std::max<std::uint64_t>(1, entry.bytes));
}

void CacheManager::EvictIfNeededLocked() {
  SS_ASSERT_HELD(mutex_);
  if (capacity_bytes_ == 0) return;
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    EvictOneLocked();
  }
}

void CacheManager::EvictOneLocked() {
  SS_ASSERT_HELD(mutex_);
  static std::atomic<std::uint64_t>& evictions =
      CacheCounter("cache.evictions");
  static std::atomic<std::uint64_t>& spills = CacheCounter("cache.spills");
  static std::atomic<std::uint64_t>& spill_bytes =
      CacheCounter("cache.spill_bytes");

  // Victim = cheapest restore cost per byte; ties fall to the least
  // recently used. The MRU front entry (just inserted or reloaded) is
  // exempt, preserving the old "never evict the only entry" guarantee.
  auto victim_it = lru_.end();
  double victim_cost = 0.0;
  for (auto it = std::next(lru_.begin()); it != lru_.end(); ++it) {
    const double cost = RestoreCostPerByteLocked(entries_.at(*it));
    if (victim_it == lru_.end() || cost <= victim_cost) {
      victim_it = it;
      victim_cost = cost;
    }
  }
  SS_CHECK(victim_it != lru_.end());
  const CacheKey victim = *victim_it;
  Entry& entry = entries_.at(victim);

  if (spill_enabled() && entry.codec.usable()) {
    bool frame_ok = entry.spill_valid;
    std::uint64_t payload_bytes = 0;
    if (!frame_ok) {
      // Encode + frame write is spill-write time on the task whose
      // insert/reload forced this eviction.
      PhaseTimer spill_phase(TaskPhase::kSpillWrite);
      const std::vector<std::uint8_t> payload = entry.codec.encode(entry.value);
      payload_bytes = payload.size();
      const Status put = spill_.Put(victim, payload);
      frame_ok = put.ok();
      if (!frame_ok) {
        SS_LOG(kWarn, "spill") << "spill write failed, discarding instead: "
                               << put.ToString();
      }
    }
    if (frame_ok) {
      if (payload_bytes > 0) {
        ++stats_.spills;
        stats_.spill_bytes += payload_bytes;
        spills.fetch_add(1, std::memory_order_relaxed);
        spill_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
      }
      Tracer::Global().Instant("spill", "spill",
                               {Arg("dataset", victim.node_id),
                                Arg("partition", victim.partition),
                                Arg("bytes", payload_bytes)});
      spilled_[victim] = SpilledEntry{entry.bytes, entry.node,
                                      entry.compute_seconds,
                                      std::move(entry.codec)};
    }
  }
  Tracer::Global().Instant("cache", "evict",
                           {Arg("dataset", victim.node_id),
                            Arg("partition", victim.partition)});
  EraseLocked(victim);
  ++stats_.evictions;
  evictions.fetch_add(1, std::memory_order_relaxed);
}

void CacheManager::EraseLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  stats_.bytes_cached -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void CacheManager::DropSpilledLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return;
  spilled_.erase(it);
  spill_.Erase(key);
}

void CacheManager::DropDataset(std::uint64_t node_id) {
  support::MutexLock lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (key.node_id == node_id) victims.push_back(key);
  }
  for (const CacheKey& key : victims) EraseLocked(key);
  victims.clear();
  for (const auto& [key, entry] : spilled_) {
    if (key.node_id == node_id) victims.push_back(key);
  }
  for (const CacheKey& key : victims) DropSpilledLocked(key);
}

int CacheManager::DropNode(int node) {
  static std::atomic<std::uint64_t>& dropped =
      CacheCounter("cache.dropped_by_failure");
  support::MutexLock lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (entry.node == node) victims.push_back(key);
  }
  for (const CacheKey& key : victims) {
    // The memory copy dies with the node, but a valid spill frame models
    // reliable storage and survives: the next miss reloads instead of
    // recomputing, exactly like Spark disk blocks outliving an executor.
    Entry& entry = entries_.at(key);
    if (spill_enabled() && entry.spill_valid && entry.codec.usable()) {
      spilled_[key] = SpilledEntry{entry.bytes, entry.node,
                                   entry.compute_seconds,
                                   std::move(entry.codec)};
    }
    EraseLocked(key);
  }
  stats_.dropped_by_failure += victims.size();
  dropped.fetch_add(victims.size(), std::memory_order_relaxed);
  if (!victims.empty()) {
    SS_LOG(kInfo, "cache") << "node " << node << " failure dropped "
                           << victims.size() << " cached partitions";
  }
  return static_cast<int>(victims.size());
}

void CacheManager::Clear() {
  support::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  spilled_.clear();
  spill_.Clear();
  stats_.bytes_cached = 0;
}

void CacheManager::SetCapacityBytes(std::uint64_t capacity_bytes) {
  support::MutexLock lock(mutex_);
  capacity_bytes_ = capacity_bytes;
  EvictIfNeededLocked();
}

int CacheManager::InjureSpill(bool drop) {
  support::MutexLock lock(mutex_);
  const int injured = drop ? spill_.DropAll() : spill_.CorruptAll();
  // Frames belonging to memory-resident entries are garbage now; force a
  // fresh encode + write if those entries are evicted again.
  for (auto& [key, entry] : entries_) entry.spill_valid = false;
  Tracer::Global().Instant("spill", drop ? "injected loss" : "injected corruption",
                           {Arg("frames", injured)});
  SS_LOG(kInfo, "spill") << "injected spill "
                         << (drop ? "loss" : "corruption") << " of "
                         << injured << " frames";
  return injured;
}

CacheStats CacheManager::stats() const {
  support::MutexLock lock(mutex_);
  CacheStats stats = stats_;
  stats.bytes_spilled = spill_.bytes_stored();
  return stats;
}

std::size_t CacheManager::entry_count() const {
  support::MutexLock lock(mutex_);
  return entries_.size();
}

std::size_t CacheManager::spilled_count() const {
  support::MutexLock lock(mutex_);
  return spilled_.size();
}

}  // namespace ss::engine
