#include "engine/cache_manager.hpp"

#include <vector>

#include "engine/trace.hpp"
#include "support/log.hpp"

namespace ss::engine {

namespace {

std::atomic<std::uint64_t>& CacheCounter(const char* name) {
  return CounterRegistry::Global().Get(name);
}

}  // namespace

std::shared_ptr<void> CacheManager::Lookup(const CacheKey& key) {
  static std::atomic<std::uint64_t>& hits = CacheCounter("cache.hits");
  static std::atomic<std::uint64_t>& misses = CacheCounter("cache.misses");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    misses.fetch_add(1, std::memory_order_relaxed);
    Tracer::Global().Instant("cache", "miss",
                             {Arg("dataset", key.node_id),
                              Arg("partition", key.partition)});
    return nullptr;
  }
  ++stats_.hits;
  hits.fetch_add(1, std::memory_order_relaxed);
  Tracer::Global().Instant("cache", "hit",
                           {Arg("dataset", key.node_id),
                            Arg("partition", key.partition)});
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // move to front
  return it->second.value;
}

void CacheManager::Insert(const CacheKey& key, std::shared_ptr<void> value,
                          std::uint64_t bytes, int node) {
  static std::atomic<std::uint64_t>& insertions =
      CacheCounter("cache.insertions");
  std::lock_guard<std::mutex> lock(mutex_);
  EraseLocked(key);  // refresh semantics
  lru_.push_front(key);
  entries_[key] = Entry{std::move(value), bytes, node, lru_.begin()};
  stats_.bytes_cached += bytes;
  ++stats_.insertions;
  insertions.fetch_add(1, std::memory_order_relaxed);
  Tracer::Global().Instant("cache", "put",
                           {Arg("dataset", key.node_id),
                            Arg("partition", key.partition),
                            Arg("bytes", bytes), Arg("node", node)});
  EvictIfNeededLocked();
}

void CacheManager::EvictIfNeededLocked() {
  SS_ASSERT_HELD(mutex_);
  static std::atomic<std::uint64_t>& evictions =
      CacheCounter("cache.evictions");
  if (capacity_bytes_ == 0) return;
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    const CacheKey victim = lru_.back();
    Tracer::Global().Instant("cache", "evict",
                             {Arg("dataset", victim.node_id),
                              Arg("partition", victim.partition)});
    EraseLocked(victim);
    ++stats_.evictions;
    evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void CacheManager::EraseLocked(const CacheKey& key) {
  SS_ASSERT_HELD(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  stats_.bytes_cached -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void CacheManager::DropDataset(std::uint64_t node_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (key.node_id == node_id) victims.push_back(key);
  }
  for (const CacheKey& key : victims) EraseLocked(key);
}

int CacheManager::DropNode(int node) {
  static std::atomic<std::uint64_t>& dropped =
      CacheCounter("cache.dropped_by_failure");
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CacheKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (entry.node == node) victims.push_back(key);
  }
  for (const CacheKey& key : victims) EraseLocked(key);
  stats_.dropped_by_failure += victims.size();
  dropped.fetch_add(victims.size(), std::memory_order_relaxed);
  if (!victims.empty()) {
    SS_LOG(kInfo, "cache") << "node " << node << " failure dropped "
                           << victims.size() << " cached partitions";
  }
  return static_cast<int>(victims.size());
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.bytes_cached = 0;
}

CacheStats CacheManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CacheManager::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace ss::engine
