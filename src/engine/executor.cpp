#include "engine/executor.hpp"

#include <algorithm>

#include "engine/trace.hpp"
#include "support/log.hpp"

namespace ss::engine {

namespace {

std::atomic<std::uint64_t>& ExecCounter(const char* name) {
  return CounterRegistry::Global().Get(name);
}

thread_local bool t_on_io_lane = false;

}  // namespace

bool AsyncExecutor::OnLaneThread() { return t_on_io_lane; }

AsyncExecutor::AsyncExecutor(ExecConfig config)
    : config_(config),
      queue_(support::lock_rank::kExecQueue,
             std::max<std::size_t>(1, config.queue_bound)) {
  const int threads = std::max(1, config_.io_threads);
  io_workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    io_workers_.emplace_back([this, i]() { IoLoop(i); });
  }
  SS_LOG(kDebug, "engine") << "io lane up: " << threads
                           << " threads, queue bound " << config_.queue_bound
                           << ", prefetch depth " << config_.prefetch_depth;
}

AsyncExecutor::~AsyncExecutor() {
  queue_.Close();
  // Workers drain the residue (Pop returns queued jobs after Close) before
  // exiting, so accepted spill writes always reach the spill tier.
  for (std::thread& worker : io_workers_) worker.join();
}

bool AsyncExecutor::Enqueue(std::function<void()> job) {
  static std::atomic<std::uint64_t>& backpressure =
      ExecCounter("exec.backpressure_waits");
  {
    support::MutexLock lock(state_mutex_);
    ++pending_;
  }
  // Probe first so a blocked (backpressured) enqueue is observable.
  if (!queue_.TryPush(job)) {
    backpressure.fetch_add(1, std::memory_order_relaxed);
    if (!queue_.Push(std::move(job))) {
      support::MutexLock lock(state_mutex_);
      --pending_;
      return false;  // shut down; caller runs the job inline
    }
  }
  return true;
}

bool AsyncExecutor::TryEnqueue(std::function<void()> job) {
  {
    support::MutexLock lock(state_mutex_);
    ++pending_;
  }
  if (queue_.TryPush(std::move(job))) return true;
  support::MutexLock lock(state_mutex_);
  --pending_;
  return false;
}

void AsyncExecutor::Drain() {
  support::UniqueLock lock(state_mutex_);
  idle_cv_.wait(lock, [this]() SS_REQUIRES(state_mutex_) {
    return pending_ == 0;
  });
}

std::uint64_t AsyncExecutor::pending() const {
  support::MutexLock lock(state_mutex_);
  return pending_;
}

void AsyncExecutor::IoLoop(int worker_index) {
  static std::atomic<std::uint64_t>& io_jobs = ExecCounter("exec.io_jobs");
  (void)worker_index;
  t_on_io_lane = true;
  while (std::optional<std::function<void()>> job = queue_.Pop()) {
    (*job)();
    io_jobs.fetch_add(1, std::memory_order_relaxed);
    {
      support::MutexLock lock(state_mutex_);
      --pending_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ss::engine
