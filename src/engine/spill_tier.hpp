// Second storage tier of the partition cache: checksummed spill frames,
// kept either in a dfs::BlockStore (the default — the same container that
// backs the mini-DFS DataNodes) or as real files under a spill directory.
//
// The CacheManager writes a frame here when it evicts a spillable entry
// and reads it back on a miss, so a budget-constrained cache degrades to
// "reload from local reliable storage" instead of "recompute the lineage"
// — Spark's MEMORY_AND_DISK storage level. Frames are framed with the
// binary_io writer and carry an FNV-1a checksum over the payload; a
// corrupt or missing frame surfaces as a non-OK Get, which the cache
// turns into a plain miss (lineage recomputes). The fault injector uses
// CorruptAll/DropAll to exercise exactly that path.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/block_store.hpp"
#include "engine/cache_key.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"

namespace ss::engine {

class SpillTier {
 public:
  /// `dir` empty keeps frames in an in-memory BlockStore; otherwise each
  /// frame is written to `<dir>/spill-<node>-<partition>.bin`.
  explicit SpillTier(std::string dir = "");

  /// Frames `payload` (magic + payload checksum + length + bytes) and
  /// stores it under `key`, overwriting any previous frame.
  Status Put(const CacheKey& key, const std::vector<std::uint8_t>& payload);

  /// Returns the payload, or NotFound (no frame) / DataLoss (frame fails
  /// its magic, length, or checksum validation). A failed frame is
  /// dropped so later lookups go straight to lineage recompute.
  Result<std::vector<std::uint8_t>> Get(const CacheKey& key);

  void Erase(const CacheKey& key);
  void Clear();

  /// Fault-injection hooks: flip one payload byte in (or delete) every
  /// stored frame. Return the number of frames touched.
  int CorruptAll();
  int DropAll();

  std::size_t frame_count() const;
  std::uint64_t bytes_stored() const;  ///< Framed bytes currently held.

 private:
  std::vector<std::uint8_t> ReadFrameLocked(const CacheKey& key)
      SS_REQUIRES(mutex_);
  void WriteFrameLocked(const CacheKey& key,
                        const std::vector<std::uint8_t>& frame)
      SS_REQUIRES(mutex_);
  void EraseLocked(const CacheKey& key) SS_REQUIRES(mutex_);
  std::string FilePathFor(const CacheKey& key) const;

  const std::string dir_;  ///< Empty = in-memory BlockStore backend.
  mutable support::RankedMutex mutex_{support::lock_rank::kSpill};
  dfs::BlockStore store_;  ///< Backend when dir_ is empty.
  /// key -> framed size; the iteration index the BlockStore lacks.
  std::unordered_map<CacheKey, std::uint64_t, CacheKeyHash> frames_
      SS_GUARDED_BY(mutex_);
  std::uint64_t bytes_stored_ SS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ss::engine
