// Engine-wide telemetry: a low-overhead event tracer and a registry of
// named monotonic counters.
//
// The tracer records spans (begin/end pairs) and instant events into
// per-thread buffers — appends take only the owning thread's uncontended
// buffer mutex, so concurrently executing tasks never serialize on a
// shared log — and the driver drains them after a run. Events serialize
// as Chrome `trace_event` JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev, which is this engine's equivalent of the
// Spark UI's event timeline.
//
// Tracing is off by default; every record call is a single relaxed
// atomic load when disabled, so instrumented hot paths (task attempts,
// cache lookups, DFS block reads) cost nothing in production runs.
// Counters, by contrast, are always on: they are plain relaxed atomic
// increments at task/partition granularity, and feed the machine-
// readable run report (see metrics.hpp and docs/OBSERVABILITY.md).
//
// This header sits below the rest of the engine on purpose: it depends
// on nothing but the standard library, so the DFS and cluster layers
// (which the engine itself links) can also emit events through the
// process-global `Tracer::Global()` without a dependency cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::engine {

/// One key/value annotation on an event. Values are kept as strings;
/// use `Arg` to build them from numbers.
using TraceArg = std::pair<std::string, std::string>;
using TraceArgs = std::vector<TraceArg>;

/// Builds a TraceArg from a string or any arithmetic value.
template <typename T>
TraceArg Arg(std::string key, T&& value) {
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    return {std::move(key), std::to_string(value)};
  } else {
    return {std::move(key), std::string(std::forward<T>(value))};
  }
}

struct TraceEvent {
  /// Chrome trace_event phases: duration begin/end and instant.
  enum class Phase : char { kBegin = 'B', kEnd = 'E', kInstant = 'i' };

  Phase phase = Phase::kInstant;
  std::int64_t ts_ns = 0;      ///< Nanoseconds since the tracer's epoch.
  std::uint32_t tid = 0;       ///< Tracer-local thread id (driver first).
  std::string name;
  const char* category = "";   ///< Static string; groups timeline tracks.
  TraceArgs args;
};

class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-global tracer every instrumented layer records into.
  /// Never destroyed (safe to use from static teardown).
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span on the calling thread. Must be closed by `End` on the
  /// same thread (use TraceSpan for exception safety).
  void Begin(const char* category, std::string name, TraceArgs args = {});
  void End(const char* category, std::string name, TraceArgs args = {});

  /// Records a zero-duration event.
  void Instant(const char* category, std::string name, TraceArgs args = {});

  /// All recorded events, merged across threads and sorted by timestamp.
  std::vector<TraceEvent> Snapshot() const;

  /// Events discarded because a thread buffer hit its cap.
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events and restarts the clock at zero. Driver
  /// side only: must not race with threads still recording.
  void Clear();

  /// Serializes all events as a Chrome trace_event JSON document.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTraceJson(const std::string& path) const;

 private:
  struct ThreadLog {
    support::RankedMutex mutex{support::lock_rank::kTraceThreadLog};
    std::vector<TraceEvent> events SS_GUARDED_BY(mutex);
    std::uint32_t tid = 0;  ///< Immutable after registration.
  };

  void Record(TraceEvent event);
  ThreadLog* LogForThisThread();

  const std::uint64_t tracer_id_;  ///< Unique per instance; keys TLS cache.
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_;
  std::atomic<std::uint64_t> dropped_{0};
  mutable support::RankedMutex logs_mutex_{support::lock_rank::kTraceRegistry};
  std::vector<std::shared_ptr<ThreadLog>> logs_ SS_GUARDED_BY(logs_mutex_);
};

/// RAII span: Begin on construction (if the tracer is enabled at that
/// point), End on destruction — including during exception unwinding, so
/// failed task attempts still close their spans.
class TraceSpan {
 public:
  TraceSpan(Tracer& tracer, const char* category, std::string name,
            TraceArgs args = {})
      : tracer_(tracer.enabled() ? &tracer : nullptr), category_(category) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      tracer_->Begin(category_, name_, std::move(args));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an arg to the closing event (for values only known at the
  /// end of the span, e.g. bytes read).
  void AddEndArg(TraceArg arg) {
    if (tracer_ != nullptr) end_args_.push_back(std::move(arg));
  }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->End(category_, std::move(name_), std::move(end_args_));
    }
  }

 private:
  Tracer* tracer_;
  const char* category_;
  std::string name_;
  TraceArgs end_args_;
};

/// Process-global registry of named monotonic counters. Counter lookups
/// take a mutex; hot paths should cache the returned reference:
///
///   static std::atomic<std::uint64_t>& hits =
///       CounterRegistry::Global().Get("cache.hits");
///   hits.fetch_add(1, std::memory_order_relaxed);
///
/// References stay valid for the registry's lifetime (ResetAll zeroes
/// values in place). Counters are process-wide, not per-EngineContext.
class CounterRegistry {
 public:
  CounterRegistry() = default;

  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Never destroyed (safe to use from static teardown).
  static CounterRegistry& Global();

  /// Finds or creates the counter. The reference is stable.
  std::atomic<std::uint64_t>& Get(const std::string& name);

  void Add(const std::string& name, std::uint64_t delta) {
    Get(name).fetch_add(delta, std::memory_order_relaxed);
  }

  /// (name, value) pairs sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  /// Zeroes every counter, keeping registrations (and references) alive.
  void ResetAll();

 private:
  mutable support::RankedMutex mutex_{support::lock_rank::kCounters};
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_
      SS_GUARDED_BY(mutex_);
};

/// RAII timer accumulating elapsed wall-clock nanoseconds into a counter.
/// The always-on complement to TraceSpan for driver loops whose unit of
/// work is coarser than one logical item — e.g. a resampling batch that
/// serves many replicates in one engine pass: `resampling.batch_nanos /
/// resampling.replicates` then recovers honest per-replicate timing even
/// with tracing disabled.
class ScopedCounterTimer {
 public:
  explicit ScopedCounterTimer(std::atomic<std::uint64_t>& counter);

  ScopedCounterTimer(const ScopedCounterTimer&) = delete;
  ScopedCounterTimer& operator=(const ScopedCounterTimer&) = delete;

  ~ScopedCounterTimer();

 private:
  std::atomic<std::uint64_t>& counter_;
  std::int64_t start_ns_;
};

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& raw);

}  // namespace ss::engine
