// Lineage graph nodes.
//
// A `Node<T>` is one logical dataset in the lineage DAG: it knows its
// parents and how to (re)compute any partition from them. Computation is
// pull-based: `Get` consults the cache when the node is marked persistent,
// otherwise recomputes — which is precisely RDD lineage-based fault
// recovery. Wide (shuffle) nodes override `EnsureReadySelf` to run their
// map stage from the driver before any reduce task starts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/approx_bytes.hpp"
#include "engine/cache_manager.hpp"
#include "engine/codec.hpp"
#include "engine/context.hpp"
#include "engine/profile.hpp"
#include "engine/task.hpp"
#include "engine/trace.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"
#include "support/stopwatch.hpp"

namespace ss::engine {

/// Cross-tier serializer for a `vector<T>` partition, built on Codec<T>.
/// Empty (entry not spillable) when T has no codec.
template <typename T>
SpillCodec MakeSpillCodec() {
  if constexpr (kSpillable<T>) {
    return SpillCodec{
        [](const std::shared_ptr<void>& value) {
          return EncodePartition<T>(
              *std::static_pointer_cast<const std::vector<T>>(value));
        },
        [](const std::vector<std::uint8_t>& bytes) -> std::shared_ptr<void> {
          return std::make_shared<std::vector<T>>(DecodePartition<T>(bytes));
        }};
  } else {
    return {};
  }
}

/// Untyped base: identity, arity, lineage edges, persistence flag.
class NodeBase {
 public:
  NodeBase(EngineContext* ctx, std::string label, std::uint32_t num_partitions,
           std::vector<std::shared_ptr<NodeBase>> parents)
      : ctx_(ctx),
        id_(ctx->NewNodeId()),
        label_(std::move(label)),
        num_partitions_(num_partitions),
        parents_(std::move(parents)) {}

  virtual ~NodeBase() = default;

  NodeBase(const NodeBase&) = delete;
  NodeBase& operator=(const NodeBase&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }
  std::uint32_t num_partitions() const { return num_partitions_; }
  EngineContext* context() const { return ctx_; }
  const std::vector<std::shared_ptr<NodeBase>>& parents() const {
    return parents_;
  }

  /// Marks the node persistent: computed partitions go to the cache.
  void EnableCache() { cache_enabled_ = true; }
  bool cache_enabled() const { return cache_enabled_; }

  /// Cached partitions of this node are admitted WITHOUT a spill codec:
  /// eviction discards instead of writing a spill frame. For store-backed
  /// datasets the on-disk store already is the durable copy — recompute
  /// (= a store read) is cheaper than a redundant second spill copy.
  void DisableCacheSpill() { cache_spill_disabled_ = true; }
  bool cache_spill_disabled() const { return cache_spill_disabled_; }

  /// Drops this node's partitions from the cache.
  void Unpersist() { ctx_->cache().DropDataset(id_); }

  /// Driver-side preparation: recursively readies parents, then this node.
  /// Shuffle nodes materialize their map stage here; narrow nodes no-op.
  /// Idempotent and safe to call repeatedly.
  void EnsureReady() {
    for (const auto& parent : parents_) parent->EnsureReady();
    support::MutexLock lock(ready_mutex_);
    if (ready_) return;
    EnsureReadySelf();
    ready_ = true;
  }

  /// Multi-line description of the lineage rooted at this node (debugging
  /// aid, mirrors RDD.toDebugString).
  std::string DebugString(int indent = 0) const {
    std::string out(static_cast<std::size_t>(indent) * 2, ' ');
    out += '(';
    out += std::to_string(num_partitions_);
    out += ") ";
    out += label_;
    if (cache_enabled_) out += " [cached]";
    out += '\n';
    for (const auto& parent : parents_) out += parent->DebugString(indent + 1);
    return out;
  }

 protected:
  virtual void EnsureReadySelf() {}

  /// Invalidates readiness (used by shuffle nodes when inputs change —
  /// not currently needed by any transformation, but kept for symmetry).
  void MarkNotReady() {
    support::MutexLock lock(ready_mutex_);
    ready_ = false;
  }

  EngineContext* ctx_;

 private:
  const std::uint64_t id_;
  const std::string label_;
  const std::uint32_t num_partitions_;
  std::vector<std::shared_ptr<NodeBase>> parents_;
  bool cache_enabled_ = false;
  bool cache_spill_disabled_ = false;
  // One instance per node, all sharing kNodeReady: EnsureReady readies
  // every parent BEFORE locking its own mutex, so two ready locks are
  // never held together (EnsureReadySelf never re-enters EnsureReady).
  support::RankedMutex ready_mutex_{support::lock_rank::kNodeReady};
  bool ready_ SS_GUARDED_BY(ready_mutex_) = false;
};

/// Typed node: can produce any of its partitions.
template <typename T>
class Node : public NodeBase {
 public:
  using ElementType = T;
  using PartitionPtr = std::shared_ptr<const std::vector<T>>;

  using NodeBase::NodeBase;

  /// Computes partition `index` from the parents. Called from task threads;
  /// must be thread-safe w.r.t. other partitions.
  virtual std::vector<T> ComputePartition(std::uint32_t index,
                                          TaskContext& task) = 0;

  /// Cache-aware access: returns the cached partition or computes (and, if
  /// persistent, caches) it. This is the lineage-recovery entry point — a
  /// partition lost to a node failure is transparently recomputed here.
  PartitionPtr Get(std::uint32_t index, TaskContext& task) {
    SS_CHECK(index < num_partitions());
    if (cache_enabled()) {
      const CacheKey key{id(), index};
      if (std::shared_ptr<void> hit = ctx_->cache().Lookup(key)) {
        return std::static_pointer_cast<const std::vector<T>>(hit);
      }
      static std::atomic<std::uint64_t>& computes =
          CounterRegistry::Global().Get("cache.computes");
      static std::atomic<std::uint64_t>& compute_nanos =
          CounterRegistry::Global().Get("cache.compute_nanos");
      Stopwatch compute_watch;
      auto computed =
          std::make_shared<std::vector<T>>(ComputePartition(index, task));
      const double compute_seconds = compute_watch.ElapsedSeconds();
      computes.fetch_add(1, std::memory_order_relaxed);
      compute_nanos.fetch_add(
          static_cast<std::uint64_t>(compute_seconds * 1e9),
          std::memory_order_relaxed);
      ctx_->cache().Insert(key, computed, ApproxBytesOfPartition(*computed),
                           task.node(), compute_seconds,
                           cache_spill_disabled() ? SpillCodec{}
                                                  : MakeSpillCodec<T>());
      return computed;
    }
    return std::make_shared<const std::vector<T>>(
        ComputePartition(index, task));
  }
};

/// The dataset whose partitions the I/O lane warms ahead of a stage over
/// `node`: the node itself when persistent, else the nearest persistent
/// ancestor with the same partition count (narrow lineage — a task for
/// partition k pulls exactly partition k of such an ancestor). 0 when the
/// stage has nothing cached to prefetch.
inline void AppendPrefetchTargets(const NodeBase& node,
                                  std::vector<std::uint64_t>* out) {
  if (node.cache_enabled()) out->push_back(node.id());
  for (const auto& parent : node.parents()) {
    if (parent->num_partitions() != node.num_partitions()) continue;
    AppendPrefetchTargets(*parent, out);
  }
}

/// Every cache-enabled dataset along `node`'s same-partitioning lineage,
/// nearest first. The I/O lane tries the chain in order and stops at the
/// first level the cache can serve (CacheManager::Prefetch): a warm or
/// spilled derived partition wins, and only when the derived data has
/// never been computed does the lane fall through to a store-backed
/// ancestor and stream its frame off the mmap ahead of the compute wave.
inline std::vector<std::uint64_t> PrefetchTargetChain(const NodeBase& node) {
  std::vector<std::uint64_t> chain;
  AppendPrefetchTargets(node, &chain);
  return chain;
}

/// Runs one full pass over `node`'s partitions as a stage, returning all
/// partitions in order. The building block for actions (collect/count/...)
/// and shuffle map stages. Driver-side only.
template <typename T>
std::vector<std::vector<T>> RunStage(Node<T>& node, const std::string& label) {
  node.EnsureReady();
  std::vector<std::vector<T>> partitions(node.num_partitions());
  node.context()->RunTasks(label, node.num_partitions(),
                           [&](TaskContext& task) {
                             auto part = node.Get(task.partition(), task);
                             task.metrics().records_out = part->size();
                             PhaseTimer handoff_phase(TaskPhase::kHandoff);
                             partitions[task.partition()] = *part;
                           },
                           PrefetchTargetChain(node));
  return partitions;
}

}  // namespace ss::engine
