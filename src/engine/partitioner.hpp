// Hash partitioning of keys to reduce partitions.
//
// std::hash for integral types is the identity on most standard libraries;
// the extra SplitMix64-style mix prevents pathological bucket skew when
// keys are sequential SNP indices (the common case in SparkScore).
#pragma once

#include <cstdint>
#include <functional>

namespace ss::engine {

/// 64-bit finalizer mix (SplitMix64's output function).
inline std::uint64_t MixHash(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Maps a key to one of `num_partitions` buckets.
template <typename K>
std::uint32_t PartitionOf(const K& key, std::uint32_t num_partitions) {
  const std::uint64_t h = MixHash(static_cast<std::uint64_t>(std::hash<K>{}(key)));
  return static_cast<std::uint32_t>(h % num_partitions);
}

}  // namespace ss::engine
