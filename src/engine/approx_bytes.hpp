// Size estimation for cache accounting and shuffle/broadcast byte metrics.
//
// The engine never serializes records for in-process movement, but the
// cache manager needs byte sizes for its memory budget and the virtual
// scheduler needs shuffle volumes; this trait supplies a consistent
// estimate for the record types the project uses.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ss::engine {

template <typename T>
std::size_t ApproxBytesOf(const T& value);

namespace internal {

template <typename T>
struct ApproxBytesImpl {
  static std::size_t Of(const T&) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "provide an ApproxBytesImpl specialization for this type");
    return sizeof(T);
  }
};

template <>
struct ApproxBytesImpl<std::string> {
  static std::size_t Of(const std::string& s) {
    return sizeof(std::string) + s.size();
  }
};

template <typename A, typename B>
struct ApproxBytesImpl<std::pair<A, B>> {
  static std::size_t Of(const std::pair<A, B>& p) {
    return ApproxBytesOf(p.first) + ApproxBytesOf(p.second);
  }
};

template <typename T>
struct ApproxBytesImpl<std::vector<T>> {
  static std::size_t Of(const std::vector<T>& v) {
    std::size_t total = sizeof(std::vector<T>);
    if constexpr (std::is_trivially_copyable_v<T>) {
      total += v.size() * sizeof(T);
    } else {
      for (const T& item : v) total += ApproxBytesOf(item);
    }
    return total;
  }
};

template <typename K, typename V>
struct ApproxBytesImpl<std::unordered_map<K, V>> {
  static std::size_t Of(const std::unordered_map<K, V>& map) {
    std::size_t total = sizeof(map);
    for (const auto& [key, value] : map) {
      total += ApproxBytesOf(key) + ApproxBytesOf(value) +
               2 * sizeof(void*);  // bucket/node overhead
    }
    return total;
  }
};

}  // namespace internal

/// Approximate in-memory footprint of `value`.
template <typename T>
std::size_t ApproxBytesOf(const T& value) {
  return internal::ApproxBytesImpl<T>::Of(value);
}

/// Approximate footprint of a whole partition.
template <typename T>
std::size_t ApproxBytesOfPartition(const std::vector<T>& partition) {
  return ApproxBytesOf(partition);
}

}  // namespace ss::engine
