// The public dataflow API of minispark: `Dataset<T>` (an RDD), its
// transformations and actions, and the shuffle-backed pair operations.
//
// Narrow transformations (Map, Filter, FlatMap, MapPartitions, Union,
// Sample) are pipelined: computing a partition walks the lineage chain in
// one call stack, so a chain of maps costs one pass. Wide operations
// (ReduceByKey, GroupByKey, Join) insert a ShuffleNode, whose map stage is
// materialized by the driver before the downstream stage runs — the stage
// boundary Spark's DAG scheduler would create.
//
// All closures must be free of side effects on shared state (use
// Accumulator for counters); they may run concurrently and, after a
// failure, more than once per element.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dfs/dfs.hpp"
#include "engine/broadcast.hpp"
#include "engine/context.hpp"
#include "engine/node.hpp"
#include "engine/partitioner.hpp"
#include "support/distributions.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"

namespace ss::engine {

// ---------------------------------------------------------------------------
// Concrete lineage nodes (internal; users go through Dataset<T>).
// ---------------------------------------------------------------------------
namespace nodes {

/// Source node over driver-provided data, pre-split into partitions.
template <typename T>
class ParallelizeNode final : public Node<T> {
 public:
  ParallelizeNode(EngineContext* ctx, std::vector<std::vector<T>> chunks)
      : Node<T>(ctx, "parallelize", static_cast<std::uint32_t>(chunks.size()),
                {}),
        chunks_(std::move(chunks)) {}

  std::vector<T> ComputePartition(std::uint32_t index, TaskContext&) override {
    return chunks_[index];
  }

 private:
  std::vector<std::vector<T>> chunks_;
};

/// Source node reading a MiniDfs text file; one partition per DFS block.
class TextFileNode final : public Node<std::string> {
 public:
  TextFileNode(EngineContext* ctx, std::string path, std::uint32_t blocks)
      : Node<std::string>(ctx, "textFile(" + path + ")", blocks, {}),
        path_(std::move(path)) {}

  std::vector<std::string> ComputePartition(std::uint32_t index,
                                            TaskContext&) override {
    SS_CHECK(ctx_->dfs() != nullptr);
    PhaseTimer fetch_phase(TaskPhase::kFetch);
    Result<std::vector<std::string>> lines =
        ctx_->dfs()->ReadBlockLines(path_, index);
    if (!lines.ok()) {
      // Retryable: a replica may come back (revive/repair) before the
      // scheduler gives up.
      throw TaskFailure("dfs read failed: " + lines.status().ToString());
    }
    return std::move(lines).value();
  }

 private:
  std::string path_;
};

/// Element-wise map.
template <typename T, typename U, typename F>
class MapNode final : public Node<U> {
 public:
  MapNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(ctx, "map", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  std::vector<U> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    auto input = parent_->Get(index, task);
    std::vector<U> out;
    out.reserve(input->size());
    for (const T& item : *input) out.push_back(fn_(item));
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

/// Whole-partition map; fn(partition_index, records) -> records.
template <typename T, typename U, typename F>
class MapPartitionsNode final : public Node<U> {
 public:
  MapPartitionsNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(ctx, "mapPartitions", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  std::vector<U> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    auto input = parent_->Get(index, task);
    return fn_(index, *input);
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

/// Predicate filter.
template <typename T, typename F>
class FilterNode final : public Node<T> {
 public:
  FilterNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent, F fn)
      : Node<T>(ctx, "filter", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  std::vector<T> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    auto input = parent_->Get(index, task);
    std::vector<T> out;
    for (const T& item : *input) {
      if (fn_(item)) out.push_back(item);
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

/// One-to-many map; fn returns a vector per element.
template <typename T, typename U, typename F>
class FlatMapNode final : public Node<U> {
 public:
  FlatMapNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent, F fn)
      : Node<U>(ctx, "flatMap", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  std::vector<U> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    auto input = parent_->Get(index, task);
    std::vector<U> out;
    for (const T& item : *input) {
      std::vector<U> expanded = fn_(item);
      for (auto& value : expanded) out.push_back(std::move(value));
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  F fn_;
};

/// Concatenation of two datasets; partitions of `left` precede `right`'s.
template <typename T>
class UnionNode final : public Node<T> {
 public:
  UnionNode(EngineContext* ctx, std::shared_ptr<Node<T>> left,
            std::shared_ptr<Node<T>> right)
      : Node<T>(ctx, "union",
                left->num_partitions() + right->num_partitions(),
                {left, right}),
        left_(std::move(left)),
        right_(std::move(right)) {}

  std::vector<T> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    if (index < left_->num_partitions()) return *left_->Get(index, task);
    return *right_->Get(index - left_->num_partitions(), task);
  }

 private:
  std::shared_ptr<Node<T>> left_;
  std::shared_ptr<Node<T>> right_;
};

/// Bernoulli sampling with deterministic per-partition randomness.
template <typename T>
class SampleNode final : public Node<T> {
 public:
  SampleNode(EngineContext* ctx, std::shared_ptr<Node<T>> parent,
             double fraction, std::uint64_t salt)
      : Node<T>(ctx, "sample", parent->num_partitions(), {parent}),
        parent_(std::move(parent)),
        fraction_(fraction),
        salt_(salt) {}

  std::vector<T> ComputePartition(std::uint32_t index,
                                  TaskContext& task) override {
    auto input = parent_->Get(index, task);
    // Deterministic in (context seed, salt, partition) only — NOT the
    // node or stage id — so the same Sample(fraction, salt) expression
    // selects the same subset across datasets, actions, and retries
    // (Spark's sample-with-seed semantics).
    Rng rng = Rng(this->ctx_->seed()).Split(salt_ * 2654435761u + 1).Split(index + 1);
    std::vector<T> out;
    for (const T& item : *input) {
      if (SampleBernoulli(rng, fraction_)) out.push_back(item);
    }
    return out;
  }

 private:
  std::shared_ptr<Node<T>> parent_;
  double fraction_;
  std::uint64_t salt_;
};

/// Repartitioning of pairs by key hash — the wide dependency. The map
/// stage (run by the driver via EnsureReadySelf) computes every parent
/// partition and scatters records into reduce buckets; reduce-side
/// ComputePartition just hands back its bucket. Buckets are retained for
/// the node's lifetime, mirroring Spark's persisted shuffle files: a lost
/// reduce task re-reads them without rerunning the map stage.
template <typename K, typename V>
class ShuffleNode final : public Node<std::pair<K, V>> {
 public:
  using Pair = std::pair<K, V>;
  /// Maps (key, num_partitions) -> reduce partition. Hash by default;
  /// SortBy installs a range partitioner.
  using PartitionFn = std::function<std::uint32_t(const K&, std::uint32_t)>;

  ShuffleNode(EngineContext* ctx, std::shared_ptr<Node<Pair>> parent,
              std::uint32_t num_partitions, PartitionFn partition_fn = {})
      : Node<Pair>(ctx, "shuffle", num_partitions, {parent}),
        parent_(std::move(parent)),
        partition_fn_(partition_fn
                          ? std::move(partition_fn)
                          : [](const K& key, std::uint32_t n) {
                              return PartitionOf(key, n);
                            }) {}

  std::vector<Pair> ComputePartition(std::uint32_t index,
                                     TaskContext& task) override {
    // The bucket copy is this reduce task's shuffle fetch.
    PhaseTimer fetch_phase(TaskPhase::kFetch);
    support::MutexLock lock(buckets_mutex_);
    task.metrics().shuffle_read_bytes += ApproxBytesOfPartition(buckets_[index]);
    return buckets_[index];
  }

 protected:
  void EnsureReadySelf() override {
    const std::uint32_t reducers = this->num_partitions();
    const std::uint32_t mappers = parent_->num_partitions();
    // Map outputs are staged per map partition and concatenated in map
    // partition order below. Appending directly to the reduce buckets in
    // task *completion* order would make the record order inside a bucket
    // (and thus every non-associative downstream fold, e.g. a float sum
    // in ReduceByKey) depend on scheduling — a bitwise-nondeterminism bug
    // caught by tests/engine/determinism_test.cpp.
    std::vector<std::vector<std::vector<Pair>>> per_map(mappers);
    // Guards the per_map staging vector. Function-local, so per_map cannot
    // carry SS_GUARDED_BY (Clang only accepts the attribute on
    // members/globals); the lock-order analyzer still ranks it between the
    // pool and the reduce buckets.
    // ss-lint: allow(guarded-by-coverage) guards function-local per_map
    support::RankedMutex per_map_mutex{support::lock_rank::kShufflePerMap};
    this->ctx_->RunTasks(
        "shuffle-map(" + parent_->label() + ")", mappers,
        [&](TaskContext& task) {
          auto input = parent_->Get(task.partition(), task);
          std::vector<std::vector<Pair>> local(reducers);
          for (const Pair& record : *input) {
            const std::uint32_t bucket = partition_fn_(record.first, reducers);
            SS_CHECK(bucket < reducers);
            local[bucket].push_back(record);
          }
          std::uint64_t bytes = 0;
          for (const auto& bucket : local) {
            bytes += ApproxBytesOfPartition(bucket);
          }
          task.metrics().shuffle_write_bytes += bytes;
          task.metrics().records_out = input->size();
          // Speculative duplicate attempts of a map task write identical
          // (deterministically computed) data, so last-writer-wins is fine.
          support::MutexLock lock(per_map_mutex);
          per_map[task.partition()] = std::move(local);
        });
    support::MutexLock lock(buckets_mutex_);
    buckets_.assign(reducers, {});
    for (std::uint32_t m = 0; m < mappers; ++m) {
      SS_CHECK(per_map[m].size() == reducers);  // RunTasks ran every mapper
      for (std::uint32_t r = 0; r < reducers; ++r) {
        auto& bucket = buckets_[r];
        bucket.insert(bucket.end(),
                      std::make_move_iterator(per_map[m][r].begin()),
                      std::make_move_iterator(per_map[m][r].end()));
      }
    }
  }

 private:
  std::shared_ptr<Node<Pair>> parent_;
  PartitionFn partition_fn_;
  support::RankedMutex buckets_mutex_{support::lock_rank::kShuffleBuckets};
  std::vector<std::vector<Pair>> buckets_ SS_GUARDED_BY(buckets_mutex_);
};

/// Hash join of two shuffled inputs with identical partitioning. Both
/// parents are ShuffleNodes over the same reducer count, so bucket i of
/// each contains exactly the keys hashing to i (co-partitioning).
template <typename K, typename A, typename B>
class JoinNode final : public Node<std::pair<K, std::pair<A, B>>> {
 public:
  using Out = std::pair<K, std::pair<A, B>>;

  JoinNode(EngineContext* ctx, std::shared_ptr<Node<std::pair<K, A>>> left,
           std::shared_ptr<Node<std::pair<K, B>>> right)
      : Node<Out>(ctx, "join", left->num_partitions(), {left, right}),
        left_(std::move(left)),
        right_(std::move(right)) {
    SS_CHECK(left_->num_partitions() == right_->num_partitions());
  }

  std::vector<Out> ComputePartition(std::uint32_t index,
                                    TaskContext& task) override {
    auto left = left_->Get(index, task);
    auto right = right_->Get(index, task);
    std::unordered_multimap<K, A> build;
    build.reserve(left->size());
    for (const auto& [key, value] : *left) build.emplace(key, value);
    std::vector<Out> out;
    out.reserve(right->size());
    for (const auto& [key, value] : *right) {
      auto [begin, end] = build.equal_range(key);
      for (auto it = begin; it != end; ++it) {
        out.push_back({key, {it->second, value}});
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Node<std::pair<K, A>>> left_;
  std::shared_ptr<Node<std::pair<K, B>>> right_;
};

}  // namespace nodes

// ---------------------------------------------------------------------------
// Dataset<T>: the user-facing handle.
// ---------------------------------------------------------------------------

template <typename T>
class Dataset {
 public:
  Dataset() = default;
  Dataset(EngineContext* ctx, std::shared_ptr<Node<T>> node)
      : ctx_(ctx), node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }
  std::uint32_t NumPartitions() const { return node_->num_partitions(); }
  EngineContext* context() const { return ctx_; }
  std::shared_ptr<Node<T>> node() const { return node_; }

  // -- Narrow transformations (lazy) --------------------------------------

  /// Element-wise transform.
  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  Dataset<U> Map(F fn) const {
    return Dataset<U>(ctx_, std::make_shared<nodes::MapNode<T, U, F>>(
                                ctx_, node_, std::move(fn)));
  }

  /// Whole-partition transform: fn(partition_index, records) -> records.
  template <typename F,
            typename U = typename std::invoke_result_t<
                F, std::uint32_t, const std::vector<T>&>::value_type>
  Dataset<U> MapPartitions(F fn) const {
    return Dataset<U>(ctx_, std::make_shared<nodes::MapPartitionsNode<T, U, F>>(
                                ctx_, node_, std::move(fn)));
  }

  /// Keeps elements where fn(x) is true.
  template <typename F>
  Dataset<T> Filter(F fn) const {
    return Dataset<T>(ctx_, std::make_shared<nodes::FilterNode<T, F>>(
                                ctx_, node_, std::move(fn)));
  }

  /// One-to-many transform; fn returns a vector per element.
  template <typename F,
            typename U = typename std::invoke_result_t<F, const T&>::value_type>
  Dataset<U> FlatMap(F fn) const {
    return Dataset<U>(ctx_, std::make_shared<nodes::FlatMapNode<T, U, F>>(
                                ctx_, node_, std::move(fn)));
  }

  /// Pairs each element with fn(x) as key.
  template <typename F, typename K = std::invoke_result_t<F, const T&>>
  Dataset<std::pair<K, T>> KeyBy(F fn) const {
    return Map([fn = std::move(fn)](const T& item) {
      return std::pair<K, T>(fn(item), item);
    });
  }

  /// Concatenates this dataset with `other`.
  Dataset<T> Union(const Dataset<T>& other) const {
    return Dataset<T>(ctx_, std::make_shared<nodes::UnionNode<T>>(
                                ctx_, node_, other.node_));
  }

  /// Bernoulli sample keeping each element with probability `fraction`.
  Dataset<T> Sample(double fraction, std::uint64_t salt = 0) const {
    return Dataset<T>(ctx_, std::make_shared<nodes::SampleNode<T>>(
                                ctx_, node_, fraction, salt));
  }

  // -- Persistence ---------------------------------------------------------

  /// Marks this dataset persistent: computed partitions are kept in the
  /// cache and reused by later stages (Spark's .cache()).
  Dataset<T>& Cache() {
    node_->EnableCache();
    return *this;
  }
  const Dataset<T>& Cache() const {
    node_->EnableCache();
    return *this;
  }

  /// Drops cached partitions (the dataset remains usable via lineage).
  void Unpersist() const { node_->Unpersist(); }

  // -- Actions (eager) -----------------------------------------------------

  /// All elements, in partition order.
  std::vector<T> Collect(const std::string& label = "collect") const {
    std::vector<std::vector<T>> partitions = RunStage(*node_, label);
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& partition : partitions) total += partition.size();
    out.reserve(total);
    for (auto& partition : partitions) {
      for (auto& item : partition) out.push_back(std::move(item));
    }
    return out;
  }

  /// Number of elements.
  std::size_t Count(const std::string& label = "count") const {
    std::vector<std::vector<std::size_t>> partitions =
        RunStage(*Map([](const T&) { return std::size_t{1}; }).node(), label);
    std::size_t total = 0;
    for (const auto& partition : partitions) {
      for (std::size_t ones : partition) total += ones;
    }
    return total;
  }

  /// Fold with a commutative, associative op; `identity` its neutral value.
  template <typename F>
  T Reduce(F fn, T identity, const std::string& label = "reduce") const {
    auto reduced = MapPartitions(
        [fn, identity](std::uint32_t, const std::vector<T>& records) {
          T acc = identity;
          for (const T& record : records) acc = fn(acc, record);
          return std::vector<T>{acc};
        });
    T total = identity;
    for (const T& partial : reduced.Collect(label)) total = fn(total, partial);
    return total;
  }

  /// Lineage description (RDD.toDebugString).
  std::string DebugString() const { return node_->DebugString(); }

 private:
  EngineContext* ctx_ = nullptr;
  std::shared_ptr<Node<T>> node_;
};

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Splits `data` into `num_partitions` nearly equal chunks on the driver.
template <typename T>
Dataset<T> Parallelize(EngineContext& ctx, const std::vector<T>& data,
                       std::uint32_t num_partitions) {
  SS_CHECK(num_partitions >= 1);
  std::vector<std::vector<T>> chunks(num_partitions);
  const std::size_t base = data.size() / num_partitions;
  const std::size_t extra = data.size() % num_partitions;
  std::size_t offset = 0;
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    const std::size_t size = base + (p < extra ? 1 : 0);
    chunks[p].assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                     data.begin() + static_cast<std::ptrdiff_t>(offset + size));
    offset += size;
  }
  return Dataset<T>(&ctx, std::make_shared<nodes::ParallelizeNode<T>>(
                              &ctx, std::move(chunks)));
}

/// Opens a MiniDfs text file as a dataset of lines, one partition per block.
/// Throws StatusError if the file does not exist.
inline Dataset<std::string> TextFile(EngineContext& ctx,
                                     const std::string& path) {
  SS_CHECK(ctx.dfs() != nullptr);
  Result<std::uint32_t> blocks = ctx.dfs()->BlockCount(path);
  if (!blocks.ok()) throw StatusError(blocks.status());
  return Dataset<std::string>(
      &ctx, std::make_shared<nodes::TextFileNode>(&ctx, path, blocks.value()));
}

// ---------------------------------------------------------------------------
// Pair (wide) operations.
// ---------------------------------------------------------------------------

/// Repartitions pairs by key hash (or a custom partitioner) into
/// `num_partitions` buckets.
template <typename K, typename V>
Dataset<std::pair<K, V>> PartitionByKey(
    const Dataset<std::pair<K, V>>& ds, std::uint32_t num_partitions,
    typename nodes::ShuffleNode<K, V>::PartitionFn partition_fn = {}) {
  SS_CHECK(num_partitions >= 1);
  return Dataset<std::pair<K, V>>(
      ds.context(),
      std::make_shared<nodes::ShuffleNode<K, V>>(
          ds.context(), ds.node(), num_partitions, std::move(partition_fn)));
}

/// Merges all values of each key with `fn` (commutative + associative).
/// Map-side pre-aggregation (a combiner) runs before the shuffle, as in
/// Spark, so shuffle volume is one record per key per map partition.
template <typename K, typename V, typename F>
Dataset<std::pair<K, V>> ReduceByKey(const Dataset<std::pair<K, V>>& ds, F fn,
                                     std::uint32_t num_partitions) {
  auto combined = ds.MapPartitions(
      [fn](std::uint32_t, const std::vector<std::pair<K, V>>& records) {
        std::unordered_map<K, V> acc;
        acc.reserve(records.size());
        for (const auto& [key, value] : records) {
          auto [it, inserted] = acc.try_emplace(key, value);
          if (!inserted) it->second = fn(it->second, value);
        }
        return std::vector<std::pair<K, V>>(acc.begin(), acc.end());
      });
  auto shuffled = PartitionByKey(combined, num_partitions);
  return shuffled.MapPartitions(
      [fn](std::uint32_t, const std::vector<std::pair<K, V>>& records) {
        std::unordered_map<K, V> acc;
        acc.reserve(records.size());
        for (const auto& [key, value] : records) {
          auto [it, inserted] = acc.try_emplace(key, value);
          if (!inserted) it->second = fn(it->second, value);
        }
        return std::vector<std::pair<K, V>>(acc.begin(), acc.end());
      });
}

/// Groups all values per key into a vector.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> GroupByKey(
    const Dataset<std::pair<K, V>>& ds, std::uint32_t num_partitions) {
  auto shuffled = PartitionByKey(ds, num_partitions);
  return shuffled.MapPartitions(
      [](std::uint32_t, const std::vector<std::pair<K, V>>& records) {
        std::unordered_map<K, std::vector<V>> groups;
        for (const auto& [key, value] : records) {
          groups[key].push_back(value);
        }
        std::vector<std::pair<K, std::vector<V>>> out;
        out.reserve(groups.size());
        for (auto& [key, values] : groups) {
          out.push_back({key, std::move(values)});
        }
        return out;
      });
}

/// Inner join on key; both sides are shuffled to `num_partitions` and
/// joined bucket-by-bucket (Algorithm 1 step 9: Weights ⋈ InnerSigma).
template <typename K, typename A, typename B>
Dataset<std::pair<K, std::pair<A, B>>> Join(const Dataset<std::pair<K, A>>& left,
                                            const Dataset<std::pair<K, B>>& right,
                                            std::uint32_t num_partitions) {
  auto left_shuffled = PartitionByKey(left, num_partitions);
  auto right_shuffled = PartitionByKey(right, num_partitions);
  return Dataset<std::pair<K, std::pair<A, B>>>(
      left.context(),
      std::make_shared<nodes::JoinNode<K, A, B>>(
          left.context(), left_shuffled.node(), right_shuffled.node()));
}

/// Collects a pair dataset into a map on the driver (the "HashMap" outputs
/// of Algorithms 1-3). Duplicate keys keep the last value seen.
template <typename K, typename V>
std::unordered_map<K, V> CollectAsMap(const Dataset<std::pair<K, V>>& ds,
                                      const std::string& label = "collectAsMap") {
  std::unordered_map<K, V> out;
  for (auto& [key, value] : ds.Collect(label)) {
    out[key] = value;
  }
  return out;
}

}  // namespace ss::engine
