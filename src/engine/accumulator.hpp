// Accumulators: write-only shared counters tasks can add to, readable on
// the driver after a stage completes (Spark semantics). Used by SparkScore
// to maintain the per-set exceedance counters counter_k of Algorithms 2/3.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::engine {

/// Scalar accumulator with a user-supplied commutative/associative merge.
template <typename T>
class Accumulator {
 public:
  explicit Accumulator(T zero = T{}) : value_(zero) {}

  void Add(const T& delta) {
    support::MutexLock lock(mutex_);
    value_ += delta;
  }

  T value() const {
    support::MutexLock lock(mutex_);
    return value_;
  }

  void Reset(T zero = T{}) {
    support::MutexLock lock(mutex_);
    value_ = zero;
  }

 private:
  mutable support::RankedMutex mutex_{support::lock_rank::kAccumulator};
  T value_ SS_GUARDED_BY(mutex_);
};

/// Fixed-length vector accumulator (element-wise +=). The per-SNP-set
/// exceedance counters are one of these with K elements.
template <typename T>
class VectorAccumulator {
 public:
  explicit VectorAccumulator(std::size_t size, T zero = T{})
      : values_(size, zero) {}

  void Add(std::size_t index, const T& delta) {
    support::MutexLock lock(mutex_);
    SS_DCHECK(index < values_.size());
    values_[index] += delta;
  }

  void AddAll(const std::vector<T>& deltas) {
    support::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < deltas.size() && i < values_.size(); ++i) {
      values_[i] += deltas[i];
    }
  }

  std::vector<T> values() const {
    support::MutexLock lock(mutex_);
    return values_;
  }

  std::size_t size() const { return values_.size(); }

 private:
  mutable support::RankedMutex mutex_{support::lock_rank::kAccumulator};
  std::vector<T> values_ SS_GUARDED_BY(mutex_);
};

}  // namespace ss::engine
