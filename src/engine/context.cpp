#include "engine/context.hpp"

#include <thread>

#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "support/log.hpp"
#include "support/ranked_mutex.hpp"
#include "support/stopwatch.hpp"

namespace ss::engine {
namespace {

/// True while the current thread is executing a task body. Actions from
/// inside a task (e.g. Collect in a Map closure) would submit to the same
/// pool the task occupies and can deadlock; the guard turns that mistake
/// into an immediate diagnostic.
thread_local bool t_inside_task = false;

struct InsideTaskScope {
  InsideTaskScope() { t_inside_task = true; }
  ~InsideTaskScope() { t_inside_task = false; }
};

}  // namespace

EngineContext::EngineContext(Options options, dfs::MiniDfs* dfs,
                             cluster::FaultInjector* faults)
    : options_(std::move(options)),
      dfs_(dfs),
      faults_(faults),
      cache_(CacheOptions{options_.cache_capacity_bytes,
                          options_.cache_spill, options_.spill_dir}) {
  std::size_t threads = options_.physical_threads;
  if (threads == 0) {
    threads = std::max(2u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  if (faults_ != nullptr) {
    faults_->SetOnNodeFailure([this](int node) { FailNode(node); });
    faults_->SetOnSpillFault([this](bool drop) { cache_.InjureSpill(drop); });
  }
  SS_LOG(kInfo, "engine") << "context up: " << options_.topology.ToString()
                          << ", " << threads << " physical threads";
}

EngineContext::~EngineContext() {
  if (faults_ != nullptr) {
    faults_->SetOnNodeFailure(nullptr);
    faults_->SetOnSpillFault(nullptr);
  }
}

std::uint64_t EngineContext::RunTasks(
    const std::string& label, std::uint32_t num_tasks,
    const std::function<void(TaskContext&)>& task_fn) {
  SS_CHECK(!t_inside_task &&
           "actions must run on the driver, not inside a task closure");
  const std::uint64_t stage_id = metrics_.BeginStage(label, num_tasks);
  SS_LOG(kDebug, "engine") << "stage " << stage_id << " (" << label << "): "
                           << num_tasks << " tasks";
  TraceSpan span(Tracer::Global(), "stage",
                 "stage " + std::to_string(stage_id) + ": " + label,
                 {Arg("stage", stage_id), Arg("label", label),
                  Arg("tasks", num_tasks)});
  pool_->ResetQueuePeak();
  const std::int64_t enqueue_ns = ProfileNowNs();
  pool_->ParallelFor(0, num_tasks, [&](std::size_t index) {
    RunOneTask(stage_id, static_cast<std::uint32_t>(index), enqueue_ns, label,
               task_fn);
  });
  metrics_.EndStage(stage_id, pool_->queue_peak());
  // Mirror the pool's saturation stats into the process-global registry
  // (the pool lives in ss_support and cannot depend on the engine's
  // counters itself). busy_nanos is monotonic; queue_peak keeps the max
  // across stages until the registry is reset.
  auto& registry = CounterRegistry::Global();
  registry.Get("pool.busy_nanos")
      .store(pool_->busy_nanos(), std::memory_order_relaxed);
  auto& queue_peak = registry.Get("pool.queue_peak");
  const std::uint64_t stage_peak = pool_->queue_peak();
  if (stage_peak > queue_peak.load(std::memory_order_relaxed)) {
    queue_peak.store(stage_peak, std::memory_order_relaxed);
  }
  return stage_id;
}

void EngineContext::RunOneTask(
    std::uint64_t stage_id, std::uint32_t index, std::int64_t enqueue_ns,
    const std::string& label,
    const std::function<void(TaskContext&)>& task_fn) {
  const int executors = std::max(1, options_.topology.TotalExecutors());
  const int executor = static_cast<int>(index) % executors;
  const int node = executor % std::max(1, options_.topology.num_nodes);

  for (int attempt = 0; attempt < options_.max_task_attempts; ++attempt) {
    TaskContext task(stage_id, index, attempt, executor, node, options_.seed);
    TraceSpan span(Tracer::Global(), "task",
                   label + " p" + std::to_string(index) +
                       (attempt > 0 ? " a" + std::to_string(attempt) : ""),
                   {Arg("stage", stage_id), Arg("partition", index),
                    Arg("attempt", attempt), Arg("executor", executor),
                    Arg("node", node)});
    if (faults_ != nullptr && faults_->ShouldFailTask(stage_id, index)) {
      metrics_.RecordFailure(stage_id);
      span.AddEndArg(Arg("outcome", "injected_failure"));
      SS_LOG(kDebug, "engine") << "injected failure: stage " << stage_id
                               << " partition " << index << " attempt "
                               << attempt;
      continue;
    }
    const bool profiling = ProfilingEnabled();
    TaskTimeline& timeline = task.metrics().timeline;
    if (profiling) {
      timeline.partition = index;
      const int worker = ThreadPool::CurrentWorkerIndex();
      timeline.worker = worker < 0 ? ~0u : static_cast<std::uint32_t>(worker);
      timeline.enqueue_ns = enqueue_ns;
      timeline.start_ns = ProfileNowNs();
    }
    TaskTimelineScope timeline_scope(profiling ? &timeline : nullptr);
    Stopwatch stopwatch;
    try {
      InsideTaskScope scope;
      task_fn(task);
    } catch (const TaskFailure& failure) {
      metrics_.RecordFailure(stage_id);
      span.AddEndArg(Arg("outcome", "failed"));
      span.AddEndArg(Arg("error", failure.what()));
      SS_LOG(kWarn, "engine")
          << "task failed (stage " << stage_id << ", partition " << index
          << ", attempt " << attempt << "): " << failure.what();
      if (attempt + 1 == options_.max_task_attempts) throw;
      continue;
    }
    task.metrics().compute_seconds = stopwatch.ElapsedSeconds();
    task.metrics().attempt = attempt;
    if (profiling) {
      timeline.end_ns = ProfileNowNs();
      timeline.records_out = task.metrics().records_out;
      timeline.bytes = task.metrics().shuffle_read_bytes +
                       task.metrics().shuffle_write_bytes;
      task.metrics().profiled = true;
    }
    span.AddEndArg(Arg("outcome", "ok"));
    metrics_.RecordTask(stage_id, task.metrics());
    tasks_completed_.fetch_add(1);
    if (faults_ != nullptr) faults_->OnTaskCompleted();
    return;
  }
  throw TaskFailure("task exhausted all attempts (injected failures)");
}

cluster::MakespanReport EngineContext::ReplayOn(
    const cluster::ClusterTopology& topology) const {
  cluster::VirtualScheduler scheduler(topology, options_.cost_model);
  return scheduler.Simulate(metrics_.ToJobProfile());
}

void EngineContext::FailNode(int node) {
  const int dropped = cache_.DropNode(node);
  Tracer::Global().Instant("fault", "node failure",
                           {Arg("node", node), Arg("dropped", dropped)});
  SS_LOG(kInfo, "engine") << "node " << node << " failed; " << dropped
                          << " cached partitions lost (lineage will rebuild)";
}

std::string EngineContext::RunMetricsJson() const {
  // Publish the lock-order analyzer's view of the run into the counters
  // section (all zero in release builds, where the analyzer compiles
  // out). deadlock_smoke reads these to assert a clean run's graph is
  // acyclic with no rank-order violations.
  const support::lock_order::Stats lock_stats =
      support::lock_order::GetStats();
  auto& registry = CounterRegistry::Global();
  registry.Get("lock.acquisitions")
      .store(lock_stats.acquisitions, std::memory_order_relaxed);
  registry.Get("lock.graph_nodes")
      .store(static_cast<std::uint64_t>(lock_stats.graph_nodes),
             std::memory_order_relaxed);
  registry.Get("lock.graph_edges")
      .store(static_cast<std::uint64_t>(lock_stats.graph_edges),
             std::memory_order_relaxed);
  registry.Get("lock.rank_violations")
      .store(lock_stats.rank_violations, std::memory_order_relaxed);
  registry.Get("lock.cycles")
      .store(lock_stats.acyclic ? 0 : 1, std::memory_order_relaxed);
  return ss::engine::RunMetricsJson(metrics_.stages(), cache_.stats(),
                                    metrics_.broadcast_bytes(),
                                    tasks_completed(),
                                    options_.straggler_mad_k);
}

}  // namespace ss::engine
