#include "engine/context.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "support/channel.hpp"
#include "support/log.hpp"
#include "support/ranked_mutex.hpp"
#include "support/stopwatch.hpp"

namespace ss::engine {
namespace {

/// True while the current thread is executing a task body. Actions from
/// inside a task (e.g. Collect in a Map closure) would submit to the same
/// pool the task occupies and can deadlock; the guard turns that mistake
/// into an immediate diagnostic.
thread_local bool t_inside_task = false;

struct InsideTaskScope {
  InsideTaskScope() { t_inside_task = true; }
  ~InsideTaskScope() { t_inside_task = false; }
};

/// SS_PREFETCH / SS_SPILL_ASYNC environment overrides (the CI ablation
/// matrix runs tier-1 under prefetch 0 and 2 without touching callers).
ExecConfig WithEnvOverrides(ExecConfig exec) {
  if (const char* env = std::getenv("SS_PREFETCH")) {
    exec.prefetch_depth = std::max(0, std::atoi(env));
  }
  if (const char* env = std::getenv("SS_SPILL_ASYNC")) {
    exec.spill_async = std::atoi(env) != 0;
  }
  return exec;
}

bool SameExecConfig(const ExecConfig& a, const ExecConfig& b) {
  return a.prefetch_depth == b.prefetch_depth && a.io_threads == b.io_threads &&
         a.spill_async == b.spill_async && a.queue_bound == b.queue_bound;
}

}  // namespace

EngineContext::EngineContext(Options options, dfs::MiniDfs* dfs,
                             cluster::FaultInjector* faults)
    : options_(std::move(options)),
      dfs_(dfs),
      faults_(faults),
      cache_(CacheOptions{options_.cache_capacity_bytes,
                          options_.cache_spill, options_.spill_dir}) {
  std::size_t threads = options_.physical_threads;
  if (threads == 0) {
    threads = std::max(2u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  options_.exec = WithEnvOverrides(options_.exec);
  RebuildIoLane();
  if (faults_ != nullptr) {
    faults_->SetOnNodeFailure([this](int node) { FailNode(node); });
    faults_->SetOnSpillFault([this](bool drop) { cache_.InjureSpill(drop); });
  }
  SS_LOG(kInfo, "engine") << "context up: " << options_.topology.ToString()
                          << ", " << threads << " physical threads";
}

EngineContext::~EngineContext() {
  if (faults_ != nullptr) {
    faults_->SetOnNodeFailure(nullptr);
    faults_->SetOnSpillFault(nullptr);
  }
}

std::uint64_t EngineContext::RunTasks(
    const std::string& label, std::uint32_t num_tasks,
    const std::function<void(TaskContext&)>& task_fn,
    std::vector<std::uint64_t> prefetch_chain) {
  SS_CHECK(!t_inside_task &&
           "actions must run on the driver, not inside a task closure");
  const std::uint64_t stage_id = metrics_.BeginStage(label, num_tasks);
  SS_LOG(kDebug, "engine") << "stage " << stage_id << " (" << label << "): "
                           << num_tasks << " tasks";
  TraceSpan span(Tracer::Global(), "stage",
                 "stage " + std::to_string(stage_id) + ": " + label,
                 {Arg("stage", stage_id), Arg("label", label),
                  Arg("tasks", num_tasks)});
  pool_->ResetQueuePeak();
  const std::int64_t enqueue_ns = ProfileNowNs();
  if (io_ != nullptr) {
    RunTasksChannel(stage_id, num_tasks, enqueue_ns, label, task_fn,
                    prefetch_chain);
  } else {
    // Ablation path (prefetch=0): the original synchronous loop, with no
    // channel, lane, or prefetch anywhere near the stage.
    pool_->ParallelFor(0, num_tasks, [&](std::size_t index) {
      RunOneTask(stage_id, static_cast<std::uint32_t>(index), enqueue_ns,
                 label, task_fn);
    });
  }
  metrics_.EndStage(stage_id, pool_->queue_peak());
  // Mirror the pool's saturation stats into the process-global registry
  // (the pool lives in ss_support and cannot depend on the engine's
  // counters itself). busy_nanos is monotonic; queue_peak keeps the max
  // across stages until the registry is reset.
  auto& registry = CounterRegistry::Global();
  registry.Get("pool.busy_nanos")
      .store(pool_->busy_nanos(), std::memory_order_relaxed);
  auto& queue_peak = registry.Get("pool.queue_peak");
  const std::uint64_t stage_peak = pool_->queue_peak();
  if (stage_peak > queue_peak.load(std::memory_order_relaxed)) {
    queue_peak.store(stage_peak, std::memory_order_relaxed);
  }
  return stage_id;
}

void EngineContext::RunTasksChannel(
    std::uint64_t stage_id, std::uint32_t num_tasks, std::int64_t enqueue_ns,
    const std::string& label, const std::function<void(TaskContext&)>& task_fn,
    const std::vector<std::uint64_t>& prefetch_chain) {
  static std::atomic<std::uint64_t>& channel_stages =
      CounterRegistry::Global().Get("exec.channel_stages");
  channel_stages.fetch_add(1, std::memory_order_relaxed);

  // All indices are queued up front and the channel closed, so runners
  // claim them in the same ascending order ParallelFor's cursor produced
  // and exit exactly when the stage is drained.
  support::Channel<std::uint32_t> channel(support::lock_rank::kExecChannel);
  for (std::uint32_t index = 0; index < num_tasks; ++index) {
    channel.Push(index);
  }
  channel.Close();

  const std::size_t runners =
      std::min<std::size_t>(pool_->size(), std::max<std::uint32_t>(1, num_tasks));
  const int depth = options_.exec.prefetch_depth;
  const bool prefetching = !prefetch_chain.empty() && depth > 0;

  // The prefetch window: the first `runners` partitions are claimed
  // immediately, so seed the lane with the `depth` partitions after them,
  // then keep the window one reload ahead per retiring task.
  std::atomic<std::uint32_t> next_prefetch{static_cast<std::uint32_t>(
      std::min<std::uint64_t>(num_tasks, runners + static_cast<std::uint64_t>(depth)))};
  if (prefetching) {
    for (std::uint32_t p = static_cast<std::uint32_t>(
             std::min<std::uint64_t>(num_tasks, runners));
         p < next_prefetch.load(std::memory_order_relaxed); ++p) {
      IssuePrefetch(prefetch_chain, p);
    }
  }

  // ParallelFor's error contract, replicated: every index still runs, and
  // the first failure in claim order is rethrown on the driver. Lives on
  // this stack frame, which outlives the runners (the driver blocks on
  // every future below).
  struct ErrorState {
    support::RankedMutex mutex{support::lock_rank::kParallelForError};
    std::exception_ptr first SS_GUARDED_BY(mutex);
    std::uint32_t first_index SS_GUARDED_BY(mutex) = 0;
  };
  ErrorState error;

  std::vector<std::future<void>> futures;
  futures.reserve(runners);
  for (std::size_t r = 0; r < runners; ++r) {
    futures.push_back(pool_->Submit([&]() {
      while (std::optional<std::uint32_t> index = channel.Pop()) {
        std::function<void()> after_task;
        if (prefetching) {
          after_task = [&]() {
            const std::uint32_t p =
                next_prefetch.fetch_add(1, std::memory_order_relaxed);
            if (p < num_tasks) IssuePrefetch(prefetch_chain, p);
          };
        }
        try {
          RunOneTask(stage_id, *index, enqueue_ns, label, task_fn, after_task);
        } catch (...) {
          support::MutexLock lock(error.mutex);
          if (error.first == nullptr || *index < error.first_index) {
            error.first = std::current_exception();
            error.first_index = *index;
          }
        }
      }
    }));
  }
  for (std::future<void>& future : futures) future.get();
  support::MutexLock lock(error.mutex);
  if (error.first != nullptr) std::rethrow_exception(error.first);
}

void EngineContext::IssuePrefetch(const std::vector<std::uint64_t>& chain,
                                  std::uint32_t partition) {
  static std::atomic<std::uint64_t>& prefetches =
      CounterRegistry::Global().Get("exec.prefetches");
  if (io_ == nullptr || chain.empty()) return;
  // Advisory: a full lane drops the request — a prefetch that cannot
  // start before its consumer would only add lock traffic. The job is
  // self-contained (keys + cache only), so it may harmlessly outlive the
  // stage that issued it. The chain walk stops at the first dataset the
  // cache can serve: a warm or spilled derived partition short-circuits,
  // and only never-computed data falls through to a store-backed
  // ancestor's fetcher.
  const bool queued = io_->TryEnqueue([this, chain, partition]() {
    TraceSpan span(Tracer::Global(), "prefetch",
                   "prefetch p" + std::to_string(partition),
                   {Arg("dataset", chain.front()), Arg("partition", partition)});
    for (std::uint64_t node_id : chain) {
      if (cache_.Prefetch(CacheKey{node_id, partition})) break;
    }
  });
  if (queued) prefetches.fetch_add(1, std::memory_order_relaxed);
}

void EngineContext::RebuildIoLane() {
  io_.reset();
  if (options_.exec.enabled()) {
    io_ = std::make_unique<AsyncExecutor>(options_.exec);
  }
  cache_.SetIoExecutor(io_.get(), options_.exec.spill_async);
}

void EngineContext::ApplyExecConfig(const ExecConfig& exec) {
  SS_CHECK(!t_inside_task &&
           "ApplyExecConfig must run on the driver, between stages");
  const ExecConfig effective = WithEnvOverrides(exec);
  if (SameExecConfig(effective, options_.exec) &&
      (io_ != nullptr) == effective.enabled()) {
    return;
  }
  options_.exec = effective;
  RebuildIoLane();
  SS_LOG(kDebug, "engine") << "exec config applied: prefetch "
                           << effective.prefetch_depth << ", io threads "
                           << effective.io_threads << ", spill_async "
                           << (effective.spill_async ? "on" : "off");
}

void EngineContext::RunOneTask(
    std::uint64_t stage_id, std::uint32_t index, std::int64_t enqueue_ns,
    const std::string& label,
    const std::function<void(TaskContext&)>& task_fn,
    const std::function<void()>& after_task) {
  const int executors = std::max(1, options_.topology.TotalExecutors());
  const int executor = static_cast<int>(index) % executors;
  const int node = executor % std::max(1, options_.topology.num_nodes);

  for (int attempt = 0; attempt < options_.max_task_attempts; ++attempt) {
    TaskContext task(stage_id, index, attempt, executor, node, options_.seed);
    TraceSpan span(Tracer::Global(), "task",
                   label + " p" + std::to_string(index) +
                       (attempt > 0 ? " a" + std::to_string(attempt) : ""),
                   {Arg("stage", stage_id), Arg("partition", index),
                    Arg("attempt", attempt), Arg("executor", executor),
                    Arg("node", node)});
    if (faults_ != nullptr && faults_->ShouldFailTask(stage_id, index)) {
      metrics_.RecordFailure(stage_id);
      span.AddEndArg(Arg("outcome", "injected_failure"));
      SS_LOG(kDebug, "engine") << "injected failure: stage " << stage_id
                               << " partition " << index << " attempt "
                               << attempt;
      continue;
    }
    const bool profiling = ProfilingEnabled();
    TaskTimeline& timeline = task.metrics().timeline;
    if (profiling) {
      timeline.partition = index;
      const int worker = ThreadPool::CurrentWorkerIndex();
      timeline.worker = worker < 0 ? ~0u : static_cast<std::uint32_t>(worker);
      timeline.enqueue_ns = enqueue_ns;
      timeline.start_ns = ProfileNowNs();
    }
    TaskTimelineScope timeline_scope(profiling ? &timeline : nullptr);
    Stopwatch stopwatch;
    try {
      InsideTaskScope scope;
      task_fn(task);
    } catch (const TaskFailure& failure) {
      metrics_.RecordFailure(stage_id);
      span.AddEndArg(Arg("outcome", "failed"));
      span.AddEndArg(Arg("error", failure.what()));
      SS_LOG(kWarn, "engine")
          << "task failed (stage " << stage_id << ", partition " << index
          << ", attempt " << attempt << "): " << failure.what();
      if (attempt + 1 == options_.max_task_attempts) throw;
      continue;
    }
    task.metrics().compute_seconds = stopwatch.ElapsedSeconds();
    task.metrics().attempt = attempt;
    if (after_task != nullptr) {
      // Issue the next prefetch from inside the attempt's timeline so the
      // (tiny) cost of keeping the window full is visible as `prefetch`.
      PhaseTimer prefetch_phase(TaskPhase::kPrefetch);
      after_task();
    }
    if (profiling) {
      timeline.end_ns = ProfileNowNs();
      timeline.records_out = task.metrics().records_out;
      timeline.bytes = task.metrics().shuffle_read_bytes +
                       task.metrics().shuffle_write_bytes;
      task.metrics().profiled = true;
    }
    span.AddEndArg(Arg("outcome", "ok"));
    metrics_.RecordTask(stage_id, task.metrics());
    tasks_completed_.fetch_add(1);
    if (faults_ != nullptr) faults_->OnTaskCompleted();
    return;
  }
  throw TaskFailure("task exhausted all attempts (injected failures)");
}

cluster::MakespanReport EngineContext::ReplayOn(
    const cluster::ClusterTopology& topology) const {
  cluster::VirtualScheduler scheduler(topology, options_.cost_model);
  return scheduler.Simulate(metrics_.ToJobProfile());
}

void EngineContext::FailNode(int node) {
  const int dropped = cache_.DropNode(node);
  Tracer::Global().Instant("fault", "node failure",
                           {Arg("node", node), Arg("dropped", dropped)});
  SS_LOG(kInfo, "engine") << "node " << node << " failed; " << dropped
                          << " cached partitions lost (lineage will rebuild)";
}

std::string EngineContext::RunMetricsJson() const {
  // Publish the lock-order analyzer's view of the run into the counters
  // section (all zero in release builds, where the analyzer compiles
  // out). deadlock_smoke reads these to assert a clean run's graph is
  // acyclic with no rank-order violations.
  const support::lock_order::Stats lock_stats =
      support::lock_order::GetStats();
  auto& registry = CounterRegistry::Global();
  registry.Get("lock.acquisitions")
      .store(lock_stats.acquisitions, std::memory_order_relaxed);
  registry.Get("lock.graph_nodes")
      .store(static_cast<std::uint64_t>(lock_stats.graph_nodes),
             std::memory_order_relaxed);
  registry.Get("lock.graph_edges")
      .store(static_cast<std::uint64_t>(lock_stats.graph_edges),
             std::memory_order_relaxed);
  registry.Get("lock.rank_violations")
      .store(lock_stats.rank_violations, std::memory_order_relaxed);
  registry.Get("lock.cycles")
      .store(lock_stats.acyclic ? 0 : 1, std::memory_order_relaxed);
  return ss::engine::RunMetricsJson(metrics_.stages(), cache_.stats(),
                                    metrics_.broadcast_bytes(),
                                    tasks_completed(),
                                    options_.straggler_mad_k);
}

}  // namespace ss::engine
