// EngineContext: the driver of the minispark engine.
//
// Owns the physical thread pool (the real execution substrate), the
// partition cache, the metrics recorder, and the simulated-cluster wiring
// (topology, optional MiniDfs, optional FaultInjector). Datasets and
// transformations live in dataset.hpp; the context deliberately knows
// nothing about record types — `RunTasks` is the single type-erased entry
// point every stage goes through, so scheduling, retries, fault injection
// and metrics are implemented exactly once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/cost_model.hpp"
#include "cluster/fault_injector.hpp"
#include "cluster/topology.hpp"
#include "cluster/virtual_scheduler.hpp"
#include "dfs/dfs.hpp"
#include "engine/cache_manager.hpp"
#include "engine/executor.hpp"
#include "engine/metrics.hpp"
#include "engine/task.hpp"
#include "support/thread_pool.hpp"

namespace ss::engine {

class EngineContext {
 public:
  struct Options {
    /// Simulated cluster the job "runs on"; drives task->executor->node
    /// assignment, cache placement, and virtual-time replay.
    cluster::ClusterTopology topology;

    /// Real worker threads backing the executor slots. Defaults to the
    /// host's hardware concurrency (at least 2, so concurrency bugs are
    /// exercised even on single-core hosts).
    std::size_t physical_threads = 0;

    /// Master seed; all task randomness derives from it deterministically.
    std::uint64_t seed = 42;

    /// Cache budget in bytes; 0 = unlimited.
    std::uint64_t cache_capacity_bytes = 0;

    /// Spill tier switch: when true (default), evicted spillable
    /// partitions move to the spill store instead of being discarded.
    bool cache_spill = true;

    /// Spill frame location: empty = in-memory block store, else a
    /// directory real spill files are written under.
    std::string spill_dir;

    /// Attempts per task before the job fails (Spark's spark.task.maxFailures
    /// defaults to 4 attempts = 3 retries).
    int max_task_attempts = 4;

    /// Straggler threshold for the timeline profile: a task is flagged
    /// when slower than median + straggler_mad_k * MAD of its stage.
    double straggler_mad_k = 3.0;

    /// Overhead model used when replaying metrics onto the topology.
    cluster::CostModel cost_model;

    /// Async-executor knobs (I/O lane, prefetch depth, background spill).
    /// `prefetch_depth == 0` disables the lane entirely — stages run the
    /// legacy synchronous loop. Overridable via the SS_PREFETCH /
    /// SS_SPILL_ASYNC environment variables (the CI ablation matrix).
    ExecConfig exec;
  };

  /// `dfs` and `faults` are optional collaborators owned by the caller and
  /// must outlive the context.
  explicit EngineContext(Options options, dfs::MiniDfs* dfs = nullptr,
                         cluster::FaultInjector* faults = nullptr);
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  /// Runs `num_tasks` tasks through the executor pool and blocks until all
  /// succeed; each failed attempt is retried up to max_task_attempts.
  /// Returns the stage id under which metrics were recorded. Must be called
  /// from the driver thread (never from inside a task).
  ///
  /// With the I/O lane active (exec.prefetch_depth > 0) tasks are
  /// dispatched through a per-stage channel, and a non-empty
  /// `prefetch_chain` names the cached datasets (nearest first — RunStage
  /// derives the chain from the lineage) whose partitions the lane
  /// reloads/decodes/fetches ahead of the compute frontier; per partition
  /// the lane stops at the first chain level the cache can serve.
  /// Scheduling changes; per-partition results and all driver-side fold
  /// orders do not.
  std::uint64_t RunTasks(const std::string& label, std::uint32_t num_tasks,
                         const std::function<void(TaskContext&)>& task_fn,
                         std::vector<std::uint64_t> prefetch_chain = {});

  /// Unique id for a new dataset node.
  std::uint64_t NewNodeId() { return next_node_id_.fetch_add(1); }

  /// Replays all metrics recorded since the last metrics().Reset() onto
  /// `topology`, yielding the virtual wall-clock of the same work there.
  cluster::MakespanReport ReplayOn(const cluster::ClusterTopology& topology) const;

  /// Simulated node failure: drops that node's cached partitions (lineage
  /// will recompute them on next access). Also invoked automatically when
  /// an armed FaultInjector fires.
  void FailNode(int node);

  /// Reconfigures the I/O lane (ResamplingRequest::exec lands here).
  /// Sticky: the new config applies to every subsequent stage. Drains the
  /// current lane first, so it must be called between stages, never from
  /// inside a task.
  void ApplyExecConfig(const ExecConfig& exec);

  /// The I/O lane, or nullptr when ablated (prefetch_depth == 0).
  AsyncExecutor* io() { return io_.get(); }
  const ExecConfig& exec_config() const { return options_.exec; }

  CacheManager& cache() { return cache_; }
  MetricsRecorder& metrics() { return metrics_; }
  const Options& options() const { return options_; }
  const cluster::ClusterTopology& topology() const { return options_.topology; }
  dfs::MiniDfs* dfs() { return dfs_; }
  cluster::FaultInjector* faults() { return faults_; }
  std::uint64_t seed() const { return options_.seed; }

  /// Total tasks executed successfully since construction.
  std::uint64_t tasks_completed() const { return tasks_completed_.load(); }

  /// Machine-readable summary of everything this context has recorded so
  /// far: stage stats, cache hit/miss, broadcast and shuffle volumes, the
  /// task-timeline profile, and the global counter registry (schema
  /// "sparkscore-run-metrics-v2").
  std::string RunMetricsJson() const;

 private:
  /// `after_task` (may be empty) runs on the worker inside the successful
  /// attempt's timeline, under the `prefetch` phase — the channel path's
  /// hook for issuing the next prefetch as each task retires.
  void RunOneTask(std::uint64_t stage_id, std::uint32_t index,
                  std::int64_t enqueue_ns, const std::string& label,
                  const std::function<void(TaskContext&)>& task_fn,
                  const std::function<void()>& after_task = nullptr);

  /// Channel-based dispatch (exec.prefetch_depth > 0): partition indices
  /// flow through a closed channel to min(pool, tasks) runners; the I/O
  /// lane warms `prefetch_chain`'s partitions ahead of the frontier.
  void RunTasksChannel(std::uint64_t stage_id, std::uint32_t num_tasks,
                       std::int64_t enqueue_ns, const std::string& label,
                       const std::function<void(TaskContext&)>& task_fn,
                       const std::vector<std::uint64_t>& prefetch_chain);

  /// Queues an advisory warm-up of `partition` on the I/O lane: the job
  /// walks `chain` and stops at the first dataset the cache can serve
  /// (hit / spill reload / backing-store fetch).
  void IssuePrefetch(const std::vector<std::uint64_t>& chain,
                     std::uint32_t partition);

  void RebuildIoLane();

  Options options_;
  dfs::MiniDfs* dfs_;
  cluster::FaultInjector* faults_;
  CacheManager cache_;
  MetricsRecorder metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<std::uint64_t> next_node_id_{1};
  std::atomic<std::uint64_t> tasks_completed_{0};
  /// Declared last: destroyed first, while the cache its jobs touch (and
  /// the pool whose workers may be mid-Enqueue) are still alive.
  std::unique_ptr<AsyncExecutor> io_;
};

}  // namespace ss::engine
