#include "engine/profile.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "engine/trace.hpp"
#include "support/table.hpp"

namespace ss::engine {

namespace {

/// The executing attempt's timeline, bound for the duration of the task
/// body; nullptr on the driver and between tasks.
thread_local TaskTimeline* t_active_timeline = nullptr;

/// True while a PhaseTimer is open on this thread; inner timers stay
/// inert so phase spans never overlap within one task.
thread_local bool t_phase_open = false;

std::atomic<bool> g_profiling_enabled{true};

constexpr const char* kPhaseNames[kNumTaskPhases] = {
    "queue_wait", "fetch",    "decode",   "compute",
    "spill_write", "handoff", "prefetch", "io_wait"};

void AppendNum(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  *out += buffer;
}

/// q-th quantile of an ascending-sorted sample (nearest-rank, matching
/// the stage stats in metrics.cpp).
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double Seconds(std::int64_t nanos) {
  return static_cast<double>(nanos) / 1e9;
}

}  // namespace

std::int64_t ProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetProfilingEnabled(bool enabled) {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProfilingEnabled() {
  return g_profiling_enabled.load(std::memory_order_relaxed);
}

TaskTimeline* ActiveTaskTimeline() { return t_active_timeline; }

TaskTimelineScope::TaskTimelineScope(TaskTimeline* timeline)
    : previous_(t_active_timeline) {
  if (timeline != nullptr) t_active_timeline = timeline;
}

TaskTimelineScope::~TaskTimelineScope() { t_active_timeline = previous_; }

const char* TaskPhaseName(TaskPhase phase) {
  const auto index = static_cast<std::size_t>(phase);
  return index < kNumTaskPhases ? kPhaseNames[index] : "unknown";
}

PhaseTimer::PhaseTimer(TaskPhase phase, bool trace)
    : timeline_(t_phase_open ? nullptr : t_active_timeline), phase_(phase) {
  if (timeline_ == nullptr) return;
  t_phase_open = true;
  begin_ns_ = ProfileNowNs();
  if (trace) {
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) {
      traced_ = true;
      tracer.Begin("phase", TaskPhaseName(phase_));
    }
  }
}

PhaseTimer::~PhaseTimer() {
  if (timeline_ == nullptr) return;
  const std::int64_t duration = ProfileNowNs() - begin_ns_;
  auto& spans = timeline_->phases;
  if (!spans.empty() && spans.back().phase == phase_) {
    // Coalesce bursts of the same phase (per-record decode loops):
    // end_ns slides forward by the exact duration, keeping the
    // accounting invariant without one span per record.
    spans.back().end_ns += duration;
  } else {
    spans.push_back({phase_, begin_ns_, begin_ns_ + duration});
  }
  t_phase_open = false;
  if (traced_) Tracer::Global().End("phase", TaskPhaseName(phase_));
}

std::array<double, kNumTaskPhases> PhaseSecondsOf(const TaskTimeline& t) {
  std::array<double, kNumTaskPhases> seconds{};
  seconds[static_cast<std::size_t>(TaskPhase::kQueueWait)] =
      Seconds(std::max<std::int64_t>(0, t.start_ns - t.enqueue_ns));
  double attributed = 0.0;
  for (const PhaseSpan& span : t.phases) {
    const double s = Seconds(std::max<std::int64_t>(0, span.end_ns - span.begin_ns));
    seconds[static_cast<std::size_t>(span.phase)] += s;
    attributed += s;
  }
  const double total = Seconds(std::max<std::int64_t>(0, t.end_ns - t.start_ns));
  seconds[static_cast<std::size_t>(TaskPhase::kCompute)] +=
      std::max(0.0, total - attributed);
  return seconds;
}

RunProfile BuildRunProfile(const std::vector<StageMetrics>& stages,
                           double straggler_mad_k) {
  RunProfile profile;
  profile.straggler_mad_k = straggler_mad_k;

  std::int64_t run_begin = 0;
  std::int64_t run_end = 0;
  bool any = false;
  for (const StageMetrics& stage : stages) {
    for (const TaskTimeline& t : stage.timelines) {
      if (!any) {
        run_begin = stage.begin_ns != 0 ? stage.begin_ns : t.enqueue_ns;
        run_end = t.end_ns;
        any = true;
      }
      if (stage.begin_ns != 0) run_begin = std::min(run_begin, stage.begin_ns);
      run_begin = std::min(run_begin, t.enqueue_ns);
      run_end = std::max(run_end, t.end_ns);
    }
  }
  profile.collected = any;
  if (!any) return profile;
  profile.wall_seconds = Seconds(run_end - run_begin);

  struct WorkerSpan {
    std::int64_t begin_ns;
    std::int64_t end_ns;
  };
  std::vector<std::vector<WorkerSpan>> worker_spans;

  for (const StageMetrics& stage : stages) {
    if (stage.timelines.empty()) continue;
    StageTimingStats s;
    s.stage_id = stage.stage_id;
    s.label = stage.label;
    s.tasks = stage.timelines.size();
    s.queue_peak = stage.queue_peak;
    const std::int64_t stage_begin =
        stage.begin_ns != 0 ? stage.begin_ns : stage.timelines.front().enqueue_ns;
    const std::int64_t stage_end = stage.end_ns;
    s.stage_seconds =
        Seconds(std::max<std::int64_t>(0, stage_end - stage_begin));

    std::vector<double> task_seconds;
    task_seconds.reserve(s.tasks);
    std::int64_t critical_end = 0;
    for (const TaskTimeline& t : stage.timelines) {
      const auto phase_seconds = PhaseSecondsOf(t);
      for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
        s.phase_seconds[p] += phase_seconds[p];
      }
      const double total = Seconds(std::max<std::int64_t>(0, t.end_ns - t.start_ns));
      task_seconds.push_back(total);
      s.records_total += t.records_out;
      s.records_max = std::max(s.records_max, t.records_out);
      s.bytes_total += t.bytes;
      s.bytes_max = std::max(s.bytes_max, t.bytes);
      if (t.end_ns > critical_end) {
        critical_end = t.end_ns;
        s.critical_partition = t.partition;
        s.critical_seconds =
            Seconds(std::max<std::int64_t>(0, t.end_ns - stage_begin));
        s.critical_phase_seconds = phase_seconds;
      }
      if (t.worker != ~0u) {
        if (worker_spans.size() <= t.worker) worker_spans.resize(t.worker + 1);
        worker_spans[t.worker].push_back({t.start_ns, t.end_ns});
      }
    }
    s.records_mean =
        static_cast<double>(s.records_total) / static_cast<double>(s.tasks);

    std::vector<double> sorted = task_seconds;
    std::sort(sorted.begin(), sorted.end());
    s.p50_seconds = Quantile(sorted, 0.50);
    s.p95_seconds = Quantile(sorted, 0.95);
    s.max_seconds = sorted.back();
    const double median = Median(sorted);
    std::vector<double> deviations;
    deviations.reserve(sorted.size());
    for (double v : sorted) deviations.push_back(std::fabs(v - median));
    s.mad_seconds = Median(std::move(deviations));
    s.straggler_threshold_seconds =
        median + straggler_mad_k * s.mad_seconds;
    // MAD on < 4 samples is too noisy to call anything a straggler; and
    // when every task runs in near-identical time (MAD ~ 0 at microsecond
    // scale) flagging is meaningless, so require a minimum spread.
    if (s.tasks >= 4 && s.mad_seconds > 1e-7) {
      for (const TaskTimeline& t : stage.timelines) {
        const double total =
            Seconds(std::max<std::int64_t>(0, t.end_ns - t.start_ns));
        if (total > s.straggler_threshold_seconds) {
          s.straggler_partitions.push_back(t.partition);
        }
      }
      std::sort(s.straggler_partitions.begin(), s.straggler_partitions.end());
    }

    profile.critical_path.push_back(
        {s.stage_id, s.critical_partition, s.critical_seconds});
    profile.critical_path_seconds += s.critical_seconds;
    profile.stages.push_back(std::move(s));
  }

  // Per-worker occupancy and idle-gap inventory over [run_begin, run_end].
  constexpr std::int64_t kIdleFloorNs = 1000;  // ignore sub-microsecond gaps
  for (std::size_t w = 0; w < worker_spans.size(); ++w) {
    auto& spans = worker_spans[w];
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end(),
              [](const WorkerSpan& a, const WorkerSpan& b) {
                return a.begin_ns < b.begin_ns;
              });
    WorkerStats ws;
    ws.worker = static_cast<std::uint32_t>(w);
    ws.tasks = spans.size();
    std::int64_t cursor = run_begin;
    for (const WorkerSpan& span : spans) {
      ws.busy_seconds += Seconds(std::max<std::int64_t>(0, span.end_ns - span.begin_ns));
      const std::int64_t gap = span.begin_ns - cursor;
      if (gap > kIdleFloorNs) {
        ++ws.idle_gaps;
        ws.idle_total_seconds += Seconds(gap);
        ws.idle_max_seconds = std::max(ws.idle_max_seconds, Seconds(gap));
      }
      cursor = std::max(cursor, span.end_ns);
    }
    const std::int64_t tail = run_end - cursor;
    if (tail > kIdleFloorNs) {
      ++ws.idle_gaps;
      ws.idle_total_seconds += Seconds(tail);
      ws.idle_max_seconds = std::max(ws.idle_max_seconds, Seconds(tail));
    }
    ws.utilization =
        profile.wall_seconds > 0.0 ? ws.busy_seconds / profile.wall_seconds : 0.0;
    profile.workers.push_back(ws);
  }
  return profile;
}

std::string FormatProfileReport(const RunProfile& profile) {
  if (!profile.collected) {
    return "profile: no timelines collected (profiling disabled)\n";
  }
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "profile: wall %.4fs, critical path %.4fs (%.1f%%) across "
                "%zu stages\n",
                profile.wall_seconds, profile.critical_path_seconds,
                profile.wall_seconds > 0.0
                    ? 100.0 * profile.critical_path_seconds / profile.wall_seconds
                    : 0.0,
                profile.critical_path.size());
  out += line;

  Table stages("Stage phase breakdown (seconds)",
               {"id", "label", "tasks", "queue", "fetch", "decode", "compute",
                "spill", "handoff", "prefetch", "io_wait", "p50", "p95", "max",
                "stragglers"});
  for (const StageTimingStats& s : profile.stages) {
    std::string stragglers = std::to_string(s.straggler_partitions.size());
    if (!s.straggler_partitions.empty()) {
      stragglers += " (p" + std::to_string(s.straggler_partitions.front());
      if (s.straggler_partitions.size() > 1) stragglers += ", ...";
      stragglers += ")";
    }
    stages.AddRow({std::to_string(s.stage_id), s.label,
                   std::to_string(s.tasks),
                   Table::Num(s.phase_seconds[0], 4),
                   Table::Num(s.phase_seconds[1], 4),
                   Table::Num(s.phase_seconds[2], 4),
                   Table::Num(s.phase_seconds[3], 4),
                   Table::Num(s.phase_seconds[4], 4),
                   Table::Num(s.phase_seconds[5], 4),
                   Table::Num(s.phase_seconds[6], 4),
                   Table::Num(s.phase_seconds[7], 4),
                   Table::Num(s.p50_seconds, 4), Table::Num(s.p95_seconds, 4),
                   Table::Num(s.max_seconds, 4), stragglers});
  }
  out += stages.ToString();

  Table critical("Critical path (stage-binding tasks)",
                 {"stage", "partition", "seconds", "share"});
  for (const RunProfile::CriticalSpan& span : profile.critical_path) {
    critical.AddRow({std::to_string(span.stage_id),
                     std::to_string(span.partition),
                     Table::Num(span.seconds, 4),
                     Table::Num(profile.critical_path_seconds > 0.0
                                    ? 100.0 * span.seconds /
                                          profile.critical_path_seconds
                                    : 0.0,
                                1) +
                         "%"});
  }
  out += critical.ToString();

  Table workers("Worker utilization",
                {"worker", "tasks", "busy s", "util", "idle gaps",
                 "idle total s", "idle max s"});
  for (const WorkerStats& w : profile.workers) {
    workers.AddRow({std::to_string(w.worker), std::to_string(w.tasks),
                    Table::Num(w.busy_seconds, 4),
                    Table::Num(100.0 * w.utilization, 1) + "%",
                    std::to_string(w.idle_gaps),
                    Table::Num(w.idle_total_seconds, 4),
                    Table::Num(w.idle_max_seconds, 4)});
  }
  out += workers.ToString();
  return out;
}

void AppendTimelineJson(std::string* out, const RunProfile& profile) {
  *out += "\"timeline\":{\"collected\":";
  *out += profile.collected ? "true" : "false";
  *out += ",\"wall_seconds\":";
  AppendNum(out, profile.wall_seconds);
  *out += ",\"straggler_mad_k\":";
  AppendNum(out, profile.straggler_mad_k);
  *out += ",\"phases\":[";
  for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
    if (p != 0) *out += ",";
    *out += std::string("\"") + kPhaseNames[p] + "\"";
  }
  *out += "],\"stages\":[";
  for (std::size_t i = 0; i < profile.stages.size(); ++i) {
    const StageTimingStats& s = profile.stages[i];
    if (i != 0) *out += ",";
    *out += "\n{\"id\":" + std::to_string(s.stage_id);
    *out += ",\"label\":\"" + JsonEscape(s.label) + "\"";
    *out += ",\"tasks\":" + std::to_string(s.tasks);
    *out += ",\"stage_seconds\":";
    AppendNum(out, s.stage_seconds);
    *out += ",\"queue_peak\":" + std::to_string(s.queue_peak);
    *out += ",\"phase_seconds\":[";
    for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
      if (p != 0) *out += ",";
      AppendNum(out, s.phase_seconds[p]);
    }
    *out += "],\"task_seconds\":{\"p50\":";
    AppendNum(out, s.p50_seconds);
    *out += ",\"p95\":";
    AppendNum(out, s.p95_seconds);
    *out += ",\"max\":";
    AppendNum(out, s.max_seconds);
    *out += ",\"mad\":";
    AppendNum(out, s.mad_seconds);
    *out += "},\"straggler_threshold_seconds\":";
    AppendNum(out, s.straggler_threshold_seconds);
    *out += ",\"stragglers\":[";
    for (std::size_t j = 0; j < s.straggler_partitions.size(); ++j) {
      if (j != 0) *out += ",";
      *out += std::to_string(s.straggler_partitions[j]);
    }
    *out += "],\"records\":{\"total\":" + std::to_string(s.records_total);
    *out += ",\"mean\":";
    AppendNum(out, s.records_mean);
    *out += ",\"max\":" + std::to_string(s.records_max);
    *out += "},\"bytes\":{\"total\":" + std::to_string(s.bytes_total);
    *out += ",\"max\":" + std::to_string(s.bytes_max);
    *out += "},\"critical\":{\"partition\":" +
            std::to_string(s.critical_partition);
    *out += ",\"seconds\":";
    AppendNum(out, s.critical_seconds);
    *out += ",\"phase_seconds\":[";
    for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
      if (p != 0) *out += ",";
      AppendNum(out, s.critical_phase_seconds[p]);
    }
    *out += "]}}";
  }
  *out += "],\"critical_path\":{\"seconds\":";
  AppendNum(out, profile.critical_path_seconds);
  *out += ",\"spans\":[";
  for (std::size_t i = 0; i < profile.critical_path.size(); ++i) {
    const RunProfile::CriticalSpan& span = profile.critical_path[i];
    if (i != 0) *out += ",";
    *out += "{\"stage\":" + std::to_string(span.stage_id);
    *out += ",\"partition\":" + std::to_string(span.partition);
    *out += ",\"seconds\":";
    AppendNum(out, span.seconds);
    *out += "}";
  }
  *out += "]},\"workers\":[";
  for (std::size_t i = 0; i < profile.workers.size(); ++i) {
    const WorkerStats& w = profile.workers[i];
    if (i != 0) *out += ",";
    *out += "{\"worker\":" + std::to_string(w.worker);
    *out += ",\"tasks\":" + std::to_string(w.tasks);
    *out += ",\"busy_seconds\":";
    AppendNum(out, w.busy_seconds);
    *out += ",\"utilization\":";
    AppendNum(out, w.utilization);
    *out += ",\"idle\":{\"gaps\":" + std::to_string(w.idle_gaps);
    *out += ",\"total_seconds\":";
    AppendNum(out, w.idle_total_seconds);
    *out += ",\"max_seconds\":";
    AppendNum(out, w.idle_max_seconds);
    *out += "}}";
  }
  *out += "]}";
}

}  // namespace ss::engine
