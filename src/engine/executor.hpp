// The engine's I/O lane: a small dedicated thread group that overlaps
// spill/prefetch I/O with kernel execution.
//
// Stage workers (the ThreadPool) own compute; the AsyncExecutor owns the
// work that used to serialize against it — reloading + decoding spilled
// partitions ahead of the task that will need them (prefetch), writing
// evicted frames in the background (async spill), and generating the next
// batch's Monte Carlo Z-block while the current one scores. Jobs flow
// through a bounded support::Channel, so a producer that outruns the lane
// blocks (backpressure) instead of queueing unbounded memory.
//
// Two enqueue disciplines, matching the two kinds of work:
//   * Enqueue  — must-run jobs (spill writes): blocks when the queue is
//     full; false only if the executor is shut down, in which case the
//     caller owns running the job inline.
//   * TryEnqueue — advisory jobs (prefetch): dropped when the queue is
//     full, because a prefetch that cannot start before its consumer is
//     pure overhead. Results never depend on a prefetch happening.
//
// Determinism: the lane only *moves* work off the critical path — every
// job either duplicates a pure computation (Z-block), performs a reload
// the consumer would otherwise do itself, or persists bytes whose content
// is already fixed. Scheduling changes, fold order never does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/channel.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::engine {

/// Executor knobs; surfaced as ResamplingRequest::exec and the
/// `prefetch=`/`io_threads=`/`spill_async=` CLI/bench keys.
struct ExecConfig {
  /// Partitions reloaded/decoded ahead of the stage's compute frontier.
  /// 0 ablates the whole async path: stages run the legacy synchronous
  /// ParallelFor loop and nothing is enqueued on the I/O lane.
  int prefetch_depth = 1;

  /// Threads servicing the I/O lane (min 1 when the lane is active).
  int io_threads = 1;

  /// Move spill-frame encode+write off the evicting task onto the lane.
  /// Off by default: fault-injection tests that corrupt frames right
  /// after an eviction assume the write already happened.
  bool spill_async = false;

  /// Bound of the job queue; producers block (Enqueue) or drop
  /// (TryEnqueue) beyond it.
  std::size_t queue_bound = 8;

  bool enabled() const { return prefetch_depth > 0; }
};

class AsyncExecutor {
 public:
  explicit AsyncExecutor(ExecConfig config);

  /// Closes the queue, runs every already-accepted job to completion
  /// (spill writes are never lost), then joins. Must not race Enqueue.
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  const ExecConfig& config() const { return config_; }

  /// Must-run job; blocks on backpressure (counted) while the queue is
  /// full. Returns false — job NOT run, caller must run it inline — only
  /// after shutdown started.
  bool Enqueue(std::function<void()> job);

  /// Advisory job; dropped (returns false) when the queue is full or the
  /// executor is shut down.
  bool TryEnqueue(std::function<void()> job);

  /// Enqueues `fn` and returns a future for its result — the Z-block
  /// double-buffer hook. Falls back to running inline (still satisfying
  /// the future) under shutdown, so callers never need a second path.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (!Enqueue([task]() { (*task)(); })) (*task)();
    return future;
  }

  /// Blocks until every accepted job has finished. Used at fault-injection
  /// boundaries (InjureSpill must not race in-flight frame writes) and by
  /// tests; NOT needed at stage boundaries — jobs are self-contained.
  void Drain();

  /// Jobs accepted but not yet finished.
  std::uint64_t pending() const;

  /// True on an I/O-lane worker thread (any executor's). Producers that
  /// can run on the lane itself (a prefetch whose eviction schedules a
  /// spill write) must not block on Enqueue there: with every worker busy
  /// producing, nobody drains the queue and Push deadlocks against its
  /// own backpressure. Such callers run the job inline instead.
  static bool OnLaneThread();

 private:
  void IoLoop(int worker_index);

  const ExecConfig config_;
  support::Channel<std::function<void()>> queue_;
  mutable support::RankedMutex state_mutex_{support::lock_rank::kExecState};
  std::condition_variable_any idle_cv_;
  std::uint64_t pending_ SS_GUARDED_BY(state_mutex_) = 0;
  std::vector<std::thread> io_workers_;
};

}  // namespace ss::engine
