// Task-timeline profiler: phase collection hooks + run analysis.
//
// Collection side: EngineContext binds the executing attempt's
// TaskTimeline to a thread-local slot (TaskTimelineScope); instrumented
// layers — the cache manager's spill reload/write, the DFS/shuffle input
// readers, the packed-genotype decode in the pipeline — open a PhaseTimer
// around the work. When profiling is off (SetProfilingEnabled(false)) or
// no task is bound, a PhaseTimer is a single thread-local load; results
// are bitwise identical either way because the profiler only reads
// clocks, never touches data. Phase timers never nest: an inner timer
// while another phase is open attributes its time to the outer phase, so
// per-task phase spans are disjoint by construction and the accounting
// invariant (phases sum to the task total) holds exactly.
//
// Analysis side: BuildRunProfile turns the recorded per-stage timelines
// into the run's critical path (the chain of stage-binding tasks that
// bounds wall-clock), per-worker utilization and idle-gap inventory, and
// per-stage skew stats (p50/p95/max, records per partition, stragglers
// at a configurable MAD threshold). FormatProfileReport renders it for
// humans; AppendTimelineJson emits the `timeline` section of the
// sparkscore-run-metrics-v2 document (validated by tools/check_trace.py
// and reconciled offline by tools/ss_prof.py).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/task.hpp"

namespace ss::engine {

/// Steady-clock nanoseconds — the one clock every timeline timestamp
/// (stage begin/end, task enqueue/start/end, phase spans) is drawn from.
std::int64_t ProfileNowNs();

/// Process-wide master switch for timeline collection. Defaults to ON
/// (the collection cost is a handful of clock reads per task); `profile=0`
/// in the CLI/benches turns it off to prove the ablation is free.
void SetProfilingEnabled(bool enabled);
bool ProfilingEnabled();

/// The timeline of the task attempt executing on this thread, or nullptr
/// when none is bound (driver code, profiling disabled).
TaskTimeline* ActiveTaskTimeline();

/// RAII binding of a task attempt's timeline to this thread for the
/// duration of the task body. Null `timeline` is a no-op binding.
class TaskTimelineScope {
 public:
  explicit TaskTimelineScope(TaskTimeline* timeline);
  ~TaskTimelineScope();

  TaskTimelineScope(const TaskTimelineScope&) = delete;
  TaskTimelineScope& operator=(const TaskTimelineScope&) = delete;

 private:
  TaskTimeline* previous_;
};

/// RAII phase span: appends [construction, destruction) to the bound
/// timeline under `phase`, and mirrors it as a nested Chrome-trace span
/// (category "phase") when the tracer is enabled. Inert when no timeline
/// is bound or another phase is already open on this thread. Consecutive
/// spans of the same phase coalesce (exact total duration, one entry);
/// pass `trace = false` at per-record call sites so a hot loop does not
/// flood the Chrome trace with thousands of micro-spans.
class PhaseTimer {
 public:
  explicit PhaseTimer(TaskPhase phase, bool trace = true);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  TaskTimeline* timeline_;  ///< nullptr when inert.
  TaskPhase phase_;
  std::int64_t begin_ns_ = 0;
  bool traced_ = false;
};

/// Per-phase wall seconds of one task attempt: explicit spans, plus the
/// derived queue-wait ([enqueue, start]) and compute (total minus every
/// explicit span) entries. Entries sum to queue_wait + (end - start).
std::array<double, kNumTaskPhases> PhaseSecondsOf(const TaskTimeline& t);

/// Analysis of one stage's timelines.
struct StageTimingStats {
  std::uint64_t stage_id = 0;
  std::string label;
  std::size_t tasks = 0;
  double stage_seconds = 0.0;  ///< BeginStage -> EndStage on the driver.
  std::uint64_t queue_peak = 0;  ///< Pool queue depth high-watermark.

  /// Summed across the stage's tasks, indexed by TaskPhase.
  std::array<double, kNumTaskPhases> phase_seconds{};

  /// Task wall-time (start->end) distribution.
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double max_seconds = 0.0;
  double mad_seconds = 0.0;  ///< Median absolute deviation from the median.

  /// Stragglers: tasks slower than median + k * MAD (k = straggler_mad_k
  /// of the profile; flagged only when the stage has >= 4 tasks).
  double straggler_threshold_seconds = 0.0;
  std::vector<std::uint32_t> straggler_partitions;

  /// Records/bytes skew across partitions.
  std::uint64_t records_total = 0;
  std::uint64_t records_max = 0;
  double records_mean = 0.0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_max = 0;

  /// The task bounding this stage's makespan (latest end timestamp).
  std::uint32_t critical_partition = 0;
  double critical_seconds = 0.0;  ///< Stage begin -> critical task end.
  std::array<double, kNumTaskPhases> critical_phase_seconds{};
};

/// Per-worker occupancy over the run.
struct WorkerStats {
  std::uint32_t worker = 0;
  std::size_t tasks = 0;
  double busy_seconds = 0.0;  ///< Sum of task start->end spans.
  double utilization = 0.0;   ///< busy / run wall span.
  /// Idle gaps between consecutive tasks (and before the first / after
  /// the last, measured against the run span) longer than 1 microsecond.
  std::size_t idle_gaps = 0;
  double idle_total_seconds = 0.0;
  double idle_max_seconds = 0.0;
};

/// The full run analysis.
struct RunProfile {
  bool collected = false;  ///< Any timelines present (profiling was on).
  double wall_seconds = 0.0;  ///< First stage begin -> last task end.
  double straggler_mad_k = 3.0;
  std::vector<StageTimingStats> stages;
  std::vector<WorkerStats> workers;

  /// Stage-DAG critical path. Stages execute sequentially from the
  /// driver, so the path is the per-stage critical task chain; its total
  /// is <= wall_seconds (driver-side gaps between stages are the rest).
  struct CriticalSpan {
    std::uint64_t stage_id = 0;
    std::uint32_t partition = 0;
    double seconds = 0.0;
  };
  std::vector<CriticalSpan> critical_path;
  double critical_path_seconds = 0.0;
};

/// Analyzes recorded stages (their embedded timelines) into a RunProfile.
/// `straggler_mad_k` is the MAD multiple above the median task time at
/// which a task is flagged as a straggler.
RunProfile BuildRunProfile(const std::vector<StageMetrics>& stages,
                           double straggler_mad_k = 3.0);

/// ASCII rendering: critical path, per-stage phase breakdown + skew,
/// per-worker utilization and idle inventory.
std::string FormatProfileReport(const RunProfile& profile);

/// Appends `"timeline":{...}` (no surrounding comma) to `out` — the v2
/// metrics-JSON section. Emitted even when profile.collected is false so
/// consumers can key on `collected`.
void AppendTimelineJson(std::string* out, const RunProfile& profile);

}  // namespace ss::engine
