#include "engine/metrics.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "support/status.hpp"
#include "support/table.hpp"

namespace ss::engine {

std::uint64_t MetricsRecorder::BeginStage(const std::string& label,
                                          std::uint32_t num_tasks) {
  static std::atomic<std::uint64_t>& stages_counter =
      CounterRegistry::Global().Get("engine.stages");
  stages_counter.fetch_add(1, std::memory_order_relaxed);
  support::MutexLock lock(mutex_);
  StageMetrics stage;
  stage.stage_id = next_stage_id_++;
  stage.label = label;
  stage.begin_ns = ProfileNowNs();
  stage.task_seconds.reserve(num_tasks);
  stages_.push_back(std::move(stage));
  return stages_.back().stage_id;
}

namespace {

StageMetrics* FindStage(std::vector<StageMetrics>& stages, std::uint64_t id) {
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if (it->stage_id == id) return &*it;
  }
  return nullptr;
}

}  // namespace

void MetricsRecorder::RecordTask(std::uint64_t stage_id,
                                 const TaskMetrics& metrics) {
  static std::atomic<std::uint64_t>& tasks_counter =
      CounterRegistry::Global().Get("engine.tasks.completed");
  static std::atomic<std::uint64_t>& shuffle_read =
      CounterRegistry::Global().Get("engine.shuffle.read_bytes");
  static std::atomic<std::uint64_t>& shuffle_write =
      CounterRegistry::Global().Get("engine.shuffle.write_bytes");
  tasks_counter.fetch_add(1, std::memory_order_relaxed);
  shuffle_read.fetch_add(metrics.shuffle_read_bytes, std::memory_order_relaxed);
  shuffle_write.fetch_add(metrics.shuffle_write_bytes,
                          std::memory_order_relaxed);
  support::MutexLock lock(mutex_);
  StageMetrics* stage = FindStage(stages_, stage_id);
  SS_CHECK(stage != nullptr);
  stage->task_seconds.push_back(metrics.compute_seconds);
  stage->shuffle_read_bytes += metrics.shuffle_read_bytes;
  stage->shuffle_write_bytes += metrics.shuffle_write_bytes;
  stage->records_out += metrics.records_out;
  if (metrics.profiled) stage->timelines.push_back(metrics.timeline);
}

void MetricsRecorder::EndStage(std::uint64_t stage_id,
                               std::uint64_t queue_peak) {
  support::MutexLock lock(mutex_);
  StageMetrics* stage = FindStage(stages_, stage_id);
  SS_CHECK(stage != nullptr);
  stage->end_ns = ProfileNowNs();
  stage->queue_peak = queue_peak;
}

void MetricsRecorder::RecordFailure(std::uint64_t stage_id) {
  static std::atomic<std::uint64_t>& failures_counter =
      CounterRegistry::Global().Get("engine.tasks.failed_attempts");
  failures_counter.fetch_add(1, std::memory_order_relaxed);
  support::MutexLock lock(mutex_);
  StageMetrics* stage = FindStage(stages_, stage_id);
  SS_CHECK(stage != nullptr);
  ++stage->failed_attempts;
}

void MetricsRecorder::RecordBroadcast(std::uint64_t bytes) {
  static std::atomic<std::uint64_t>& broadcast_count =
      CounterRegistry::Global().Get("broadcast.count");
  static std::atomic<std::uint64_t>& broadcast_bytes =
      CounterRegistry::Global().Get("broadcast.bytes");
  broadcast_count.fetch_add(1, std::memory_order_relaxed);
  broadcast_bytes.fetch_add(bytes, std::memory_order_relaxed);
  support::MutexLock lock(mutex_);
  broadcast_bytes_ += bytes;
}

std::vector<StageMetrics> MetricsRecorder::stages() const {
  support::MutexLock lock(mutex_);
  return stages_;
}

std::uint64_t MetricsRecorder::broadcast_bytes() const {
  support::MutexLock lock(mutex_);
  return broadcast_bytes_;
}

cluster::JobProfile MetricsRecorder::ToJobProfile() const {
  support::MutexLock lock(mutex_);
  cluster::JobProfile job;
  job.stages.reserve(stages_.size());
  for (const StageMetrics& stage : stages_) {
    cluster::StageProfile profile;
    profile.task_compute_s = stage.task_seconds;
    profile.shuffle_read_bytes = stage.shuffle_read_bytes;
    profile.shuffle_write_bytes = stage.shuffle_write_bytes;
    job.stages.push_back(std::move(profile));
  }
  return job;
}

void MetricsRecorder::Reset() {
  support::MutexLock lock(mutex_);
  stages_.clear();
  broadcast_bytes_ = 0;
}

std::string FormatStageReport(const std::vector<StageMetrics>& stages) {
  Table table("Stages", {"id", "label", "tasks", "total task s", "max task s",
                         "records out", "shuffle R/W bytes", "failed"});
  for (const StageMetrics& stage : stages) {
    double total = 0.0;
    double longest = 0.0;
    for (double seconds : stage.task_seconds) {
      total += seconds;
      longest = std::max(longest, seconds);
    }
    table.AddRow({std::to_string(stage.stage_id), stage.label,
                  std::to_string(stage.task_seconds.size()),
                  Table::Num(total, 4), Table::Num(longest, 4),
                  std::to_string(stage.records_out),
                  std::to_string(stage.shuffle_read_bytes) + "/" +
                      std::to_string(stage.shuffle_write_bytes),
                  std::to_string(stage.failed_attempts)});
  }
  return table.ToString();
}

std::string FormatRunReport(const std::vector<StageMetrics>& stages,
                            const CacheStats& cache,
                            std::uint64_t broadcast_bytes) {
  std::uint64_t shuffle_read = 0;
  std::uint64_t shuffle_write = 0;
  for (const StageMetrics& stage : stages) {
    shuffle_read += stage.shuffle_read_bytes;
    shuffle_write += stage.shuffle_write_bytes;
  }
  const std::uint64_t lookups = cache.hits + cache.misses;
  const double hit_rate =
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(cache.hits) /
                         static_cast<double>(lookups);
  char line[256];
  std::string out = FormatStageReport(stages);
  std::snprintf(line, sizeof(line),
                "cache: %llu hits / %llu misses (%.1f%% hit rate), "
                "%llu insertions, %llu evictions, %llu dropped by failure, "
                "%llu bytes resident\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses), hit_rate,
                static_cast<unsigned long long>(cache.insertions),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.dropped_by_failure),
                static_cast<unsigned long long>(cache.bytes_cached));
  out += line;
  std::snprintf(line, sizeof(line),
                "spill: %llu spills (%llu bytes written), %llu reloads, "
                "%llu corrupt frames, %llu bytes spilled\n",
                static_cast<unsigned long long>(cache.spills),
                static_cast<unsigned long long>(cache.spill_bytes),
                static_cast<unsigned long long>(cache.reloads),
                static_cast<unsigned long long>(cache.spill_corrupt),
                static_cast<unsigned long long>(cache.bytes_spilled));
  out += line;
  std::snprintf(line, sizeof(line),
                "traffic: %llu broadcast bytes, %llu/%llu shuffle R/W bytes\n",
                static_cast<unsigned long long>(broadcast_bytes),
                static_cast<unsigned long long>(shuffle_read),
                static_cast<unsigned long long>(shuffle_write));
  out += line;
  return out;
}

namespace {

/// Upper edges (seconds) of the task-time histogram; the final bucket is
/// the implicit +inf overflow, so counts has one more entry than edges.
constexpr std::array<double, 7> kHistEdges = {1e-5, 1e-4, 1e-3, 1e-2,
                                              0.1,  1.0,  10.0};

void AppendNum(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  *out += buffer;
}

/// q-th quantile of an ascending-sorted sample (nearest-rank).
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void AppendStageJson(std::string* out, const StageMetrics& stage) {
  std::vector<double> sorted = stage.task_seconds;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (double seconds : sorted) total += seconds;
  std::array<std::uint64_t, kHistEdges.size() + 1> counts{};
  for (double seconds : sorted) {
    std::size_t bucket = 0;
    while (bucket < kHistEdges.size() && seconds > kHistEdges[bucket]) {
      ++bucket;
    }
    ++counts[bucket];
  }

  *out += "{\"id\":" + std::to_string(stage.stage_id);
  *out += ",\"label\":\"" + JsonEscape(stage.label) + "\"";
  *out += ",\"tasks\":" + std::to_string(sorted.size());
  *out += ",\"failed_attempts\":" + std::to_string(stage.failed_attempts);
  *out += ",\"records_out\":" + std::to_string(stage.records_out);
  *out += ",\"shuffle_read_bytes\":" + std::to_string(stage.shuffle_read_bytes);
  *out +=
      ",\"shuffle_write_bytes\":" + std::to_string(stage.shuffle_write_bytes);
  *out += ",\"task_seconds\":{\"total\":";
  AppendNum(out, total);
  *out += ",\"min\":";
  AppendNum(out, sorted.empty() ? 0.0 : sorted.front());
  *out += ",\"mean\":";
  AppendNum(out, sorted.empty() ? 0.0
                                : total / static_cast<double>(sorted.size()));
  *out += ",\"p50\":";
  AppendNum(out, Quantile(sorted, 0.50));
  *out += ",\"p90\":";
  AppendNum(out, Quantile(sorted, 0.90));
  *out += ",\"p99\":";
  AppendNum(out, Quantile(sorted, 0.99));
  *out += ",\"max\":";
  AppendNum(out, sorted.empty() ? 0.0 : sorted.back());
  *out += "},\"task_seconds_hist\":{\"le\":[";
  for (std::size_t i = 0; i < kHistEdges.size(); ++i) {
    if (i != 0) *out += ",";
    AppendNum(out, kHistEdges[i]);
  }
  *out += "],\"counts\":[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) *out += ",";
    *out += std::to_string(counts[i]);
  }
  *out += "]}}";
}

}  // namespace

std::string RunMetricsJson(const std::vector<StageMetrics>& stages,
                           const CacheStats& cache,
                           std::uint64_t broadcast_bytes,
                           std::uint64_t tasks_completed,
                           double straggler_mad_k) {
  std::uint64_t total_tasks = 0;
  std::uint64_t total_failures = 0;
  std::uint64_t shuffle_read = 0;
  std::uint64_t shuffle_write = 0;
  double total_task_seconds = 0.0;
  for (const StageMetrics& stage : stages) {
    total_tasks += stage.task_seconds.size();
    total_failures += static_cast<std::uint64_t>(stage.failed_attempts);
    shuffle_read += stage.shuffle_read_bytes;
    shuffle_write += stage.shuffle_write_bytes;
    for (double seconds : stage.task_seconds) total_task_seconds += seconds;
  }

  std::string out = "{\"schema\":\"sparkscore-run-metrics-v2\"";
  out += ",\"tasks_completed\":" + std::to_string(tasks_completed);
  out += ",\"totals\":{\"stages\":" + std::to_string(stages.size());
  out += ",\"tasks\":" + std::to_string(total_tasks);
  out += ",\"failed_attempts\":" + std::to_string(total_failures);
  out += ",\"shuffle_read_bytes\":" + std::to_string(shuffle_read);
  out += ",\"shuffle_write_bytes\":" + std::to_string(shuffle_write);
  out += ",\"task_seconds\":";
  AppendNum(&out, total_task_seconds);
  out += "},\"stages\":[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n";
    AppendStageJson(&out, stages[i]);
  }
  out += "]";
  out += ",\"cache\":{\"hits\":" + std::to_string(cache.hits);
  out += ",\"misses\":" + std::to_string(cache.misses);
  out += ",\"insertions\":" + std::to_string(cache.insertions);
  out += ",\"evictions\":" + std::to_string(cache.evictions);
  out += ",\"dropped_by_failure\":" + std::to_string(cache.dropped_by_failure);
  out += ",\"bytes_cached\":" + std::to_string(cache.bytes_cached);
  out += ",\"spills\":" + std::to_string(cache.spills);
  out += ",\"spill_bytes\":" + std::to_string(cache.spill_bytes);
  out += ",\"reloads\":" + std::to_string(cache.reloads);
  out += ",\"reload_nanos\":" + std::to_string(cache.reload_nanos);
  out += ",\"spill_corrupt\":" + std::to_string(cache.spill_corrupt);
  out += ",\"bytes_spilled\":" + std::to_string(cache.bytes_spilled) + "}";
  out += ",\"broadcast_bytes\":" + std::to_string(broadcast_bytes);
  // Kernel gauge section, read from the process-global registry. The
  // numeric level is stamped by the stats kernel layer; the name map is
  // duplicated here because ss_engine cannot depend on ss_stats.
  {
    auto& registry = CounterRegistry::Global();
    const std::uint64_t dispatch =
        registry.Get("kernel.dispatch").load(std::memory_order_relaxed);
    static constexpr const char* kDispatchNames[] = {"scalar", "sse2", "avx2"};
    const char* dispatch_name =
        dispatch < 3 ? kDispatchNames[dispatch] : "unknown";
    out += ",\"kernel\":{\"dispatch\":" + std::to_string(dispatch);
    out += ",\"dispatch_name\":\"" + std::string(dispatch_name) + "\"";
    out += ",\"packed_bytes\":" +
           std::to_string(registry.Get("genotype.packed_bytes")
                              .load(std::memory_order_relaxed));
    out += ",\"unpacked_bytes\":" +
           std::to_string(registry.Get("genotype.unpacked_bytes")
                              .load(std::memory_order_relaxed)) +
           "}";
  }
  // Adaptive p-value engine section (core/resampling_methods.*): all
  // zeros for legacy pure-resampling runs, but the keys are always
  // present (appended, never reordered — metrics_schema_test pins this).
  {
    auto& registry = CounterRegistry::Global();
    const auto counter = [&registry](const char* name) {
      return std::to_string(registry.Get(name).load(std::memory_order_relaxed));
    };
    out += ",\"pvalue\":{\"analytic_screens\":" +
           counter("pvalue.analytic_screens");
    out += ",\"refined_sets\":" + counter("pvalue.refined_sets");
    out += ",\"early_stops\":" + counter("pvalue.early_stops");
    out += ",\"replicates_saved\":" + counter("pvalue.replicates_saved") + "}";
  }
  // Genotype-store section (dfs/genotype_store.*): all zeros when the run
  // never touched a store; the keys are always present.
  {
    auto& registry = CounterRegistry::Global();
    const auto counter = [&registry](const char* name) {
      return std::to_string(registry.Get(name).load(std::memory_order_relaxed));
    };
    out += ",\"store\":{\"opens\":" + counter("store.opens");
    out += ",\"frame_reads\":" + counter("store.frame_reads");
    out += ",\"read_bytes\":" + counter("store.read_bytes");
    out += ",\"frame_writes\":" + counter("store.frame_writes");
    out += ",\"write_bytes\":" + counter("store.write_bytes");
    out += ",\"prefetch_frames\":" + counter("store.prefetch_frames");
    out += ",\"corrupt\":" + counter("store.corrupt") + "}";
  }
  out += ",";
  AppendTimelineJson(&out, BuildRunProfile(stages, straggler_mad_k));
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : CounterRegistry::Global().Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "}}\n";
  return out;
}

}  // namespace ss::engine
