#include "engine/metrics.hpp"

#include <algorithm>

#include "support/status.hpp"
#include "support/table.hpp"

namespace ss::engine {

std::uint64_t MetricsRecorder::BeginStage(const std::string& label,
                                          std::uint32_t num_tasks) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageMetrics stage;
  stage.stage_id = next_stage_id_++;
  stage.label = label;
  stage.task_seconds.reserve(num_tasks);
  stages_.push_back(std::move(stage));
  return stages_.back().stage_id;
}

namespace {

StageMetrics* FindStage(std::vector<StageMetrics>& stages, std::uint64_t id) {
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) {
    if (it->stage_id == id) return &*it;
  }
  return nullptr;
}

}  // namespace

void MetricsRecorder::RecordTask(std::uint64_t stage_id,
                                 const TaskMetrics& metrics) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageMetrics* stage = FindStage(stages_, stage_id);
  SS_CHECK(stage != nullptr);
  stage->task_seconds.push_back(metrics.compute_seconds);
  stage->shuffle_read_bytes += metrics.shuffle_read_bytes;
  stage->shuffle_write_bytes += metrics.shuffle_write_bytes;
  stage->records_out += metrics.records_out;
}

void MetricsRecorder::RecordFailure(std::uint64_t stage_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  StageMetrics* stage = FindStage(stages_, stage_id);
  SS_CHECK(stage != nullptr);
  ++stage->failed_attempts;
}

void MetricsRecorder::RecordBroadcast(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  broadcast_bytes_ += bytes;
}

std::vector<StageMetrics> MetricsRecorder::stages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_;
}

std::uint64_t MetricsRecorder::broadcast_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return broadcast_bytes_;
}

cluster::JobProfile MetricsRecorder::ToJobProfile() const {
  std::lock_guard<std::mutex> lock(mutex_);
  cluster::JobProfile job;
  job.stages.reserve(stages_.size());
  for (const StageMetrics& stage : stages_) {
    cluster::StageProfile profile;
    profile.task_compute_s = stage.task_seconds;
    profile.shuffle_read_bytes = stage.shuffle_read_bytes;
    profile.shuffle_write_bytes = stage.shuffle_write_bytes;
    job.stages.push_back(std::move(profile));
  }
  return job;
}

void MetricsRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stages_.clear();
  broadcast_bytes_ = 0;
}

std::string FormatStageReport(const std::vector<StageMetrics>& stages) {
  Table table("Stages", {"id", "label", "tasks", "total task s", "max task s",
                         "records out", "shuffle R/W bytes", "failed"});
  for (const StageMetrics& stage : stages) {
    double total = 0.0;
    double longest = 0.0;
    for (double seconds : stage.task_seconds) {
      total += seconds;
      longest = std::max(longest, seconds);
    }
    table.AddRow({std::to_string(stage.stage_id), stage.label,
                  std::to_string(stage.task_seconds.size()),
                  Table::Num(total, 4), Table::Num(longest, 4),
                  std::to_string(stage.records_out),
                  std::to_string(stage.shuffle_read_bytes) + "/" +
                      std::to_string(stage.shuffle_write_bytes),
                  std::to_string(stage.failed_attempts)});
  }
  return table.ToString();
}

}  // namespace ss::engine
