// Record serialization for checkpointing datasets to the mini-DFS.
//
// Spark checkpointing persists an RDD's partitions to reliable storage and
// truncates its lineage; long resampling jobs use it so a late failure
// does not recompute from the original inputs. `Codec<T>` defines the
// byte format per record type; provide a specialization to make a custom
// record type checkpointable.
#pragma once

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/binary_io.hpp"

namespace ss::engine {

template <typename T, typename Enable = void>
struct Codec {
  static void Encode(BinaryWriter& writer, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "provide a Codec specialization for this record type");
    writer.WritePodVector(std::vector<T>{value});
  }
  static T Decode(BinaryReader& reader) {
    return reader.ReadPodVector<T>().at(0);
  }
};

// Compact specialization for trivially copyable types (no length prefix).
template <typename T>
struct Codec<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static void Encode(BinaryWriter& writer, const T& value) {
    std::uint8_t bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (std::uint8_t b : bytes) writer.WriteU8(b);
  }
  static T Decode(BinaryReader& reader) {
    std::uint8_t bytes[sizeof(T)];
    for (auto& b : bytes) b = reader.ReadU8();
    T value;
    std::memcpy(&value, bytes, sizeof(T));
    return value;
  }
};

template <>
struct Codec<std::string> {
  static void Encode(BinaryWriter& writer, const std::string& value) {
    writer.WriteString(value);
  }
  static std::string Decode(BinaryReader& reader) {
    return reader.ReadString();
  }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void Encode(BinaryWriter& writer, const std::pair<A, B>& value) {
    Codec<A>::Encode(writer, value.first);
    Codec<B>::Encode(writer, value.second);
  }
  static std::pair<A, B> Decode(BinaryReader& reader) {
    A a = Codec<A>::Decode(reader);
    B b = Codec<B>::Decode(reader);
    return {std::move(a), std::move(b)};
  }
};

template <typename T>
struct Codec<std::vector<T>, std::enable_if_t<!std::is_trivially_copyable_v<std::vector<T>>>> {
  static void Encode(BinaryWriter& writer, const std::vector<T>& value) {
    writer.WriteU64(value.size());
    for (const T& item : value) Codec<T>::Encode(writer, item);
  }
  static std::vector<T> Decode(BinaryReader& reader) {
    const std::uint64_t count = reader.ReadU64();
    std::vector<T> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(Codec<T>::Decode(reader));
    }
    return out;
  }
};

/// True when `Codec<T>` round-trips T without a user-provided
/// specialization, i.e. the partition can cross the cache's spill tier.
/// Mirrors the Codec specializations above; extend both together.
template <typename T>
inline constexpr bool kSpillable = std::is_trivially_copyable_v<T>;

template <>
inline constexpr bool kSpillable<std::string> = true;

template <typename A, typename B>
inline constexpr bool kSpillable<std::pair<A, B>> =
    kSpillable<A> && kSpillable<B>;

template <typename T>
inline constexpr bool kSpillable<std::vector<T>> = kSpillable<T>;

/// Serializes a whole partition.
template <typename T>
std::vector<std::uint8_t> EncodePartition(const std::vector<T>& records) {
  BinaryWriter writer;
  writer.WriteU64(records.size());
  for (const T& record : records) Codec<T>::Encode(writer, record);
  return writer.TakeBytes();
}

template <typename T>
std::vector<T> DecodePartition(const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  const std::uint64_t count = reader.ReadU64();
  std::vector<T> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    records.push_back(Codec<T>::Decode(reader));
  }
  return records;
}

}  // namespace ss::engine
