#include "simdata/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/distributions.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace ss::simdata {
namespace {

// Independent sub-streams of the master seed, so changing e.g. the number
// of SNPs does not perturb the phenotype draws.
constexpr std::uint64_t kStreamSurvival = 1;
constexpr std::uint64_t kStreamGenotypes = 2;
constexpr std::uint64_t kStreamSets = 3;
constexpr std::uint64_t kStreamWeights = 4;

double WeightFor(WeightScheme scheme, double rho, Rng& rng) {
  switch (scheme) {
    case WeightScheme::kUnit:
      return 1.0;
    case WeightScheme::kMadsenBrowning:
      return 1.0 / std::sqrt(2.0 * rho * (1.0 - rho));
    case WeightScheme::kRandom:
      return 0.5 + rng.NextDouble();
  }
  return 1.0;
}

/// One SNP row + weight — the loop body shared by the dense path
/// (Generate) and the streaming path (GenotypeStream), so the two are
/// bitwise identical by construction. `h1`/`h2` carry the current LD
/// block's per-patient haplotype uniforms between consecutive calls.
StreamedSnp GenerateSnp(const GeneratorConfig& config,
                        const Rng& genotype_root, Rng& weight_rng,
                        std::vector<double>* h1, std::vector<double>* h2,
                        std::uint32_t j) {
  const std::uint32_t block = std::max(1u, config.ld_block_size);
  // Per-SNP child stream: SNP j's genotypes do not depend on how many
  // SNPs precede it (for block size 1; larger blocks couple SNPs by
  // design).
  Rng rng = genotype_root.Split(j + 1);
  StreamedSnp out;
  out.snp = j;
  const double rho =
      config.maf_min + (config.maf_max - config.maf_min) * rng.NextDouble();
  out.allele_freq = rho;
  out.dosages.reserve(config.num_patients);

  if (block == 1) {
    // Independent regime (the paper's Section III).
    for (std::uint32_t i = 0; i < config.num_patients; ++i) {
      out.dosages.push_back(
          static_cast<std::uint8_t>(SampleBinomial(rng, 2, rho)));
    }
  } else {
    if (j % block == 0) {
      // New LD block: fresh shared haplotype uniforms per patient.
      Rng block_rng = genotype_root.Split(0x10000000ULL + j / block);
      h1->resize(config.num_patients);
      h2->resize(config.num_patients);
      for (std::uint32_t i = 0; i < config.num_patients; ++i) {
        (*h1)[i] = block_rng.NextDouble();
        (*h2)[i] = block_rng.NextDouble();
      }
    }
    for (std::uint32_t i = 0; i < config.num_patients; ++i) {
      // With probability ld_correlation reuse the block haplotype
      // uniform (copula coupling), else draw fresh; either way the
      // marginal allele probability is exactly rho.
      const double u1 = SampleBernoulli(rng, config.ld_correlation)
                            ? (*h1)[i]
                            : rng.NextDouble();
      const double u2 = SampleBernoulli(rng, config.ld_correlation)
                            ? (*h2)[i]
                            : rng.NextDouble();
      out.dosages.push_back(static_cast<std::uint8_t>((u1 < rho ? 1 : 0) +
                                                      (u2 < rho ? 1 : 0)));
    }
  }
  out.weight = WeightFor(config.weights, rho, weight_rng);
  return out;
}

void CheckGeneratorConfig(const GeneratorConfig& config) {
  SS_CHECK(config.num_patients >= 2);
  SS_CHECK(config.num_snps >= config.num_sets);
  SS_CHECK(config.maf_min > 0.0 && config.maf_max < 1.0 &&
           config.maf_min <= config.maf_max);
}

}  // namespace

stats::SurvivalData GenerateSurvival(std::uint64_t seed, std::uint32_t n,
                                     double mean_survival, double event_rate) {
  SS_CHECK(mean_survival > 0.0);
  Rng rng = Rng(seed).Split(kStreamSurvival);
  stats::SurvivalData data;
  data.time.reserve(n);
  data.event.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    data.time.push_back(SampleExponential(rng, 1.0 / mean_survival));
    data.event.push_back(SampleBernoulli(rng, event_rate) ? 1 : 0);
  }
  return data;
}

std::vector<stats::SnpSet> GenerateSnpSets(std::uint64_t seed,
                                           std::uint32_t num_snps,
                                           std::uint32_t num_sets) {
  SS_CHECK(num_sets >= 1);
  SS_CHECK(num_snps >= num_sets);
  Rng rng = Rng(seed).Split(kStreamSets);

  // SNPs are assigned to sets by walking a shuffled ordering, so set
  // membership is "arbitrary" as in the paper while remaining a partition.
  std::vector<std::uint32_t> shuffled(num_snps);
  std::iota(shuffled.begin(), shuffled.end(), 0u);
  ShuffleInPlace(rng, shuffled);

  const double mean_size =
      static_cast<double>(num_snps) / static_cast<double>(num_sets);
  std::vector<stats::SnpSet> sets(num_sets);
  std::size_t cursor = 0;
  for (std::uint32_t k = 0; k < num_sets; ++k) {
    sets[k].id = k;
    if (k + 1 == num_sets) break;  // last set takes the remainder below
    double draw = SampleExponential(rng, 1.0 / mean_size);
    // "rounded down to the nearest integer, or up to 1 if between 0 and 1"
    std::size_t size = draw < 1.0 ? 1 : static_cast<std::size_t>(draw);
    // Leave at least one SNP per remaining set so no set is empty.
    const std::size_t sets_after = num_sets - k - 1;
    const std::size_t available = num_snps - cursor;
    size = std::min(size, available > sets_after ? available - sets_after : 1);
    for (std::size_t s = 0; s < size; ++s) {
      sets[k].snps.push_back(shuffled[cursor++]);
    }
  }
  // "SNP-set K is augmented by the SNPs not picked by SNP-sets 1..K-1."
  while (cursor < num_snps) {
    sets[num_sets - 1].snps.push_back(shuffled[cursor++]);
  }
  return sets;
}

SyntheticDataset Generate(const GeneratorConfig& config) {
  CheckGeneratorConfig(config);

  SyntheticDataset dataset;
  dataset.survival =
      GenerateSurvival(config.seed, config.num_patients,
                       config.mean_survival_months, config.event_rate);

  Rng genotype_root = Rng(config.seed).Split(kStreamGenotypes);
  Rng weight_rng = Rng(config.seed).Split(kStreamWeights);
  dataset.genotypes.num_patients = config.num_patients;
  dataset.genotypes.by_snp.resize(config.num_snps);
  dataset.genotypes.allele_freq.resize(config.num_snps);
  dataset.weights.resize(config.num_snps);

  // Per-(block, patient) shared haplotype uniforms; resampled per block.
  std::vector<double> h1;
  std::vector<double> h2;

  for (std::uint32_t j = 0; j < config.num_snps; ++j) {
    StreamedSnp row =
        GenerateSnp(config, genotype_root, weight_rng, &h1, &h2, j);
    dataset.genotypes.allele_freq[j] = row.allele_freq;
    dataset.genotypes.by_snp[j] = std::move(row.dosages);
    dataset.weights[j] = row.weight;
  }

  dataset.sets = GenerateSnpSets(config.seed, config.num_snps, config.num_sets);
  return dataset;
}

GenotypeStream::GenotypeStream(const GeneratorConfig& config)
    : config_(config),
      genotype_root_(Rng(config.seed).Split(kStreamGenotypes)),
      weight_rng_(Rng(config.seed).Split(kStreamWeights)) {
  CheckGeneratorConfig(config);
}

StreamedSnp GenotypeStream::Next() {
  SS_CHECK(next_ < config_.num_snps);
  return GenerateSnp(config_, genotype_root_, weight_rng_, &h1_, &h2_,
                     next_++);
}

}  // namespace ss::simdata
