#include "simdata/annotation.hpp"

#include <algorithm>
#include <cstdio>

#include "support/distributions.hpp"
#include "support/string_util.hpp"

namespace ss::simdata {

GenomeAnnotation::GenomeAnnotation(std::vector<Gene> genes,
                                   std::vector<SnpLocus> loci)
    : genes_(std::move(genes)), loci_(std::move(loci)) {
  std::sort(genes_.begin(), genes_.end(), [](const Gene& a, const Gene& b) {
    return a.chromosome < b.chromosome ||
           (a.chromosome == b.chromosome && a.start < b.start);
  });
  for (const Gene& gene : genes_) {
    SS_CHECK(gene.start <= gene.end);
  }
}

std::vector<std::uint32_t> GenomeAnnotation::GenesContaining(
    std::uint32_t snp) const {
  SS_CHECK(snp < loci_.size());
  const SnpLocus& locus = loci_[snp];
  // Binary search to this chromosome's gene range, then scan genes with
  // start <= pos. Overlapping genes make interval-tree pruning unsafe
  // without max-end augmentation; at annotation scale (10^2-10^4 genes
  // per chromosome) the straight scan is both correct and fast.
  auto begin = std::lower_bound(
      genes_.begin(), genes_.end(), locus.chromosome,
      [](const Gene& gene, std::uint32_t chr) { return gene.chromosome < chr; });
  std::vector<std::uint32_t> containing;
  for (auto it = begin;
       it != genes_.end() && it->chromosome == locus.chromosome &&
       it->start <= locus.position;
       ++it) {
    if (it->Contains(locus)) containing.push_back(it->id);
  }
  return containing;
}

std::vector<stats::SnpSet> GenomeAnnotation::DeriveSnpSets() const {
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_gene;
  for (std::uint32_t snp = 0; snp < loci_.size(); ++snp) {
    for (std::uint32_t gene : GenesContaining(snp)) {
      by_gene[gene].push_back(snp);
    }
  }
  std::vector<stats::SnpSet> sets;
  sets.reserve(by_gene.size());
  for (const Gene& gene : genes_) {
    auto it = by_gene.find(gene.id);
    if (it == by_gene.end() || it->second.empty()) continue;
    sets.push_back({gene.id, it->second});
  }
  return sets;
}

std::uint32_t GenomeAnnotation::GenicSnpCount() const {
  std::uint32_t genic = 0;
  for (std::uint32_t snp = 0; snp < loci_.size(); ++snp) {
    if (!GenesContaining(snp).empty()) ++genic;
  }
  return genic;
}

GenomeAnnotation GenerateGenome(const GenomeConfig& config) {
  SS_CHECK(config.num_chromosomes >= 1);
  SS_CHECK(config.chromosome_length > config.mean_gene_length);
  Rng rng(config.seed);

  std::vector<Gene> genes;
  genes.reserve(config.num_genes);
  for (std::uint32_t g = 0; g < config.num_genes; ++g) {
    Gene gene;
    gene.id = g;
    gene.chromosome =
        1 + static_cast<std::uint32_t>(rng.NextBounded(config.num_chromosomes));
    const auto length = static_cast<std::uint64_t>(std::max(
        1.0, SampleExponential(rng, 1.0 / static_cast<double>(
                                         config.mean_gene_length))));
    const std::uint64_t clamped =
        std::min(length, config.chromosome_length - 1);
    gene.start = rng.NextBounded(config.chromosome_length - clamped);
    gene.end = gene.start + clamped;
    gene.name = "GENE" + std::to_string(g);
    genes.push_back(std::move(gene));
  }

  std::vector<SnpLocus> loci;
  loci.reserve(config.num_snps);
  for (std::uint32_t s = 0; s < config.num_snps; ++s) {
    SnpLocus locus;
    if (!genes.empty() && SampleBernoulli(rng, config.genic_fraction)) {
      // Place inside a random gene.
      const Gene& gene = genes[rng.NextBounded(genes.size())];
      locus.chromosome = gene.chromosome;
      locus.position =
          gene.start + rng.NextBounded(gene.end - gene.start + 1);
    } else {
      locus.chromosome = 1 + static_cast<std::uint32_t>(
                                 rng.NextBounded(config.num_chromosomes));
      locus.position = rng.NextBounded(config.chromosome_length);
    }
    loci.push_back(locus);
  }
  return GenomeAnnotation(std::move(genes), std::move(loci));
}

std::string FormatGene(const Gene& gene) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%u %u %llu %llu %s", gene.id,
                gene.chromosome, static_cast<unsigned long long>(gene.start),
                static_cast<unsigned long long>(gene.end), gene.name.c_str());
  return buf;
}

std::string FormatLocus(const SnpLocus& locus) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u %llu", locus.chromosome,
                static_cast<unsigned long long>(locus.position));
  return buf;
}

namespace {

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  for (std::string& part : Split(line, ' ')) {
    if (!part.empty()) tokens.push_back(std::move(part));
  }
  return tokens;
}

}  // namespace

Result<Gene> ParseGene(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() != 5) {
    return Status::InvalidArgument("gene record needs 5 fields: " + line);
  }
  Gene gene;
  std::int64_t start = 0;
  std::int64_t end = 0;
  if (!ParseU32(tokens[0], &gene.id) || !ParseU32(tokens[1], &gene.chromosome) ||
      !ParseI64(tokens[2], &start) || !ParseI64(tokens[3], &end) ||
      start < 0 || end < start) {
    return Status::InvalidArgument("bad gene record: " + line);
  }
  gene.start = static_cast<std::uint64_t>(start);
  gene.end = static_cast<std::uint64_t>(end);
  gene.name = tokens[4];
  return gene;
}

Result<SnpLocus> ParseLocus(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() != 2) {
    return Status::InvalidArgument("locus record needs 'chr pos': " + line);
  }
  SnpLocus locus;
  std::int64_t position = 0;
  if (!ParseU32(tokens[0], &locus.chromosome) ||
      !ParseI64(tokens[1], &position) || position < 0) {
    return Status::InvalidArgument("bad locus record: " + line);
  }
  locus.position = static_cast<std::uint64_t>(position);
  return locus;
}

}  // namespace ss::simdata
