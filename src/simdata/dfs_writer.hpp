// Stages a synthetic dataset into the mini-DFS under a directory prefix,
// producing the four text inputs of Algorithm 1.
#pragma once

#include <string>

#include "dfs/dfs.hpp"
#include "simdata/generator.hpp"
#include "stats/score_engine.hpp"
#include "support/status.hpp"

namespace ss::simdata {

/// File paths of one staged study.
struct StudyPaths {
  std::string genotypes;
  std::string phenotype;
  std::string weights;
  std::string snp_sets;

  /// "<prefix>/genotypes.txt" etc.
  static StudyPaths Under(const std::string& prefix);
};

/// Writes all four files. Fails if any already exists.
Status WriteStudy(dfs::MiniDfs& dfs, const StudyPaths& paths,
                  const SyntheticDataset& dataset);

/// Like WriteStudy, but stages `phenotype` (any model) instead of the
/// dataset's survival table — e.g. an eQTL study's expression values.
Status WriteStudyWithPhenotype(dfs::MiniDfs& dfs, const StudyPaths& paths,
                               const SyntheticDataset& dataset,
                               const stats::Phenotype& phenotype);

/// Convenience: generate + stage in one call, returning the paths.
Result<StudyPaths> GenerateToDfs(dfs::MiniDfs& dfs, const std::string& prefix,
                                 const GeneratorConfig& config);

/// What GenerateToStore staged.
struct StoreStageResult {
  std::uint32_t num_partitions = 0;
  std::uint64_t payload_bytes = 0;  ///< Frame payloads (packed + aux text).
};

/// Generates the cohort and stages it straight into a genotype store file
/// at `path` (dfs/genotype_store.hpp), split into about
/// `requested_partitions` genotype frames using the same truncating
/// row-count formula as the MiniDfs text path. Genotypes are produced via
/// GenotypeStream and packed one partition at a time, so peak memory is
/// one partition — never the dense matrix — which is what makes 1M-SNP
/// staging feasible. An existing file at `path` is overwritten; callers
/// that want stage-once semantics open first and stage only on NotFound
/// (as the CLI does).
Result<StoreStageResult> GenerateToStore(const GeneratorConfig& config,
                                         const std::string& path,
                                         std::uint32_t requested_partitions);

}  // namespace ss::simdata
