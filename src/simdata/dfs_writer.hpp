// Stages a synthetic dataset into the mini-DFS under a directory prefix,
// producing the four text inputs of Algorithm 1.
#pragma once

#include <string>

#include "dfs/dfs.hpp"
#include "simdata/generator.hpp"
#include "stats/score_engine.hpp"
#include "support/status.hpp"

namespace ss::simdata {

/// File paths of one staged study.
struct StudyPaths {
  std::string genotypes;
  std::string phenotype;
  std::string weights;
  std::string snp_sets;

  /// "<prefix>/genotypes.txt" etc.
  static StudyPaths Under(const std::string& prefix);
};

/// Writes all four files. Fails if any already exists.
Status WriteStudy(dfs::MiniDfs& dfs, const StudyPaths& paths,
                  const SyntheticDataset& dataset);

/// Like WriteStudy, but stages `phenotype` (any model) instead of the
/// dataset's survival table — e.g. an eQTL study's expression values.
Status WriteStudyWithPhenotype(dfs::MiniDfs& dfs, const StudyPaths& paths,
                               const SyntheticDataset& dataset,
                               const stats::Phenotype& phenotype);

/// Convenience: generate + stage in one call, returning the paths.
Result<StudyPaths> GenerateToDfs(dfs::MiniDfs& dfs, const std::string& prefix,
                                 const GeneratorConfig& config);

}  // namespace ss::simdata
