// Genomic coordinates and annotation — the paper's data model made
// concrete: "A SNP is typically represented as a pair (chr, pos) ...
// A gene can be represented as a triplet (chr, start, end) ... each I_k
// [contains] all SNPs j whose positions lie within gene k."
//
// GenomeAnnotation maps positions to genes and derives the SNP-set
// partition from interval containment, replacing the arbitrary set
// composition of the Section III generator when a positional model is
// wanted (e.g. the bioinformatics-database-driven refinement the paper's
// abstract mentions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/skat.hpp"
#include "support/status.hpp"

namespace ss::simdata {

/// A SNP locus: (chr, pos).
struct SnpLocus {
  std::uint32_t chromosome = 1;  ///< 1-based.
  std::uint64_t position = 0;

  bool operator==(const SnpLocus&) const = default;
};

/// A gene: (chr, start, end), inclusive of both endpoints.
struct Gene {
  std::uint32_t id = 0;
  std::uint32_t chromosome = 1;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::string name;

  bool Contains(const SnpLocus& locus) const {
    return locus.chromosome == chromosome && locus.position >= start &&
           locus.position <= end;
  }
};

/// An annotated genome: gene intervals plus SNP loci indexed 0..J-1.
class GenomeAnnotation {
 public:
  GenomeAnnotation(std::vector<Gene> genes, std::vector<SnpLocus> loci);

  const std::vector<Gene>& genes() const { return genes_; }
  const std::vector<SnpLocus>& loci() const { return loci_; }
  std::uint32_t num_snps() const {
    return static_cast<std::uint32_t>(loci_.size());
  }

  /// Ids of the genes containing SNP j (genes may overlap).
  std::vector<std::uint32_t> GenesContaining(std::uint32_t snp) const;

  /// SNP-sets by interval containment, in gene order. Intergenic SNPs
  /// appear in no set; genes containing no SNP yield empty sets, which
  /// are dropped (SKAT requires non-empty sets).
  std::vector<stats::SnpSet> DeriveSnpSets() const;

  /// Count of SNPs inside at least one gene.
  std::uint32_t GenicSnpCount() const;

 private:
  /// Genes sorted by (chromosome, start); binary-searchable.
  std::vector<Gene> genes_;
  std::vector<SnpLocus> loci_;
};

/// Configuration for a synthetic genome layout.
struct GenomeConfig {
  std::uint32_t num_chromosomes = 22;
  std::uint64_t chromosome_length = 1'000'000;
  std::uint32_t num_genes = 100;
  std::uint64_t mean_gene_length = 20'000;
  std::uint32_t num_snps = 2000;
  /// Fraction of SNPs forced inside genes (the rest land uniformly and
  /// may be intergenic).
  double genic_fraction = 0.8;
  std::uint64_t seed = 7;
};

/// Generates a random genome annotation: gene intervals (exponential
/// lengths, uniform placement) and SNP loci.
GenomeAnnotation GenerateGenome(const GenomeConfig& config);

// -- Text formats (the "bioinformatics database" files of the abstract) ----
//
//   genes.txt : "<id> <chr> <start> <end> <name>"
//   loci.txt  : "<chr> <pos>"            (line i = SNP i)

std::string FormatGene(const Gene& gene);
std::string FormatLocus(const SnpLocus& locus);
Result<Gene> ParseGene(const std::string& line);
Result<SnpLocus> ParseLocus(const std::string& line);

}  // namespace ss::simdata
