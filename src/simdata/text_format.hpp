// Line formats of the four input files of Algorithm 1, as stored in the
// mini-DFS. All files are plain text, one record per line, tab-free:
//
//   genotypes.txt : "<snp> <g_1> <g_2> ... <g_n>"     (dosages 0/1/2)
//   phenotype.txt : "<time> <event>"                  (patient order)
//   weights.txt   : "<snp> <weight>"
//   snpsets.txt   : "<set> <snp> <snp> ..."
//
// Parsers are strict: malformed lines produce InvalidArgument, surfaced as
// task failures so a corrupt shard fails loudly instead of skewing the
// statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/score_engine.hpp"
#include "stats/skat.hpp"
#include "stats/survival.hpp"
#include "support/status.hpp"

namespace ss::simdata {

/// One genotype record: SNP id and all patients' dosages.
struct SnpRecord {
  std::uint32_t snp = 0;
  std::vector<std::uint8_t> genotypes;

  bool operator==(const SnpRecord&) const = default;
};

/// One weight record.
struct WeightRecord {
  std::uint32_t snp = 0;
  double weight = 1.0;
};

// -- Formatting (writer side) ----------------------------------------------

std::string FormatSnpRecord(const SnpRecord& record);
std::string FormatPhenotype(const stats::PhenotypePair& pair);
std::string FormatWeight(const WeightRecord& record);
std::string FormatSnpSet(const stats::SnpSet& set);

// -- Parsing (pipeline side) -------------------------------------------------

Result<SnpRecord> ParseSnpRecord(const std::string& line);
Result<stats::PhenotypePair> ParsePhenotype(const std::string& line);
Result<WeightRecord> ParseWeight(const std::string& line);
Result<stats::SnpSet> ParseSnpSet(const std::string& line);

// -- Model-tagged phenotype files --------------------------------------------
//
// The phenotype file's first line declares the model ("#model cox",
// "#model gaussian", "#model binomial"); subsequent lines are one patient
// each: "time event" for Cox, a real value for Gaussian, 0/1 for
// Binomial. (Files without a header are parsed as Cox for backward
// compatibility with the paper's survival-only format.)

/// Serializes any phenotype (header + per-patient lines).
std::vector<std::string> FormatPhenotypeFile(const stats::Phenotype& phenotype);

/// Parses a model-tagged (or legacy header-less Cox) phenotype file.
Result<stats::Phenotype> ParsePhenotypeFile(const std::vector<std::string>& lines);

}  // namespace ss::simdata
