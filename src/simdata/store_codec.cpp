#include "simdata/store_codec.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "support/binary_io.hpp"

namespace ss::simdata {
namespace {

/// Bounds-checked cursor over an untrusted frame payload. The store has
/// already checksum-verified the bytes, so a failure here means the
/// writer and reader disagree about the layout (version skew) — report
/// it as a Status instead of SS_CHECK-aborting like BinaryReader does.
class SafeReader {
 public:
  explicit SafeReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  bool ReadU8(std::uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU32(std::uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU64(std::uint64_t* out) { return ReadRaw(out, sizeof(*out)); }

  bool ReadBytes(std::uint64_t count, std::vector<std::uint8_t>* out) {
    if (count > bytes_.size() - pos_) return false;
    out->assign(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  bool ReadRaw(void* out, std::size_t size) {
    if (size > bytes_.size() - pos_) return false;
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> EncodeGenotypePartition(
    const std::vector<stats::PackedSnpRecord>& records) {
  BinaryWriter writer;
  writer.WriteU64(records.size());
  for (const auto& record : records) {
    writer.WriteU32(record.snp);
    writer.WriteU8(record.genotypes.packed() ? 1 : 0);
    writer.WriteU32(static_cast<std::uint32_t>(record.genotypes.size()));
    writer.WritePodVector(record.genotypes.payload());
  }
  return writer.TakeBytes();
}

Result<std::vector<stats::PackedSnpRecord>> DecodeGenotypePartition(
    const std::vector<std::uint8_t>& bytes) {
  const auto malformed = [] {
    return Status(StatusCode::kInvalidArgument,
                  "malformed genotype frame payload (store version skew?)");
  };
  SafeReader reader(bytes);
  std::uint64_t count = 0;
  if (!reader.ReadU64(&count)) return malformed();
  std::vector<stats::PackedSnpRecord> records;
  // Cap the reserve at what the payload could plausibly hold so a
  // corrupted count cannot trigger a huge allocation.
  records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, bytes.size() / 9 + 1)));
  for (std::uint64_t r = 0; r < count; ++r) {
    std::uint32_t snp = 0;
    std::uint8_t packed = 0;
    std::uint32_t size = 0;
    std::uint64_t payload_size = 0;
    std::vector<std::uint8_t> payload;
    if (!reader.ReadU32(&snp) || !reader.ReadU8(&packed) ||
        !reader.ReadU32(&size) || !reader.ReadU64(&payload_size) ||
        !reader.ReadBytes(payload_size, &payload)) {
      return malformed();
    }
    const std::uint64_t expect = packed ? (size + 3u) / 4u : size;
    if (payload_size != expect) return malformed();
    records.push_back(stats::PackedSnpRecord{
        snp, stats::PackedGenotypeBlock::FromPayload(size, packed != 0,
                                                     std::move(payload))});
  }
  if (!reader.AtEnd()) return malformed();
  return records;
}

std::vector<std::uint8_t> EncodeTextLines(
    const std::vector<std::string>& lines) {
  std::vector<std::uint8_t> bytes;
  std::size_t total = 0;
  for (const auto& line : lines) total += line.size() + 1;
  bytes.reserve(total);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) bytes.push_back('\n');
    bytes.insert(bytes.end(), lines[i].begin(), lines[i].end());
  }
  return bytes;
}

std::vector<std::string> DecodeTextLines(
    const std::vector<std::uint8_t>& bytes) {
  std::vector<std::string> lines;
  if (bytes.empty()) return lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= bytes.size(); ++i) {
    if (i == bytes.size() || bytes[i] == '\n') {
      lines.emplace_back(reinterpret_cast<const char*>(bytes.data()) + start,
                         i - start);
      start = i + 1;
    }
  }
  return lines;
}

std::string StoreFingerprintText(const GeneratorConfig& config) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "sparkscore-store-v1|patients=%" PRIu32 "|snps=%" PRIu32
      "|sets=%" PRIu32 "|seed=%" PRIu64
      "|maf=%.17g,%.17g|weights=%d|ld=%" PRIu32
      ",%.17g|mean=%.17g|event=%.17g",
      config.num_patients, config.num_snps, config.num_sets, config.seed,
      config.maf_min, config.maf_max, static_cast<int>(config.weights),
      config.ld_block_size, config.ld_correlation,
      config.mean_survival_months, config.event_rate);
  return std::string(buf);
}

std::uint64_t StoreFingerprint(const GeneratorConfig& config) {
  const std::string text = StoreFingerprintText(config);
  std::vector<std::uint8_t> bytes(text.begin(), text.end());
  return Checksum(bytes);
}

std::uint32_t StorePartitionRows(std::uint64_t num_snps,
                                 std::uint32_t requested) {
  if (requested == 0) requested = 1;
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, num_snps / requested));
}

}  // namespace ss::simdata
