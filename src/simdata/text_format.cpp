#include "simdata/text_format.hpp"

#include <charconv>
#include <cstdio>

#include "support/string_util.hpp"

namespace ss::simdata {
namespace {

/// Splits a line on single spaces into trimmed, non-empty tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens;
  for (std::string& part : Split(line, ' ')) {
    if (!part.empty()) tokens.push_back(std::move(part));
  }
  return tokens;
}

}  // namespace

std::string FormatSnpRecord(const SnpRecord& record) {
  std::string line = std::to_string(record.snp);
  line.reserve(line.size() + record.genotypes.size() * 2);
  for (std::uint8_t g : record.genotypes) {
    line += ' ';
    line += static_cast<char>('0' + g);
  }
  return line;
}

std::string FormatPhenotype(const stats::PhenotypePair& pair) {
  // %.17g round-trips doubles exactly, so DFS-staged studies reproduce
  // in-memory results bit-for-bit.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g %d", pair.time,
                static_cast<int>(pair.event));
  return buf;
}

std::string FormatWeight(const WeightRecord& record) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%u %.17g", record.snp, record.weight);
  return buf;
}

std::string FormatSnpSet(const stats::SnpSet& set) {
  std::string line = std::to_string(set.id);
  for (std::uint32_t snp : set.snps) {
    line += ' ';
    line += std::to_string(snp);
  }
  return line;
}

Result<SnpRecord> ParseSnpRecord(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() < 2) {
    return Status::InvalidArgument("genotype record needs snp + >=1 dosage: " +
                                   line);
  }
  SnpRecord record;
  if (!ParseU32(tokens[0], &record.snp)) {
    return Status::InvalidArgument("bad SNP id: " + tokens[0]);
  }
  record.genotypes.reserve(tokens.size() - 1);
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    std::uint32_t dosage = 0;
    if (!ParseU32(tokens[t], &dosage) || dosage > 2) {
      return Status::InvalidArgument("bad dosage '" + tokens[t] + "' for SNP " +
                                     tokens[0]);
    }
    record.genotypes.push_back(static_cast<std::uint8_t>(dosage));
  }
  return record;
}

Result<stats::PhenotypePair> ParsePhenotype(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() != 2) {
    return Status::InvalidArgument("phenotype record needs 'time event': " +
                                   line);
  }
  stats::PhenotypePair pair;
  std::uint32_t event = 0;
  if (!ParseDouble(tokens[0], &pair.time) || pair.time < 0.0) {
    return Status::InvalidArgument("bad time: " + tokens[0]);
  }
  if (!ParseU32(tokens[1], &event) || event > 1) {
    return Status::InvalidArgument("bad event indicator: " + tokens[1]);
  }
  pair.event = static_cast<std::uint8_t>(event);
  return pair;
}

Result<WeightRecord> ParseWeight(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() != 2) {
    return Status::InvalidArgument("weight record needs 'snp weight': " + line);
  }
  WeightRecord record;
  if (!ParseU32(tokens[0], &record.snp)) {
    return Status::InvalidArgument("bad SNP id: " + tokens[0]);
  }
  if (!ParseDouble(tokens[1], &record.weight) || record.weight < 0.0) {
    return Status::InvalidArgument("bad weight: " + tokens[1]);
  }
  return record;
}

std::vector<std::string> FormatPhenotypeFile(
    const stats::Phenotype& phenotype) {
  std::vector<std::string> lines;
  lines.reserve(phenotype.n() + 1);
  char buf[64];
  switch (phenotype.model) {
    case stats::ScoreModel::kCox:
      lines.push_back("#model cox");
      for (const stats::PhenotypePair& pair : phenotype.survival.ToPairs()) {
        lines.push_back(FormatPhenotype(pair));
      }
      break;
    case stats::ScoreModel::kGaussian:
      lines.push_back("#model gaussian");
      for (double value : phenotype.quantitative.value) {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        lines.emplace_back(buf);
      }
      break;
    case stats::ScoreModel::kBinomial:
      lines.push_back("#model binomial");
      for (std::uint8_t value : phenotype.binary.value) {
        lines.push_back(value ? "1" : "0");
      }
      break;
  }
  return lines;
}

Result<stats::Phenotype> ParsePhenotypeFile(
    const std::vector<std::string>& lines) {
  stats::ScoreModel model = stats::ScoreModel::kCox;
  std::size_t first = 0;
  if (!lines.empty() && !lines[0].empty() && lines[0][0] == '#') {
    const std::vector<std::string> header = Tokens(lines[0]);
    if (header.size() != 2 || header[0] != "#model") {
      return Status::InvalidArgument("bad phenotype header: " + lines[0]);
    }
    if (header[1] == "cox") {
      model = stats::ScoreModel::kCox;
    } else if (header[1] == "gaussian") {
      model = stats::ScoreModel::kGaussian;
    } else if (header[1] == "binomial") {
      model = stats::ScoreModel::kBinomial;
    } else {
      return Status::InvalidArgument("unknown phenotype model: " + header[1]);
    }
    first = 1;
  }

  switch (model) {
    case stats::ScoreModel::kCox: {
      std::vector<stats::PhenotypePair> pairs;
      pairs.reserve(lines.size() - first);
      for (std::size_t i = first; i < lines.size(); ++i) {
        Result<stats::PhenotypePair> pair = ParsePhenotype(lines[i]);
        if (!pair.ok()) return pair.status();
        pairs.push_back(pair.value());
      }
      return stats::Phenotype::Cox(stats::SurvivalData::FromPairs(pairs));
    }
    case stats::ScoreModel::kGaussian: {
      stats::QuantitativeData data;
      data.value.reserve(lines.size() - first);
      for (std::size_t i = first; i < lines.size(); ++i) {
        double value = 0.0;
        if (!ParseDouble(lines[i], &value)) {
          return Status::InvalidArgument("bad quantitative value: " + lines[i]);
        }
        data.value.push_back(value);
      }
      return stats::Phenotype::Gaussian(std::move(data));
    }
    case stats::ScoreModel::kBinomial: {
      stats::BinaryData data;
      data.value.reserve(lines.size() - first);
      for (std::size_t i = first; i < lines.size(); ++i) {
        std::uint32_t value = 0;
        if (!ParseU32(lines[i], &value) || value > 1) {
          return Status::InvalidArgument("bad binary value: " + lines[i]);
        }
        data.value.push_back(static_cast<std::uint8_t>(value));
      }
      return stats::Phenotype::Binomial(std::move(data));
    }
  }
  return Status::Internal("unreachable");
}

Result<stats::SnpSet> ParseSnpSet(const std::string& line) {
  const std::vector<std::string> tokens = Tokens(line);
  if (tokens.size() < 2) {
    return Status::InvalidArgument("SNP-set record needs set + >=1 SNP: " +
                                   line);
  }
  stats::SnpSet set;
  if (!ParseU32(tokens[0], &set.id)) {
    return Status::InvalidArgument("bad set id: " + tokens[0]);
  }
  set.snps.reserve(tokens.size() - 1);
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    std::uint32_t snp = 0;
    if (!ParseU32(tokens[t], &snp)) {
      return Status::InvalidArgument("bad SNP id '" + tokens[t] + "' in set " +
                                     tokens[0]);
    }
    set.snps.push_back(snp);
  }
  return set;
}

}  // namespace ss::simdata
