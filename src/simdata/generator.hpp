// Synthetic GWAS data generator reproducing the paper's Section III.
//
// Generative model (quotes are the paper's):
//   * survival time  ~ Exponential(1/12)   — "mean survival time of 12
//     months";
//   * event indicator ~ Bernoulli(0.85)    — "85% event rate", applied
//     independently of the survival time ("the event indicator is applied
//     arbitrarily");
//   * genotypes G_ij ~ Binomial(2, rho_j)  — rho_j the relative allelic
//     frequency, "varied across SNPs" (we draw rho_j ~ U(maf_min, maf_max));
//   * SNP-set sizes  ~ Exponential(m/K) rounded down (up to 1 in (0,1));
//     set K is augmented with every SNP not picked by sets 1..K-1 so all
//     m SNPs contribute to the measured computation.
//
// SNPs are generated independently (the paper notes real SNPs are
// correlated but that relative computational efficiency does not depend on
// this).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/skat.hpp"
#include "stats/survival.hpp"
#include "support/rng.hpp"

namespace ss::simdata {

/// Per-SNP weight scheme for the SKAT weights file.
enum class WeightScheme {
  kUnit,            ///< ω_j = 1 (unweighted SKAT).
  kMadsenBrowning,  ///< ω_j = 1/sqrt(2 ρ_j (1-ρ_j)) — upweights rare variants.
  kRandom,          ///< ω_j ~ U(0.5, 1.5) — e.g. genotyping quality.
};

struct GeneratorConfig {
  std::uint32_t num_patients = 1000;  ///< n
  std::uint32_t num_snps = 100000;    ///< m (paper Experiment A: 100k)
  std::uint32_t num_sets = 1000;      ///< K
  std::uint64_t seed = 2016;
  double mean_survival_months = 12.0;
  double event_rate = 0.85;
  double maf_min = 0.05;  ///< lower bound for rho_j
  double maf_max = 0.50;  ///< upper bound for rho_j
  WeightScheme weights = WeightScheme::kMadsenBrowning;

  /// Linkage disequilibrium: consecutive SNPs are grouped into blocks of
  /// `ld_block_size`; within a block, each patient's two haplotype
  /// uniforms are shared across SNPs with probability `ld_correlation`
  /// (else redrawn), producing positively correlated dosages while
  /// preserving the exact Binomial(2, rho_j) marginals. The paper
  /// generates SNPs independently and notes this as a simplification
  /// ("in reality, certain pairs of SNPs would be highly correlated");
  /// block size 1 (default) reproduces that independent regime.
  std::uint32_t ld_block_size = 1;
  double ld_correlation = 0.8;
};

/// Genotype matrix stored SNP-major: row j = all patients' dosages for
/// SNP j — the layout of the paper's "Genotype Matrix Text File" where
/// each record is (SNP j, [(patient 1, value), ..., (patient n, value)]).
struct GenotypeMatrix {
  std::uint32_t num_patients = 0;
  std::vector<std::vector<std::uint8_t>> by_snp;
  std::vector<double> allele_freq;  ///< rho_j actually used.

  std::uint32_t num_snps() const {
    return static_cast<std::uint32_t>(by_snp.size());
  }
};

/// A complete synthetic study.
struct SyntheticDataset {
  GenotypeMatrix genotypes;
  stats::SurvivalData survival;
  std::vector<double> weights;       ///< ω_j per SNP.
  std::vector<stats::SnpSet> sets;   ///< K sets partitioning 0..m-1.
};

/// Deterministically generates a dataset from the config (same seed, same
/// data, regardless of thread count).
SyntheticDataset Generate(const GeneratorConfig& config);

/// One streamed SNP row: what `Generate` would have put at index `snp` of
/// the full matrix, plus that SNP's weight.
struct StreamedSnp {
  std::uint32_t snp = 0;
  std::vector<std::uint8_t> dosages;
  double allele_freq = 0.0;
  double weight = 1.0;
};

/// Streaming counterpart of `Generate` for the genotype/weight side:
/// yields SNP rows one at a time, in order, bitwise identical to the
/// dense path (pinned by tests/simdata), without ever materializing the
/// full num_snps x num_patients matrix — the enabler for staging 1M-SNP
/// cohorts into the genotype store under a flat memory footprint. The
/// phenotype and SNP-sets come from the standalone GenerateSurvival /
/// GenerateSnpSets, exactly as Generate composes them.
///
/// The carried state is tiny: the two RNG sub-streams plus (for LD
/// blocks) the current block's per-patient haplotype uniforms.
class GenotypeStream {
 public:
  explicit GenotypeStream(const GeneratorConfig& config);

  /// SNPs not yet emitted.
  std::uint32_t remaining() const { return config_.num_snps - next_; }

  /// Emits the next SNP row. SS_CHECKs when exhausted.
  StreamedSnp Next();

 private:
  const GeneratorConfig config_;
  Rng genotype_root_;
  Rng weight_rng_;
  std::vector<double> h1_;  ///< Current LD block's haplotype uniforms.
  std::vector<double> h2_;
  std::uint32_t next_ = 0;
};

/// Generates only the phenotype table (used by tests and the eQTL example
/// which substitutes its own phenotype).
stats::SurvivalData GenerateSurvival(std::uint64_t seed, std::uint32_t n,
                                     double mean_survival, double event_rate);

/// Generates the SNP-set partition per the Section III recipe.
std::vector<stats::SnpSet> GenerateSnpSets(std::uint64_t seed,
                                           std::uint32_t num_snps,
                                           std::uint32_t num_sets);

}  // namespace ss::simdata
