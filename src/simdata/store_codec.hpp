// Payload encodings for the genotype store's frames, plus the
// fingerprint that binds a store file to the generator parameters it was
// staged from.
//
// The store itself (dfs/genotype_store.hpp) is payload-agnostic: it
// frames, checksums and indexes opaque byte vectors. This header owns
// what goes INSIDE those frames:
//
//   * genotype frames — a binary partition of 2-bit packed SNP records
//     (count-prefixed, each record snp | packed flag | size | payload),
//     byte-identical to the engine spill codec's layout for
//     PackedSnpRecord so the formats stay mutually auditable;
//   * aux frames — the exact text-file lines of simdata/text_format.hpp
//     joined with '\n' (phenotype / weights / SNP-sets), so a store
//     round-trips through the same battle-tested parsers as the DFS
//     text path and doubles as its own human-inspectable export.
//
// The fingerprint is FNV-1a over a canonical parameter string
// (StoreFingerprintText); any generator knob that changes the staged
// bytes participates, while layout-only knobs (partition count) do NOT —
// the same cohort staged at different partition counts is the same data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simdata/generator.hpp"
#include "stats/kernels/packed_genotype.hpp"
#include "support/status.hpp"

namespace ss::simdata {

/// Serializes one partition of packed genotype records.
std::vector<std::uint8_t> EncodeGenotypePartition(
    const std::vector<stats::PackedSnpRecord>& records);

/// Inverse of EncodeGenotypePartition. The caller must have
/// checksum-verified the bytes (the store does); malformed input fails
/// closed with InvalidArgument rather than aborting.
Result<std::vector<stats::PackedSnpRecord>> DecodeGenotypePartition(
    const std::vector<std::uint8_t>& bytes);

/// Text lines <-> aux frame payload ('\n'-joined, no trailing newline).
std::vector<std::uint8_t> EncodeTextLines(
    const std::vector<std::string>& lines);
std::vector<std::string> DecodeTextLines(const std::vector<std::uint8_t>& bytes);

/// Canonical human-readable parameter string the fingerprint hashes —
/// also staged verbatim in the store's description frame so mismatch
/// diagnostics can say what the file actually contains.
std::string StoreFingerprintText(const GeneratorConfig& config);

/// FNV-1a of StoreFingerprintText(config).
std::uint64_t StoreFingerprint(const GeneratorConfig& config);

/// Rows per genotype partition for `num_snps` split `requested` ways —
/// the same truncating formula the benches use for MiniDfs block sizes,
/// so store-backed and text-backed runs see identical stage shapes.
std::uint32_t StorePartitionRows(std::uint64_t num_snps,
                                 std::uint32_t requested);

}  // namespace ss::simdata
