#include "simdata/dfs_writer.hpp"

#include "simdata/text_format.hpp"

namespace ss::simdata {

StudyPaths StudyPaths::Under(const std::string& prefix) {
  return StudyPaths{
      .genotypes = prefix + "/genotypes.txt",
      .phenotype = prefix + "/phenotype.txt",
      .weights = prefix + "/weights.txt",
      .snp_sets = prefix + "/snpsets.txt",
  };
}

namespace {

/// Shared staging of the three genotype-side files.
Status WriteGenotypeSide(dfs::MiniDfs& dfs, const StudyPaths& paths,
                         const SyntheticDataset& dataset);

}  // namespace

Status WriteStudy(dfs::MiniDfs& dfs, const StudyPaths& paths,
                  const SyntheticDataset& dataset) {
  SS_RETURN_IF_ERROR(dfs.WriteTextFile(
      paths.phenotype,
      FormatPhenotypeFile(stats::Phenotype::Cox(dataset.survival))));
  return WriteGenotypeSide(dfs, paths, dataset);
}

Status WriteStudyWithPhenotype(dfs::MiniDfs& dfs, const StudyPaths& paths,
                               const SyntheticDataset& dataset,
                               const stats::Phenotype& phenotype) {
  SS_CHECK(phenotype.n() == dataset.genotypes.num_patients);
  SS_RETURN_IF_ERROR(
      dfs.WriteTextFile(paths.phenotype, FormatPhenotypeFile(phenotype)));
  return WriteGenotypeSide(dfs, paths, dataset);
}

namespace {

Status WriteGenotypeSide(dfs::MiniDfs& dfs, const StudyPaths& paths,
                         const SyntheticDataset& dataset) {
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.genotypes.num_snps());
    for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
      lines.push_back(
          FormatSnpRecord({j, dataset.genotypes.by_snp[j]}));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.genotypes, lines));
  }
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.weights.size());
    for (std::uint32_t j = 0; j < dataset.weights.size(); ++j) {
      lines.push_back(FormatWeight({j, dataset.weights[j]}));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.weights, lines));
  }
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.sets.size());
    for (const stats::SnpSet& set : dataset.sets) {
      lines.push_back(FormatSnpSet(set));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.snp_sets, lines));
  }
  return Status::Ok();
}

}  // namespace

Result<StudyPaths> GenerateToDfs(dfs::MiniDfs& dfs, const std::string& prefix,
                                 const GeneratorConfig& config) {
  const StudyPaths paths = StudyPaths::Under(prefix);
  const SyntheticDataset dataset = Generate(config);
  Status status = WriteStudy(dfs, paths, dataset);
  if (!status.ok()) return status;
  return paths;
}

}  // namespace ss::simdata
