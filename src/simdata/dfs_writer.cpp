#include "simdata/dfs_writer.hpp"

#include "dfs/genotype_store.hpp"
#include "simdata/store_codec.hpp"
#include "simdata/text_format.hpp"
#include "stats/kernels/packed_genotype.hpp"

namespace ss::simdata {

StudyPaths StudyPaths::Under(const std::string& prefix) {
  return StudyPaths{
      .genotypes = prefix + "/genotypes.txt",
      .phenotype = prefix + "/phenotype.txt",
      .weights = prefix + "/weights.txt",
      .snp_sets = prefix + "/snpsets.txt",
  };
}

namespace {

/// Shared staging of the three genotype-side files.
Status WriteGenotypeSide(dfs::MiniDfs& dfs, const StudyPaths& paths,
                         const SyntheticDataset& dataset);

}  // namespace

Status WriteStudy(dfs::MiniDfs& dfs, const StudyPaths& paths,
                  const SyntheticDataset& dataset) {
  SS_RETURN_IF_ERROR(dfs.WriteTextFile(
      paths.phenotype,
      FormatPhenotypeFile(stats::Phenotype::Cox(dataset.survival))));
  return WriteGenotypeSide(dfs, paths, dataset);
}

Status WriteStudyWithPhenotype(dfs::MiniDfs& dfs, const StudyPaths& paths,
                               const SyntheticDataset& dataset,
                               const stats::Phenotype& phenotype) {
  SS_CHECK(phenotype.n() == dataset.genotypes.num_patients);
  SS_RETURN_IF_ERROR(
      dfs.WriteTextFile(paths.phenotype, FormatPhenotypeFile(phenotype)));
  return WriteGenotypeSide(dfs, paths, dataset);
}

namespace {

Status WriteGenotypeSide(dfs::MiniDfs& dfs, const StudyPaths& paths,
                         const SyntheticDataset& dataset) {
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.genotypes.num_snps());
    for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
      lines.push_back(
          FormatSnpRecord({j, dataset.genotypes.by_snp[j]}));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.genotypes, lines));
  }
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.weights.size());
    for (std::uint32_t j = 0; j < dataset.weights.size(); ++j) {
      lines.push_back(FormatWeight({j, dataset.weights[j]}));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.weights, lines));
  }
  {
    std::vector<std::string> lines;
    lines.reserve(dataset.sets.size());
    for (const stats::SnpSet& set : dataset.sets) {
      lines.push_back(FormatSnpSet(set));
    }
    SS_RETURN_IF_ERROR(dfs.WriteTextFile(paths.snp_sets, lines));
  }
  return Status::Ok();
}

}  // namespace

Result<StudyPaths> GenerateToDfs(dfs::MiniDfs& dfs, const std::string& prefix,
                                 const GeneratorConfig& config) {
  const StudyPaths paths = StudyPaths::Under(prefix);
  const SyntheticDataset dataset = Generate(config);
  Status status = WriteStudy(dfs, paths, dataset);
  if (!status.ok()) return status;
  return paths;
}

Result<StoreStageResult> GenerateToStore(const GeneratorConfig& config,
                                         const std::string& path,
                                         std::uint32_t requested_partitions) {
  const std::uint32_t rows =
      StorePartitionRows(config.num_snps, requested_partitions);
  const std::uint32_t partitions = (config.num_snps + rows - 1) / rows;

  dfs::GenotypeStoreMeta meta;
  meta.num_partitions = partitions;
  meta.num_snps = config.num_snps;
  meta.num_patients = config.num_patients;
  meta.fingerprint = StoreFingerprint(config);
  auto writer_or = dfs::GenotypeStoreWriter::Create(path, meta);
  if (!writer_or.ok()) return writer_or.status();
  auto writer = std::move(writer_or).value();

  SS_RETURN_IF_ERROR(writer->Append(
      dfs::StoreFrameKind::kPhenotype, 0,
      EncodeTextLines(FormatPhenotypeFile(stats::Phenotype::Cox(
          GenerateSurvival(config.seed, config.num_patients,
                           config.mean_survival_months, config.event_rate))))));

  // Genotype frames stream one partition at a time; weights ride along
  // (the stream yields them with each SNP) and are staged after the loop.
  GenotypeStream stream(config);
  std::vector<std::string> weight_lines;
  weight_lines.reserve(config.num_snps);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    std::vector<stats::PackedSnpRecord> records;
    records.reserve(rows);
    while (stream.remaining() > 0 &&
           records.size() < static_cast<std::size_t>(rows)) {
      StreamedSnp row = stream.Next();
      weight_lines.push_back(FormatWeight({row.snp, row.weight}));
      records.push_back(stats::PackedSnpRecord{
          row.snp, stats::PackedGenotypeBlock::Pack(row.dosages)});
    }
    SS_RETURN_IF_ERROR(writer->Append(dfs::StoreFrameKind::kGenotypes, p,
                                      EncodeGenotypePartition(records)));
  }
  SS_RETURN_IF_ERROR(writer->Append(dfs::StoreFrameKind::kWeights, 0,
                                    EncodeTextLines(weight_lines)));

  {
    std::vector<std::string> lines;
    for (const stats::SnpSet& set :
         GenerateSnpSets(config.seed, config.num_snps, config.num_sets)) {
      lines.push_back(FormatSnpSet(set));
    }
    SS_RETURN_IF_ERROR(
        writer->Append(dfs::StoreFrameKind::kSets, 0, EncodeTextLines(lines)));
  }

  const std::string text = StoreFingerprintText(config);
  SS_RETURN_IF_ERROR(
      writer->Append(dfs::StoreFrameKind::kDescription, 0,
                     std::vector<std::uint8_t>(text.begin(), text.end())));

  SS_RETURN_IF_ERROR(writer->Finish());
  return StoreStageResult{partitions, writer->payload_bytes()};
}

}  // namespace ss::simdata
