// Resampling plans: the randomness of Algorithms 2 and 3, generated up
// front so replicate b is a pure function of (seed, b) — independent of
// how replicates are scheduled across the cluster.
//
//   * PermutationPlan: B random shufflings of the phenotype pairs
//     (Algorithm 2 step 2).
//   * MonteCarloWeights: B x n standard-normal multipliers Z_i (Lin 2005;
//     Algorithm 3 step 3), applied as Ũ_j = Σ_i Z_i U_ij.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// B permutations of 0..n-1.
class PermutationPlan {
 public:
  PermutationPlan(std::uint64_t seed, std::size_t n, std::size_t replicates);

  std::size_t replicates() const { return permutations_.size(); }
  std::size_t n() const { return n_; }

  /// Permutation for replicate b (deterministic in (seed, b)).
  const std::vector<std::uint32_t>& Get(std::size_t b) const {
    return permutations_[b];
  }

 private:
  std::size_t n_;
  std::vector<std::vector<std::uint32_t>> permutations_;
};

/// B vectors of n standard-normal Monte Carlo multipliers.
class MonteCarloWeights {
 public:
  MonteCarloWeights(std::uint64_t seed, std::size_t n, std::size_t replicates);

  std::size_t replicates() const { return weights_.size(); }
  std::size_t n() const { return n_; }

  const std::vector<double>& Get(std::size_t b) const { return weights_[b]; }

 private:
  std::size_t n_;
  std::vector<std::vector<double>> weights_;
};

/// Ũ_j for one replicate: dot product of the multipliers with the observed
/// per-patient contributions — the O(n) inner loop that makes Algorithm 3
/// cheap compared to recomputing scores from scratch.
double MonteCarloReplicateScore(const std::vector<double>& contributions,
                                const std::vector<double>& multipliers);

/// Contiguous patient-major block of standard-normal multipliers for
/// replicates [first, first+count): replicate r's multiplier for patient
/// i sits at [i*count + r], i.e. each patient's `count` multipliers are
/// adjacent. That layout is what lets the batched MAC kernels load a
/// vector of replicate lanes with one contiguous read instead of a
/// transpose. Each replicate is drawn from the same splittable stream as
/// MonteCarloWeights — Rng(seed).Split(b+1) — so replicate b's
/// multipliers are bitwise identical for every partitioning of the
/// replicate range into batches.
std::vector<double> MonteCarloZBlock(std::uint64_t seed, std::size_t n,
                                     std::uint64_t first, std::size_t count);

/// The batched form of MonteCarloReplicateScore: one pass over the
/// contributions computes Ũ_jb for all `count` replicates of a Z block
/// (MonteCarloZBlock layout), writing out[r] = Σ_i Z[i*count+r] · U_i. The
/// kernel is blocked over replicates so each contribution load feeds
/// several accumulators, but every accumulator still sums over i in
/// ascending order — out[r] is bitwise equal to
/// MonteCarloReplicateScore(contributions, row r).
void BatchedReplicateScores(const std::vector<double>& contributions,
                            const double* zblock, std::size_t count,
                            std::vector<double>* out);

}  // namespace ss::stats
