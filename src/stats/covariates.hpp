// Covariate-adjusted efficient scores.
//
// The paper credits Lin's Monte Carlo method with "allow[ing] for
// incorporation of baseline covariates in the analysis": the score is
// computed under the null model containing the covariates, and the same
// multiplier resampling applies to the adjusted contributions. This
// module implements the adjustment for the Gaussian and Binomial models:
//
//   Gaussian: fit Y ~ [1 X] by OLS; residualize both Y and G on [1 X];
//             U_ij = G̃_ij r_i  (the efficient score for the G slope).
//   Binomial: fit logit P(Y=1) ~ [1 X] by IRLS with fitted p̂_i and
//             weights w_i = p̂_i(1-p̂_i); residualize G on [1 X] under the
//             W-inner product; U_ij = G̃_ij (Y_i - p̂_i).
//
// (The Cox analogue requires weighted risk-set projections and is out of
// scope; use the unadjusted Cox score or stratify instead.)
//
// An AdjustedScoreEngine precomputes the null fit and projection once per
// analysis; the per-SNP cost stays O(n·p).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/linalg.hpp"
#include "stats/linear_score.hpp"
#include "stats/logistic_score.hpp"
#include "support/status.hpp"

namespace ss::stats {

class AdjustedScoreEngine {
 public:
  /// Gaussian phenotype with covariates (column vectors of length n).
  static Result<AdjustedScoreEngine> Gaussian(
      const QuantitativeData& phenotype,
      const std::vector<std::vector<double>>& covariates);

  /// Binary phenotype with covariates.
  static Result<AdjustedScoreEngine> Binomial(
      const BinaryData& phenotype,
      const std::vector<std::vector<double>>& covariates);

  std::size_t n() const { return residuals_.size(); }

  /// Per-patient adjusted contributions U_ij for one SNP; O(n·p).
  std::vector<double> Contributions(
      const std::vector<std::uint8_t>& genotypes) const;

  /// The null-model residuals (Y - fitted); exposed for tests.
  const std::vector<double>& residuals() const { return residuals_; }

 private:
  AdjustedScoreEngine(Matrix design, Cholesky gram_factor,
                      std::vector<double> residuals,
                      std::vector<double> irls_weights);

  /// Residualizes g on the design columns under the (possibly weighted)
  /// inner product: g - X (X'WX)^{-1} X'W g.
  std::vector<double> ResidualizeGenotype(
      const std::vector<std::uint8_t>& genotypes) const;

  Matrix design_;
  Cholesky gram_factor_;              ///< Factor of X'X or X'WX.
  std::vector<double> residuals_;     ///< Y - fitted under the null model.
  std::vector<double> irls_weights_;  ///< Empty for Gaussian.
};

}  // namespace ss::stats
