// Empirical p-values from resampling, plus standard multiple-testing
// adjustments (the paper's inference aggregates per-set p-values across
// K sets; Westfall & Young 1993 is its reference for resampling-based
// multiplicity control).
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// The one place that turns resampling counts into a p-value. Three
/// conventions live here so every caller (empirical, early-stopped,
/// raw-proportion) agrees on the edge cases:
///   * replicates == 0        → 1.0 (no evidence, never 0/0);
///   * early_stopped          → h / L, the Besag–Clifford (1991) stopped
///     estimator at a sequential stop after L replicates (add_one is
///     ignored: the +1 correction is a fixed-B device and would bias the
///     stopped estimator);
///   * otherwise, add_one     → (c+1)/(B+1), the bias-protected estimator
///     that can never return 0 (Westfall & Young);
///   * otherwise              → c/B, the paper's raw proportion.
double PValueFromCounts(std::uint64_t exceed_count, std::uint64_t replicates,
                        bool early_stopped = false, bool add_one = true);

/// Empirical p-value from `exceed_count` of `replicates` resampled
/// statistics >= the observed one. Thin alias for the fixed-B case of
/// PValueFromCounts, kept for the existing call sites.
double EmpiricalPValue(std::uint64_t exceed_count, std::uint64_t replicates,
                       bool add_one = true);

/// Bonferroni: min(1, m * p) per element.
std::vector<double> BonferroniAdjust(const std::vector<double>& pvalues);

/// Benjamini-Hochberg step-up FDR adjustment.
std::vector<double> BenjaminiHochbergAdjust(const std::vector<double>& pvalues);

}  // namespace ss::stats
