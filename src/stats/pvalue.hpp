// Empirical p-values from resampling, plus standard multiple-testing
// adjustments (the paper's inference aggregates per-set p-values across
// K sets; Westfall & Young 1993 is its reference for resampling-based
// multiplicity control).
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// Empirical p-value from `exceed_count` of `replicates` resampled
/// statistics >= the observed one. With `add_one` (default), uses the
/// bias-protected estimator (c+1)/(B+1), which can never return 0 — the
/// recommended form (Westfall & Young); without it, the paper's raw
/// proportion c/B.
double EmpiricalPValue(std::uint64_t exceed_count, std::uint64_t replicates,
                       bool add_one = true);

/// Bonferroni: min(1, m * p) per element.
std::vector<double> BonferroniAdjust(const std::vector<double>& pvalues);

/// Benjamini-Hochberg step-up FDR adjustment.
std::vector<double> BenjaminiHochbergAdjust(const std::vector<double>& pvalues);

}  // namespace ss::stats
