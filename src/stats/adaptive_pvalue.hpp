// Adaptive p-value engine: analytic tail approximations for the SKAT
// quadratic form plus sequential early stopping for resampling — the
// machinery that makes genome-wide thresholds (p ≈ 5e-8) reachable
// without ~1e9 replicates per set.
//
// Under the Monte Carlo null (Lin 2005), the replicate score vector
// Ũ = (Σ_i Z_i U_ij)_j is EXACTLY N(0, G) with G_jj' = Σ_i U_ij U_ij',
// so the replicate statistic Q̃ = Σ_j ω_j² Ũ_j² is exactly the quadratic
// form Σ_m λ_m χ²₁ with λ_m the eigenvalues of W G W (W = diag ω).
// Resampling estimates this tail by simulation; the two analytic methods
// here evaluate it directly from the spectrum:
//
//   * moment-matched (Satterthwaite / Liu et al. 2009, per Larson & Owen
//     2014): match cumulants κ_m = 2^{m-1}(m-1)! Σ λ^m to a (noncentral)
//     chi-square — cheap, excellent in the body, degrades in deep tails;
//   * saddlepoint (Kuonen 1999, per Johnsen et al. 2021): Lugannani–Rice
//     inversion of the exact CGF K(t) = -½ Σ log(1-2tλ) — near-exact
//     relative error uniformly into the far tail.
//
// Sequential early stopping (Besag & Clifford 1991) terminates a set's
// resampling once h exceedances have been observed: clearly-null sets
// stop after ~h/p replicates with the estimate p̂ = h/L (conservatively
// biased up by ≈ p/h, never anti-conservative). The
// stopping decision is a pure function of the ordered replicate
// indicator sequence, so the driver can evaluate it per-replicate in the
// canonical fold order and stay bitwise invariant to batch size, thread
// count, and prefetch depth.
//
// Driver integration (method selection, hybrid screen→refine, per-set
// budgets) lives in core/resampling_methods.*; this header is pure math.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/linalg.hpp"

namespace ss::stats {

/// Spectrum of the SKAT null quadratic form for one set: eigenvalues of
/// the weighted Gram matrix M_ab = ω_a ω_b Σ_i U_ia U_ib, descending,
/// with negative round-off eigenvalues clamped to zero. `weighted_gram`
/// is that M (members in set-declaration order).
std::vector<double> NullSpectrumFromGram(const Matrix& weighted_gram);

/// Satterthwaite two-moment match: Q ≈ a·χ²(ν) with a = c2/c1,
/// ν = c1²/c2 (c_m = Σ λ^m). The classic screen; kept as the fallback
/// when the Liu skewness match degenerates.
double SatterthwaitePValue(const std::vector<double>& lambda, double q);

/// Liu–Tang–Zhang four-moment match to a noncentral chi-square — the
/// moment-based analytic tail (pmethod=analytic).
double LiuPValue(const std::vector<double>& lambda, double q);

/// Kuonen saddlepoint (Lugannani–Rice) tail for Q = Σ λ_m χ²₁
/// (pmethod=saddlepoint). Falls back to LiuPValue within the tiny
/// neighbourhood of the mean where the LR formula degenerates (w → 0).
double SaddlepointPValue(const std::vector<double>& lambda, double q);

/// Besag–Clifford sequential stopping state for one set. Feed replicate
/// exceedance indicators in the canonical replicate order (b = 0, 1, …);
/// the set stops once `h` exceedances have been seen. With h = 0 the
/// stopper never stops (plain exhaustive counting).
class SequentialStopper {
 public:
  explicit SequentialStopper(std::uint64_t h) : h_(h) {}

  /// Folds the next replicate's indicator. Returns true while the set is
  /// still consuming replicates AFTER this offer (false once stopped).
  /// Offers after the stop are ignored, so feeding a whole batch through
  /// is equivalent to stopping mid-batch — batch-size invariance.
  bool Offer(bool exceeded) {
    if (stopped_) return false;
    ++used_;
    if (exceeded) ++exceed_;
    if (h_ != 0 && exceed_ >= h_) stopped_ = true;
    return !stopped_;
  }

  bool stopped() const { return stopped_; }
  std::uint64_t exceed() const { return exceed_; }
  std::uint64_t used() const { return used_; }

 private:
  const std::uint64_t h_;
  std::uint64_t exceed_ = 0;
  std::uint64_t used_ = 0;
  bool stopped_ = false;
};

}  // namespace ss::stats
