// Burden (collapsing) tests and the SKAT-O style combination.
//
// The paper's related work ([4] Basu & Pan, [18] Lee et al., [17] SKAT-O)
// compares SKAT against burden tests: where SKAT sums squared per-SNP
// scores (robust to mixed effect directions), the burden statistic
// squares the weighted sum of scores,
//
//     B_k = ( Σ_{j∈I_k} w_j U_j )² ,
//
// which is more powerful when all causal variants act in the same
// direction. SKAT-O interpolates between them on a grid of ρ,
//
//     Q_ρ = ρ B_k + (1-ρ) S_k ,
//
// and takes the best ρ; its p-value is assessed with the same resampling
// replicates (evaluating the whole grid per replicate keeps the min-ρ
// selection honest).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/skat.hpp"

namespace ss::stats {

/// Burden statistic for one set from per-SNP (signed) scores U_j and
/// weights w_j.
double BurdenStatistic(const SnpSet& set,
                       const std::unordered_map<std::uint32_t, double>& scores,
                       const std::unordered_map<std::uint32_t, double>& weights);

/// All burden statistics at once (sets order).
std::vector<double> BurdenStatistics(
    const std::vector<SnpSet>& sets,
    const std::unordered_map<std::uint32_t, double>& scores,
    const std::unordered_map<std::uint32_t, double>& weights);

/// The default SKAT-O grid (Lee et al. 2012).
std::vector<double> SkatORhoGrid();

/// Q_ρ over a grid, given the set's burden and SKAT statistics.
/// result[g] corresponds to rho_grid[g].
std::vector<double> SkatOGridStatistics(double burden, double skat,
                                        const std::vector<double>& rho_grid);

/// Resampling-based SKAT-O p-value for one set.
///
/// `observed_grid` is Q_ρ on the observed data; `replicate_grids[b]` the
/// same grid on replicate b. Per replicate, each ρ's exceedance indicator
/// is computed and the *minimum* per-ρ p-value is compared with the
/// observed minimum — the standard min-p combination under resampling.
double SkatOPValue(const std::vector<double>& observed_grid,
                   const std::vector<std::vector<double>>& replicate_grids);

}  // namespace ss::stats
