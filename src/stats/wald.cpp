#include "stats/wald.hpp"

#include <cmath>

namespace ss::stats {
namespace {

/// One evaluation of (l, U, I) at beta in O(n) via risk-set prefix sums.
struct Evaluation {
  double loglik = 0.0;
  double score = 0.0;
  double information = 0.0;
};

Evaluation Evaluate(const SurvivalData& data, const RiskSetIndex& index,
                    const std::vector<std::uint8_t>& genotypes, double beta) {
  const std::size_t n = data.n();
  const std::vector<std::uint32_t>& order = index.order();

  // Prefix sums over the time-descending order of exp(bG), G exp(bG),
  // G^2 exp(bG); risk-set sums are then prefix lookups.
  std::vector<double> s0(n + 1, 0.0);
  std::vector<double> s1(n + 1, 0.0);
  std::vector<double> s2(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double g = static_cast<double>(genotypes[order[k]]);
    const double w = std::exp(beta * g);
    s0[k + 1] = s0[k] + w;
    s1[k + 1] = s1[k] + g * w;
    s2[k + 1] = s2[k] + g * g * w;
  }

  Evaluation eval;
  for (std::size_t i = 0; i < n; ++i) {
    if (data.event[i] == 0) continue;
    const std::uint32_t end = index.prefix_end(i);
    const double S0 = s0[end];
    const double S1 = s1[end];
    const double S2 = s2[end];
    const double g = static_cast<double>(genotypes[i]);
    const double mean = S1 / S0;
    eval.loglik += beta * g - std::log(S0);
    eval.score += g - mean;
    eval.information += S2 / S0 - mean * mean;
  }
  return eval;
}

}  // namespace

double CoxPartialLogLikelihood(const SurvivalData& data,
                               const RiskSetIndex& index,
                               const std::vector<std::uint8_t>& genotypes,
                               double beta) {
  return Evaluate(data, index, genotypes, beta).loglik;
}

CoxMleResult FitCoxMle(const SurvivalData& data, const RiskSetIndex& index,
                       const std::vector<std::uint8_t>& genotypes,
                       const CoxMleOptions& options) {
  CoxMleResult result;
  const double loglik0 = Evaluate(data, index, genotypes, 0.0).loglik;

  double beta = 0.0;
  Evaluation eval;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    eval = Evaluate(data, index, genotypes, beta);
    if (eval.information <= 0.0) break;  // flat likelihood: no information
    const double step = eval.score / eval.information;
    beta += step;
    if (std::fabs(beta) > options.max_abs_beta) break;  // diverging
    if (std::fabs(eval.score) < options.score_tolerance ||
        std::fabs(step) < options.step_tolerance) {
      result.converged = true;
      break;
    }
  }

  eval = Evaluate(data, index, genotypes, beta);
  result.beta = beta;
  result.information = eval.information;
  result.wald_statistic = beta * beta * eval.information;
  result.lrt_statistic = 2.0 * (eval.loglik - loglik0);
  return result;
}

}  // namespace ss::stats
