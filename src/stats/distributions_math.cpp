#include "stats/distributions_math.hpp"

#include <cmath>
#include <limits>

#include "support/status.hpp"

namespace ss::stats {
namespace {

// lgamma is thread-safe via std::lgamma on glibc when not inspecting
// signgam; inputs here are positive so the sign is always +.
double LogGamma(double x) { return std::lgamma(x); }

/// Series representation of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  const int kMaxIter = 500;
  const double kEps = 1e-14;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

/// Continued-fraction representation of Q(a, x); converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const int kMaxIter = 500;
  const double kEps = 1e-14;
  const double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalSf(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double NormalSfLog(double x) {
  // erfc keeps full relative accuracy down to ~1e-300, so the direct log
  // is exact until the double underflows (x ≈ 37.5); beyond that, the
  // standard continued-fraction-derived asymptotic series for Mills'
  // ratio: Φ̄(x) ≈ φ(x)/x · (1 - 1/x² + 3/x⁴ - 15/x⁶).
  if (x < 37.0) {
    const double sf = NormalSf(x);
    if (sf > 0.0) return std::log(sf);
  }
  const double inv2 = 1.0 / (x * x);
  const double series = 1.0 - inv2 * (1.0 - 3.0 * inv2 * (1.0 - 5.0 * inv2));
  return -0.5 * x * x - 0.5 * std::log(2.0 * M_PI) - std::log(x) +
         std::log(series);
}

double NormalTwoSidedP(double x) {
  return std::erfc(std::fabs(x) / std::sqrt(2.0));
}

double RegularizedGammaP(double a, double x) {
  SS_CHECK(a > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  SS_CHECK(a > 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSf(double x, double df) {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double ChiSquareSfNoncentral(double x, double df, double ncp) {
  SS_CHECK(df > 0.0);
  SS_CHECK(ncp >= 0.0);
  if (x <= 0.0) return 1.0;
  if (ncp <= 0.0) return ChiSquareSf(x, df);
  // Poisson(ncp/2) mixture of central χ²(df + 2k) survival functions,
  // summed outward from the modal Poisson term so the dominant weights
  // come first and the truncation error is bounded by the unexplored
  // Poisson mass (each SF factor is <= 1).
  const double half = ncp / 2.0;
  const auto log_pois = [half](double k) {
    return -half + k * std::log(half) - LogGamma(k + 1.0);
  };
  const long mode = static_cast<long>(half);
  double total = 0.0;
  const double kTailEps = 1e-15;
  for (long k = mode; k <= mode + 100000; ++k) {
    const double w = std::exp(log_pois(static_cast<double>(k)));
    total += w * ChiSquareSf(x, df + 2.0 * static_cast<double>(k));
    if (w < kTailEps) break;
  }
  for (long k = mode - 1; k >= 0; --k) {
    const double w = std::exp(log_pois(static_cast<double>(k)));
    total += w * ChiSquareSf(x, df + 2.0 * static_cast<double>(k));
    if (w < kTailEps) break;
  }
  return std::min(1.0, total);
}

double ScoreTestPValue(double score, double variance) {
  if (variance <= 0.0) return 1.0;
  const double z2 = score * score / variance;
  return ChiSquareSf(z2, 1.0);
}

}  // namespace ss::stats
