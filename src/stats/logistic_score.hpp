// Binomial (logistic-model) efficient score for case/control phenotypes.
//
// For binary Y ∈ {0,1} (case/control GWAS), the score for the slope of
// logit P(Y=1) ~ G at β = 0 with an intercept is
//
//     U_ij = G_ij (Y_i − p̄),   p̄ = (Σ Y_i) / n,
//
// i.e. genotype times the residual under the null of no association.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// Case/control phenotype vector (1 = case).
struct BinaryData {
  std::vector<std::uint8_t> value;
  std::size_t n() const { return value.size(); }
  double CaseRate() const;
};

/// Per-patient contributions U_ij = G_ij (Y_i − p̄).
std::vector<double> LogisticScoreContributions(
    const BinaryData& data, double case_rate,
    const std::vector<std::uint8_t>& genotypes);

}  // namespace ss::stats
