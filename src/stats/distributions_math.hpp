// Distribution functions needed for asymptotic inference: standard normal
// CDF and the chi-square survival function (via the regularized incomplete
// gamma function, implemented from Numerical-Recipes-style series and
// continued-fraction expansions — no external dependencies).
#pragma once

namespace ss::stats {

/// Φ(x): standard normal CDF.
double NormalCdf(double x);

/// Φ̄(x) = P(Z >= x): upper normal tail, computed directly from erfc so
/// it stays accurate deep into the tail (no 1 - Φ(x) cancellation);
/// exact to ~1e-300 before underflow.
double NormalSf(double x);

/// log Φ̄(x), finite for every x (where NormalSf itself would underflow
/// past x ≈ 38, switches to the asymptotic expansion
/// log φ(x) - log x + log(1 - 1/x² + 3/x⁴)) — the log-space form the
/// saddlepoint tail relies on.
double NormalSfLog(double x);

/// P(|Z| >= |x|) for Z ~ N(0,1): two-sided normal tail.
double NormalTwoSidedP(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
double RegularizedGammaQ(double a, double x);

/// Chi-square survival function: P(X >= x) for X ~ χ²(df).
double ChiSquareSf(double x, double df);

/// Noncentral chi-square survival function: P(X >= x) for X ~ χ²(df, ncp)
/// (ncp = noncentrality λ = Σ μ_i²), by the Poisson mixture of central
/// chi-squares. ncp = 0 reduces exactly to ChiSquareSf. Used by the Liu
/// moment-matched tail, which matches skewness via a noncentral target.
double ChiSquareSfNoncentral(double x, double df, double ncp);

/// Asymptotic two-sided p-value for a score statistic: z = U/sqrt(V),
/// p = P(χ²(1) >= z²). Returns 1 when V <= 0 (degenerate SNP).
double ScoreTestPValue(double score, double variance);

}  // namespace ss::stats
