#include "stats/resampling.hpp"

#include "support/distributions.hpp"
#include "support/status.hpp"

namespace ss::stats {

PermutationPlan::PermutationPlan(std::uint64_t seed, std::size_t n,
                                 std::size_t replicates)
    : n_(n) {
  permutations_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    permutations_.push_back(SamplePermutation(rng, n));
  }
}

MonteCarloWeights::MonteCarloWeights(std::uint64_t seed, std::size_t n,
                                     std::size_t replicates)
    : n_(n) {
  weights_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    weights_.push_back(SampleNormalVector(rng, n));
  }
}

double MonteCarloReplicateScore(const std::vector<double>& contributions,
                                const std::vector<double>& multipliers) {
  SS_CHECK(contributions.size() == multipliers.size());
  double score = 0.0;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    score += multipliers[i] * contributions[i];
  }
  return score;
}

std::vector<double> MonteCarloZBlock(std::uint64_t seed, std::size_t n,
                                     std::uint64_t first, std::size_t count) {
  std::vector<double> block;
  block.reserve(n * count);
  Rng root(seed);
  for (std::size_t r = 0; r < count; ++r) {
    Rng rng = root.Split(first + r + 1);
    const std::vector<double> row = SampleNormalVector(rng, n);
    block.insert(block.end(), row.begin(), row.end());
  }
  return block;
}

void BatchedReplicateScores(const std::vector<double>& contributions,
                            const double* zblock, std::size_t count,
                            std::vector<double>* out) {
  const std::size_t n = contributions.size();
  out->assign(count, 0.0);
  std::size_t r = 0;
  // Four replicates per pass: each contribution is loaded once and feeds
  // four independent accumulators, which also hides the FP add latency
  // the single-accumulator dot product serializes on.
  for (; r + 4 <= count; r += 4) {
    const double* z0 = zblock + (r + 0) * n;
    const double* z1 = zblock + (r + 1) * n;
    const double* z2 = zblock + (r + 2) * n;
    const double* z3 = zblock + (r + 3) * n;
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double u = contributions[i];
      acc0 += z0[i] * u;
      acc1 += z1[i] * u;
      acc2 += z2[i] * u;
      acc3 += z3[i] * u;
    }
    (*out)[r + 0] = acc0;
    (*out)[r + 1] = acc1;
    (*out)[r + 2] = acc2;
    (*out)[r + 3] = acc3;
  }
  for (; r < count; ++r) {
    const double* z = zblock + r * n;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += z[i] * contributions[i];
    (*out)[r] = acc;
  }
}

}  // namespace ss::stats
