#include "stats/resampling.hpp"

#include "support/distributions.hpp"
#include "support/status.hpp"

namespace ss::stats {

PermutationPlan::PermutationPlan(std::uint64_t seed, std::size_t n,
                                 std::size_t replicates)
    : n_(n) {
  permutations_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    permutations_.push_back(SamplePermutation(rng, n));
  }
}

MonteCarloWeights::MonteCarloWeights(std::uint64_t seed, std::size_t n,
                                     std::size_t replicates)
    : n_(n) {
  weights_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    weights_.push_back(SampleNormalVector(rng, n));
  }
}

double MonteCarloReplicateScore(const std::vector<double>& contributions,
                                const std::vector<double>& multipliers) {
  SS_CHECK(contributions.size() == multipliers.size());
  double score = 0.0;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    score += multipliers[i] * contributions[i];
  }
  return score;
}

}  // namespace ss::stats
