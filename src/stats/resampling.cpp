#include "stats/resampling.hpp"

#include "stats/kernels/kernels.hpp"
#include "support/distributions.hpp"
#include "support/status.hpp"

namespace ss::stats {

PermutationPlan::PermutationPlan(std::uint64_t seed, std::size_t n,
                                 std::size_t replicates)
    : n_(n) {
  permutations_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    permutations_.push_back(SamplePermutation(rng, n));
  }
}

MonteCarloWeights::MonteCarloWeights(std::uint64_t seed, std::size_t n,
                                     std::size_t replicates)
    : n_(n) {
  weights_.reserve(replicates);
  Rng root(seed);
  for (std::size_t b = 0; b < replicates; ++b) {
    Rng rng = root.Split(b + 1);
    weights_.push_back(SampleNormalVector(rng, n));
  }
}

double MonteCarloReplicateScore(const std::vector<double>& contributions,
                                const std::vector<double>& multipliers) {
  SS_CHECK(contributions.size() == multipliers.size());
  double score = 0.0;
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    score += multipliers[i] * contributions[i];
  }
  return score;
}

std::vector<double> MonteCarloZBlock(std::uint64_t seed, std::size_t n,
                                     std::uint64_t first, std::size_t count) {
  std::vector<double> block(n * count);
  Rng root(seed);
  for (std::size_t r = 0; r < count; ++r) {
    // Replicate r's draws come from the same splittable stream as the
    // per-replicate path; only the storage is transposed to patient-major
    // so the MAC kernels read each patient's `count` multipliers as one
    // contiguous vector (no transpose or strided loads on the hot path).
    Rng rng = root.Split(first + r + 1);
    const std::vector<double> row = SampleNormalVector(rng, n);
    for (std::size_t i = 0; i < n; ++i) block[i * count + r] = row[i];
  }
  return block;
}

void BatchedReplicateScores(const std::vector<double>& contributions,
                            const double* zblock, std::size_t count,
                            std::vector<double>* out) {
  const std::size_t n = contributions.size();
  out->resize(count);
  // The blocked scalar MAC moved to kernels::internal::BatchedMacScalar;
  // the dispatch table selects it or a bitwise-identical SIMD variant.
  kernels::ActiveKernels().batched_mac(contributions.data(), n, zblock, count,
                                       out->data());
}

}  // namespace ss::stats
