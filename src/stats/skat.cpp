#include "stats/skat.hpp"

#include <algorithm>

namespace ss::stats {

Status ValidateSnpSets(const std::vector<SnpSet>& sets,
                       std::uint32_t num_snps) {
  if (sets.empty()) return Status::InvalidArgument("no SNP-sets");
  for (const SnpSet& set : sets) {
    if (set.snps.empty()) {
      return Status::InvalidArgument("SNP-set " + std::to_string(set.id) +
                                     " is empty");
    }
    for (std::uint32_t snp : set.snps) {
      if (snp >= num_snps) {
        return Status::InvalidArgument(
            "SNP-set " + std::to_string(set.id) + " references SNP " +
            std::to_string(snp) + " >= J=" + std::to_string(num_snps));
      }
    }
  }
  return Status::Ok();
}

std::vector<std::uint32_t> UnionOfSets(const std::vector<SnpSet>& sets) {
  std::vector<std::uint32_t> all;
  for (const SnpSet& set : sets) {
    all.insert(all.end(), set.snps.begin(), set.snps.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

double SkatStatistic(
    const SnpSet& set,
    const std::unordered_map<std::uint32_t, double>& squared_scores,
    const std::unordered_map<std::uint32_t, double>& weights) {
  double statistic = 0.0;
  for (std::uint32_t snp : set.snps) {
    auto score_it = squared_scores.find(snp);
    if (score_it == squared_scores.end()) continue;  // SNP filtered out
    auto weight_it = weights.find(snp);
    const double w = weight_it == weights.end() ? 1.0 : weight_it->second;
    statistic += w * w * score_it->second;
  }
  return statistic;
}

std::vector<double> SkatStatistics(
    const std::vector<SnpSet>& sets,
    const std::unordered_map<std::uint32_t, double>& squared_scores,
    const std::unordered_map<std::uint32_t, double>& weights) {
  std::vector<double> statistics;
  statistics.reserve(sets.size());
  for (const SnpSet& set : sets) {
    statistics.push_back(SkatStatistic(set, squared_scores, weights));
  }
  return statistics;
}

}  // namespace ss::stats
