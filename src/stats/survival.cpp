#include "stats/survival.hpp"

#include <algorithm>
#include <numeric>

#include "support/status.hpp"

namespace ss::stats {

SurvivalData SurvivalData::FromPairs(const std::vector<PhenotypePair>& pairs) {
  SurvivalData data;
  data.time.reserve(pairs.size());
  data.event.reserve(pairs.size());
  for (const PhenotypePair& pair : pairs) {
    data.time.push_back(pair.time);
    data.event.push_back(pair.event);
  }
  return data;
}

std::vector<PhenotypePair> SurvivalData::ToPairs() const {
  std::vector<PhenotypePair> pairs;
  pairs.reserve(n());
  for (std::size_t i = 0; i < n(); ++i) {
    pairs.push_back({time[i], event[i]});
  }
  return pairs;
}

SurvivalData SurvivalData::Permuted(
    const std::vector<std::uint32_t>& perm) const {
  SS_CHECK(perm.size() == n());
  SurvivalData out;
  out.time.resize(n());
  out.event.resize(n());
  for (std::size_t i = 0; i < n(); ++i) {
    out.time[i] = time[perm[i]];
    out.event[i] = event[perm[i]];
  }
  return out;
}

RiskSetIndex::RiskSetIndex(const SurvivalData& data) {
  const std::size_t n = data.n();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return data.time[a] > data.time[b];
                   });
  // prefix_end[i]: patients sorted descending, so the risk set of i is the
  // sorted prefix ending at the last entry with time >= Y_i. Compute by
  // scanning the sorted order once and recording, for each distinct time,
  // the prefix length including all its ties.
  prefix_end_.resize(n);
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t end = pos;
    const double t = data.time[order_[pos]];
    while (end < n && data.time[order_[end]] == t) ++end;
    for (std::size_t k = pos; k < end; ++k) {
      prefix_end_[order_[k]] = static_cast<std::uint32_t>(end);
    }
    pos = end;
  }
}

}  // namespace ss::stats
