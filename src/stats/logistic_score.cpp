#include "stats/logistic_score.hpp"

#include "support/status.hpp"

namespace ss::stats {

double BinaryData::CaseRate() const {
  if (value.empty()) return 0.0;
  double cases = 0.0;
  for (std::uint8_t y : value) cases += y;
  return cases / static_cast<double>(value.size());
}

std::vector<double> LogisticScoreContributions(
    const BinaryData& data, double case_rate,
    const std::vector<std::uint8_t>& genotypes) {
  SS_CHECK(genotypes.size() == data.n());
  std::vector<double> contributions(data.n());
  for (std::size_t i = 0; i < data.n(); ++i) {
    contributions[i] = static_cast<double>(genotypes[i]) *
                       (static_cast<double>(data.value[i]) - case_rate);
  }
  return contributions;
}

}  // namespace ss::stats
