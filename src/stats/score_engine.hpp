// Model-generic efficient-score computation.
//
// The SparkScore framework diagram (paper Fig 1) lists "Score Statistics
// (Cox, Binomial, Gaussian, etc.)" as pluggable; ScoreEngine is that plug
// point. It owns a phenotype, precomputes the SNP-invariant quantities
// once per analysis (the risk-set index b_i for Cox — the invariance the
// paper highlights —, the phenotype mean for Gaussian, the case rate for
// Binomial), and then maps any SNP's genotype vector to per-patient score
// contributions U_ij in O(n).
//
// Instances are immutable after construction and safe to share across
// executor threads (they are broadcast to all tasks by the pipeline).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/linear_score.hpp"
#include "stats/logistic_score.hpp"
#include "stats/survival.hpp"

namespace ss::stats {

enum class ScoreModel : std::uint8_t { kCox, kGaussian, kBinomial };

const char* ScoreModelName(ScoreModel model);

/// Tagged union of the phenotypes the models accept.
struct Phenotype {
  ScoreModel model = ScoreModel::kCox;
  SurvivalData survival;       ///< used when model == kCox
  QuantitativeData quantitative;  ///< used when model == kGaussian
  BinaryData binary;           ///< used when model == kBinomial

  static Phenotype Cox(SurvivalData data);
  static Phenotype Gaussian(QuantitativeData data);
  static Phenotype Binomial(BinaryData data);

  std::size_t n() const;

  /// Permutation replicate: patient i receives the phenotype previously
  /// held by patient perm[i] (Algorithm 2's shuffle).
  Phenotype Permuted(const std::vector<std::uint32_t>& perm) const;
};

class ScoreEngine {
 public:
  /// Precomputes the SNP-invariant structures for `phenotype`.
  ///
  /// `paper_faithful` selects the paper's per-patient evaluation of the
  /// Cox contributions (Algorithm 1 step 7 computes U[SNP_j, Patient_i]
  /// directly from the definition, an O(n) scan per patient and thus
  /// O(n²) per SNP). The default is this library's O(n)-per-SNP risk-set
  /// suffix-sum path; both produce identical values (unit-tested), but
  /// the faithful mode reproduces the paper's cost regime — it is what
  /// makes permutation resampling as punishing as Figures 2-5 show.
  /// Non-Cox models have no risk sets, so the flag is a no-op for them.
  explicit ScoreEngine(Phenotype phenotype, bool paper_faithful = false);

  const Phenotype& phenotype() const { return phenotype_; }
  std::size_t n() const { return phenotype_.n(); }

  /// Per-patient contributions U_ij for one SNP; O(n).
  std::vector<double> Contributions(
      const std::vector<std::uint8_t>& genotypes) const;

 private:
  Phenotype phenotype_;
  bool paper_faithful_ = false;
  std::unique_ptr<RiskSetIndex> risk_index_;  ///< Cox only.
  double center_ = 0.0;                       ///< Ȳ or p̄.
};

}  // namespace ss::stats
