#include "stats/linear_score.hpp"

#include "support/status.hpp"

namespace ss::stats {

double QuantitativeData::Mean() const {
  if (value.empty()) return 0.0;
  double sum = 0.0;
  for (double v : value) sum += v;
  return sum / static_cast<double>(value.size());
}

std::vector<double> LinearScoreContributions(
    const QuantitativeData& data, double mean,
    const std::vector<std::uint8_t>& genotypes) {
  SS_CHECK(genotypes.size() == data.n());
  std::vector<double> contributions(data.n());
  for (std::size_t i = 0; i < data.n(); ++i) {
    contributions[i] =
        static_cast<double>(genotypes[i]) * (data.value[i] - mean);
  }
  return contributions;
}

}  // namespace ss::stats
