// Phenotype containers and the risk-set index shared by all score
// statistics over right-censored survival data.
//
// A patient's phenotype is the pair (Y_i, Δ_i): observed time and event
// indicator (1 = death observed at Y_i, 0 = censored at Y_i). The risk set
// of patient i is R_i = { l : Y_l >= Y_i } — everyone still under
// observation at i's event time. b_i = |R_i| is SNP-invariant, so it is
// computed once per analysis (the paper highlights this).
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// One patient's survival phenotype.
struct PhenotypePair {
  double time = 0.0;     ///< Y_i: death or last-follow-up time.
  std::uint8_t event = 0;///< Δ_i: 1 = event observed, 0 = censored.

  bool operator==(const PhenotypePair&) const = default;
};

/// Column-oriented phenotype table for n patients.
struct SurvivalData {
  std::vector<double> time;
  std::vector<std::uint8_t> event;

  std::size_t n() const { return time.size(); }

  static SurvivalData FromPairs(const std::vector<PhenotypePair>& pairs);
  std::vector<PhenotypePair> ToPairs() const;

  /// Returns a copy with phenotype pairs permuted: patient i receives the
  /// pair previously held by patient perm[i]. Genotypes stay in place —
  /// this is exactly the permutation replicate of Algorithm 2.
  SurvivalData Permuted(const std::vector<std::uint32_t>& perm) const;
};

/// Precomputed ordering shared by every per-SNP score computation.
///
/// `order` lists patient indices sorted by time descending (ties in input
/// order); `risk_count[i]` = b_i; `prefix_end[i]` = number of sorted
/// entries with time >= Y_i, so a suffix-sum array over `order` evaluates
/// any risk-set sum in O(1) per patient after an O(n) scan per SNP.
class RiskSetIndex {
 public:
  explicit RiskSetIndex(const SurvivalData& data);

  std::size_t n() const { return prefix_end_.size(); }
  const std::vector<std::uint32_t>& order() const { return order_; }

  /// b_i = |{l : Y_l >= Y_i}|.
  std::uint32_t risk_count(std::size_t i) const { return prefix_end_[i]; }

  /// Number of sorted entries in patient i's risk set (== risk_count).
  std::uint32_t prefix_end(std::size_t i) const { return prefix_end_[i]; }

  /// Whole prefix-end array, for the vectorized per-SNP scan kernel.
  const std::vector<std::uint32_t>& prefix_ends() const { return prefix_end_; }

 private:
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> prefix_end_;
};

}  // namespace ss::stats
