// Minimal dense linear algebra for covariate adjustment: symmetric
// positive-definite solves via Cholesky, ordinary least squares, and
// logistic regression by iteratively reweighted least squares (IRLS).
// Dimensions here are (patients x few covariates), so simple O(n p²)
// algorithms are exactly right.
#pragma once

#include <cstddef>
#include <vector>

#include "support/status.hpp"

namespace ss::stats {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// A^T * A (cols x cols), optionally row-weighted: A^T diag(w) A.
  Matrix Gram(const std::vector<double>* weights = nullptr) const;

  /// A^T * v (length cols), optionally row-weighted: A^T diag(w) v.
  std::vector<double> TransposeTimes(const std::vector<double>& v,
                                     const std::vector<double>* weights = nullptr) const;

  /// A * x (length rows).
  std::vector<double> Times(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization of a symmetric positive-definite matrix.
/// FailedPrecondition if the matrix is not (numerically) SPD — e.g. a
/// collinear covariate design.
class Cholesky {
 public:
  static Result<Cholesky> Factor(const Matrix& spd);

  /// Solves L L^T x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  std::size_t dim() const { return lower_.rows(); }

 private:
  explicit Cholesky(Matrix lower) : lower_(std::move(lower)) {}
  Matrix lower_;
};

/// OLS fit of y on the columns of X (include an intercept column
/// yourself). Returns coefficients; FailedPrecondition on collinearity.
Result<std::vector<double>> OlsFit(const Matrix& x, const std::vector<double>& y);

/// y - X b.
std::vector<double> Residuals(const Matrix& x, const std::vector<double>& y,
                              const std::vector<double>& beta);

struct LogisticFit {
  std::vector<double> beta;
  std::vector<double> fitted;  ///< p_i = expit(x_i' beta).
  int iterations = 0;
  bool converged = false;
};

/// Logistic regression of binary y on X via IRLS.
Result<LogisticFit> LogisticRegression(const Matrix& x,
                                       const std::vector<std::uint8_t>& y,
                                       int max_iterations = 50,
                                       double tolerance = 1e-10);

/// Builds [1 | covariates] from column vectors of length n.
Matrix DesignMatrix(std::size_t n, const std::vector<std::vector<double>>& covariates);

/// Eigenvalues of a symmetric matrix by cyclic Jacobi rotations, sorted
/// descending. Dimensions here are SNP-set sizes (a few to a few dozen),
/// so the O(d³)-per-sweep classic is exactly right; converges to machine
/// precision in a handful of sweeps for symmetric input. The off-diagonal
/// asymmetry of a slightly non-symmetric input is ignored (the upper
/// triangle wins).
std::vector<double> SymmetricEigenvalues(const Matrix& symmetric);

}  // namespace ss::stats
