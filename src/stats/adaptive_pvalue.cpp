#include "stats/adaptive_pvalue.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions_math.hpp"

namespace ss::stats {
namespace {

/// Power sums c_m = Σ λ^m for m = 1..4 (the cumulants of Q are
/// κ_m = 2^{m-1} (m-1)! c_m).
struct PowerSums {
  double c1 = 0.0;
  double c2 = 0.0;
  double c3 = 0.0;
  double c4 = 0.0;
};

PowerSums ComputePowerSums(const std::vector<double>& lambda) {
  PowerSums sums;
  for (double l : lambda) {
    const double l2 = l * l;
    sums.c1 += l;
    sums.c2 += l2;
    sums.c3 += l2 * l;
    sums.c4 += l2 * l2;
  }
  return sums;
}

/// K(t) = -½ Σ log(1 - 2tλ), valid for t < 1/(2 λ_max).
double Cgf(const std::vector<double>& lambda, double t) {
  double k = 0.0;
  for (double l : lambda) k -= 0.5 * std::log1p(-2.0 * t * l);
  return k;
}

double CgfPrime(const std::vector<double>& lambda, double t) {
  double k = 0.0;
  for (double l : lambda) k += l / (1.0 - 2.0 * t * l);
  return k;
}

double CgfSecond(const std::vector<double>& lambda, double t) {
  double k = 0.0;
  for (double l : lambda) {
    const double denom = 1.0 - 2.0 * t * l;
    k += 2.0 * l * l / (denom * denom);
  }
  return k;
}

/// Solves K'(t̂) = q on (-∞, 1/(2 λ_max)) by bisection refined with
/// Newton steps. K' is strictly increasing, so the root is unique.
double SolveSaddlepoint(const std::vector<double>& lambda, double q,
                        double lambda_max) {
  const double t_sup = 1.0 / (2.0 * lambda_max);
  // Bracket the root: K'(0) = Σλ = mean. For q > mean the root lies in
  // (0, t_sup); for q < mean in (lo, 0) with K'(lo) < q found by
  // doubling.
  double lo;
  double hi;
  const double mean = CgfPrime(lambda, 0.0);
  if (q >= mean) {
    lo = 0.0;
    hi = t_sup * (1.0 - 1e-12);
    // K'(t) → ∞ as t → t_sup⁻, so the bracket holds; pull hi inward
    // until it evaluates finite (guards extreme spectra).
    while (!std::isfinite(CgfPrime(lambda, hi))) {
      hi = 0.5 * (lo + hi);
    }
    if (CgfPrime(lambda, hi) < q) return hi;  // q beyond resolvable tail
  } else {
    hi = 0.0;
    lo = -t_sup;
    while (CgfPrime(lambda, lo) > q) {
      lo *= 2.0;
      if (lo < -1e12) return lo;  // q ≈ 0⁺; deepest resolvable left tail
    }
  }
  double t = 0.5 * (lo + hi);
  for (int iter = 0; iter < 200; ++iter) {
    const double g = CgfPrime(lambda, t) - q;
    if (g > 0.0) {
      hi = t;
    } else {
      lo = t;
    }
    const double slope = CgfSecond(lambda, t);
    double next = t - g / slope;  // Newton
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // bisect
    if (std::fabs(next - t) <= 1e-15 * std::max(1.0, std::fabs(t))) {
      return next;
    }
    t = next;
  }
  return t;
}

}  // namespace

std::vector<double> NullSpectrumFromGram(const Matrix& weighted_gram) {
  std::vector<double> lambda = SymmetricEigenvalues(weighted_gram);
  if (lambda.empty()) return lambda;
  // The Gram matrix is PSD by construction; eigenvalues below round-off
  // noise (relative to the largest) are rank-deficiency artifacts.
  const double cutoff = std::max(lambda.front(), 0.0) * 1e-12;
  for (double& l : lambda) l = std::max(l, 0.0);
  while (!lambda.empty() && lambda.back() <= cutoff) lambda.pop_back();
  return lambda;
}

double SatterthwaitePValue(const std::vector<double>& lambda, double q) {
  const PowerSums c = ComputePowerSums(lambda);
  if (c.c1 <= 0.0 || c.c2 <= 0.0) return 1.0;  // degenerate (empty) set
  if (q <= 0.0) return 1.0;
  const double scale = c.c2 / c.c1;
  const double df = c.c1 * c.c1 / c.c2;
  return ChiSquareSf(q / scale, df);
}

double LiuPValue(const std::vector<double>& lambda, double q) {
  const PowerSums c = ComputePowerSums(lambda);
  if (c.c1 <= 0.0 || c.c2 <= 0.0) return 1.0;
  if (q <= 0.0) return 1.0;
  if (c.c3 <= 0.0) return SatterthwaitePValue(lambda, q);
  // Liu, Tang & Zhang (2009): match skewness s1 and kurtosis s2 to a
  // noncentral chi-square χ²(l, δ), then map q through the standardized
  // coordinates.
  const double s1 = c.c3 / std::pow(c.c2, 1.5);
  const double s2 = c.c4 / (c.c2 * c.c2);
  double df;
  double ncp;
  double a;
  if (s1 * s1 > s2) {
    a = 1.0 / (s1 - std::sqrt(s1 * s1 - s2));
    ncp = s1 * a * a * a - a * a;
    df = a * a - 2.0 * ncp;
  } else {
    a = 1.0 / s1;
    ncp = 0.0;
    df = 1.0 / (s1 * s1);
  }
  if (!(df > 0.0)) return SatterthwaitePValue(lambda, q);
  const double mu_x = df + ncp;
  const double sigma_x = std::sqrt(2.0) * a;
  const double t_star = (q - c.c1) / std::sqrt(2.0 * c.c2);
  const double q_mapped = t_star * sigma_x + mu_x;
  return ChiSquareSfNoncentral(q_mapped, df, ncp);
}

double SaddlepointPValue(const std::vector<double>& lambda, double q) {
  // Drop numerically-zero components: they contribute nothing to Q but
  // would put the CGF singularity in the wrong place.
  std::vector<double> live;
  live.reserve(lambda.size());
  double lambda_max = 0.0;
  for (double l : lambda) lambda_max = std::max(lambda_max, l);
  for (double l : lambda) {
    if (l > lambda_max * 1e-12) live.push_back(l);
  }
  if (live.empty() || q <= 0.0) return 1.0;
  if (live.size() == 1) {
    // One component: the distribution IS λ·χ²₁ — evaluate it exactly
    // rather than through the (excellent but inexact) LR formula.
    return ChiSquareSf(q / live.front(), 1.0);
  }
  for (double& l : live) lambda_max = std::max(lambda_max, l);

  const double mean = CgfPrime(live, 0.0);
  const double t_hat = SolveSaddlepoint(live, q, lambda_max);
  const double w_sq = 2.0 * (t_hat * q - Cgf(live, t_hat));
  const double w = (t_hat >= 0.0 ? 1.0 : -1.0) * std::sqrt(std::max(w_sq, 0.0));
  const double v = t_hat * std::sqrt(CgfSecond(live, t_hat));
  // Lugannani–Rice degenerates as q → mean (w, v → 0); the moment match
  // is essentially exact there, so hand over instead of dividing by ~0.
  if (std::fabs(w) < 1e-5 || std::fabs(v) < 1e-12 ||
      std::fabs(q - mean) < 1e-9 * std::max(1.0, mean)) {
    return LiuPValue(lambda, q);
  }
  const double z = w + std::log(v / w) / w;
  const double p = NormalSf(z);
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace ss::stats
