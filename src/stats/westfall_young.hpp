// Westfall & Young (1993) resampling-based family-wise error control —
// the paper's reference [40] for resampling multiple-testing adjustment.
//
// Given observed statistics T_1..T_m and a B x m matrix of resampled
// statistics (each row one replicate of the complete family under the
// global null), the single-step maxT adjusted p-value is
//
//     p̃_j = ( 1 + #{ b : max_k T̃_bk >= T_j } ) / ( B + 1 ),
//
// and the step-down variant sharpens it by taking the max only over the
// hypotheses at or below rank(j), with monotonicity enforcement.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// Single-step maxT adjusted p-values. `replicates[b][j]` = T̃_bj.
std::vector<double> MaxTAdjustedPValues(
    const std::vector<double>& observed,
    const std::vector<std::vector<double>>& replicates);

/// Step-down maxT (Westfall-Young Algorithm 2.8; uniformly no larger than
/// the single-step values, still strongly FWER-controlling under subset
/// pivotality).
std::vector<double> StepDownMaxTAdjustedPValues(
    const std::vector<double>& observed,
    const std::vector<std::vector<double>>& replicates);

}  // namespace ss::stats
