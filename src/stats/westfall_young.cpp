#include "stats/westfall_young.hpp"

#include <algorithm>
#include <numeric>

#include "support/status.hpp"

namespace ss::stats {

std::vector<double> MaxTAdjustedPValues(
    const std::vector<double>& observed,
    const std::vector<std::vector<double>>& replicates) {
  const std::size_t m = observed.size();
  if (m == 0) return {};
  const std::size_t B = replicates.size();
  std::vector<double> max_per_replicate(B);
  for (std::size_t b = 0; b < B; ++b) {
    SS_CHECK(replicates[b].size() == m);
    max_per_replicate[b] =
        *std::max_element(replicates[b].begin(), replicates[b].end());
  }
  std::vector<double> adjusted(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::size_t exceed = 0;
    for (double max_stat : max_per_replicate) {
      if (max_stat >= observed[j]) ++exceed;
    }
    adjusted[j] =
        static_cast<double>(exceed + 1) / static_cast<double>(B + 1);
  }
  return adjusted;
}

std::vector<double> StepDownMaxTAdjustedPValues(
    const std::vector<double>& observed,
    const std::vector<std::vector<double>>& replicates) {
  const std::size_t m = observed.size();
  const std::size_t B = replicates.size();
  if (m == 0) return {};

  // Rank hypotheses by decreasing observed statistic.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return observed[a] > observed[b];
  });

  // For rank r, the relevant max is over the hypotheses ranked r..m-1
  // (those not yet "rejected"). Compute per replicate via a suffix max.
  std::vector<double> adjusted(m);
  std::vector<std::size_t> exceed(m, 0);
  std::vector<double> suffix_max(m);
  for (std::size_t b = 0; b < B; ++b) {
    SS_CHECK(replicates[b].size() == m);
    double running = -1e300;
    for (std::size_t rr = m; rr > 0; --rr) {
      running = std::max(running, replicates[b][order[rr - 1]]);
      suffix_max[rr - 1] = running;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (suffix_max[r] >= observed[order[r]]) ++exceed[r];
    }
  }
  double running_max = 0.0;  // enforce monotonicity down the ranking
  for (std::size_t r = 0; r < m; ++r) {
    const double p =
        static_cast<double>(exceed[r] + 1) / static_cast<double>(B + 1);
    running_max = std::max(running_max, p);
    adjusted[order[r]] = running_max;
  }
  return adjusted;
}

}  // namespace ss::stats
