#include "stats/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace ss::stats {

Matrix Matrix::Gram(const std::vector<double>* weights) const {
  Matrix gram(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double w = weights ? (*weights)[r] : 1.0;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = at(r, i) * w;
      for (std::size_t j = i; j < cols_; ++j) {
        gram.at(i, j) += xi * at(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) gram.at(i, j) = gram.at(j, i);
  }
  return gram;
}

std::vector<double> Matrix::TransposeTimes(
    const std::vector<double>& v, const std::vector<double>* weights) const {
  SS_CHECK(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double scaled = v[r] * (weights ? (*weights)[r] : 1.0);
    for (std::size_t c = 0; c < cols_; ++c) {
      out[c] += at(r, c) * scaled;
    }
  }
  return out;
}

std::vector<double> Matrix::Times(const std::vector<double>& x) const {
  SS_CHECK(x.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    out[r] = acc;
  }
  return out;
}

Result<Cholesky> Cholesky::Factor(const Matrix& spd) {
  SS_CHECK(spd.rows() == spd.cols());
  const std::size_t n = spd.rows();
  Matrix lower(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = spd.at(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= lower.at(i, k) * lower.at(j, k);
      }
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return Status::FailedPrecondition(
              "matrix not positive definite (collinear design?)");
        }
        lower.at(i, i) = std::sqrt(sum);
      } else {
        lower.at(i, j) = sum / lower.at(j, j);
      }
    }
  }
  return Cholesky(std::move(lower));
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  const std::size_t n = dim();
  SS_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= lower_.at(i, k) * y[k];
    y[i] = sum / lower_.at(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lower_.at(k, i) * x[k];
    x[i] = sum / lower_.at(i, i);
  }
  return x;
}

Result<std::vector<double>> OlsFit(const Matrix& x,
                                   const std::vector<double>& y) {
  Result<Cholesky> chol = Cholesky::Factor(x.Gram());
  if (!chol.ok()) return chol.status();
  return chol.value().Solve(x.TransposeTimes(y));
}

std::vector<double> Residuals(const Matrix& x, const std::vector<double>& y,
                              const std::vector<double>& beta) {
  std::vector<double> fitted = x.Times(beta);
  std::vector<double> residuals(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) residuals[i] = y[i] - fitted[i];
  return residuals;
}

Result<LogisticFit> LogisticRegression(const Matrix& x,
                                       const std::vector<std::uint8_t>& y,
                                       int max_iterations, double tolerance) {
  SS_CHECK(y.size() == x.rows());
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  LogisticFit fit;
  fit.beta.assign(p, 0.0);
  std::vector<double> weights(n);
  std::vector<double> working(n);

  for (int iter = 1; iter <= max_iterations; ++iter) {
    fit.iterations = iter;
    // Current fitted probabilities and IRLS weights.
    std::vector<double> eta = x.Times(fit.beta);
    fit.fitted.resize(n);
    double score_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double mu = 1.0 / (1.0 + std::exp(-eta[i]));
      fit.fitted[i] = mu;
      weights[i] = std::max(mu * (1.0 - mu), 1e-10);
      working[i] = static_cast<double>(y[i]) - mu;
      score_norm += std::fabs(working[i]);
    }
    // Newton step: (X'WX) delta = X'(y - mu).
    Result<Cholesky> chol = Cholesky::Factor(x.Gram(&weights));
    if (!chol.ok()) return chol.status();
    const std::vector<double> delta =
        chol.value().Solve(x.TransposeTimes(working));
    double step_norm = 0.0;
    for (std::size_t c = 0; c < p; ++c) {
      fit.beta[c] += delta[c];
      step_norm += std::fabs(delta[c]);
    }
    if (step_norm < tolerance) {
      fit.converged = true;
      break;
    }
  }
  // Final fitted values at the converged (or last) beta.
  std::vector<double> eta = x.Times(fit.beta);
  for (std::size_t i = 0; i < n; ++i) {
    fit.fitted[i] = 1.0 / (1.0 + std::exp(-eta[i]));
  }
  return fit;
}

std::vector<double> SymmetricEigenvalues(const Matrix& symmetric) {
  SS_CHECK(symmetric.rows() == symmetric.cols());
  const std::size_t d = symmetric.rows();
  if (d == 0) return {};
  Matrix a = symmetric;
  // Symmetrize defensively so tiny accumulation asymmetries in the input
  // cannot stall convergence.
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = r + 1; c < d; ++c) {
      const double mean = 0.5 * (a.at(r, c) + a.at(c, r));
      a.at(r, c) = mean;
      a.at(c, r) = mean;
    }
  }
  double norm = 0.0;
  for (std::size_t r = 0; r < d; ++r) {
    for (std::size_t c = 0; c < d; ++c) norm += a.at(r, c) * a.at(r, c);
  }
  norm = std::sqrt(norm);
  const double kTol = 1e-14;
  const int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = r + 1; c < d; ++c) off += a.at(r, c) * a.at(r, c);
    }
    if (std::sqrt(2.0 * off) <= kTol * std::max(norm, 1e-300)) break;
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = p + 1; q < d; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) <= kTol * 1e-2 * std::max(norm, 1e-300)) continue;
        // Classic Jacobi rotation annihilating a[p][q].
        const double theta = (a.at(q, q) - a.at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < d; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < d; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eigenvalues(d);
  for (std::size_t r = 0; r < d; ++r) eigenvalues[r] = a.at(r, r);
  std::sort(eigenvalues.begin(), eigenvalues.end(), std::greater<double>());
  return eigenvalues;
}

Matrix DesignMatrix(std::size_t n,
                    const std::vector<std::vector<double>>& covariates) {
  Matrix design(n, covariates.size() + 1);
  for (std::size_t i = 0; i < n; ++i) design.at(i, 0) = 1.0;
  for (std::size_t c = 0; c < covariates.size(); ++c) {
    SS_CHECK(covariates[c].size() == n);
    for (std::size_t i = 0; i < n; ++i) {
      design.at(i, c + 1) = covariates[c][i];
    }
  }
  return design;
}

}  // namespace ss::stats
