// SNP-set aggregation: the Sequence Kernel Association Test statistic
// (Wu et al. 2011; paper Section II).
//
//     S_k = Σ_{j ∈ I_k} ω_j² U_j²
//
// where I_k is the set of SNPs in gene/pathway k and ω_j a per-SNP weight
// (genotyping quality, allelic frequency, predicted deleteriousness, ...).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/status.hpp"

namespace ss::stats {

/// A SNP-set (gene): id plus member SNP indices. Mirrors the paper's
/// partition {I_1, ..., I_K} of SNPs 1..J.
struct SnpSet {
  std::uint32_t id = 0;
  std::vector<std::uint32_t> snps;
};

/// Validates that `sets` form a partition-like family over SNPs 0..J-1:
/// each set non-empty, all member indices < J. (The paper's sets are a
/// partition; the statistic itself tolerates overlap, so overlap is
/// allowed but emptiness is not.)
Status ValidateSnpSets(const std::vector<SnpSet>& sets, std::uint32_t num_snps);

/// Union of all member SNP indices, deduplicated and sorted — Algorithm 1
/// step 4 filters the genotype matrix to this set.
std::vector<std::uint32_t> UnionOfSets(const std::vector<SnpSet>& sets);

/// S_k for one set given per-SNP squared scores and weights.
/// `squared_scores[j]` = U_j², `weights[j]` = ω_j.
double SkatStatistic(const SnpSet& set,
                     const std::unordered_map<std::uint32_t, double>& squared_scores,
                     const std::unordered_map<std::uint32_t, double>& weights);

/// All S_k at once; result[k] corresponds to sets[k].
std::vector<double> SkatStatistics(
    const std::vector<SnpSet>& sets,
    const std::unordered_map<std::uint32_t, double>& squared_scores,
    const std::unordered_map<std::uint32_t, double>& weights);

}  // namespace ss::stats
