// The Cox efficient score statistic (Cox 1972; paper Section II).
//
// Under the marginal null H_0j (SNP j independent of survival), the
// per-patient score contribution is
//
//     U_ij = Δ_i (G_ij − a_ij / b_i),
//     a_ij = Σ_l 1(Y_l >= Y_i) G_lj,    b_i = Σ_l 1(Y_l >= Y_i),
//
// and the marginal score is U_j = Σ_i U_ij. Unlike the Wald and likelihood
// ratio tests it needs no numerical optimization — one pass per SNP.
//
// `CoxScoreContributions` evaluates all U_ij for one SNP in O(n) after the
// O(n log n) RiskSetIndex is built once per analysis; the naive O(n²)
// definition is kept as a test/ablation reference.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/survival.hpp"

namespace ss::stats {

/// Per-patient contributions U_ij for one SNP (fast path).
/// `genotypes[i]` = G_ij in {0, 1, 2} (any non-negative dosage works).
std::vector<double> CoxScoreContributions(const SurvivalData& data,
                                          const RiskSetIndex& index,
                                          const std::vector<std::uint8_t>& genotypes);

/// Same values computed directly from the definition in O(n^2); reference
/// implementation for tests and the risk-set ablation bench.
std::vector<double> CoxScoreContributionsNaive(
    const SurvivalData& data, const std::vector<std::uint8_t>& genotypes);

/// Stratified Cox score: patients are divided into strata (e.g. by study
/// site, sex, or a discretized baseline covariate) and risk sets are
/// formed WITHIN each stratum; the contributions are the per-stratum Cox
/// contributions placed back at the patients' positions. This is the
/// classical way to adjust the Cox score for categorical baseline
/// covariates without fitting them. `strata[i]` is patient i's stratum
/// label (any small non-negative integers).
std::vector<double> StratifiedCoxScoreContributions(
    const SurvivalData& data, const std::vector<std::uint32_t>& strata,
    const std::vector<std::uint8_t>& genotypes);

/// Marginal score U_j = Σ_i U_ij.
double CoxScoreStatistic(const std::vector<double>& contributions);

/// Null-variance estimate of U_j: V_j = Σ_i U_ij² (the empirical second
/// moment of the contributions; used to standardize for asymptotics).
double CoxScoreVariance(const std::vector<double>& contributions);

}  // namespace ss::stats
