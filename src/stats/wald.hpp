// Per-SNP Cox proportional-hazards maximum likelihood via Newton–Raphson —
// the Wald / likelihood-ratio comparator the paper's Section II argues the
// score test avoids.
//
// For a single genotype covariate, the Breslow partial log-likelihood is
//
//   l(β)  = Σ_{i:Δ_i=1} [ β G_i − log S0_i(β) ],
//   U(β)  = Σ Δ_i [ G_i − S1_i/S0_i ],
//   I(β)  = Σ Δ_i [ S2_i/S0_i − (S1_i/S0_i)² ],
//
// with Sm_i(β) = Σ_{l ∈ R_i} G_l^m exp(β G_l). Each Newton iteration is
// O(n) given the shared RiskSetIndex, but — as the paper stresses — the
// iteration count, convergence monitoring, and per-SNP restarts make this
// markedly more expensive than the one-pass score statistic; the
// bench_score_vs_wald harness quantifies the gap.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/survival.hpp"

namespace ss::stats {

struct CoxMleOptions {
  int max_iterations = 25;
  double score_tolerance = 1e-8;   ///< |U(β)| convergence threshold.
  double step_tolerance = 1e-10;   ///< |Δβ| convergence threshold.
  double max_abs_beta = 20.0;      ///< Divergence guard (monomorphic risk).
};

struct CoxMleResult {
  double beta = 0.0;          ///< MLE of the log hazard ratio.
  double information = 0.0;   ///< I(β̂).
  double wald_statistic = 0.0;///< β̂² I(β̂) ~ χ²(1) under H0.
  double lrt_statistic = 0.0; ///< 2(l(β̂) − l(0)) ~ χ²(1) under H0.
  int iterations = 0;
  bool converged = false;
};

/// Fits the single-SNP Cox model. Non-convergence (flat or monotone
/// likelihood, e.g. a monomorphic SNP) is reported via `converged=false`
/// with the last iterate — the "corrective action" bookkeeping the paper
/// says Wald/LRT pipelines must carry.
CoxMleResult FitCoxMle(const SurvivalData& data, const RiskSetIndex& index,
                       const std::vector<std::uint8_t>& genotypes,
                       const CoxMleOptions& options = {});

/// Partial log-likelihood l(β) (exposed for tests).
double CoxPartialLogLikelihood(const SurvivalData& data,
                               const RiskSetIndex& index,
                               const std::vector<std::uint8_t>& genotypes,
                               double beta);

}  // namespace ss::stats
