// Gaussian (linear-model) efficient score for quantitative phenotypes.
//
// For a quantitative trait Y (e.g. expression level in eQTL studies — the
// extension the paper's abstract names), the score for the slope of
// Y ~ G at β = 0 with an intercept is
//
//     U_ij = G_ij (Y_i − Ȳ),   U_j = Σ_i U_ij.
//
// Centering Y removes the intercept's nuisance direction; the statistic is
// the (unnormalized) covariance between genotype and phenotype.
#pragma once

#include <cstdint>
#include <vector>

namespace ss::stats {

/// Quantitative phenotype vector.
struct QuantitativeData {
  std::vector<double> value;
  std::size_t n() const { return value.size(); }
  double Mean() const;
};

/// Per-patient contributions U_ij = G_ij (Y_i − Ȳ). `mean` is passed in so
/// resampling replicates can reuse the observed-data mean where the method
/// requires it (Lin's multipliers reuse the observed contributions anyway).
std::vector<double> LinearScoreContributions(
    const QuantitativeData& data, double mean,
    const std::vector<std::uint8_t>& genotypes);

}  // namespace ss::stats
