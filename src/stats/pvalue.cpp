#include "stats/pvalue.hpp"

#include <algorithm>
#include <numeric>

#include "support/status.hpp"

namespace ss::stats {

double PValueFromCounts(std::uint64_t exceed_count, std::uint64_t replicates,
                        bool early_stopped, bool add_one) {
  if (replicates == 0) return 1.0;
  SS_CHECK(exceed_count <= replicates);
  if (early_stopped) {
    return static_cast<double>(exceed_count) / static_cast<double>(replicates);
  }
  if (add_one) {
    return static_cast<double>(exceed_count + 1) /
           static_cast<double>(replicates + 1);
  }
  return static_cast<double>(exceed_count) / static_cast<double>(replicates);
}

double EmpiricalPValue(std::uint64_t exceed_count, std::uint64_t replicates,
                       bool add_one) {
  return PValueFromCounts(exceed_count, replicates, /*early_stopped=*/false,
                          add_one);
}

std::vector<double> BonferroniAdjust(const std::vector<double>& pvalues) {
  const double m = static_cast<double>(pvalues.size());
  std::vector<double> adjusted;
  adjusted.reserve(pvalues.size());
  for (double p : pvalues) adjusted.push_back(std::min(1.0, m * p));
  return adjusted;
}

std::vector<double> BenjaminiHochbergAdjust(
    const std::vector<double>& pvalues) {
  const std::size_t m = pvalues.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pvalues[a] < pvalues[b];
  });
  std::vector<double> adjusted(m, 1.0);
  double running_min = 1.0;
  for (std::size_t rank = m; rank >= 1; --rank) {
    const std::size_t idx = order[rank - 1];
    const double candidate =
        pvalues[idx] * static_cast<double>(m) / static_cast<double>(rank);
    running_min = std::min(running_min, candidate);
    adjusted[idx] = std::min(1.0, running_min);
  }
  return adjusted;
}

}  // namespace ss::stats
