#include "stats/cox_score.hpp"

#include "stats/kernels/kernels.hpp"
#include "support/status.hpp"

namespace ss::stats {

std::vector<double> CoxScoreContributions(
    const SurvivalData& data, const RiskSetIndex& index,
    const std::vector<std::uint8_t>& genotypes) {
  const std::size_t n = data.n();
  SS_CHECK(genotypes.size() == n);
  SS_CHECK(index.n() == n);

  // Prefix sums of genotype over the time-descending order: prefix[k] =
  // Σ_{r<k} G[order[r]]. Then a_ij = prefix[prefix_end(i)].
  const std::vector<std::uint32_t>& order = index.order();
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    prefix[k + 1] = prefix[k] + static_cast<double>(genotypes[order[k]]);
  }

  // The per-patient scan is a routed kernel (risk_count(i) ==
  // prefix_end(i), so the kernel derives b from the prefix-end array).
  std::vector<double> contributions(n);
  kernels::ActiveKernels().cox_scan(data.event.data(), genotypes.data(),
                                    prefix.data(), index.prefix_ends().data(),
                                    n, contributions.data());
  return contributions;
}

std::vector<double> CoxScoreContributionsNaive(
    const SurvivalData& data, const std::vector<std::uint8_t>& genotypes) {
  const std::size_t n = data.n();
  SS_CHECK(genotypes.size() == n);
  std::vector<double> contributions(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (data.event[i] == 0) continue;
    double a = 0.0;
    double b = 0.0;
    for (std::size_t l = 0; l < n; ++l) {
      if (data.time[l] >= data.time[i]) {
        a += static_cast<double>(genotypes[l]);
        b += 1.0;
      }
    }
    contributions[i] = static_cast<double>(genotypes[i]) - a / b;
  }
  return contributions;
}

std::vector<double> StratifiedCoxScoreContributions(
    const SurvivalData& data, const std::vector<std::uint32_t>& strata,
    const std::vector<std::uint8_t>& genotypes) {
  const std::size_t n = data.n();
  SS_CHECK(strata.size() == n);
  SS_CHECK(genotypes.size() == n);

  // Group patient indices by stratum.
  std::uint32_t num_strata = 0;
  for (std::uint32_t s : strata) num_strata = std::max(num_strata, s + 1);
  std::vector<std::vector<std::uint32_t>> members(num_strata);
  for (std::uint32_t i = 0; i < n; ++i) {
    members[strata[i]].push_back(i);
  }

  std::vector<double> contributions(n, 0.0);
  for (const auto& stratum : members) {
    if (stratum.empty()) continue;
    // Per-stratum sub-problem, solved with the fast path.
    SurvivalData sub;
    std::vector<std::uint8_t> sub_genotypes;
    sub.time.reserve(stratum.size());
    sub.event.reserve(stratum.size());
    sub_genotypes.reserve(stratum.size());
    for (std::uint32_t i : stratum) {
      sub.time.push_back(data.time[i]);
      sub.event.push_back(data.event[i]);
      sub_genotypes.push_back(genotypes[i]);
    }
    const RiskSetIndex sub_index(sub);
    const std::vector<double> sub_contributions =
        CoxScoreContributions(sub, sub_index, sub_genotypes);
    for (std::size_t k = 0; k < stratum.size(); ++k) {
      contributions[stratum[k]] = sub_contributions[k];
    }
  }
  return contributions;
}

double CoxScoreStatistic(const std::vector<double>& contributions) {
  double total = 0.0;
  for (double u : contributions) total += u;
  return total;
}

double CoxScoreVariance(const std::vector<double>& contributions) {
  double total = 0.0;
  for (double u : contributions) total += u * u;
  return total;
}

}  // namespace ss::stats
