#include "stats/covariates.hpp"

namespace ss::stats {

AdjustedScoreEngine::AdjustedScoreEngine(Matrix design, Cholesky gram_factor,
                                         std::vector<double> residuals,
                                         std::vector<double> irls_weights)
    : design_(std::move(design)),
      gram_factor_(std::move(gram_factor)),
      residuals_(std::move(residuals)),
      irls_weights_(std::move(irls_weights)) {}

Result<AdjustedScoreEngine> AdjustedScoreEngine::Gaussian(
    const QuantitativeData& phenotype,
    const std::vector<std::vector<double>>& covariates) {
  const std::size_t n = phenotype.n();
  Matrix design = DesignMatrix(n, covariates);
  Result<std::vector<double>> beta = OlsFit(design, phenotype.value);
  if (!beta.ok()) return beta.status();
  std::vector<double> residuals =
      Residuals(design, phenotype.value, beta.value());
  Result<Cholesky> factor = Cholesky::Factor(design.Gram());
  if (!factor.ok()) return factor.status();
  return AdjustedScoreEngine(std::move(design), std::move(factor).value(),
                             std::move(residuals), {});
}

Result<AdjustedScoreEngine> AdjustedScoreEngine::Binomial(
    const BinaryData& phenotype,
    const std::vector<std::vector<double>>& covariates) {
  const std::size_t n = phenotype.n();
  Matrix design = DesignMatrix(n, covariates);
  Result<LogisticFit> fit = LogisticRegression(design, phenotype.value);
  if (!fit.ok()) return fit.status();
  if (!fit.value().converged) {
    return Status::FailedPrecondition("null logistic model did not converge");
  }
  std::vector<double> residuals(n);
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = fit.value().fitted[i];
    residuals[i] = static_cast<double>(phenotype.value[i]) - mu;
    weights[i] = std::max(mu * (1.0 - mu), 1e-10);
  }
  Result<Cholesky> factor = Cholesky::Factor(design.Gram(&weights));
  if (!factor.ok()) return factor.status();
  return AdjustedScoreEngine(std::move(design), std::move(factor).value(),
                             std::move(residuals), std::move(weights));
}

std::vector<double> AdjustedScoreEngine::ResidualizeGenotype(
    const std::vector<std::uint8_t>& genotypes) const {
  std::vector<double> g(genotypes.begin(), genotypes.end());
  const std::vector<double>* weights =
      irls_weights_.empty() ? nullptr : &irls_weights_;
  // coeffs = (X'WX)^{-1} X'W g; residual = g - X coeffs.
  const std::vector<double> coeffs =
      gram_factor_.Solve(design_.TransposeTimes(g, weights));
  const std::vector<double> projected = design_.Times(coeffs);
  for (std::size_t i = 0; i < g.size(); ++i) g[i] -= projected[i];
  return g;
}

std::vector<double> AdjustedScoreEngine::Contributions(
    const std::vector<std::uint8_t>& genotypes) const {
  SS_CHECK(genotypes.size() == n());
  std::vector<double> adjusted = ResidualizeGenotype(genotypes);
  for (std::size_t i = 0; i < adjusted.size(); ++i) {
    adjusted[i] *= residuals_[i];
  }
  return adjusted;
}

}  // namespace ss::stats
