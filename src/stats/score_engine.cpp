#include "stats/score_engine.hpp"

#include "stats/cox_score.hpp"
#include "support/status.hpp"

namespace ss::stats {

const char* ScoreModelName(ScoreModel model) {
  switch (model) {
    case ScoreModel::kCox: return "Cox";
    case ScoreModel::kGaussian: return "Gaussian";
    case ScoreModel::kBinomial: return "Binomial";
  }
  return "?";
}

Phenotype Phenotype::Cox(SurvivalData data) {
  Phenotype p;
  p.model = ScoreModel::kCox;
  p.survival = std::move(data);
  return p;
}

Phenotype Phenotype::Gaussian(QuantitativeData data) {
  Phenotype p;
  p.model = ScoreModel::kGaussian;
  p.quantitative = std::move(data);
  return p;
}

Phenotype Phenotype::Binomial(BinaryData data) {
  Phenotype p;
  p.model = ScoreModel::kBinomial;
  p.binary = std::move(data);
  return p;
}

std::size_t Phenotype::n() const {
  switch (model) {
    case ScoreModel::kCox: return survival.n();
    case ScoreModel::kGaussian: return quantitative.n();
    case ScoreModel::kBinomial: return binary.n();
  }
  return 0;
}

Phenotype Phenotype::Permuted(const std::vector<std::uint32_t>& perm) const {
  SS_CHECK(perm.size() == n());
  Phenotype out;
  out.model = model;
  switch (model) {
    case ScoreModel::kCox:
      out.survival = survival.Permuted(perm);
      break;
    case ScoreModel::kGaussian:
      out.quantitative.value.resize(n());
      for (std::size_t i = 0; i < n(); ++i) {
        out.quantitative.value[i] = quantitative.value[perm[i]];
      }
      break;
    case ScoreModel::kBinomial:
      out.binary.value.resize(n());
      for (std::size_t i = 0; i < n(); ++i) {
        out.binary.value[i] = binary.value[perm[i]];
      }
      break;
  }
  return out;
}

ScoreEngine::ScoreEngine(Phenotype phenotype, bool paper_faithful)
    : phenotype_(std::move(phenotype)), paper_faithful_(paper_faithful) {
  switch (phenotype_.model) {
    case ScoreModel::kCox:
      if (!paper_faithful_) {
        risk_index_ = std::make_unique<RiskSetIndex>(phenotype_.survival);
      }
      break;
    case ScoreModel::kGaussian:
      center_ = phenotype_.quantitative.Mean();
      break;
    case ScoreModel::kBinomial:
      center_ = phenotype_.binary.CaseRate();
      break;
  }
}

std::vector<double> ScoreEngine::Contributions(
    const std::vector<std::uint8_t>& genotypes) const {
  switch (phenotype_.model) {
    case ScoreModel::kCox:
      if (paper_faithful_) {
        return CoxScoreContributionsNaive(phenotype_.survival, genotypes);
      }
      return CoxScoreContributions(phenotype_.survival, *risk_index_,
                                   genotypes);
    case ScoreModel::kGaussian:
      return LinearScoreContributions(phenotype_.quantitative, center_,
                                      genotypes);
    case ScoreModel::kBinomial:
      return LogisticScoreContributions(phenotype_.binary, center_, genotypes);
  }
  return {};
}

}  // namespace ss::stats
