#include "stats/burden.hpp"

#include <algorithm>

#include "support/status.hpp"

namespace ss::stats {

double BurdenStatistic(
    const SnpSet& set, const std::unordered_map<std::uint32_t, double>& scores,
    const std::unordered_map<std::uint32_t, double>& weights) {
  double weighted_sum = 0.0;
  for (std::uint32_t snp : set.snps) {
    auto score_it = scores.find(snp);
    if (score_it == scores.end()) continue;
    auto weight_it = weights.find(snp);
    const double w = weight_it == weights.end() ? 1.0 : weight_it->second;
    weighted_sum += w * score_it->second;
  }
  return weighted_sum * weighted_sum;
}

std::vector<double> BurdenStatistics(
    const std::vector<SnpSet>& sets,
    const std::unordered_map<std::uint32_t, double>& scores,
    const std::unordered_map<std::uint32_t, double>& weights) {
  std::vector<double> statistics;
  statistics.reserve(sets.size());
  for (const SnpSet& set : sets) {
    statistics.push_back(BurdenStatistic(set, scores, weights));
  }
  return statistics;
}

std::vector<double> SkatORhoGrid() {
  return {0.0, 0.01, 0.04, 0.09, 0.16, 0.25, 0.5, 1.0};
}

std::vector<double> SkatOGridStatistics(double burden, double skat,
                                        const std::vector<double>& rho_grid) {
  std::vector<double> grid;
  grid.reserve(rho_grid.size());
  for (double rho : rho_grid) {
    grid.push_back(rho * burden + (1.0 - rho) * skat);
  }
  return grid;
}

double SkatOPValue(const std::vector<double>& observed_grid,
                   const std::vector<std::vector<double>>& replicate_grids) {
  const std::size_t grid_size = observed_grid.size();
  SS_CHECK(grid_size > 0);
  const std::size_t replicates = replicate_grids.size();
  if (replicates == 0) return 1.0;

  // Per-rho marginal p-values, observed and per replicate, all from the
  // same replicate pool (the double-resampling shortcut standard for
  // min-p combinations).
  auto marginal_p = [&](std::size_t g, double value) {
    std::size_t exceed = 0;
    for (const auto& grid : replicate_grids) {
      SS_CHECK(grid.size() == grid_size);
      if (grid[g] >= value) ++exceed;
    }
    return static_cast<double>(exceed + 1) /
           static_cast<double>(replicates + 1);
  };

  double observed_min_p = 1.0;
  for (std::size_t g = 0; g < grid_size; ++g) {
    observed_min_p = std::min(observed_min_p, marginal_p(g, observed_grid[g]));
  }

  // Null distribution of the min-p under resampling.
  std::size_t exceed = 0;
  for (const auto& grid : replicate_grids) {
    double replicate_min_p = 1.0;
    for (std::size_t g = 0; g < grid_size; ++g) {
      replicate_min_p = std::min(replicate_min_p, marginal_p(g, grid[g]));
    }
    if (replicate_min_p <= observed_min_p) ++exceed;
  }
  return static_cast<double>(exceed + 1) / static_cast<double>(replicates + 1);
}

}  // namespace ss::stats
