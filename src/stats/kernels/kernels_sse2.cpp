// SSE2 kernel variants. Baseline x86-64 always has SSE2, so this TU
// needs no special compile flags there; on other targets the table
// degrades to the scalar entries.
//
// Bitwise contract: SIMD lanes map to replicates, never to patients.
// Each replicate keeps a single accumulator chain that sums patients in
// ascending order, exactly like the scalar kernel, so results are
// bit-identical (no FMA: baseline x86-64 has none, and elementwise
// mul/add are IEEE-identical scalar vs vector).
#include "stats/kernels/kernels_internal.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace ss::stats::kernels::internal {
namespace {

void BatchedMacSse2(const double* u, std::size_t n, const double* zblock,
                    std::size_t count, double* out) {
  std::size_t r = 0;
  // Eight replicates per pass (four 2-lane accumulator chains) so the
  // loop is add-throughput bound instead of add-latency bound. The
  // patient-major Z layout makes every z load a contiguous 2-lane pair
  // of replicate multipliers — no unpacks on the hot path.
  for (; r + 8 <= count; r += 8) {
    __m128d acc[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                      _mm_setzero_pd()};
    const double* z = zblock + r;
    for (std::size_t i = 0; i < n; ++i, z += count) {
      const __m128d ui = _mm_set1_pd(u[i]);
      for (int g = 0; g < 4; ++g) {
        const __m128d lanes = _mm_loadu_pd(z + 2 * g);
        acc[g] = _mm_add_pd(acc[g], _mm_mul_pd(lanes, ui));
      }
    }
    for (int g = 0; g < 4; ++g) _mm_storeu_pd(out + r + 2 * g, acc[g]);
  }
  // Two-replicate blocks, then the scalar tail (same order as scalar).
  for (; r + 2 <= count; r += 2) {
    __m128d acc = _mm_setzero_pd();
    const double* z = zblock + r;
    for (std::size_t i = 0; i < n; ++i, z += count) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_loadu_pd(z), _mm_set1_pd(u[i])));
    }
    _mm_storeu_pd(out + r, acc);
  }
  for (; r < count; ++r) {
    const double* z = zblock + r;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i, z += count) acc += z[0] * u[i];
    out[r] = acc;
  }
}

void CoxScanSse2(const std::uint8_t* event, const std::uint8_t* genotypes,
                 const double* prefix, const std::uint32_t* prefix_end,
                 std::size_t n, double* out) {
  std::size_t i = 0;
  // Two patients per pass: the paired divide is the win (divpd retires
  // two quotients for roughly the cost of one divsd).
  for (; i + 2 <= n; i += 2) {
    const __m128d a =
        _mm_set_pd(prefix[prefix_end[i + 1]], prefix[prefix_end[i]]);
    const __m128d b = _mm_set_pd(static_cast<double>(prefix_end[i + 1]),
                                 static_cast<double>(prefix_end[i]));
    const __m128d g = _mm_set_pd(static_cast<double>(genotypes[i + 1]),
                                 static_cast<double>(genotypes[i]));
    double contrib[2];
    _mm_storeu_pd(contrib, _mm_sub_pd(g, _mm_div_pd(a, b)));
    out[i] = event[i] != 0 ? contrib[0] : 0.0;
    out[i + 1] = event[i + 1] != 0 ? contrib[1] : 0.0;
  }
  if (i < n) CoxScanScalar(event + i, genotypes + i, prefix, prefix_end + i,
                           n - i, out + i);
}

void SkatFoldSse2(const double* scores, std::size_t count, double weight_sq,
                  double* acc) {
  const __m128d w = _mm_set1_pd(weight_sq);
  std::size_t r = 0;
  for (; r + 2 <= count; r += 2) {
    const __m128d s = _mm_loadu_pd(scores + r);
    const __m128d term = _mm_mul_pd(w, _mm_mul_pd(s, s));
    _mm_storeu_pd(acc + r, _mm_add_pd(_mm_loadu_pd(acc + r), term));
  }
  if (r < count) SkatFoldScalar(scores + r, count - r, weight_sq, acc + r);
}

void SkatBurdenFoldSse2(const double* scores, std::size_t count, double weight,
                        double weight_sq, double* skat, double* burden) {
  const __m128d w = _mm_set1_pd(weight);
  const __m128d wsq = _mm_set1_pd(weight_sq);
  std::size_t r = 0;
  for (; r + 2 <= count; r += 2) {
    const __m128d s = _mm_loadu_pd(scores + r);
    _mm_storeu_pd(skat + r, _mm_add_pd(_mm_loadu_pd(skat + r),
                                       _mm_mul_pd(wsq, _mm_mul_pd(s, s))));
    _mm_storeu_pd(burden + r,
                  _mm_add_pd(_mm_loadu_pd(burden + r), _mm_mul_pd(w, s)));
  }
  if (r < count) {
    SkatBurdenFoldScalar(scores + r, count - r, weight, weight_sq, skat + r,
                         burden + r);
  }
}

}  // namespace

const KernelTable kSse2Table = {
    &BatchedMacSse2,
    &CoxScanSse2,
    &SkatFoldSse2,
    &SkatBurdenFoldSse2,
};

}  // namespace ss::stats::kernels::internal

#else  // !defined(__SSE2__)

namespace ss::stats::kernels::internal {

const KernelTable kSse2Table = kScalarTable;

}  // namespace ss::stats::kernels::internal

#endif
