// Runtime-dispatched compute kernels for the resampling hot paths.
//
// The three loops that dominate resampling wall-clock — the batched Monte
// Carlo multiply-accumulate, the Cox score contribution scan, and the
// per-set SKAT weighted folds — are routed through a function-pointer
// table selected once per process from the best instruction set the CPU
// supports (scalar / SSE2 / AVX2). Every SIMD variant preserves the
// scalar kernel's per-element accumulation order bit for bit: lanes map
// to *replicates*, never to patients, so each replicate's accumulator
// still sums patients in ascending order and `resampling.result_hash`
// is invariant to the dispatch level (see docs/KERNELS.md).
//
// The level can be forced with the SS_KERNEL environment variable
// (scalar|sse2|avx2) or programmatically via SetDispatchLevel (the CLI
// and benches expose this as `kernel=`). Requests above what the CPU
// supports clamp down with a warning rather than fault.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace ss::stats::kernels {

/// Instruction-set tiers, ordered. Numeric values are stable: they are
/// exported through the `kernel.dispatch` counter and run-metrics JSON.
enum class DispatchLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Stable lowercase name ("scalar", "sse2", "avx2").
const char* DispatchLevelName(DispatchLevel level);

/// Parses a name as accepted by SS_KERNEL / `kernel=`.
Result<DispatchLevel> ParseDispatchLevel(const std::string& name);

/// Best level this CPU can execute.
DispatchLevel BestSupportedLevel();

/// The level in effect. Initialized lazily on first use: SS_KERNEL if
/// set (clamped to supported), else BestSupportedLevel().
DispatchLevel ActiveDispatchLevel();

/// Forces the dispatch level, clamping to BestSupportedLevel() with a
/// warning if the request is not executable here. Returns the level
/// actually installed. Not intended for use while kernels are running
/// on other threads; the CLI/benches call it during startup only.
DispatchLevel SetDispatchLevel(DispatchLevel level);

/// One entry per routed hot loop. All variants of a kernel are bitwise
/// equivalent; only their instruction mix differs.
struct KernelTable {
  /// out[r] = sum_i u[i] * zblock[i*count + r], summed in ascending i per
  /// replicate. `zblock` is patient-major (MonteCarloZBlock layout):
  /// patient i's `count` replicate multipliers are contiguous, so vector
  /// variants load replicate lanes directly — no transpose, no strided
  /// or gathered reads on the hot path.
  using BatchedMacFn = void (*)(const double* u, std::size_t n,
                                const double* zblock, std::size_t count,
                                double* out);
  /// Cox score contribution scan: for each patient i (sorted-time order
  /// arrays as produced by RiskSetIndex),
  ///   out[i] = event[i] ? genotypes[i] - prefix[prefix_end[i]] /
  ///                       double(prefix_end[i])
  ///          : +0.0
  /// `prefix` has n + 1 entries; prefix_end[i] >= 1 for every i.
  using CoxScanFn = void (*)(const std::uint8_t* event,
                             const std::uint8_t* genotypes,
                             const double* prefix,
                             const std::uint32_t* prefix_end, std::size_t n,
                             double* out);
  /// acc[r] += weight_sq * (scores[r] * scores[r]).
  using SkatFoldFn = void (*)(const double* scores, std::size_t count,
                              double weight_sq, double* acc);
  /// skat[r] += weight_sq * (scores[r] * scores[r]);
  /// burden[r] += weight * scores[r].
  using SkatBurdenFoldFn = void (*)(const double* scores, std::size_t count,
                                    double weight, double weight_sq,
                                    double* skat, double* burden);

  BatchedMacFn batched_mac = nullptr;
  CoxScanFn cox_scan = nullptr;
  SkatFoldFn skat_fold = nullptr;
  SkatBurdenFoldFn skat_burden_fold = nullptr;
};

/// The table for the active dispatch level.
const KernelTable& ActiveKernels();

/// The table for a specific level (differential tests compare these).
/// Levels above BestSupportedLevel() must not be executed.
const KernelTable& KernelsFor(DispatchLevel level);

}  // namespace ss::stats::kernels
