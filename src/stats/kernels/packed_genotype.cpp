#include "stats/kernels/packed_genotype.hpp"

#include <cstring>

namespace ss::stats {
namespace {

// kDecode.v[byte] = the four dosages packed into `byte`, low crumb first.
struct DecodeTable {
  std::uint8_t v[256][4];
};

constexpr DecodeTable BuildDecodeTable() {
  DecodeTable table{};
  for (int byte = 0; byte < 256; ++byte) {
    for (int k = 0; k < 4; ++k) {
      table.v[byte][k] = static_cast<std::uint8_t>((byte >> (2 * k)) & 0x3);
    }
  }
  return table;
}

constexpr DecodeTable kDecode = BuildDecodeTable();

}  // namespace

PackedGenotypeBlock PackedGenotypeBlock::Pack(
    const std::vector<std::uint8_t>& dosages) {
  PackedGenotypeBlock block;
  block.size_ = static_cast<std::uint32_t>(dosages.size());
  for (std::uint8_t d : dosages) {
    if (d > 3) {
      block.packed_ = false;
      block.payload_ = dosages;
      return block;
    }
  }
  block.payload_.assign((dosages.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < dosages.size(); ++i) {
    block.payload_[i >> 2] = static_cast<std::uint8_t>(
        block.payload_[i >> 2] | (dosages[i] << (2 * (i & 3))));
  }
  return block;
}

PackedGenotypeBlock PackedGenotypeBlock::FromPayload(
    std::uint32_t size, bool packed, std::vector<std::uint8_t> payload) {
  PackedGenotypeBlock block;
  block.size_ = size;
  block.packed_ = packed;
  block.payload_ = std::move(payload);
  return block;
}

std::vector<std::uint8_t> PackedGenotypeBlock::Unpack() const {
  std::vector<std::uint8_t> out;
  UnpackInto(&out);
  return out;
}

void PackedGenotypeBlock::UnpackInto(std::vector<std::uint8_t>* out) const {
  if (!packed_) {
    *out = payload_;
    return;
  }
  out->resize(size_);
  std::uint8_t* dst = out->data();
  const std::size_t full_bytes = size_ / 4;
  for (std::size_t b = 0; b < full_bytes; ++b) {
    std::memcpy(dst + 4 * b, kDecode.v[payload_[b]], 4);
  }
  for (std::size_t i = 4 * full_bytes; i < size_; ++i) {
    dst[i] = kDecode.v[payload_[i >> 2]][i & 3];
  }
}

std::uint64_t PackedGenotypeBlock::AlleleCount() const {
  if (!packed_) {
    std::uint64_t total = 0;
    for (std::uint8_t d : payload_) total += d;
    return total;
  }
  // Dosage = low crumb bit + 2 * high crumb bit, so the sum over a word
  // is popcount(low bits) + 2 * popcount(high bits). Unused trailing
  // crumbs are zero by construction and contribute nothing.
  constexpr std::uint64_t kLowCrumbBits = 0x5555555555555555ULL;
  std::uint64_t total = 0;
  std::size_t b = 0;
  for (; b + 8 <= payload_.size(); b += 8) {
    std::uint64_t word;
    std::memcpy(&word, payload_.data() + b, sizeof(word));
    total += static_cast<std::uint64_t>(__builtin_popcountll(word & kLowCrumbBits)) +
             2 * static_cast<std::uint64_t>(
                     __builtin_popcountll((word >> 1) & kLowCrumbBits));
  }
  for (; b < payload_.size(); ++b) {
    const std::uint8_t byte = payload_[b];
    total += static_cast<std::uint64_t>(__builtin_popcount(byte & 0x55)) +
             2 * static_cast<std::uint64_t>(
                     __builtin_popcount((byte >> 1) & 0x55));
  }
  return total;
}

}  // namespace ss::stats
