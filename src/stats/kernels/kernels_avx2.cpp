// AVX2 kernel variants. This TU is compiled with
//   -mavx2 -mno-fma -ffp-contract=off
// (see src/stats/CMakeLists.txt): AVX2 enables the 4-lane doubles used
// here, while FMA stays disabled so GCC can never contract a mul+add
// pair into a fused multiply-add — contraction changes rounding and
// would break the bitwise-equality contract with the scalar kernel.
//
// Bitwise contract: SIMD lanes map to replicates, never to patients.
// Each replicate keeps a single accumulator chain that sums patients in
// ascending order, exactly like the scalar kernel; elementwise IEEE
// mul/add/sub/div round identically in scalar and vector form.
#include "stats/kernels/kernels_internal.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace ss::stats::kernels::internal {
namespace {

void BatchedMacAvx2(const double* u, std::size_t n, const double* zblock,
                    std::size_t count, double* out) {
  std::size_t r = 0;
  // Sixteen replicates per pass: four independent 4-lane accumulator
  // chains hide the FP add latency a single chain serializes on. The
  // patient-major Z layout makes every z load a contiguous 4-lane
  // vector of replicate multipliers — one broadcast of u[i] plus four
  // load/mul/add triples per patient, no shuffles on the hot path.
  for (; r + 16 <= count; r += 16) {
    __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                      _mm256_setzero_pd(), _mm256_setzero_pd()};
    const double* z = zblock + r;
    for (std::size_t i = 0; i < n; ++i, z += count) {
      const __m256d ui = _mm256_broadcast_sd(u + i);
      for (int g = 0; g < 4; ++g) {
        const __m256d lanes = _mm256_loadu_pd(z + 4 * g);
        acc[g] = _mm256_add_pd(acc[g], _mm256_mul_pd(lanes, ui));
      }
    }
    for (int g = 0; g < 4; ++g) _mm256_storeu_pd(out + r + 4 * g, acc[g]);
  }
  // Four-replicate blocks, then the scalar tail (same order as scalar).
  for (; r + 4 <= count; r += 4) {
    __m256d acc = _mm256_setzero_pd();
    const double* z = zblock + r;
    for (std::size_t i = 0; i < n; ++i, z += count) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_loadu_pd(z), _mm256_broadcast_sd(u + i)));
    }
    _mm256_storeu_pd(out + r, acc);
  }
  for (; r < count; ++r) {
    const double* z = zblock + r;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i, z += count) acc += z[0] * u[i];
    out[r] = acc;
  }
}

void CoxScanAvx2(const std::uint8_t* event, const std::uint8_t* genotypes,
                 const double* prefix, const std::uint32_t* prefix_end,
                 std::size_t n, double* out) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  // Four patients per pass. The risk-set sums come from a gather over
  // the prefix array; censored lanes are computed anyway (prefix_end is
  // always >= 1, so the divide is safe) and masked to +0.0 afterwards,
  // matching the scalar kernel's zero-filled output.
  for (; i + 4 <= n; i += 4) {
    const __m128i pe =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(prefix_end + i));
    // Masked gather with an explicit all-ones mask: same instruction as
    // the plain form, but avoids the _mm256_undefined_pd() source that
    // trips GCC 12's -Wmaybe-uninitialized under -Werror.
    const __m256d a = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), prefix, pe,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    const __m256d b = _mm256_cvtepi32_pd(pe);
    std::uint32_t gword;
    std::memcpy(&gword, genotypes + i, sizeof(gword));
    const __m256d g = _mm256_cvtepi32_pd(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(gword))));
    std::uint32_t eword;
    std::memcpy(&eword, event + i, sizeof(eword));
    const __m128i e32 =
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(eword)));
    const __m256d censored =
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(e32, zero)));
    const __m256d contrib = _mm256_sub_pd(g, _mm256_div_pd(a, b));
    _mm256_storeu_pd(out + i, _mm256_andnot_pd(censored, contrib));
  }
  if (i < n) CoxScanScalar(event + i, genotypes + i, prefix, prefix_end + i,
                           n - i, out + i);
}

void SkatFoldAvx2(const double* scores, std::size_t count, double weight_sq,
                  double* acc) {
  const __m256d w = _mm256_set1_pd(weight_sq);
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const __m256d s = _mm256_loadu_pd(scores + r);
    const __m256d term = _mm256_mul_pd(w, _mm256_mul_pd(s, s));
    _mm256_storeu_pd(acc + r, _mm256_add_pd(_mm256_loadu_pd(acc + r), term));
  }
  if (r < count) SkatFoldScalar(scores + r, count - r, weight_sq, acc + r);
}

void SkatBurdenFoldAvx2(const double* scores, std::size_t count, double weight,
                        double weight_sq, double* skat, double* burden) {
  const __m256d w = _mm256_set1_pd(weight);
  const __m256d wsq = _mm256_set1_pd(weight_sq);
  std::size_t r = 0;
  for (; r + 4 <= count; r += 4) {
    const __m256d s = _mm256_loadu_pd(scores + r);
    _mm256_storeu_pd(
        skat + r, _mm256_add_pd(_mm256_loadu_pd(skat + r),
                                _mm256_mul_pd(wsq, _mm256_mul_pd(s, s))));
    _mm256_storeu_pd(burden + r, _mm256_add_pd(_mm256_loadu_pd(burden + r),
                                               _mm256_mul_pd(w, s)));
  }
  if (r < count) {
    SkatBurdenFoldScalar(scores + r, count - r, weight, weight_sq, skat + r,
                         burden + r);
  }
}

}  // namespace

const KernelTable kAvx2Table = {
    &BatchedMacAvx2,
    &CoxScanAvx2,
    &SkatFoldAvx2,
    &SkatBurdenFoldAvx2,
};

}  // namespace ss::stats::kernels::internal

#else  // !defined(__AVX2__)

namespace ss::stats::kernels::internal {

const KernelTable kAvx2Table = kScalarTable;

}  // namespace ss::stats::kernels::internal

#endif
