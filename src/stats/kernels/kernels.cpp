#include "stats/kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "stats/kernels/kernels_internal.hpp"
#include "support/log.hpp"

namespace ss::stats::kernels {
namespace internal {

void BatchedMacScalar(const double* u, std::size_t n, const double* zblock,
                      std::size_t count, double* out) {
  std::size_t r = 0;
  // Four replicates per pass: each contribution is loaded once and feeds
  // four independent accumulators, which also hides the FP add latency
  // the single-accumulator dot product serializes on. The patient-major
  // Z layout puts the four replicates' multipliers for patient i in the
  // four adjacent slots at zblock[i*count + r].
  for (; r + 4 <= count; r += 4) {
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    double acc3 = 0.0;
    const double* z = zblock + r;
    for (std::size_t i = 0; i < n; ++i, z += count) {
      const double ui = u[i];
      acc0 += z[0] * ui;
      acc1 += z[1] * ui;
      acc2 += z[2] * ui;
      acc3 += z[3] * ui;
    }
    out[r + 0] = acc0;
    out[r + 1] = acc1;
    out[r + 2] = acc2;
    out[r + 3] = acc3;
  }
  for (; r < count; ++r) {
    const double* z = zblock + r;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i, z += count) acc += z[0] * u[i];
    out[r] = acc;
  }
}

void CoxScanScalar(const std::uint8_t* event, const std::uint8_t* genotypes,
                   const double* prefix, const std::uint32_t* prefix_end,
                   std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (event[i] == 0) {
      out[i] = 0.0;  // censored patients contribute 0
      continue;
    }
    const double a = prefix[prefix_end[i]];
    const double b = static_cast<double>(prefix_end[i]);
    out[i] = static_cast<double>(genotypes[i]) - a / b;
  }
}

void SkatFoldScalar(const double* scores, std::size_t count, double weight_sq,
                    double* acc) {
  for (std::size_t r = 0; r < count; ++r) {
    const double squared = scores[r] * scores[r];
    acc[r] += weight_sq * squared;
  }
}

void SkatBurdenFoldScalar(const double* scores, std::size_t count,
                          double weight, double weight_sq, double* skat,
                          double* burden) {
  for (std::size_t r = 0; r < count; ++r) {
    const double s = scores[r];
    skat[r] += weight_sq * (s * s);
    burden[r] += weight * s;
  }
}

const KernelTable kScalarTable = {
    &BatchedMacScalar,
    &CoxScanScalar,
    &SkatFoldScalar,
    &SkatBurdenFoldScalar,
};

}  // namespace internal

namespace {

// -1 = not yet initialized; otherwise a DispatchLevel value.
std::atomic<int> g_level{-1};

DispatchLevel ClampToSupported(DispatchLevel level, const char* origin) {
  const DispatchLevel best = BestSupportedLevel();
  if (static_cast<int>(level) <= static_cast<int>(best)) return level;
  SS_LOG(kWarn, "kernels") << origin << " requested "
                           << DispatchLevelName(level)
                           << " but this CPU supports at most "
                           << DispatchLevelName(best) << "; clamping";
  return best;
}

DispatchLevel InitialLevel() {
  const char* env = std::getenv("SS_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    Result<DispatchLevel> parsed = ParseDispatchLevel(env);
    if (parsed.ok()) return ClampToSupported(parsed.value(), "SS_KERNEL");
    SS_LOG(kWarn, "kernels")
        << "ignoring unrecognized SS_KERNEL value '" << env
        << "' (expected scalar|sse2|avx2); using best supported level";
  }
  return BestSupportedLevel();
}

}  // namespace

const char* DispatchLevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kSse2:
      return "sse2";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Result<DispatchLevel> ParseDispatchLevel(const std::string& name) {
  if (name == "scalar") return DispatchLevel::kScalar;
  if (name == "sse2") return DispatchLevel::kSse2;
  if (name == "avx2") return DispatchLevel::kAvx2;
  return Status::InvalidArgument("unknown kernel dispatch level '" + name +
                                 "' (expected scalar|sse2|avx2)");
}

DispatchLevel BestSupportedLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return DispatchLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return DispatchLevel::kSse2;
#endif
  return DispatchLevel::kScalar;
}

DispatchLevel ActiveDispatchLevel() {
  int level = g_level.load(std::memory_order_acquire);
  if (level < 0) {
    level = static_cast<int>(InitialLevel());
    int expected = -1;
    // First initializer wins; a concurrent SetDispatchLevel also wins.
    if (!g_level.compare_exchange_strong(expected, level,
                                         std::memory_order_acq_rel)) {
      level = expected;
    }
  }
  return static_cast<DispatchLevel>(level);
}

DispatchLevel SetDispatchLevel(DispatchLevel level) {
  const DispatchLevel actual = ClampToSupported(level, "SetDispatchLevel");
  g_level.store(static_cast<int>(actual), std::memory_order_release);
  return actual;
}

const KernelTable& ActiveKernels() { return KernelsFor(ActiveDispatchLevel()); }

const KernelTable& KernelsFor(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return internal::kScalarTable;
    case DispatchLevel::kSse2:
      return internal::kSse2Table;
    case DispatchLevel::kAvx2:
      return internal::kAvx2Table;
  }
  return internal::kScalarTable;
}

}  // namespace ss::stats::kernels
