// Shared between the per-ISA kernel translation units. The scalar
// reference kernels live here so the SSE2/AVX2 TUs can fall back to
// them (for loop remainders, and wholesale when built for a target
// without the instruction set).
#pragma once

#include <cstddef>
#include <cstdint>

#include "stats/kernels/kernels.hpp"

namespace ss::stats::kernels::internal {

// Scalar reference kernels. These define the bitwise contract every
// SIMD variant must reproduce exactly.
void BatchedMacScalar(const double* u, std::size_t n, const double* zblock,
                      std::size_t count, double* out);
void CoxScanScalar(const std::uint8_t* event, const std::uint8_t* genotypes,
                   const double* prefix, const std::uint32_t* prefix_end,
                   std::size_t n, double* out);
void SkatFoldScalar(const double* scores, std::size_t count, double weight_sq,
                    double* acc);
void SkatBurdenFoldScalar(const double* scores, std::size_t count,
                          double weight, double weight_sq, double* skat,
                          double* burden);

// Defined in kernels.cpp / kernels_sse2.cpp / kernels_avx2.cpp. The
// SIMD tables degrade to scalar entries when their TU is compiled for a
// target without the instruction set (non-x86 builds).
extern const KernelTable kScalarTable;
extern const KernelTable kSse2Table;
extern const KernelTable kAvx2Table;

}  // namespace ss::stats::kernels::internal
