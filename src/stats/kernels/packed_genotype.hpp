// 2-bit packed genotype storage, PLINK-.bed style: four dosages per
// byte, so a cached/spilled genotype partition costs ~4x fewer bytes
// under `cache_budget=`. Dosage codes 0..3 are stored directly in two
// bits (our simulated dosages are 0/1/2); a block containing any dosage
// above 3 falls back to raw byte storage so packing is always lossless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ss::stats {

class PackedGenotypeBlock {
 public:
  PackedGenotypeBlock() = default;

  /// Packs a dosage vector. Lossless for any input: dosages that do not
  /// fit in two bits switch the whole block to raw byte storage.
  static PackedGenotypeBlock Pack(const std::vector<std::uint8_t>& dosages);

  /// Reassembles a block from its codec fields (see
  /// `core::Codec<PackedSnpRecord>`). `payload` must be the right size
  /// for (`size`, `packed`); violations surface in the codec's checks.
  static PackedGenotypeBlock FromPayload(std::uint32_t size, bool packed,
                                         std::vector<std::uint8_t> payload);

  /// Number of dosages stored (not bytes).
  std::size_t size() const { return size_; }

  /// False when the raw-byte fallback was taken.
  bool packed() const { return packed_; }

  /// The stored bytes: 2-bit crumbs (ceil(size/4) bytes, unused crumbs
  /// zero) when packed, one byte per dosage otherwise.
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// Decodes back to one dosage per byte (LUT fast path, 4 at a time).
  std::vector<std::uint8_t> Unpack() const;
  void UnpackInto(std::vector<std::uint8_t>* out) const;

  /// Sum of all dosages. On packed blocks this is a popcount reduction
  /// over 64-bit words rather than a decode loop.
  std::uint64_t AlleleCount() const;

  bool operator==(const PackedGenotypeBlock&) const = default;

 private:
  std::uint32_t size_ = 0;
  bool packed_ = true;
  std::vector<std::uint8_t> payload_;
};

/// Packed counterpart of `simdata::SnpRecord`: the storage format for
/// genotype partitions in the cache and spill tier.
struct PackedSnpRecord {
  std::uint32_t snp = 0;
  PackedGenotypeBlock genotypes;

  bool operator==(const PackedSnpRecord&) const = default;
};

}  // namespace ss::stats
