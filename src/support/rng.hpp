// Deterministic, splittable pseudo-random number generation.
//
// Everything random in this project (synthetic data, Monte Carlo weights,
// permutation shuffles, failure injection) flows through `Rng` so that runs
// are reproducible from a single seed even when partitions execute on
// different executor threads. `Rng::Split(stream_id)` derives a statistically
// independent child stream, which is how per-partition and per-replicate
// generators are created: the result of a distributed computation never
// depends on task scheduling order.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace ss {

/// SplitMix64 step; used for seeding and stream derivation. Public because
/// tests and hash-mixing in the engine reuse it.
std::uint64_t SplitMix64(std::uint64_t& state);

/// xoshiro256** generator with an explicit split operation.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniform bits.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Derives an independent child generator identified by `stream_id`.
  /// Children with distinct ids are independent of each other and of the
  /// parent's future output; the parent state is not advanced.
  Rng Split(std::uint64_t stream_id) const;

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextU64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace ss
