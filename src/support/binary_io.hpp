// Byte-oriented serialization used by the mini-DFS block format and the
// engine's shuffle spill format. Little-endian, no alignment requirements.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace ss {

/// Appends primitive values to a growing byte buffer.
class BinaryWriter {
 public:
  void WriteU8(std::uint8_t v) { bytes_.push_back(v); }
  void WriteU32(std::uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(std::int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  void WriteRaw(const void* data, std::size_t size) {
    if (size == 0) return;  // data() of an empty container may be null
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequentially reads values written by BinaryWriter. Out-of-bounds reads
/// trigger SS_CHECK (corrupt blocks indicate a bug or injected data loss
/// that the DFS layer should have caught via checksums).
class BinaryReader {
 public:
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t ReadU8() { std::uint8_t v; ReadRaw(&v, sizeof(v)); return v; }
  std::uint32_t ReadU32() { std::uint32_t v; ReadRaw(&v, sizeof(v)); return v; }
  std::uint64_t ReadU64() { std::uint64_t v; ReadRaw(&v, sizeof(v)); return v; }
  std::int64_t ReadI64() { std::int64_t v; ReadRaw(&v, sizeof(v)); return v; }
  double ReadDouble() { double v; ReadRaw(&v, sizeof(v)); return v; }

  std::string ReadString() {
    const std::uint64_t size = ReadU64();
    SS_CHECK(pos_ + size <= bytes_.size());
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return s;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t count = ReadU64();
    std::vector<T> v(count);
    ReadRaw(v.data(), count * sizeof(T));
    return v;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void ReadRaw(void* out, std::size_t size) {
    SS_CHECK(pos_ + size <= bytes_.size());
    if (size == 0) return;  // `out` may be an empty vector's null data()
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// FNV-1a checksum over a byte span; the DFS stores one per block so that
/// corruption (or a truncated replica) is detected at read time.
std::uint64_t Checksum(const std::vector<std::uint8_t>& bytes);

}  // namespace ss
