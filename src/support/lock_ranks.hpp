// The project lock-rank registry — THE single table every RankedMutex in
// src/ must draw its (name, rank) from. tools/ss_lint.py rule
// `lock-rank-registry` parses exactly this file: each entry must match
//
//   inline constexpr LockRank k<Name>{"<dotted.name>", <rank>};
//
// and duplicate names or ranks are lint errors, as is constructing a
// RankedMutex in src/ from anything but `lock_rank::k<Name>`.
//
// Rank = allowed acquisition order. A thread may only acquire a mutex
// whose rank is STRICTLY GREATER than the rank of every lock it already
// holds; in particular two mutexes of the same rank never nest. The
// runtime analyzer (ranked_mutex.hpp) additionally records the observed
// acquisition graph and aborts on any cycle, so an inversion is caught
// the first time both orders have ever been seen — even on schedules
// where no deadlock manifests. The rationale for each ordering edge is
// documented in docs/STATIC_ANALYSIS.md ("the lock-rank table").
//
// Gaps between ranks are deliberate: new locks slot in without renumber-
// ing. Leaf facilities (telemetry, logging) rank highest because nearly
// every subsystem calls them while holding its own lock.
#pragma once

namespace ss::support {

/// A (name, static rank) pair identifying one lock order class. Multiple
/// RankedMutex instances may share a LockRank (e.g. per-node ready locks)
/// but then must never be held together by one thread.
struct LockRank {
  const char* name;
  int rank;
};

namespace lock_rank {

// -- Outermost: driver-side orchestration ----------------------------------
/// NodeBase::ready_mutex_ — held across a wide node's whole map stage.
inline constexpr LockRank kNodeReady{"engine.node.ready", 10};
/// ThreadPool queue+shutdown state; Submit runs under kNodeReady.
inline constexpr LockRank kThreadPool{"support.thread_pool", 20};
/// Stage task channel (channel-based RunTasks dispatch): the driver
/// pushes partition indices — possibly under kNodeReady for a shuffle
/// map stage — and pool workers pop with no other lock held.
inline constexpr LockRank kExecChannel{"engine.exec.channel", 22};
/// Async-executor stage coordination (completion counts, prefetch pump
/// hand-off); nests inside kExecChannel pops never (pop releases first).
inline constexpr LockRank kExecState{"engine.exec.state", 24};
/// ParallelFor first-error aggregation (taken in a worker catch block).
inline constexpr LockRank kParallelForError{"support.parallel_for_error", 30};
/// Shuffle map-side staging (worker tasks publish their buckets).
inline constexpr LockRank kShufflePerMap{"engine.shuffle.per_map", 32};
/// Shuffle reduce buckets (driver concatenation, reduce-task reads).
inline constexpr LockRank kShuffleBuckets{"engine.shuffle.buckets", 34};
/// SaveAsTextFile first-error aggregation.
inline constexpr LockRank kSaveStatus{"engine.save_status", 36};

// -- Cluster services ------------------------------------------------------
inline constexpr LockRank kResourceManager{"cluster.resource_manager", 40};
/// Holds its lock only over arming/polling; callbacks fire unlocked.
inline constexpr LockRank kFaultInjector{"cluster.fault_injector", 42};

// -- Storage: cache above spill above the block store ----------------------
/// CacheManager — calls the spill tier, tracer, and log while locked.
inline constexpr LockRank kCache{"engine.cache", 50};
/// SpillTier — calls its backing BlockStore and the log while locked.
inline constexpr LockRank kSpill{"engine.spill", 52};
/// The I/O lane's bounded job queue (engine/executor.hpp). Ranked above
/// kCache/kSpill defensively: producers enqueue spill-write jobs only
/// AFTER releasing the cache lock (blocking on the bound while holding
/// kCache could deadlock against a completion that needs it), but a
/// future push-under-cache-lock must still be rank-legal.
inline constexpr LockRank kExecQueue{"engine.exec.queue", 54};
inline constexpr LockRank kNameNode{"dfs.namenode", 60};
/// One per simulated DataNode and one backing each SpillTier.
inline constexpr LockRank kBlockStore{"dfs.block_store", 62};

// -- Driver-side bookkeeping ----------------------------------------------
inline constexpr LockRank kMetrics{"engine.metrics", 70};
inline constexpr LockRank kAccumulator{"engine.accumulator", 72};

// -- Leaves: telemetry and logging (called from under most other locks) ----
/// Tracer thread-log registry; nests directly into kTraceThreadLog.
inline constexpr LockRank kTraceRegistry{"engine.trace.registry", 80};
/// One per traced thread.
inline constexpr LockRank kTraceThreadLog{"engine.trace.thread_log", 82};
inline constexpr LockRank kCounters{"engine.counters", 84};
/// stderr log line serialization — the outermost leaf; everything may
/// log while locked, the logger calls nothing.
inline constexpr LockRank kLog{"support.log", 90};

}  // namespace lock_rank
}  // namespace ss::support
