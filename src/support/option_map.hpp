// Shared `key=value` command-line option parsing for the CLI and the
// benches (previously each had its own copy), plus the single registry
// of every key those tools accept.
//
// Tokens containing '=' become options; everything else is collected as a
// positional token for the caller. Typed getters return a fallback on a
// missing key; a present-but-malformed value also falls back, but is
// remembered and reported by WarnUnknownKeys. Every getter registers its
// key as known, so after a tool has read its configuration,
// WarnUnknownKeys can diagnose unrecognized keys (usually typos like
// `snsp=100`, which key=value interfaces otherwise ignore silently).
//
// The key REGISTRY (OptionKeyRegistry) defines each key exactly once —
// name, type, default, one-line help, group, enumerated choices — so a
// knob added there lands in every tool at once: `--help` output is
// generated from it (FormatKeyHelp), DeclareKeys seeds the unknown-key
// suggestion vocabulary from it, and choice-restricted values are
// validated against it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ss::support {

/// Value shape of a registered option key (drives help text + validation).
enum class OptionType { kU64, kDouble, kBool, kString, kChoice };

/// One entry in the shared key registry.
struct OptionKeyDef {
  const char* name;
  OptionType type;
  const char* default_value;  ///< As shown in help; "" = no default.
  const char* help;           ///< One-line description.
  const char* group;  ///< "workload" | "engine" | "exec" | "analysis" |
                      ///< "observability" | "bench".
  std::vector<const char*> choices;  ///< For kChoice; empty otherwise.
};

/// The registry: every `key=value` knob the CLI and benches accept,
/// defined exactly once. Append-only within a group; tools select the
/// groups they honor.
const std::vector<OptionKeyDef>& OptionKeyRegistry();

/// Registry lookup by key name; nullptr when the key is not registered.
const OptionKeyDef* FindOptionKey(const std::string& name);

/// Generated help text: one aligned `key=<shape>  help (default: X)` line
/// per registry key whose group is in `groups` (all groups when empty).
std::string FormatKeyHelp(const std::vector<std::string>& groups = {});

class OptionMap {
 public:
  OptionMap() = default;

  /// Parses argv[begin..argc). Tolerates (0, nullptr).
  OptionMap(int argc, char** argv, int begin = 1);

  bool Has(const std::string& key) const;

  /// Typed getters; `fallback` on a missing or malformed value. Negative
  /// numbers are malformed for GetU64. GetBool accepts 0/1.
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetStr(const std::string& key, const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Inserts or overwrites an option (programmatic defaults, sub-runs).
  void Set(const std::string& key, const std::string& value);

  /// Tokens without '=' in argv order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Registers every registry key belonging to `groups` (all groups when
  /// empty) as part of this tool's vocabulary, so unknown-key suggestions
  /// come from the full registry rather than only the keys a particular
  /// code path happened to read.
  void DeclareKeys(const std::vector<std::string>& groups = {}) const;

  /// Keys present on the command line that no getter (or Has) has looked
  /// up. Meaningful only after the caller finished reading its options.
  std::vector<std::string> UnknownKeys() const;

  /// Prints one stderr diagnostic per unknown key (with a nearest-known
  /// suggestion when one is close), per malformed value, and per value
  /// outside a registered key's enumerated choices; returns the number of
  /// diagnostics. Call after all getters ran.
  std::size_t WarnUnknownKeys(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Keys the program looked up — its supported vocabulary. Mutable so
  /// const getters can register; diagnostics-only state.
  mutable std::set<std::string> known_;
  /// key -> problem description for values that failed a typed parse.
  mutable std::map<std::string, std::string> malformed_;
};

}  // namespace ss::support
