// Shared `key=value` command-line option parsing for the CLI and the
// benches (previously each had its own copy).
//
// Tokens containing '=' become options; everything else is collected as a
// positional token for the caller. Typed getters return a fallback on a
// missing key; a present-but-malformed value also falls back, but is
// remembered and reported by WarnUnknownKeys. Every getter registers its
// key as known, so after a tool has read its configuration,
// WarnUnknownKeys can diagnose unrecognized keys (usually typos like
// `snsp=100`, which key=value interfaces otherwise ignore silently).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ss::support {

class OptionMap {
 public:
  OptionMap() = default;

  /// Parses argv[begin..argc). Tolerates (0, nullptr).
  OptionMap(int argc, char** argv, int begin = 1);

  bool Has(const std::string& key) const;

  /// Typed getters; `fallback` on a missing or malformed value. Negative
  /// numbers are malformed for GetU64. GetBool accepts 0/1.
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetStr(const std::string& key, const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Inserts or overwrites an option (programmatic defaults, sub-runs).
  void Set(const std::string& key, const std::string& value);

  /// Tokens without '=' in argv order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys present on the command line that no getter (or Has) has looked
  /// up. Meaningful only after the caller finished reading its options.
  std::vector<std::string> UnknownKeys() const;

  /// Prints one stderr diagnostic per unknown key (with a nearest-known
  /// suggestion when one is close) and per malformed value; returns the
  /// number of diagnostics. Call after all getters ran.
  std::size_t WarnUnknownKeys(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Keys the program looked up — its supported vocabulary. Mutable so
  /// const getters can register; diagnostics-only state.
  mutable std::set<std::string> known_;
  /// key -> problem description for values that failed a typed parse.
  mutable std::map<std::string, std::string> malformed_;
};

}  // namespace ss::support
