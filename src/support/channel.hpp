// Bounded multi-producer channel — the task/IO hand-off primitive behind
// the async executor (engine/executor.hpp) and channel-based stage
// dispatch (EngineContext::RunTasks).
//
// Semantics follow the classic Go/oneflow channel shape:
//   * Push blocks while the channel is at capacity (backpressure) and
//     returns false once the channel is closed — a producer can never
//     enqueue work nobody will drain.
//   * Pop blocks while the channel is empty and returns nullopt only
//     after Close() AND the queue has fully drained, so consumers exit
//     exactly once the producers are done.
//   * Close() is idempotent and wakes every waiter.
//
// The lock order rank is injected by the owner (each use site has its own
// registry entry in lock_ranks.hpp — e.g. kExecChannel for stage task
// channels, kExecQueue for the I/O lane's job queue) because a channel's
// place in the acquisition order depends on who pushes while holding
// what. Waits go through support::UniqueLock + condition_variable_any so
// the lock-order analyzer tracks the unlock/relock of every wait.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::support {

template <typename T>
class Channel {
 public:
  /// `capacity` bounds the queue (Push blocks at the bound); 0 means
  /// unbounded (Push never blocks).
  explicit Channel(LockRank rank, std::size_t capacity = 0)
      : capacity_(capacity), mutex_(rank) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while full; returns false (dropping `value`) if the channel
  /// is or becomes closed before space frees up.
  bool Push(T value) {
    {
      UniqueLock lock(mutex_);
      while (!closed_ && capacity_ != 0 && queue_.size() >= capacity_) {
        ++backpressure_waits_;
        not_full_.wait(lock, [this]() SS_REQUIRES(mutex_) {
          return closed_ || capacity_ == 0 || queue_.size() < capacity_;
        });
      }
      if (closed_) return false;
      queue_.push_back(std::move(value));
      ++pushes_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push; false when full or closed.
  bool TryPush(T value) {
    {
      UniqueLock lock(mutex_);
      if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) {
        return false;
      }
      queue_.push_back(std::move(value));
      ++pushes_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; nullopt once the channel is closed and drained.
  std::optional<T> Pop() {
    std::optional<T> value;
    {
      UniqueLock lock(mutex_);
      not_empty_.wait(lock, [this]() SS_REQUIRES(mutex_) {
        return closed_ || !queue_.empty();
      });
      if (queue_.empty()) return std::nullopt;  // closed and drained
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Idempotent; wakes all blocked producers (they return false) and
  /// consumers (they drain the residue, then get nullopt).
  void Close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return queue_.size();
  }

  /// Times a Push blocked on a full channel (the backpressure the spill
  /// queue's bound exists to create; mirrored into exec.* counters by the
  /// executor).
  std::uint64_t backpressure_waits() const {
    MutexLock lock(mutex_);
    return backpressure_waits_;
  }

  std::uint64_t pushes() const {
    MutexLock lock(mutex_);
    return pushes_;
  }

 private:
  const std::size_t capacity_;
  mutable RankedMutex mutex_;
  // condition_variable_any so waits go through the annotated UniqueLock
  // (and the lock-order analyzer's held stack), as in ThreadPool.
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> queue_ SS_GUARDED_BY(mutex_);
  bool closed_ SS_GUARDED_BY(mutex_) = false;
  std::uint64_t backpressure_waits_ SS_GUARDED_BY(mutex_) = 0;
  std::uint64_t pushes_ SS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ss::support
