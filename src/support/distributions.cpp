#include "support/distributions.hpp"

#include <cmath>

#include "support/status.hpp"

namespace ss {

double SampleExponential(Rng& rng, double rate) {
  SS_CHECK(rate > 0.0);
  // Inversion: -log(1 - U) / rate; 1 - U avoids log(0) since U ∈ [0,1).
  return -std::log1p(-rng.NextDouble()) / rate;
}

bool SampleBernoulli(Rng& rng, double p) { return rng.NextDouble() < p; }

int SampleBinomial(Rng& rng, int n, double p) {
  SS_CHECK(n >= 0);
  int successes = 0;
  for (int i = 0; i < n; ++i) successes += SampleBernoulli(rng, p) ? 1 : 0;
  return successes;
}

double SampleNormal(Rng& rng) {
  // Marsaglia polar method; the spare variate is intentionally discarded to
  // keep the sampler stateless w.r.t. the Rng (simpler reproducibility
  // reasoning when streams are split per replicate).
  for (;;) {
    const double u = 2.0 * rng.NextDouble() - 1.0;
    const double v = 2.0 * rng.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::vector<double> SampleNormalVector(Rng& rng, std::size_t k) {
  std::vector<double> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(SampleNormal(rng));
  return out;
}

std::vector<std::uint32_t> SamplePermutation(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  ShuffleInPlace(rng, perm);
  return perm;
}

}  // namespace ss
