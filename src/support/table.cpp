#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/status.hpp"

namespace ss {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  SS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto row_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  out << rule() << row_line(headers_) << rule();
  for (const auto& row : rows_) out << row_line(row);
  out << rule();
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace ss
