#include "support/string_util.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace ss {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool ParseI64(std::string_view text, std::int64_t* out) {
  text = Trim(text);
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseU32(std::string_view text, std::uint32_t* out) {
  text = Trim(text);
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  // std::from_chars<double> is available in libstdc++ 11+, but go through
  // strtod for locale-independent permissiveness on exponent formats.
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(owned.c_str(), &end);
  return errno == 0 && end == owned.c_str() + owned.size();
}

}  // namespace ss
