// Fixed-size worker pool used as the physical execution substrate for the
// simulated cluster's executor slots.
//
// Design notes (see CppCoreGuidelines CP.*): tasks are type-erased
// move-only callables; shutdown joins all workers (RAII — the destructor
// never leaks a thread); `ParallelFor` provides the common blocked loop.
//
// Lifetime contract: once the destructor has started, the pool is dead.
// Calling `Submit` (or `ParallelFor`) after destruction-start is a
// programming error — the task could never run and its future would never
// become ready — and is enforced by SS_DCHECK in Debug/sanitizer builds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks are abandoned (their futures report
  /// broken_promise), running tasks complete, then workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Index of the pool worker executing the caller, or -1 when the caller
  /// is not a pool thread (e.g. the driver). Stable for a thread's life.
  static int CurrentWorkerIndex();

  /// Total nanoseconds workers have spent inside tasks since construction
  /// (monotonic; saturation = busy_nanos / (elapsed * size)).
  std::uint64_t busy_nanos() const {
    return busy_nanos_.load(std::memory_order_relaxed);
  }

  /// High-watermark of the pending-task queue depth since the last
  /// ResetQueuePeak (or construction).
  std::uint64_t queue_peak() const {
    return queue_peak_.load(std::memory_order_relaxed);
  }
  void ResetQueuePeak() { queue_peak_.store(0, std::memory_order_relaxed); }

  /// Enqueues `fn`; returns a future for its completion/exception.
  /// Must not be called once the destructor has started (see above).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      support::MutexLock lock(mutex_);
      SS_DCHECK(!shutdown_ && "ThreadPool::Submit after shutdown started");
      queue_.emplace_back([task]() { (*task)(); });
      const auto depth = static_cast<std::uint64_t>(queue_.size());
      if (depth > queue_peak_.load(std::memory_order_relaxed)) {
        queue_peak_.store(depth, std::memory_order_relaxed);
      }
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are claimed from a shared atomic cursor
  /// by one task per worker; an iteration that throws does not stop the
  /// others (every index still runs) and the first exception — in claim
  /// order, aggregated under a mutex — is rethrown on the calling thread.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  support::RankedMutex mutex_{support::lock_rank::kThreadPool};
  // condition_variable_any so the wait's unlock/relock goes through the
  // annotated UniqueLock (and thus the lock-order analyzer's held stack).
  std::condition_variable_any cv_;
  std::deque<std::function<void()>> queue_ SS_GUARDED_BY(mutex_);
  bool shutdown_ SS_GUARDED_BY(mutex_) = false;
  std::atomic<std::uint64_t> busy_nanos_{0};
  std::atomic<std::uint64_t> queue_peak_{0};
};

}  // namespace ss
