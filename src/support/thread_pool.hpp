// Fixed-size worker pool used as the physical execution substrate for the
// simulated cluster's executor slots.
//
// Design notes (see CppCoreGuidelines CP.*): tasks are type-erased
// move-only callables; shutdown joins all workers (RAII — the destructor
// never leaks a thread); `ParallelFor` provides the common blocked loop.
//
// Lifetime contract: once the destructor has started, the pool is dead.
// Calling `Submit` (or `ParallelFor`) after destruction-start is a
// programming error — the task could never run and its future would never
// become ready — and is enforced by SS_DCHECK in Debug/sanitizer builds.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace ss {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks are abandoned (their futures report
  /// broken_promise), running tasks complete, then workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn`; returns a future for its completion/exception.
  /// Must not be called once the destructor has started (see above).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      SS_DCHECK(!shutdown_ && "ThreadPool::Submit after shutdown started");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are claimed from a shared atomic cursor
  /// by one task per worker; an iteration that throws does not stop the
  /// others (every index still runs) and the first exception — in claim
  /// order, aggregated under a mutex — is rethrown on the calling thread.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ SS_GUARDED_BY(mutex_);
  bool shutdown_ SS_GUARDED_BY(mutex_) = false;
};

}  // namespace ss
