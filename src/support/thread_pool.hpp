// Fixed-size worker pool used as the physical execution substrate for the
// simulated cluster's executor slots.
//
// Design notes (see CppCoreGuidelines CP.*): tasks are type-erased
// move-only callables; shutdown joins all workers (RAII — the destructor
// never leaks a thread); `ParallelFor` provides the common blocked loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ss {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks are abandoned, running tasks complete,
  /// then workers are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn`; returns a future for its completion/exception.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Exceptions from any iteration are rethrown (first
  /// one wins).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace ss
