// Wall-clock stopwatch for bench timing and per-task metrics.
#pragma once

#include <chrono>

namespace ss {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds (used for task cost accounting).
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ss
