// Minimal thread-safe leveled logger.
//
// The engine and cluster simulator emit scheduling/recovery events at
// kDebug; benches run with kWarn so timing loops are not polluted by I/O.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace ss {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are discarded.
/// The initial level is kWarn, unless the SS_LOG_LEVEL environment
/// variable names another level (debug|info|warn|error).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive);
/// nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

namespace internal {

/// Emits a single formatted line ("[LEVEL component] message") to stderr
/// under a global mutex so concurrent executor threads do not interleave.
void LogLine(LogLevel level, const std::string& component,
             const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogMessage() { LogLine(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SS_LOG(level, component)                                      \
  if (static_cast<int>(::ss::LogLevel::level) <                       \
      static_cast<int>(::ss::GetLogLevel())) {                        \
  } else                                                              \
    ::ss::internal::LogMessage(::ss::LogLevel::level, component)

}  // namespace ss
