// RankedMutex: a std::mutex wrapper carrying a name and a static rank
// (src/support/lock_ranks.hpp) that — in Debug and sanitizer builds —
// feeds a process-global lock-order analyzer in the style of absl::Mutex's
// deadlock graph:
//
//   * every thread keeps a stack of the RankedMutexes it currently holds;
//   * every acquisition while holding other locks records held→acquired
//     edges (keyed by rank) in a process-global acquisition graph, along
//     with the full acquisition chain that first created each edge;
//   * before blocking, the acquisition runs a DFS over that graph: if the
//     rank being acquired can already reach a held rank, the two orders
//     form a cycle — a potential ABBA deadlock — and the process aborts,
//     printing BOTH acquisition chains (the current one and the recorded
//     chain of every edge on the conflicting path). This fires the first
//     time both orders have ever been observed, even on schedules where
//     no deadlock manifests.
//
// Release builds (no SPARKSCORE_DCHECKS) compile all of this out:
// lock()/unlock() inline straight to the underlying std::mutex, proven
// bitwise-identical on results by the deadlock_smoke ctest
// (resampling.result_hash with the analyzer on vs. forced off). In
// instrumented builds the env var SS_LOCK_CHECK=0 force-disables the
// analyzer at runtime — the hook deadlock_smoke uses for that identity
// comparison.
//
// The scoped guards below (MutexLock, UniqueLock) are the only way
// project code should hold a RankedMutex: they carry the
// SS_SCOPED_CAPABILITY annotations Clang's -Wthread-safety analysis
// needs (std::lock_guard is not annotated under libstdc++). UniqueLock
// additionally satisfies BasicLockable so it can sit under a
// std::condition_variable_any wait.
#pragma once

#include <cstdint>
#include <mutex>

#include "support/check.hpp"
#include "support/lock_ranks.hpp"

/// The runtime lock-order analyzer rides the same switch as SS_DCHECK:
/// on in Debug and sanitizer builds, compiled out elsewhere.
#if defined(SPARKSCORE_DCHECKS)
#define SS_LOCK_ORDER_CHECKS 1
#endif

namespace ss::support {

namespace lock_order {

/// Snapshot of the process-global acquisition graph.
struct Stats {
  std::uint64_t acquisitions = 0;  ///< Tracked lock() calls so far.
  int graph_nodes = 0;             ///< Distinct ranks ever held.
  int graph_edges = 0;             ///< Distinct held→acquired rank pairs.
  /// Acquisitions outside the declared rank order (non-increasing rank)
  /// that did not (yet) complete a cycle. Warned once per rank pair;
  /// deadlock_smoke asserts zero on clean runs.
  std::uint64_t rank_violations = 0;
  bool acyclic = true;             ///< Full-graph cycle check result.
};

/// True when the analyzer is compiled into this binary.
constexpr bool CompiledIn() {
#if defined(SS_LOCK_ORDER_CHECKS)
  return true;
#else
  return false;
#endif
}

/// True when the analyzer is compiled in AND not disabled via
/// SS_LOCK_CHECK=0 in the environment (checked once, at first use).
bool RuntimeEnabled();

/// Current snapshot (all zero / acyclic when the analyzer is off).
Stats GetStats();

/// Number of RankedMutexes the calling thread holds right now. Always 0
/// when the analyzer is off. Tests assert this returns to zero at pool
/// shutdown.
int HeldByThisThread();

/// Test-only: forgets the acquisition graph and counters (NOT the
/// per-thread held stacks — callers must not hold any RankedMutex).
/// Keeps death tests and unit tests from seeing each other's edges.
void ResetForTest();

}  // namespace lock_order

class SS_CAPABILITY("mutex") RankedMutex {
 public:
  explicit RankedMutex(LockRank rank) noexcept : rank_(rank) {}

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  const char* name() const { return rank_.name; }
  int rank() const { return rank_.rank; }

#if defined(SS_LOCK_ORDER_CHECKS)
  void lock() SS_ACQUIRE();
  void unlock() SS_RELEASE();
  bool try_lock() SS_TRY_ACQUIRE(true);
#else
  void lock() SS_ACQUIRE() { mutex_.lock(); }
  void unlock() SS_RELEASE() { mutex_.unlock(); }
  bool try_lock() SS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }
#endif

 private:
  std::mutex mutex_;
  const LockRank rank_;
};

/// std::lock_guard over a RankedMutex, annotated so Clang's analysis
/// tracks the capability through the scope.
class SS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(RankedMutex& mutex) SS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() SS_RELEASE() { mutex_.unlock(); }

 private:
  RankedMutex& mutex_;
};

/// Scoped lock that also satisfies BasicLockable, for use with
/// std::condition_variable_any: the wait's internal unlock/relock goes
/// through RankedMutex, so the analyzer's held stack stays exact across
/// blocking waits. Like MutexLock it is held for its whole scope — the
/// lock()/unlock() surface exists for the condition variable, not for
/// manual toggling (Clang flags double-acquire/release through it).
class SS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(RankedMutex& mutex) SS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  ~UniqueLock() SS_RELEASE() { mutex_.unlock(); }

  void lock() SS_ACQUIRE() { mutex_.lock(); }
  void unlock() SS_RELEASE() { mutex_.unlock(); }

 private:
  RankedMutex& mutex_;
};

}  // namespace ss::support
