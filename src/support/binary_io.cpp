#include "support/binary_io.hpp"

namespace ss {

std::uint64_t Checksum(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace ss
