// Sampling routines for the distributions used by the paper's synthetic
// data generator (Section III) and by the resampling algorithms:
//
//   * Exponential(rate)      — patient survival times (mean 12 months) and
//                              SNP-set sizes (mean m/K).
//   * Bernoulli(p)           — event/censoring indicators (p = 0.85).
//   * Binomial(n, p)         — genotypes G_ij ~ Binomial(2, rho_j).
//   * Normal(0, 1)           — Lin's Monte Carlo multipliers Z_i.
//
// All samplers are free functions taking an `Rng&` so callers control
// stream placement (one child stream per partition / replicate).
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace ss {

/// Exponential with the given rate (mean = 1/rate). Inversion method.
double SampleExponential(Rng& rng, double rate);

/// Bernoulli(p): true with probability p.
bool SampleBernoulli(Rng& rng, double p);

/// Binomial(n, p) by direct summation of Bernoulli draws. The generator's
/// only binomial use is n = 2 (diploid genotypes), where this is optimal.
int SampleBinomial(Rng& rng, int n, double p);

/// Standard normal via the Marsaglia polar method (exact, no table setup).
double SampleNormal(Rng& rng);

/// Convenience: vector of k standard-normal draws (Monte Carlo weights).
std::vector<double> SampleNormalVector(Rng& rng, std::size_t k);

/// Fisher–Yates shuffle of indices 0..n-1; returns the permutation.
/// Used to build permutation-resampling plans for phenotype pairs.
std::vector<std::uint32_t> SamplePermutation(Rng& rng, std::size_t n);

/// In-place Fisher–Yates shuffle.
template <typename T>
void ShuffleInPlace(Rng& rng, std::vector<T>& items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace ss
