// Debug assertions and thread-safety annotations.
//
// SS_CHECK (status.hpp) stays on in every build and guards control-path
// invariants. SS_DCHECK is its debug sibling for hot paths and for
// contracts whose violation is a programming error rather than bad
// input: it compiles to nothing unless SPARKSCORE_DCHECKS is defined,
// which the build system turns on for Debug and all sanitizer
// configurations (see the root CMakeLists.txt) — so the sanitizer
// matrix exercises every contract while release binaries pay zero cost.
//
// The SS_GUARDED_BY / SS_REQUIRES / SS_EXCLUDES / SS_ACQUIRE /
// SS_RELEASE macros expand to Clang's thread-safety-analysis attributes
// when the compiler supports them and to nothing otherwise (GCC). They
// are applied to the engine's hot shared structures so a
// `clang -Wthread-safety` pass — and human readers — can see which
// mutex protects which field. SS_ASSERT_HELD(m) documents (and, under
// Clang's analysis, asserts) that `m` is held on entry to a *Locked
// helper.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SS_THREAD_ANNOTATION
#define SS_THREAD_ANNOTATION(x)
#endif

/// Member annotation: the field may only be read or written with `x` held.
#define SS_GUARDED_BY(x) SS_THREAD_ANNOTATION(guarded_by(x))
/// Function annotation: the caller must hold `x`.
#define SS_REQUIRES(x) SS_THREAD_ANNOTATION(requires_capability(x))
/// Function annotation: the caller must NOT hold `x` (the function locks it).
#define SS_EXCLUDES(x) SS_THREAD_ANNOTATION(locks_excluded(x))
/// Function annotation: the function acquires/releases `x`.
#define SS_ACQUIRE(x) SS_THREAD_ANNOTATION(acquire_capability(x))
#define SS_RELEASE(x) SS_THREAD_ANNOTATION(release_capability(x))

namespace ss::internal {
// Defined in status.cpp; prints and aborts.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

#if defined(__clang__)
template <typename Mutex>
inline void AssertHeldMarker(Mutex& m) __attribute__((assert_capability(m))) {
  (void)m;
}
#else
template <typename Mutex>
inline void AssertHeldMarker(Mutex& m) {
  (void)m;
}
#endif
}  // namespace ss::internal

/// Debug-only invariant check. Active when SPARKSCORE_DCHECKS is defined
/// (Debug and sanitizer builds); otherwise the condition is not evaluated
/// but still type-checked, so DCHECK-only expressions cannot rot.
#if defined(SPARKSCORE_DCHECKS)
#define SS_DCHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ss::internal::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                          \
  } while (0)
#else
#define SS_DCHECK(expr)                                 \
  do {                                                  \
    if (false && static_cast<bool>(expr)) {             \
      ::ss::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                   \
  } while (0)
#endif

/// States that `mutex` is held by the calling thread. Convention marker
/// for *Locked helpers; checked by Clang's thread-safety analysis.
#define SS_ASSERT_HELD(mutex) ::ss::internal::AssertHeldMarker(mutex)
