// Debug assertions and thread-safety annotations.
//
// SS_CHECK (status.hpp) stays on in every build and guards control-path
// invariants. SS_DCHECK is its debug sibling for hot paths and for
// contracts whose violation is a programming error rather than bad
// input: it compiles to nothing unless SPARKSCORE_DCHECKS is defined,
// which the build system turns on for Debug and all sanitizer
// configurations (see the root CMakeLists.txt) — so the sanitizer
// matrix exercises every contract while release binaries pay zero cost.
//
// The SS_GUARDED_BY / SS_REQUIRES / SS_EXCLUDES / SS_ACQUIRE /
// SS_RELEASE / SS_CAPABILITY / SS_SCOPED_CAPABILITY /
// SS_ACQUIRED_BEFORE / SS_ACQUIRED_AFTER macros expand to Clang's
// thread-safety-analysis attributes when the compiler supports them and
// to nothing otherwise (GCC). They are applied to every shared mutable
// structure in src/ so a `clang -Wthread-safety -Wthread-safety-beta`
// pass — promoted to errors in Clang builds, see the root
// CMakeLists.txt — and human readers can see which mutex protects which
// field. SS_ASSERT_HELD(m) documents (and, under Clang's analysis,
// asserts) that `m` is held on entry to a *Locked helper. The policy for
// choosing between the annotations lives in docs/STATIC_ANALYSIS.md.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SS_THREAD_ANNOTATION
#define SS_THREAD_ANNOTATION(x)
#endif

/// Member annotation: the field may only be read or written with `x` held.
#define SS_GUARDED_BY(x) SS_THREAD_ANNOTATION(guarded_by(x))
/// Member annotation: the pointee (not the pointer) is protected by `x`.
#define SS_PT_GUARDED_BY(x) SS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function annotation: the caller must hold the named capabilities.
#define SS_REQUIRES(...) SS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function annotation: the caller must NOT hold them (the function locks).
#define SS_EXCLUDES(...) SS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function annotation: the function acquires/releases the capability.
/// With no argument the capability is `this` (for lockable types).
#define SS_ACQUIRE(...) SS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SS_RELEASE(...) SS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function annotation: acquires the capability iff the return value is
/// `result` (use on try_lock-shaped functions).
#define SS_TRY_ACQUIRE(...) \
  SS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Type annotation: the class is a capability (a mutex-like type whose
/// acquisition Clang's analysis tracks). `x` names the capability kind in
/// diagnostics, conventionally "mutex".
#define SS_CAPABILITY(x) SS_THREAD_ANNOTATION(capability(x))
/// Type annotation: RAII guard whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped types).
#define SS_SCOPED_CAPABILITY SS_THREAD_ANNOTATION(scoped_lockable)
/// Member annotations declaring the project lock order (see the rank
/// table in src/support/lock_ranks.hpp): this mutex must be acquired
/// before/after the named ones. Checked by -Wthread-safety-beta; the
/// runtime RankedMutex analyzer enforces the same order dynamically.
#define SS_ACQUIRED_BEFORE(...) \
  SS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SS_ACQUIRED_AFTER(...) \
  SS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function annotation: opt this function out of the analysis (use only
/// with a comment explaining why; see docs/STATIC_ANALYSIS.md waivers).
#define SS_NO_THREAD_SAFETY_ANALYSIS \
  SS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ss::internal {
// Defined in status.cpp; prints and aborts.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

#if defined(__clang__)
template <typename Mutex>
inline void AssertHeldMarker(Mutex& m) __attribute__((assert_capability(m))) {
  (void)m;
}
#else
template <typename Mutex>
inline void AssertHeldMarker(Mutex& m) {
  (void)m;
}
#endif
}  // namespace ss::internal

/// Debug-only invariant check. Active when SPARKSCORE_DCHECKS is defined
/// (Debug and sanitizer builds); otherwise the condition is not evaluated
/// but still type-checked, so DCHECK-only expressions cannot rot.
#if defined(SPARKSCORE_DCHECKS)
#define SS_DCHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::ss::internal::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                          \
  } while (0)
#else
#define SS_DCHECK(expr)                                 \
  do {                                                  \
    if (false && static_cast<bool>(expr)) {             \
      ::ss::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                   \
  } while (0)
#endif

/// States that `mutex` is held by the calling thread. Convention marker
/// for *Locked helpers; checked by Clang's thread-safety analysis.
#define SS_ASSERT_HELD(mutex) ::ss::internal::AssertHeldMarker(mutex)
