#include "support/ranked_mutex.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace ss::support {
namespace lock_order {
namespace {

#if defined(SS_LOCK_ORDER_CHECKS)

/// 0 = off (SS_LOCK_CHECK=0), 1 = cycle detection (default), 2 = strict
/// (SS_LOCK_CHECK=strict: any non-increasing rank acquisition aborts,
/// not just completed cycles). Parsed once, at the first tracked lock.
int Mode() {
  static const int mode = [] {
    const char* env = std::getenv("SS_LOCK_CHECK");
    if (env == nullptr) return 1;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) return 0;
    if (std::strcmp(env, "strict") == 0) return 2;
    return 1;
  }();
  return mode;
}

/// One observed held→acquired ordering, with the full acquisition chain
/// of the thread that first created it — the evidence printed when the
/// opposite order later completes a cycle.
struct EdgeInfo {
  std::string first_chain;
  bool rank_violation = false;  ///< to-rank <= from-rank when recorded.
};

struct Graph {
  std::mutex mu;
  /// from-rank -> (to-rank -> first observed chain).
  std::map<int, std::map<int, EdgeInfo>> edges;
  /// Every rank ever acquired, with a representative name.
  std::map<int, const char*> nodes;
  std::atomic<std::uint64_t> acquisitions{0};
  std::atomic<std::uint64_t> rank_violations{0};
};

// Leaked singleton: the graph must outlive every static whose destructor
// might still take a RankedMutex during teardown.
Graph& G() {
  static Graph* graph = new Graph();
  return *graph;
}

// The per-thread held stack is trivially destructible on purpose: locks
// taken from static or thread-exit destructors (e.g. the log mutex) can
// still push/pop safely after C++ TLS destructors have run.
constexpr int kMaxHeld = 64;
thread_local const RankedMutex* t_held[kMaxHeld];
thread_local int t_held_count = 0;

std::string Describe(const RankedMutex& mutex) {
  return std::string("\"") + mutex.name() + "\"(" +
         std::to_string(mutex.rank()) + ")";
}

std::string DescribeRank(const Graph& graph, int rank) {
  auto it = graph.nodes.find(rank);
  const char* name = it == graph.nodes.end() ? "?" : it->second;
  return std::string("\"") + name + "\"(" + std::to_string(rank) + ")";
}

/// The calling thread's full acquisition chain, ending in `acquiring`.
std::string CurrentChain(const RankedMutex& acquiring) {
  std::string chain;
  for (int i = 0; i < t_held_count; ++i) {
    chain += Describe(*t_held[i]);
    chain += " -> ";
  }
  chain += Describe(acquiring);
  return chain;
}

/// DFS path from `from` to `to` through recorded edges (empty if
/// unreachable). `from == to` only matches via an actual self-edge.
/// Call with graph.mu held.
std::vector<int> FindPath(const Graph& graph, int from, int to) {
  std::vector<int> stack{from};
  std::map<int, int> parent;  // child -> predecessor on the DFS tree
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    auto edges_it = graph.edges.find(node);
    if (edges_it == graph.edges.end()) continue;
    for (const auto& [next, info] : edges_it->second) {
      if (parent.contains(next)) continue;
      parent[next] = node;
      if (next == to) {
        std::vector<int> path{to};
        for (int hop = to; hop != from || path.size() == 1;) {
          hop = parent.at(hop);
          path.push_back(hop);
          if (hop == from) break;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      stack.push_back(next);
    }
  }
  return {};
}

[[noreturn]] void AbortWithCycle(const Graph& graph,
                                 const RankedMutex& acquiring,
                                 const RankedMutex& held,
                                 const std::vector<int>& path) {
  std::fprintf(stderr,
               "[FATAL ranked_mutex] potential deadlock: lock-order cycle "
               "detected acquiring %s while holding %s\n",
               Describe(acquiring).c_str(), Describe(held).c_str());
  std::fprintf(stderr, "  current acquisition chain: %s\n",
               CurrentChain(acquiring).c_str());
  std::fprintf(stderr,
               "  previously recorded chain(s) completing the cycle:\n");
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const EdgeInfo& info = graph.edges.at(path[i]).at(path[i + 1]);
    std::fprintf(stderr, "    %s -> %s   [first observed as: %s]\n",
                 DescribeRank(graph, path[i]).c_str(),
                 DescribeRank(graph, path[i + 1]).c_str(),
                 info.first_chain.c_str());
  }
  std::fprintf(stderr,
               "  see src/support/lock_ranks.hpp for the project lock "
               "order and docs/STATIC_ANALYSIS.md for the policy\n");
  std::abort();
}

[[noreturn]] void AbortRecursive(const RankedMutex& mutex) {
  std::fprintf(stderr,
               "[FATAL ranked_mutex] guaranteed deadlock: recursive "
               "acquisition of %s\n  current acquisition chain: %s\n",
               Describe(mutex).c_str(), CurrentChain(mutex).c_str());
  std::abort();
}

[[noreturn]] void AbortRankOrder(const RankedMutex& acquiring,
                                 const RankedMutex& held) {
  std::fprintf(stderr,
               "[FATAL ranked_mutex] potential deadlock (strict mode): "
               "acquiring %s while holding %s violates the declared rank "
               "order\n  current acquisition chain: %s\n",
               Describe(acquiring).c_str(), Describe(held).c_str(),
               CurrentChain(acquiring).c_str());
  std::abort();
}

/// Records the acquisition into the graph, aborting on a cycle. Runs
/// BEFORE blocking on the underlying mutex so an inversion is reported
/// even when the schedule would deadlock rather than return.
void CheckAndRecord(const RankedMutex& acquiring) {
  Graph& graph = G();
  graph.acquisitions.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i] == &acquiring) AbortRecursive(acquiring);
  }
  std::lock_guard<std::mutex> lock(graph.mu);
  graph.nodes.emplace(acquiring.rank(), acquiring.name());
  if (t_held_count == 0) return;
  for (int i = 0; i < t_held_count; ++i) {
    const RankedMutex& held = *t_held[i];
    // A path acquired→…→held plus the prospective held→acquired edge is
    // a cycle: both orders have now been observed at least once.
    const std::vector<int> path =
        FindPath(graph, acquiring.rank(), held.rank());
    if (!path.empty()) AbortWithCycle(graph, acquiring, held, path);
    const bool violation = held.rank() >= acquiring.rank();
    if (violation && Mode() == 2) AbortRankOrder(acquiring, held);
    auto [it, inserted] = graph.edges[held.rank()].emplace(
        acquiring.rank(), EdgeInfo{CurrentChain(acquiring), violation});
    if (inserted && violation) {
      // Not yet a proven cycle, but already outside the declared order;
      // counted (deadlock_smoke asserts zero on clean runs) and warned
      // once per rank pair.
      graph.rank_violations.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "[WARN ranked_mutex] rank-order violation: acquired %s "
                   "while holding %s (chain: %s)\n",
                   Describe(acquiring).c_str(), Describe(held).c_str(),
                   it->second.first_chain.c_str());
    }
  }
}

void PushHeld(const RankedMutex& mutex) {
  if (t_held_count < kMaxHeld) t_held[t_held_count] = &mutex;
  ++t_held_count;
}

void PopHeld(const RankedMutex& mutex) {
  // Usually LIFO, but scoped guards may unwind out of order; search from
  // the top. Beyond-capacity entries (count > kMaxHeld) were not stored.
  for (int i = std::min(t_held_count, kMaxHeld) - 1; i >= 0; --i) {
    if (t_held[i] == &mutex) {
      for (int j = i; j + 1 < std::min(t_held_count, kMaxHeld); ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  if (t_held_count > kMaxHeld) --t_held_count;
}

/// Whole-graph cycle check (three-color DFS). Call with graph.mu held.
bool GraphIsAcyclic(const Graph& graph) {
  std::map<int, int> color;  // 0 white (absent), 1 gray, 2 black
  for (const auto& [start, unused] : graph.edges) {
    if (color[start] != 0) continue;
    std::vector<std::pair<int, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, children_done] = stack.back();
      stack.pop_back();
      if (children_done) {
        color[node] = 2;
        continue;
      }
      if (color[node] == 2) continue;
      color[node] = 1;
      stack.push_back({node, true});
      auto it = graph.edges.find(node);
      if (it == graph.edges.end()) continue;
      for (const auto& [next, unused2] : it->second) {
        if (color[next] == 1) return false;  // back edge
        if (color[next] == 0) stack.push_back({next, false});
      }
    }
  }
  return true;
}

#endif  // SS_LOCK_ORDER_CHECKS

}  // namespace

bool RuntimeEnabled() {
#if defined(SS_LOCK_ORDER_CHECKS)
  return Mode() != 0;
#else
  return false;
#endif
}

Stats GetStats() {
  Stats stats;
#if defined(SS_LOCK_ORDER_CHECKS)
  if (Mode() == 0) return stats;
  Graph& graph = G();
  std::lock_guard<std::mutex> lock(graph.mu);
  stats.acquisitions = graph.acquisitions.load(std::memory_order_relaxed);
  stats.graph_nodes = static_cast<int>(graph.nodes.size());
  int edges = 0;
  for (const auto& [from, adjacent] : graph.edges) {
    edges += static_cast<int>(adjacent.size());
  }
  stats.graph_edges = edges;
  stats.rank_violations =
      graph.rank_violations.load(std::memory_order_relaxed);
  stats.acyclic = GraphIsAcyclic(graph);
#endif
  return stats;
}

int HeldByThisThread() {
#if defined(SS_LOCK_ORDER_CHECKS)
  return t_held_count;
#else
  return 0;
#endif
}

void ResetForTest() {
#if defined(SS_LOCK_ORDER_CHECKS)
  Graph& graph = G();
  std::lock_guard<std::mutex> lock(graph.mu);
  graph.edges.clear();
  graph.nodes.clear();
  graph.acquisitions.store(0, std::memory_order_relaxed);
  graph.rank_violations.store(0, std::memory_order_relaxed);
#endif
}

}  // namespace lock_order

#if defined(SS_LOCK_ORDER_CHECKS)

void RankedMutex::lock() {
  if (!lock_order::RuntimeEnabled()) {
    mutex_.lock();
    return;
  }
  lock_order::CheckAndRecord(*this);
  mutex_.lock();
  lock_order::PushHeld(*this);
}

void RankedMutex::unlock() {
  if (lock_order::RuntimeEnabled()) lock_order::PopHeld(*this);
  mutex_.unlock();
}

bool RankedMutex::try_lock() {
  if (!lock_order::RuntimeEnabled()) return mutex_.try_lock();
  if (!mutex_.try_lock()) return false;
  // A successful try_lock cannot have deadlocked this time, but an
  // inverted order it establishes is still a contract violation — record
  // (and, on a completed cycle, abort) exactly like lock().
  lock_order::CheckAndRecord(*this);
  lock_order::PushHeld(*this);
  return true;
}

#endif  // SS_LOCK_ORDER_CHECKS

}  // namespace ss::support
