#include "support/rng.hpp"

namespace ss {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::Split(std::uint64_t stream_id) const {
  // Mix the parent state with the stream id through SplitMix64 twice; the
  // resulting seed selects a far-apart region of the generator's period.
  std::uint64_t sm = s_[0] ^ Rotl(s_[2], 29) ^ (stream_id * 0xd1342543de82ef95ULL);
  std::uint64_t seed = SplitMix64(sm);
  seed ^= SplitMix64(sm);
  return Rng(seed);
}

}  // namespace ss
