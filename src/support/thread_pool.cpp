#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "support/status.hpp"

namespace ss {

namespace {
/// -1 on non-pool threads; set once per worker at WorkerLoop entry.
thread_local int t_worker_index = -1;

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  // Abandoned tasks are moved out and destroyed AFTER mutex_ is released:
  // a captured closure's destructor may itself take locks (or submit-side
  // state may), and destroying it under the pool lock would order those
  // locks under kThreadPool — an inversion the lock-order analyzer flags.
  std::deque<std::function<void()>> abandoned;
  {
    support::MutexLock lock(mutex_);
    shutdown_ = true;
    abandoned.swap(queue_);
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  abandoned.clear();
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      support::UniqueLock lock(mutex_);
      cv_.wait(lock, [this]() SS_REQUIRES(mutex_) {
        return shutdown_ || !queue_.empty();
      });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::uint64_t begin = NowNanos();
    task();  // packaged_task captures exceptions into the future.
    busy_nanos_.fetch_add(NowNanos() - begin, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  SS_CHECK(begin <= end);
  const std::size_t count = end - begin;
  if (count == 0) return;

  // Shared between the claiming tasks; lives on the caller's stack, which
  // outlives them because the caller blocks on every future below.
  struct LoopState {
    std::atomic<std::size_t> next;
    support::RankedMutex error_mutex{support::lock_rank::kParallelForError};
    std::exception_ptr first_error SS_GUARDED_BY(error_mutex);
    explicit LoopState(std::size_t begin_index) : next(begin_index) {}
  };
  LoopState state(begin);

  const std::size_t num_runners = std::min(workers_.size(), count);
  std::vector<std::future<void>> runners;
  runners.reserve(num_runners);
  for (std::size_t r = 0; r < num_runners; ++r) {
    runners.push_back(Submit([&state, &fn, end]() {
      for (;;) {
        const std::size_t i =
            state.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          support::MutexLock lock(state.error_mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& runner : runners) runner.get();
  std::exception_ptr first_error;
  {
    // All runners have joined, but the annotation contract (and the
    // analysis) still wants the guarded field read under its mutex.
    support::MutexLock lock(state.error_mutex);
    first_error = state.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ss
