#include "support/thread_pool.hpp"

#include <exception>

#include "support/status.hpp"

namespace ss {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future.
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& fn) {
  SS_CHECK(begin <= end);
  if (begin == end) return;
  std::vector<std::future<void>> futures;
  futures.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ss
