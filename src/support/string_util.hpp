// Text helpers for the DFS line formats ("Genotype Matrix Text File",
// SNP-weight and SNP-set files from Algorithm 1's inputs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ss {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Strict parse helpers; return false on malformed/out-of-range input.
bool ParseI64(std::string_view text, std::int64_t* out);
bool ParseU32(std::string_view text, std::uint32_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace ss
