// Lightweight error-handling vocabulary for the SparkScore libraries.
//
// We follow the "error codes for expected failures, exceptions only for
// programmer errors" convention common in HPC codebases: hot paths return
// `Status` / `Result<T>` instead of throwing, so a task failure inside the
// engine can be retried by the scheduler without unwinding across thread
// boundaries.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ss {

/// Coarse failure categories used across the project.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed parameter.
  kNotFound,          ///< A named file/block/dataset does not exist.
  kAlreadyExists,     ///< Creation of something that already exists.
  kFailedPrecondition,///< Object not in the required state.
  kResourceExhausted, ///< Out of memory / containers / capacity.
  kUnavailable,       ///< Node or service is down (possibly transient).
  kDataLoss,          ///< Unrecoverable data loss (all replicas gone).
  kInternal,          ///< Invariant violation; indicates a bug.
};

/// Human-readable name of a StatusCode (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Value-semantic status: either OK, or a code plus a diagnostic message.
/// [[nodiscard]] on the type makes silently dropping any Status-returning
/// call a compiler warning (-Werror in CI); deliberate drops must be
/// spelled `(void)call();`. Enforced by tools/ss_lint.py.
class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status DataLoss(std::string m) {
    return {StatusCode::kDataLoss, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception thrown by `Result<T>::value()` on error and by `SS_CHECK`.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// A value or an error. Minimal `expected`-style type (C++23's std::expected
/// is not yet available with this toolchain's library mode).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the value; throws StatusError if this holds an error.
  T& value() & {
    if (!ok()) throw StatusError(status_);
    return *value_;
  }
  const T& value() const& {
    if (!ok()) throw StatusError(status_);
    return *value_;
  }
  T&& value() && {
    if (!ok()) throw StatusError(status_);
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

/// Invariant check that stays on in release builds (cheap enough for our
/// control paths; never used per-record in hot loops).
#define SS_CHECK(expr)                                       \
  do {                                                       \
    if (!(expr)) {                                           \
      ::ss::internal::CheckFailed(#expr, __FILE__, __LINE__);\
    }                                                        \
  } while (0)

/// Propagate a non-OK Status from the current function.
#define SS_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::ss::Status _ss_status = (expr);     \
    if (!_ss_status.ok()) return _ss_status; \
  } while (0)

}  // namespace ss
