#include "support/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace ss {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDataLoss: return "DataLoss";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "SS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace ss
