#include "support/option_map.hpp"

#include <algorithm>
#include <cstdio>

#include "support/string_util.hpp"

namespace ss::support {
namespace {

/// Levenshtein distance, small-string use only (key suggestion).
std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

OptionMap::OptionMap(int argc, char** argv, int begin) {
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      positional_.push_back(arg);
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool OptionMap::Has(const std::string& key) const {
  known_.insert(key);
  return values_.count(key) != 0;
}

std::uint64_t OptionMap::GetU64(const std::string& key,
                                std::uint64_t fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t parsed = 0;
  if (!ParseI64(it->second, &parsed) || parsed < 0) {
    malformed_[key] = "'" + it->second + "' is not a non-negative integer";
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

double OptionMap::GetDouble(const std::string& key, double fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double parsed = 0;
  if (!ParseDouble(it->second, &parsed)) {
    malformed_[key] = "'" + it->second + "' is not a number";
    return fallback;
  }
  return parsed;
}

std::string OptionMap::GetStr(const std::string& key,
                              const std::string& fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool OptionMap::GetBool(const std::string& key, bool fallback) const {
  return GetU64(key, fallback ? 1 : 0) != 0;
}

void OptionMap::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

std::vector<std::string> OptionMap::UnknownKeys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (known_.count(key) == 0) unknown.push_back(key);
  }
  return unknown;
}

std::size_t OptionMap::WarnUnknownKeys(const std::string& program) const {
  std::size_t diagnostics = 0;
  for (const std::string& key : UnknownKeys()) {
    std::string suggestion;
    std::size_t best = key.size();  // only suggest meaningfully close keys
    for (const std::string& candidate : known_) {
      const std::size_t distance = EditDistance(key, candidate);
      if (distance < best && distance <= 2) {
        best = distance;
        suggestion = candidate;
      }
    }
    std::string hint;
    if (!suggestion.empty()) hint = " (did you mean '" + suggestion + "'?)";
    std::fprintf(stderr, "%s: unknown key '%s' ignored%s\n", program.c_str(),
                 key.c_str(), hint.c_str());
    ++diagnostics;
  }
  for (const auto& [key, problem] : malformed_) {
    std::fprintf(stderr, "%s: malformed value for '%s': %s (fallback used)\n",
                 program.c_str(), key.c_str(), problem.c_str());
    ++diagnostics;
  }
  return diagnostics;
}

}  // namespace ss::support
