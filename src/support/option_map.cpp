#include "support/option_map.hpp"

#include <algorithm>
#include <cstdio>

#include "support/string_util.hpp"

namespace ss::support {
namespace {

/// Levenshtein distance, small-string use only (key suggestion).
std::size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

/// What a value of this type looks like, for the generated help.
const char* TypeShape(const OptionKeyDef& def) {
  switch (def.type) {
    case OptionType::kU64:
      return "<n>";
    case OptionType::kDouble:
      return "<x>";
    case OptionType::kBool:
      return "0|1";
    case OptionType::kString:
      return "<str>";
    case OptionType::kChoice:
      return "";  // the choices themselves are printed
  }
  return "";
}

}  // namespace

const std::vector<OptionKeyDef>& OptionKeyRegistry() {
  // THE single source of truth for every key=value knob. A key added here
  // is accepted, suggested, help-documented, and (for kChoice) validated
  // by the CLI and every bench at once.
  static const std::vector<OptionKeyDef> kRegistry = {
      // -- workload: what study is simulated --------------------------------
      {"patients", OptionType::kU64, "", "cohort size n (tool default varies)",
       "workload", {}},
      {"snps", OptionType::kU64, "", "number of SNPs (tool default varies)",
       "workload", {}},
      {"sets", OptionType::kU64, "", "number of SNP sets (tool default varies)",
       "workload", {}},
      {"seed", OptionType::kU64, "2016", "master RNG seed", "workload", {}},
      {"ld_block", OptionType::kU64, "1", "LD block size for the generator",
       "workload", {}},
      {"faithful", OptionType::kBool, "1",
       "paper-faithful per-patient Cox scores (0 = O(n) risk-set path)",
       "workload", {}},
      // -- engine: cluster topology + storage -------------------------------
      {"nodes", OptionType::kU64, "6", "simulated EMR cluster size", "engine",
       {}},
      {"partitions", OptionType::kU64, "8", "input partitions", "engine", {}},
      {"reducers", OptionType::kU64, "8", "shuffle reducers", "engine", {}},
      {"threads", OptionType::kU64, "4", "physical worker threads", "engine",
       {}},
      {"batch", OptionType::kU64, "64",
       "Monte Carlo replicates per engine pass (bitwise-invariant)", "engine",
       {}},
      {"cache_budget", OptionType::kU64, "0",
       "partition-cache budget in bytes (0 = unlimited)", "engine", {}},
      {"spill_dir", OptionType::kString, "",
       "directory for spill frames (empty = in-memory block store)", "engine",
       {}},
      {"pack", OptionType::kBool, "1",
       "2-bit packed genotype storage (bitwise-identical results)", "engine",
       {}},
      {"kernel", OptionType::kChoice, "",
       "force SIMD dispatch level (also SS_KERNEL)", "engine",
       {"scalar", "sse2", "avx2"}},
      {"store", OptionType::kString, "",
       "memory-mapped genotype store file: open it (staging the cohort "
       "there first if missing) instead of re-ingesting text",
       "engine", {}},
      // -- exec: the async executor / I/O lane ------------------------------
      {"prefetch", OptionType::kU64, "1",
       "partitions prefetched ahead of compute (0 ablates the async "
       "executor; also SS_PREFETCH)",
       "exec", {}},
      {"io_threads", OptionType::kU64, "1", "threads on the I/O lane", "exec",
       {}},
      {"spill_async", OptionType::kBool, "0",
       "move spill writes off the critical path onto the I/O lane (also "
       "SS_SPILL_ASYNC)",
       "exec", {}},
      // -- analysis: what is computed and reported --------------------------
      {"reps", OptionType::kU64, "", "resampling replicates B", "analysis",
       {}},
      {"method", OptionType::kChoice, "mc", "resampling method", "analysis",
       {"mc", "perm"}},
      {"top", OptionType::kU64, "10", "result rows to print", "analysis", {}},
      {"stages", OptionType::kBool, "0", "print the per-stage run report",
       "analysis", {}},
      {"export", OptionType::kString, "",
       "persist the result at this DFS path and echo it", "analysis", {}},
      {"pmethod", OptionType::kChoice, "resampling",
       "p-value engine: pure resampling counts, analytic tail (Liu "
       "moment-match), saddlepoint tail, or hybrid screen+refine",
       "analysis",
       {"resampling", "analytic", "saddlepoint", "hybrid"}},
      {"refine_threshold", OptionType::kDouble, "0.01",
       "hybrid only: refine sets whose analytic screen p is below this",
       "analysis", {}},
      {"early_stop", OptionType::kU64, "0",
       "Besag-Clifford sequential stop after this many exceedances "
       "(0 = exhaustive)",
       "analysis", {}},
      // -- observability: see docs/OBSERVABILITY.md -------------------------
      {"trace", OptionType::kString, "",
       "write Chrome trace_event JSON here ('-' streams to stderr)",
       "observability", {}},
      {"metrics", OptionType::kString, "",
       "write run-metrics JSON here ('-' streams to stdout)", "observability",
       {}},
      {"profile", OptionType::kBool, "1",
       "task-timeline collection (0 ablates; results identical)",
       "observability", {}},
      {"profile_report", OptionType::kBool, "0",
       "print the critical-path/straggler/utilization report",
       "observability", {}},
      {"straggler_mad_k", OptionType::kDouble, "3",
       "straggler threshold: median + k*MAD of the stage", "observability",
       {}},
      {"loglevel", OptionType::kChoice, "error", "stderr log verbosity",
       "observability", {"debug", "info", "warn", "error"}},
      // -- bench: knobs specific to individual benchmarks -------------------
      {"iters", OptionType::kU64, "", "replicates per timed configuration",
       "bench", {}},
      {"mode", OptionType::kString, "",
       "bench-specific mode selector (e.g. bench_caching mode=budget)",
       "bench", {}},
      {"budget", OptionType::kU64, "",
       "constrained cache budget in bytes for budget-mode benches", "bench",
       {}},
      {"budget_iters", OptionType::kU64, "",
       "replicates for the budget-mode comparison", "bench", {}},
      {"datapoint", OptionType::kString, "",
       "append a JSON datapoint for this run to the given file", "bench", {}},
      {"out", OptionType::kString, "", "bench output artifact path", "bench",
       {}},
      {"work", OptionType::kU64, "", "per-task synthetic work units", "bench",
       {}},
      {"count", OptionType::kU64, "", "bench-specific element count", "bench",
       {}},
      {"snps_small", OptionType::kU64, "", "small-config SNP count", "bench",
       {}},
      {"snps_large", OptionType::kU64, "", "large-config SNP count", "bench",
       {}},
      {"mc_max_iters", OptionType::kU64, "",
       "cap on Monte Carlo iterations in sweep benches", "bench", {}},
      {"per_node_cache_bytes", OptionType::kU64, "",
       "per-node cache bytes in container sweeps", "bench", {}},
      {"budgets", OptionType::kString, "",
       "comma-separated cache budgets in bytes for bench_scale "
       "(0 = unlimited; empty picks fractions of the packed size)",
       "bench", {}},
      {"rss_slack_mb", OptionType::kU64, "",
       "bench_scale: fixed RSS slack (MiB) allowed above cache_budget "
       "for driver-side state", "bench", {}},
      {"cache_u", OptionType::kBool, "1",
       "bench_scale: cache the observed U RDD (Algorithm 3); 0 recomputes "
       "it from streamed store frames every pass", "bench", {}},
  };
  return kRegistry;
}

const OptionKeyDef* FindOptionKey(const std::string& name) {
  for (const OptionKeyDef& def : OptionKeyRegistry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

std::string FormatKeyHelp(const std::vector<std::string>& groups) {
  const auto wanted = [&groups](const char* group) {
    if (groups.empty()) return true;
    return std::find(groups.begin(), groups.end(), group) != groups.end();
  };
  // key=<shape> column width for alignment.
  std::size_t width = 0;
  std::vector<const OptionKeyDef*> selected;
  std::vector<std::string> heads;
  for (const OptionKeyDef& def : OptionKeyRegistry()) {
    if (!wanted(def.group)) continue;
    std::string head = std::string(def.name) + "=";
    if (def.type == OptionType::kChoice) {
      for (std::size_t i = 0; i < def.choices.size(); ++i) {
        if (i != 0) head += "|";
        head += def.choices[i];
      }
    } else {
      head += TypeShape(def);
    }
    width = std::max(width, head.size());
    selected.push_back(&def);
    heads.push_back(std::move(head));
  }
  std::string out;
  std::string last_group;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const OptionKeyDef& def = *selected[i];
    if (def.group != last_group) {
      out += std::string(last_group.empty() ? "" : "\n") + def.group +
             " keys:\n";
      last_group = def.group;
    }
    out += "  " + heads[i] + std::string(width - heads[i].size() + 2, ' ') +
           def.help;
    if (def.default_value[0] != '\0') {
      out += std::string(" (default: ") + def.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

OptionMap::OptionMap(int argc, char** argv, int begin) {
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      positional_.push_back(arg);
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool OptionMap::Has(const std::string& key) const {
  known_.insert(key);
  return values_.count(key) != 0;
}

std::uint64_t OptionMap::GetU64(const std::string& key,
                                std::uint64_t fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t parsed = 0;
  if (!ParseI64(it->second, &parsed) || parsed < 0) {
    malformed_[key] = "'" + it->second + "' is not a non-negative integer";
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

double OptionMap::GetDouble(const std::string& key, double fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double parsed = 0;
  if (!ParseDouble(it->second, &parsed)) {
    malformed_[key] = "'" + it->second + "' is not a number";
    return fallback;
  }
  return parsed;
}

std::string OptionMap::GetStr(const std::string& key,
                              const std::string& fallback) const {
  known_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool OptionMap::GetBool(const std::string& key, bool fallback) const {
  return GetU64(key, fallback ? 1 : 0) != 0;
}

void OptionMap::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void OptionMap::DeclareKeys(const std::vector<std::string>& groups) const {
  for (const OptionKeyDef& def : OptionKeyRegistry()) {
    if (groups.empty() ||
        std::find(groups.begin(), groups.end(), def.group) != groups.end()) {
      known_.insert(def.name);
    }
  }
}

std::vector<std::string> OptionMap::UnknownKeys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (known_.count(key) == 0) unknown.push_back(key);
  }
  return unknown;
}

std::size_t OptionMap::WarnUnknownKeys(const std::string& program) const {
  std::size_t diagnostics = 0;
  for (const std::string& key : UnknownKeys()) {
    std::string suggestion;
    std::size_t best = key.size();  // only suggest meaningfully close keys
    for (const std::string& candidate : known_) {
      const std::size_t distance = EditDistance(key, candidate);
      if (distance < best && distance <= 2) {
        best = distance;
        suggestion = candidate;
      }
    }
    std::string hint;
    if (!suggestion.empty()) hint = " (did you mean '" + suggestion + "'?)";
    std::fprintf(stderr, "%s: unknown key '%s' ignored%s\n", program.c_str(),
                 key.c_str(), hint.c_str());
    ++diagnostics;
  }
  for (const auto& [key, problem] : malformed_) {
    std::fprintf(stderr, "%s: malformed value for '%s': %s (fallback used)\n",
                 program.c_str(), key.c_str(), problem.c_str());
    ++diagnostics;
  }
  // Registry validation for enumerated keys: a present choice-typed value
  // outside its registered choices gets one diagnostic (the tool itself
  // decides whether to also reject it).
  for (const auto& [key, value] : values_) {
    const OptionKeyDef* def = FindOptionKey(key);
    if (def == nullptr || def->type != OptionType::kChoice) continue;
    bool legal = false;
    for (const char* choice : def->choices) legal = legal || value == choice;
    if (legal) continue;
    std::string choices;
    for (const char* choice : def->choices) {
      if (!choices.empty()) choices += "|";
      choices += choice;
    }
    std::fprintf(stderr, "%s: '%s' is not a valid value for '%s' (one of %s)\n",
                 program.c_str(), value.c_str(), key.c_str(), choices.c_str());
    ++diagnostics;
  }
  return diagnostics;
}

}  // namespace ss::support
