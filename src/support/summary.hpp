// Small descriptive-statistics helpers used to report bench results in the
// same form as the paper's Tables III and V (mean and standard deviation
// over repeated runs).
#pragma once

#include <cstddef>
#include <vector>

namespace ss {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
};

/// Computes count/mean/sample-stdev/min/max. Empty input yields all zeros;
/// a single observation yields stdev 0.
Summary Summarize(const std::vector<double>& values);

/// Mean of `values`; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Empirical quantile by linear interpolation (type-7, R default).
/// `q` is clamped to [0, 1]; input need not be sorted.
double Quantile(std::vector<double> values, double q);

}  // namespace ss
