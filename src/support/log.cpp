#include "support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/ranked_mutex.hpp"

namespace ss {
namespace {

int InitialLevel() {
  const char* env = std::getenv("SS_LOG_LEVEL");
  if (env != nullptr) {
    if (std::optional<LogLevel> level = ParseLogLevel(env)) {
      return static_cast<int>(*level);
    }
    std::fprintf(stderr, "[WARN log] unrecognized SS_LOG_LEVEL '%s'\n", env);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{InitialLevel()};
// Serializes stderr output only — no data fields to annotate.
// ss-lint: allow(guarded-by-coverage) guards the stderr stream, not members
support::RankedMutex g_log_mutex{support::lock_rank::kLog};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

namespace internal {

void LogLine(LogLevel level, const std::string& component,
             const std::string& message) {
  support::MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", LevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace internal
}  // namespace ss
