#include "support/summary.hpp"

#include <algorithm>
#include <cmath>

namespace ss {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss_dev = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss_dev += d * d;
    }
    s.stdev = std::sqrt(ss_dev / static_cast<double>(values.size() - 1));
  }
  return s;
}

double Mean(const std::vector<double>& values) {
  return Summarize(values).mean;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double h = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace ss
