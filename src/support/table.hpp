// ASCII table rendering for bench output. Every benchmark prints its rows
// in the same layout as the corresponding table/figure in the paper so
// EXPERIMENTS.md can compare side-by-side.
#pragma once

#include <string>
#include <vector>

namespace ss {

class Table {
 public:
  /// Creates a table titled `title` with the given column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `precision` fractional digits.
  static std::string Num(double value, int precision = 1);

  /// Renders with column-aligned cells, +-- borders, and the title on top.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ss
