#include "dfs/dfs.hpp"

#include <algorithm>

#include "engine/trace.hpp"
#include "support/binary_io.hpp"
#include "support/log.hpp"

namespace ss::dfs {
namespace {
constexpr std::uint32_t kBlockMagic = 0x53424c4bU;  // "SBLK"

/// Counts one committed block (payload bytes x replicas) and emits an
/// instant event tagged with the placement.
void RecordBlockWrite(const BlockMeta& meta) {
  static std::atomic<std::uint64_t>& writes =
      engine::CounterRegistry::Global().Get("dfs.block_writes");
  static std::atomic<std::uint64_t>& write_bytes =
      engine::CounterRegistry::Global().Get("dfs.write_bytes");
  writes.fetch_add(1, std::memory_order_relaxed);
  write_bytes.fetch_add(
      meta.size_bytes * static_cast<std::uint64_t>(meta.replica_nodes.size()),
      std::memory_order_relaxed);
  engine::Tracer::Global().Instant(
      "dfs", "block write",
      {engine::Arg("file", meta.id.file_id), engine::Arg("block", meta.id.index),
       engine::Arg("bytes", meta.size_bytes),
       engine::Arg("replicas", meta.replica_nodes.size())});
}

}  // namespace

MiniDfs::MiniDfs(DfsOptions options)
    : options_(options),
      name_node_(std::make_unique<NameNode>(options.num_nodes,
                                            options.replication)) {
  SS_CHECK(options_.block_lines >= 1);
  stores_.reserve(static_cast<std::size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    stores_.push_back(std::make_unique<BlockStore>());
  }
}

std::vector<std::uint8_t> MiniDfs::EncodeBlock(
    const std::vector<std::string>& lines) {
  BinaryWriter writer;
  writer.WriteU32(kBlockMagic);
  writer.WriteU64(lines.size());
  for (const auto& line : lines) writer.WriteString(line);
  return writer.TakeBytes();
}

Result<std::vector<std::string>> MiniDfs::DecodeBlock(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) {
    return Status::DataLoss("block truncated");
  }
  BinaryReader reader(bytes);
  if (reader.ReadU32() != kBlockMagic) {
    return Status::DataLoss("bad block magic");
  }
  const std::uint64_t count = reader.ReadU64();
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) lines.push_back(reader.ReadString());
  return lines;
}

Status MiniDfs::WriteTextFile(const std::string& path,
                              const std::vector<std::string>& lines) {
  Result<std::uint64_t> file_id = name_node_->CreateFile(path);
  if (!file_id.ok()) return file_id.status();

  std::uint32_t block_index = 0;
  // Always write at least one (possibly empty) block so empty files are
  // representable and produce one empty input partition.
  std::size_t offset = 0;
  do {
    const std::size_t end =
        std::min(lines.size(), offset + options_.block_lines);
    std::vector<std::string> block_lines(lines.begin() + static_cast<std::ptrdiff_t>(offset),
                                         lines.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<std::uint8_t> payload = EncodeBlock(block_lines);

    BlockMeta meta;
    meta.id = BlockId{file_id.value(), block_index};
    meta.checksum = Checksum(payload);
    meta.size_bytes = payload.size();
    meta.replica_nodes = name_node_->PlaceBlock();
    if (meta.replica_nodes.empty()) {
      return Status::ResourceExhausted("no live DataNodes for placement");
    }
    for (int node : meta.replica_nodes) {
      stores_[static_cast<std::size_t>(node)]->Put(meta.id, payload);
    }
    RecordBlockWrite(meta);
    SS_RETURN_IF_ERROR(name_node_->CommitBlock(file_id.value(), meta));
    ++block_index;
    offset = end;
  } while (offset < lines.size());

  return name_node_->SealFile(file_id.value(), lines.size());
}

Result<std::vector<std::uint8_t>> MiniDfs::FetchBlockBytes(
    const BlockMeta& meta) const {
  static std::atomic<std::uint64_t>& reads =
      engine::CounterRegistry::Global().Get("dfs.block_reads");
  static std::atomic<std::uint64_t>& read_bytes =
      engine::CounterRegistry::Global().Get("dfs.read_bytes");
  static std::atomic<std::uint64_t>& failovers =
      engine::CounterRegistry::Global().Get("dfs.read_failovers");
  engine::TraceSpan span(
      engine::Tracer::Global(), "dfs",
      "block read f" + std::to_string(meta.id.file_id) + " b" +
          std::to_string(meta.id.index),
      {engine::Arg("file", meta.id.file_id),
       engine::Arg("block", meta.id.index)});
  reads.fetch_add(1, std::memory_order_relaxed);
  int attempts = 0;
  for (int node : meta.replica_nodes) {
    if (!name_node_->IsNodeAlive(node)) continue;
    ++attempts;
    Result<std::vector<std::uint8_t>> bytes =
        stores_[static_cast<std::size_t>(node)]->Get(meta.id);
    if (!bytes.ok()) continue;  // replica dropped (e.g. node was recycled)
    if (Checksum(bytes.value()) != meta.checksum) {
      SS_LOG(kWarn, "dfs") << "checksum mismatch for block " << meta.id.index
                           << " on node " << node << "; trying next replica";
      continue;
    }
    if (attempts > 1) {
      failovers.fetch_add(static_cast<std::uint64_t>(attempts - 1),
                          std::memory_order_relaxed);
    }
    read_bytes.fetch_add(bytes.value().size(), std::memory_order_relaxed);
    span.AddEndArg(engine::Arg("bytes", bytes.value().size()));
    span.AddEndArg(engine::Arg("node", node));
    return bytes;
  }
  span.AddEndArg(engine::Arg("outcome", "data_loss"));
  return Status::DataLoss("no intact live replica for block");
}

Result<std::vector<std::string>> MiniDfs::FetchBlock(
    const BlockMeta& meta) const {
  Result<std::vector<std::uint8_t>> bytes = FetchBlockBytes(meta);
  if (!bytes.ok()) return bytes.status();
  return DecodeBlock(bytes.value());
}

Result<std::vector<std::string>> MiniDfs::ReadTextFile(
    const std::string& path) const {
  Result<FileMeta> meta = name_node_->Lookup(path);
  if (!meta.ok()) return meta.status();
  std::vector<std::string> lines;
  lines.reserve(meta.value().total_lines);
  for (const BlockMeta& block : meta.value().blocks) {
    Result<std::vector<std::string>> block_lines = FetchBlock(block);
    if (!block_lines.ok()) return block_lines.status();
    for (auto& line : block_lines.value()) lines.push_back(std::move(line));
  }
  return lines;
}

Status MiniDfs::WriteBinaryFile(
    const std::string& path,
    const std::vector<std::vector<std::uint8_t>>& blocks) {
  Result<std::uint64_t> file_id = name_node_->CreateFile(path);
  if (!file_id.ok()) return file_id.status();
  std::uint32_t block_index = 0;
  for (const auto& payload : blocks) {
    BlockMeta meta;
    meta.id = BlockId{file_id.value(), block_index};
    meta.checksum = Checksum(payload);
    meta.size_bytes = payload.size();
    meta.replica_nodes = name_node_->PlaceBlock();
    if (meta.replica_nodes.empty()) {
      return Status::ResourceExhausted("no live DataNodes for placement");
    }
    for (int node : meta.replica_nodes) {
      stores_[static_cast<std::size_t>(node)]->Put(meta.id, payload);
    }
    RecordBlockWrite(meta);
    SS_RETURN_IF_ERROR(name_node_->CommitBlock(file_id.value(), meta));
    ++block_index;
  }
  return name_node_->SealFile(file_id.value(), blocks.size());
}

Result<std::vector<std::uint8_t>> MiniDfs::ReadBinaryBlock(
    const std::string& path, std::uint32_t block_index) const {
  Result<FileMeta> meta = name_node_->Lookup(path);
  if (!meta.ok()) return meta.status();
  if (block_index >= meta.value().blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  return FetchBlockBytes(meta.value().blocks[block_index]);
}

Result<std::vector<std::string>> MiniDfs::ReadBlockLines(
    const std::string& path, std::uint32_t block_index) const {
  Result<FileMeta> meta = name_node_->Lookup(path);
  if (!meta.ok()) return meta.status();
  if (block_index >= meta.value().blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  return FetchBlock(meta.value().blocks[block_index]);
}

Result<std::uint32_t> MiniDfs::BlockCount(const std::string& path) const {
  Result<FileMeta> meta = name_node_->Lookup(path);
  if (!meta.ok()) return meta.status();
  return static_cast<std::uint32_t>(meta.value().blocks.size());
}

void MiniDfs::KillNode(int node) {
  name_node_->SetNodeAlive(node, false);
  stores_[static_cast<std::size_t>(node)]->Clear();
}

void MiniDfs::ReviveNode(int node) { name_node_->SetNodeAlive(node, true); }

int MiniDfs::RepairReplication() {
  int repaired = 0;
  for (const std::string& path : name_node_->ListFiles()) {
    Result<FileMeta> meta = name_node_->Lookup(path);
    if (!meta.ok()) continue;
    for (const BlockMeta& block : meta.value().blocks) {
      // Count intact live replicas; re-fetch & copy if below target.
      std::vector<int> live;
      for (int node : block.replica_nodes) {
        if (name_node_->IsNodeAlive(node) &&
            stores_[static_cast<std::size_t>(node)]->Get(block.id).ok()) {
          live.push_back(node);
        }
      }
      if (static_cast<int>(live.size()) >= name_node_->replication() ||
          live.empty()) {
        continue;
      }
      Result<std::vector<std::uint8_t>> bytes =
          stores_[static_cast<std::size_t>(live.front())]->Get(block.id);
      if (!bytes.ok()) continue;
      bool changed = false;
      for (int node = 0; node < name_node_->num_nodes() &&
                         static_cast<int>(live.size()) < name_node_->replication();
           ++node) {
        if (!name_node_->IsNodeAlive(node)) continue;
        if (std::find(live.begin(), live.end(), node) != live.end()) continue;
        stores_[static_cast<std::size_t>(node)]->Put(block.id, bytes.value());
        live.push_back(node);
        changed = true;
        ++repaired;
      }
      if (changed) {
        SS_CHECK(name_node_->UpdateReplicas(block.id.file_id, block.id.index,
                                            live)
                     .ok());
      }
    }
  }
  return repaired;
}

Status MiniDfs::CorruptReplica(const std::string& path,
                               std::uint32_t block_index, int node) {
  Result<FileMeta> meta = name_node_->Lookup(path);
  if (!meta.ok()) return meta.status();
  if (block_index >= meta.value().blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  return stores_[static_cast<std::size_t>(node)]->Corrupt(
      meta.value().blocks[block_index].id);
}

std::uint64_t MiniDfs::TotalBytesStored() const {
  std::uint64_t total = 0;
  for (const auto& store : stores_) total += store->bytes_stored();
  return total;
}

}  // namespace ss::dfs
