#include "dfs/namenode.hpp"

#include "support/log.hpp"

namespace ss::dfs {

NameNode::NameNode(int num_nodes, int replication)
    : num_nodes_(num_nodes),
      replication_(std::min(replication, num_nodes)),
      node_alive_(static_cast<std::size_t>(num_nodes), true) {
  SS_CHECK(num_nodes >= 1);
  SS_CHECK(replication >= 1);
}

Result<std::uint64_t> NameNode::CreateFile(const std::string& path) {
  support::MutexLock lock(mutex_);
  if (path_to_id_.contains(path)) {
    return Status::AlreadyExists("file exists: " + path);
  }
  const std::uint64_t id = next_file_id_++;
  path_to_id_.emplace(path, id);
  FileMeta meta;
  meta.file_id = id;
  meta.path = path;
  files_.emplace(id, std::move(meta));
  return id;
}

std::vector<int> NameNode::PlaceBlock() {
  support::MutexLock lock(mutex_);
  std::vector<int> targets;
  targets.reserve(static_cast<std::size_t>(replication_));
  // Scan from the cursor, taking the next `replication_` live nodes.
  for (int scanned = 0;
       scanned < num_nodes_ && static_cast<int>(targets.size()) < replication_;
       ++scanned) {
    const int node = (placement_cursor_ + scanned) % num_nodes_;
    if (node_alive_[static_cast<std::size_t>(node)]) targets.push_back(node);
  }
  placement_cursor_ = (placement_cursor_ + 1) % num_nodes_;
  return targets;  // may be shorter than replication_ if nodes are down
}

Status NameNode::CommitBlock(std::uint64_t file_id, const BlockMeta& meta) {
  support::MutexLock lock(mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("unknown file id");
  if (meta.id.index != it->second.blocks.size()) {
    return Status::InvalidArgument("blocks must be committed in order");
  }
  it->second.blocks.push_back(meta);
  return Status::Ok();
}

Status NameNode::SealFile(std::uint64_t file_id, std::uint64_t total_lines) {
  support::MutexLock lock(mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("unknown file id");
  it->second.total_lines = total_lines;
  return Status::Ok();
}

Status NameNode::UpdateReplicas(std::uint64_t file_id,
                                std::uint32_t block_index,
                                std::vector<int> replicas) {
  support::MutexLock lock(mutex_);
  auto it = files_.find(file_id);
  if (it == files_.end()) return Status::NotFound("unknown file id");
  if (block_index >= it->second.blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  it->second.blocks[block_index].replica_nodes = std::move(replicas);
  return Status::Ok();
}

Result<FileMeta> NameNode::Lookup(const std::string& path) const {
  support::MutexLock lock(mutex_);
  auto it = path_to_id_.find(path);
  if (it == path_to_id_.end()) return Status::NotFound("no such file: " + path);
  return files_.at(it->second);
}

bool NameNode::Exists(const std::string& path) const {
  support::MutexLock lock(mutex_);
  return path_to_id_.contains(path);
}

std::vector<std::string> NameNode::ListFiles() const {
  support::MutexLock lock(mutex_);
  std::vector<std::string> paths;
  paths.reserve(path_to_id_.size());
  for (const auto& [path, id] : path_to_id_) paths.push_back(path);
  return paths;
}

void NameNode::SetNodeAlive(int node, bool alive) {
  support::MutexLock lock(mutex_);
  SS_CHECK(node >= 0 && node < num_nodes_);
  node_alive_[static_cast<std::size_t>(node)] = alive;
  SS_LOG(kInfo, "dfs") << "node " << node
                       << (alive ? " marked alive" : " marked dead");
}

bool NameNode::IsNodeAlive(int node) const {
  support::MutexLock lock(mutex_);
  SS_CHECK(node >= 0 && node < num_nodes_);
  return node_alive_[static_cast<std::size_t>(node)];
}

}  // namespace ss::dfs
