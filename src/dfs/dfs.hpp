// MiniDfs: the facade combining a NameNode with per-node BlockStores.
//
// Files are line-oriented text (matching the paper's "Genotype Matrix Text
// File" etc.). A write splits lines into blocks of `block_lines` lines,
// serializes each block with a checksum, and stores replicas on
// `replication` distinct nodes. A read fetches block replicas in placement
// order, skipping dead nodes and checksum mismatches — the HDFS failover
// behaviour that Spark input stages rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfs/block.hpp"
#include "dfs/block_store.hpp"
#include "dfs/namenode.hpp"
#include "support/status.hpp"

namespace ss::dfs {

struct DfsOptions {
  int num_nodes = 4;
  int replication = 2;
  std::uint32_t block_lines = 1024;  ///< Lines per block.
};

class MiniDfs {
 public:
  explicit MiniDfs(DfsOptions options);

  /// Writes `lines` as a new text file. AlreadyExists on duplicate path;
  /// ResourceExhausted if fewer live nodes than one replica target.
  Status WriteTextFile(const std::string& path,
                       const std::vector<std::string>& lines);

  /// Reads the whole file back, failing over across replicas per block.
  /// DataLoss if any block has no intact live replica.
  Result<std::vector<std::string>> ReadTextFile(const std::string& path) const;

  /// Reads one block's lines (the engine maps one input partition to one
  /// block). DataLoss if no intact live replica exists.
  Result<std::vector<std::string>> ReadBlockLines(const std::string& path,
                                                  std::uint32_t block_index) const;

  /// Writes a binary file with caller-defined block boundaries (one block
  /// per entry). Used by the engine's checkpointing: one block per
  /// dataset partition, replicated like any other file.
  Status WriteBinaryFile(const std::string& path,
                         const std::vector<std::vector<std::uint8_t>>& blocks);

  /// Reads one block of a binary file, failing over across replicas.
  Result<std::vector<std::uint8_t>> ReadBinaryBlock(const std::string& path,
                                                    std::uint32_t block_index) const;

  /// Number of blocks in `path` (NotFound if absent).
  Result<std::uint32_t> BlockCount(const std::string& path) const;

  /// Kills a node: marked dead and its replicas dropped. Reads fail over.
  void KillNode(int node);

  /// Revives a node (its old replicas are gone; new writes may target it).
  void ReviveNode(int node);

  /// Re-replicates blocks that lost replicas so each again has
  /// `replication` live copies where possible. Returns blocks repaired.
  /// This is the HDFS background re-replication pipeline, run on demand.
  int RepairReplication();

  /// Test hook: corrupts one replica of a block on a specific node.
  Status CorruptReplica(const std::string& path, std::uint32_t block_index,
                        int node);

  const NameNode& name_node() const { return *name_node_; }
  NameNode& name_node() { return *name_node_; }

  bool Exists(const std::string& path) const { return name_node_->Exists(path); }

  /// Total bytes stored across all live nodes (for reporting).
  std::uint64_t TotalBytesStored() const;

 private:
  /// Serializes block lines with a magic header; returns payload bytes.
  static std::vector<std::uint8_t> EncodeBlock(
      const std::vector<std::string>& lines);
  static Result<std::vector<std::string>> DecodeBlock(
      const std::vector<std::uint8_t>& bytes);

  /// Fetches one block's validated raw bytes given its metadata.
  Result<std::vector<std::uint8_t>> FetchBlockBytes(const BlockMeta& meta) const;

  /// Fetches and decodes one text block given its metadata.
  Result<std::vector<std::string>> FetchBlock(const BlockMeta& meta) const;

  DfsOptions options_;
  std::unique_ptr<NameNode> name_node_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
};

}  // namespace ss::dfs
