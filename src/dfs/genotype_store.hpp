// Persistent, memory-mapped packed-genotype store.
//
// Promotes the spill tier's checksummed frame format (magic | FNV-1a
// checksum | payload size | payload) into a reopenable on-disk layout so
// paper-scale cohorts are staged ONCE and every later run maps the file
// instead of re-ingesting text. One file holds everything a pipeline
// needs: per-partition 2-bit packed genotype frames plus small aux
// frames (phenotype / weights / SNP-sets, stored in the text formats of
// simdata/text_format.hpp), all indexed by a fixed table written right
// after the header.
//
// Layout (little-endian, no alignment requirements):
//
//   [header  72 B]  magic "SSGSTOR1" | version+partitions | num_snps |
//                   num_patients | fingerprint | index_offset |
//                   index_entries | data_end | header FNV-1a
//   [index]         index_entries x {offset, length, kind, ordinal}
//                   followed by one FNV-1a over the entry bytes
//   [frames...]     each: frame magic "SSGFRM01" | payload FNV-1a |
//                   payload size | payload
//
// The index is PRE-ALLOCATED at Create time (its size is known from the
// partition count) and back-filled by Finish, so the two truncation
// failure modes stay distinguishable: a file cut inside the index fails
// Open with "frame index truncated", while a torn final frame leaves the
// index intact and fails with "frame out of bounds". Every validation
// failure counts `store.corrupt` and fails CLOSED — the store never
// silently degrades to re-ingest (the pipeline layer decides that).
//
// The fingerprint is an opaque u64 the staging layer derives from the
// generator/ingest parameters (simdata::StoreFingerprint); Open exposes
// it and callers refuse mismatches with the stored human-readable
// description frame in the diagnostic.
//
// Readers mmap the whole file read-only with MADV_SEQUENTIAL and advise
// MADV_DONTNEED on a genotype frame's pages right after its payload is
// copied out ("retirement"): once the decoded partition is charged to
// the cache budget, the mapped pages are reclaimable, which is what
// keeps resident memory flat in out-of-core runs. All raw mmap/madvise
// calls in the project are confined to genotype_store.cpp (enforced by
// tools/ss_lint.py rule `mmap-confine`).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace ss::dfs {

/// What a frame holds. Genotype frames are keyed by (kGenotypes,
/// partition ordinal); each aux kind appears exactly once (ordinal 0).
enum class StoreFrameKind : std::uint32_t {
  kGenotypes = 1,    ///< One partition of packed genotype records.
  kPhenotype = 2,    ///< Phenotype file lines (model-tagged text).
  kWeights = 3,      ///< Weights file lines.
  kSets = 4,         ///< SNP-set file lines.
  kDescription = 5,  ///< Human-readable fingerprint provenance string.
};

/// Number of aux frames every store carries (all kinds but kGenotypes).
inline constexpr std::uint32_t kStoreAuxFrames = 4;

/// Immutable facts about a store, fixed at Create and echoed by Open.
struct GenotypeStoreMeta {
  std::uint32_t num_partitions = 0;
  std::uint64_t num_snps = 0;
  std::uint64_t num_patients = 0;
  /// Opaque identity of the staged data (generator/ingest parameters);
  /// see simdata::StoreFingerprint.
  std::uint64_t fingerprint = 0;
};

/// Single-threaded staging-side writer. Usage: Create, append exactly one
/// genotype frame per partition plus each aux frame (any order), Finish.
/// The file is not readable until Finish back-fills the index + header.
class GenotypeStoreWriter {
 public:
  static Result<std::unique_ptr<GenotypeStoreWriter>> Create(
      const std::string& path, const GenotypeStoreMeta& meta);

  ~GenotypeStoreWriter();

  GenotypeStoreWriter(const GenotypeStoreWriter&) = delete;
  GenotypeStoreWriter& operator=(const GenotypeStoreWriter&) = delete;

  /// Appends one checksummed frame. Genotype ordinals must be unique and
  /// < num_partitions; aux kinds must appear at most once (ordinal 0).
  Status Append(StoreFrameKind kind, std::uint32_t ordinal,
                const std::vector<std::uint8_t>& payload);

  /// Writes the index + final header and closes the file. Fails if any
  /// frame slot (partition or aux kind) was never appended.
  Status Finish();

  /// Cumulative payload bytes appended so far (excluding frame headers).
  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;  ///< Whole frame: header + payload.
    std::uint32_t kind = 0;
    std::uint32_t ordinal = 0;
  };

  GenotypeStoreWriter(std::string path, GenotypeStoreMeta meta, void* file);

  const std::string path_;
  const GenotypeStoreMeta meta_;
  void* file_ = nullptr;  ///< FILE*; void to keep <cstdio> out of the header.
  std::vector<IndexEntry> entries_;
  std::uint64_t write_offset_ = 0;
  std::uint64_t payload_bytes_ = 0;
  bool finished_ = false;
};

/// Read side: maps the whole file and serves checksum-verified payload
/// copies. Immutable after Open — safe to share across task threads and
/// the I/O lane with no locking.
class GenotypeStore {
 public:
  /// Maps + validates `path`. A missing file is NotFound (the caller may
  /// stage it); every structural defect is DataLoss, counts
  /// `store.corrupt`, and names the failed check.
  static Result<std::shared_ptr<GenotypeStore>> Open(const std::string& path);

  ~GenotypeStore();

  GenotypeStore(const GenotypeStore&) = delete;
  GenotypeStore& operator=(const GenotypeStore&) = delete;

  const GenotypeStoreMeta& meta() const { return meta_; }
  std::uint32_t num_partitions() const { return meta_.num_partitions; }
  std::uint64_t fingerprint() const { return meta_.fingerprint; }
  const std::string& path() const { return path_; }
  std::uint64_t file_bytes() const { return map_bytes_; }

  /// The provenance string staged alongside the fingerprint (decoded at
  /// Open; empty only in pathological stores).
  const std::string& description() const { return description_; }

  /// Checksum-verified payload copy of partition `partition`'s genotype
  /// frame. After the copy the frame's pages are madvise(MADV_DONTNEED)d:
  /// the decoded partition now lives in (and is charged to) the cache, so
  /// the mapped bytes are reclaimable immediately.
  Result<std::vector<std::uint8_t>> ReadGenotypeFrame(
      std::uint32_t partition) const;

  /// Checksum-verified payload copy of an aux frame (no madvise — aux
  /// frames are tiny and read once).
  Result<std::vector<std::uint8_t>> ReadAuxFrame(StoreFrameKind kind) const;

 private:
  struct FrameRef {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  GenotypeStore() = default;

  Result<std::vector<std::uint8_t>> ReadFrame(const FrameRef& ref,
                                              bool retire) const;

  std::string path_;
  GenotypeStoreMeta meta_;
  std::string description_;
  std::vector<FrameRef> genotype_frames_;  ///< Indexed by partition.
  std::vector<std::pair<std::uint32_t, FrameRef>> aux_frames_;
  int fd_ = -1;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

}  // namespace ss::dfs
