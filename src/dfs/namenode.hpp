// NameNode: file → block metadata, replica placement, and liveness view.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/block.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"

namespace ss::dfs {

/// Metadata service for MiniDfs. Thread-safe.
class NameNode {
 public:
  /// `num_nodes` DataNodes exist; replicas of each block are placed on
  /// `replication` distinct nodes.
  NameNode(int num_nodes, int replication);

  /// Registers a new file and returns its id. AlreadyExists on duplicates.
  Result<std::uint64_t> CreateFile(const std::string& path);

  /// Chooses `replication` distinct live target nodes for a new block,
  /// rotating a cursor for even spread (round-robin placement, the
  /// behaviour HDFS approximates under uniform load).
  std::vector<int> PlaceBlock();

  /// Records a finalized block's metadata under its file.
  Status CommitBlock(std::uint64_t file_id, const BlockMeta& meta);

  /// Records the file's total line count once all blocks are committed.
  Status SealFile(std::uint64_t file_id, std::uint64_t total_lines);

  /// Replaces the recorded replica set of a block (re-replication repair).
  Status UpdateReplicas(std::uint64_t file_id, std::uint32_t block_index,
                        std::vector<int> replicas);

  /// Full metadata for `path`; NotFound if absent.
  Result<FileMeta> Lookup(const std::string& path) const;

  bool Exists(const std::string& path) const;
  std::vector<std::string> ListFiles() const;

  /// Marks a node dead/alive. Dead nodes are skipped by PlaceBlock and
  /// reported to readers so they fail over.
  void SetNodeAlive(int node, bool alive);
  bool IsNodeAlive(int node) const;
  int num_nodes() const { return num_nodes_; }
  int replication() const { return replication_; }

 private:
  const int num_nodes_;
  const int replication_;

  mutable support::RankedMutex mutex_{support::lock_rank::kNameNode};
  std::unordered_map<std::string, std::uint64_t> path_to_id_
      SS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, FileMeta> files_ SS_GUARDED_BY(mutex_);
  std::vector<bool> node_alive_ SS_GUARDED_BY(mutex_);
  std::uint64_t next_file_id_ SS_GUARDED_BY(mutex_) = 1;
  int placement_cursor_ SS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ss::dfs
