// Per-node block storage for the mini-DFS (the DataNode role).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dfs/block.hpp"
#include "support/check.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"

namespace ss::dfs {

/// Thread-safe in-memory block container. One instance per simulated node.
/// All methods may be called concurrently from executor threads.
class BlockStore {
 public:
  /// Stores (or overwrites) a block replica.
  void Put(const BlockId& id, std::vector<std::uint8_t> bytes);

  /// Reads a replica. NotFound if this node holds no copy.
  Result<std::vector<std::uint8_t>> Get(const BlockId& id) const;

  /// Drops a replica if present; used by re-replication and tests.
  void Erase(const BlockId& id);

  /// Flips bits in a stored replica (test hook for checksum validation).
  /// FailedPrecondition if the block is absent or empty.
  Status Corrupt(const BlockId& id);

  /// Drops every replica (simulates total loss of the node's disks).
  void Clear();

  std::size_t block_count() const;
  std::uint64_t bytes_stored() const;

 private:
  mutable support::RankedMutex mutex_{support::lock_rank::kBlockStore};
  std::unordered_map<BlockId, std::vector<std::uint8_t>, BlockIdHash> blocks_
      SS_GUARDED_BY(mutex_);
  std::uint64_t bytes_stored_ SS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ss::dfs
