// Block identity and metadata for the mini distributed file system.
//
// The paper's pipeline reads its four inputs (genotype matrix, phenotype
// pairs, SNP weights, SNP-sets) as text files from HDFS. MiniDfs mirrors the
// parts of HDFS those reads depend on: files split into fixed-size blocks,
// each block replicated on several (simulated) nodes, reads that fail over
// to a surviving replica, and checksums that detect corruption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss::dfs {

/// Identifies one block of one file.
struct BlockId {
  std::uint64_t file_id = 0;  ///< NameNode-assigned id of the owning file.
  std::uint32_t index = 0;    ///< Block index within the file (0-based).

  bool operator==(const BlockId&) const = default;
};

/// Hash for unordered containers keyed by BlockId.
struct BlockIdHash {
  std::size_t operator()(const BlockId& id) const {
    return static_cast<std::size_t>(id.file_id * 0x9e3779b97f4a7c15ULL) ^
           (static_cast<std::size_t>(id.index) << 1);
  }
};

/// Per-block metadata kept by the NameNode.
struct BlockMeta {
  BlockId id;
  std::uint64_t checksum = 0;       ///< FNV-1a over the block payload.
  std::uint64_t size_bytes = 0;
  std::vector<int> replica_nodes;   ///< Nodes holding a replica, in
                                    ///< placement order (first = primary).
};

/// Per-file metadata kept by the NameNode.
struct FileMeta {
  std::uint64_t file_id = 0;
  std::string path;
  std::uint64_t total_lines = 0;
  std::vector<BlockMeta> blocks;
};

}  // namespace ss::dfs
