#include "dfs/block_store.hpp"

namespace ss::dfs {

void BlockStore::Put(const BlockId& id, std::vector<std::uint8_t> bytes) {
  support::MutexLock lock(mutex_);
  auto it = blocks_.find(id);
  if (it != blocks_.end()) {
    bytes_stored_ -= it->second.size();
    it->second = std::move(bytes);
    bytes_stored_ += it->second.size();
  } else {
    bytes_stored_ += bytes.size();
    blocks_.emplace(id, std::move(bytes));
  }
}

Result<std::vector<std::uint8_t>> BlockStore::Get(const BlockId& id) const {
  support::MutexLock lock(mutex_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("block not on this node");
  }
  return it->second;  // copy: callers own their bytes
}

void BlockStore::Erase(const BlockId& id) {
  support::MutexLock lock(mutex_);
  auto it = blocks_.find(id);
  if (it != blocks_.end()) {
    bytes_stored_ -= it->second.size();
    blocks_.erase(it);
  }
}

Status BlockStore::Corrupt(const BlockId& id) {
  support::MutexLock lock(mutex_);
  auto it = blocks_.find(id);
  if (it == blocks_.end() || it->second.empty()) {
    return Status::FailedPrecondition("no replica to corrupt");
  }
  it->second[it->second.size() / 2] ^= 0xFF;
  return Status::Ok();
}

void BlockStore::Clear() {
  support::MutexLock lock(mutex_);
  blocks_.clear();
  bytes_stored_ = 0;
}

std::size_t BlockStore::block_count() const {
  support::MutexLock lock(mutex_);
  return blocks_.size();
}

std::uint64_t BlockStore::bytes_stored() const {
  support::MutexLock lock(mutex_);
  return bytes_stored_;
}

}  // namespace ss::dfs
