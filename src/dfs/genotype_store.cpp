#include "dfs/genotype_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "engine/trace.hpp"
#include "support/binary_io.hpp"
#include "support/log.hpp"

namespace ss::dfs {

namespace {

// "SSGSTOR1" / "SSGFRM01" read as little-endian u64s. Distinct from the
// spill tier's "SSPILL01" so a spill frame can never masquerade as a
// store file (or vice versa).
constexpr std::uint64_t kStoreMagic = 0x3152'4F54'5347'5353ULL;
constexpr std::uint64_t kFrameMagic = 0x3130'4D52'4647'5353ULL;
constexpr std::uint32_t kStoreVersion = 1;

// magic + (version|partitions) + num_snps + num_patients + fingerprint +
// index_offset + index_entries + data_end, then the FNV-1a over them.
constexpr std::uint64_t kHeaderChecksummedBytes = 8 * 8;
constexpr std::uint64_t kHeaderBytes = kHeaderChecksummedBytes + 8;
constexpr std::uint64_t kIndexEntryBytes = 24;  // offset + length + kind|ordinal
constexpr std::uint64_t kFrameHeaderBytes = 24;  // magic + checksum + size

std::atomic<std::uint64_t>& StoreCounter(const char* name) {
  return engine::CounterRegistry::Global().Get(name);
}

/// Counts `store.corrupt`, emits the trace instant, and wraps the
/// diagnostic in a DataLoss status. Every fail-closed path funnels here.
Status Corrupt(const std::string& path, const std::string& what) {
  static std::atomic<std::uint64_t>& corrupt = StoreCounter("store.corrupt");
  corrupt.fetch_add(1, std::memory_order_relaxed);
  engine::Tracer::Global().Instant(
      "store", "corrupt",
      {engine::Arg("path", path), engine::Arg("error", what)});
  SS_LOG(kWarn, "store") << path << ": " << what;
  return Status::DataLoss("genotype store " + path + ": " + what);
}

std::uint64_t ReadU64At(const std::uint8_t* base, std::uint64_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

std::uint32_t ReadU32At(const std::uint8_t* base, std::uint64_t offset) {
  std::uint32_t v = 0;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

std::uint64_t ChecksumSpan(const std::uint8_t* data, std::uint64_t size) {
  // FNV-1a, matching ss::Checksum (which takes a vector; spans avoid the
  // copy for mapped regions).
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::uint64_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t ByteSwap64(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | ((v >> (i * 8)) & 0xFF);
  return out;
#endif
}

/// Serialized header with the given index/data facts (checksum included).
std::vector<std::uint8_t> BuildHeader(const GenotypeStoreMeta& meta,
                                      std::uint64_t index_entries,
                                      std::uint64_t data_end) {
  BinaryWriter writer;
  writer.WriteU64(kStoreMagic);
  writer.WriteU32(kStoreVersion);
  writer.WriteU32(meta.num_partitions);
  writer.WriteU64(meta.num_snps);
  writer.WriteU64(meta.num_patients);
  writer.WriteU64(meta.fingerprint);
  writer.WriteU64(kHeaderBytes);  // index_offset: right after the header
  writer.WriteU64(index_entries);
  writer.WriteU64(data_end);
  writer.WriteU64(ChecksumSpan(writer.bytes().data(), writer.bytes().size()));
  return writer.TakeBytes();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

GenotypeStoreWriter::GenotypeStoreWriter(std::string path,
                                         GenotypeStoreMeta meta, void* file)
    : path_(std::move(path)), meta_(meta), file_(file) {}

Result<std::unique_ptr<GenotypeStoreWriter>> GenotypeStoreWriter::Create(
    const std::string& path, const GenotypeStoreMeta& meta) {
  if (meta.num_partitions == 0) {
    return Status::InvalidArgument("genotype store needs >= 1 partition");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot create genotype store " + path + ": " +
                               std::strerror(errno));
  }
  // Reserve header + index now; Finish seeks back and fills them in. The
  // placeholder bytes are zero, so a crash mid-stage leaves a file whose
  // magic check fails closed instead of one with a plausible header.
  const std::uint64_t index_entries = meta.num_partitions + kStoreAuxFrames;
  const std::uint64_t reserved =
      kHeaderBytes + index_entries * kIndexEntryBytes + 8;
  const std::vector<std::uint8_t> zeros(reserved, 0);
  if (std::fwrite(zeros.data(), 1, zeros.size(), file) != zeros.size()) {
    std::fclose(file);
    return Status::Unavailable("cannot reserve genotype store header in " +
                               path);
  }
  auto writer = std::unique_ptr<GenotypeStoreWriter>(
      // ss-lint: allow(naked-new) private ctor; make_unique cannot reach it
      new GenotypeStoreWriter(path, meta, file));
  writer->write_offset_ = reserved;
  return writer;
}

GenotypeStoreWriter::~GenotypeStoreWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

Status GenotypeStoreWriter::Append(StoreFrameKind kind, std::uint32_t ordinal,
                                   const std::vector<std::uint8_t>& payload) {
  static std::atomic<std::uint64_t>& frame_writes =
      StoreCounter("store.frame_writes");
  static std::atomic<std::uint64_t>& write_bytes =
      StoreCounter("store.write_bytes");
  SS_CHECK(file_ != nullptr && !finished_);
  if (kind == StoreFrameKind::kGenotypes) {
    if (ordinal >= meta_.num_partitions) {
      return Status::InvalidArgument("genotype frame ordinal out of range");
    }
  } else if (ordinal != 0) {
    return Status::InvalidArgument("aux frames use ordinal 0");
  }
  for (const IndexEntry& entry : entries_) {
    if (entry.kind == static_cast<std::uint32_t>(kind) &&
        entry.ordinal == ordinal) {
      return Status::AlreadyExists("duplicate store frame");
    }
  }

  BinaryWriter frame;
  frame.WriteU64(kFrameMagic);
  frame.WriteU64(Checksum(payload));
  frame.WriteU64(payload.size());
  auto* file = static_cast<std::FILE*>(file_);
  if (std::fwrite(frame.bytes().data(), 1, frame.bytes().size(), file) !=
          frame.bytes().size() ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file) !=
           payload.size())) {
    return Status::Unavailable("genotype store write failed: " + path_);
  }
  const std::uint64_t length = kFrameHeaderBytes + payload.size();
  entries_.push_back(IndexEntry{write_offset_, length,
                                static_cast<std::uint32_t>(kind), ordinal});
  write_offset_ += length;
  payload_bytes_ += payload.size();
  frame_writes.fetch_add(1, std::memory_order_relaxed);
  write_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  return Status::Ok();
}

Status GenotypeStoreWriter::Finish() {
  SS_CHECK(file_ != nullptr && !finished_);
  const std::uint64_t expected = meta_.num_partitions + kStoreAuxFrames;
  if (entries_.size() != expected) {
    return Status::FailedPrecondition(
        "genotype store incomplete: " + std::to_string(entries_.size()) +
        " of " + std::to_string(expected) + " frames appended");
  }

  BinaryWriter index;
  for (const IndexEntry& entry : entries_) {
    index.WriteU64(entry.offset);
    index.WriteU64(entry.length);
    index.WriteU32(entry.kind);
    index.WriteU32(entry.ordinal);
  }
  index.WriteU64(ChecksumSpan(index.bytes().data(), index.bytes().size()));
  const std::vector<std::uint8_t> header =
      BuildHeader(meta_, entries_.size(), write_offset_);

  auto* file = static_cast<std::FILE*>(file_);
  bool ok = std::fseek(file, 0, SEEK_SET) == 0 &&
            std::fwrite(header.data(), 1, header.size(), file) ==
                header.size() &&
            std::fwrite(index.bytes().data(), 1, index.bytes().size(), file) ==
                index.bytes().size() &&
            std::fflush(file) == 0;
  ok = std::fclose(file) == 0 && ok;
  file_ = nullptr;
  finished_ = true;
  if (!ok) {
    return Status::Unavailable("genotype store finalize failed: " + path_);
  }
  engine::Tracer::Global().Instant(
      "store", "staged",
      {engine::Arg("path", path_),
       engine::Arg("partitions", meta_.num_partitions),
       engine::Arg("payload_bytes", payload_bytes_)});
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<std::shared_ptr<GenotypeStore>> GenotypeStore::Open(
    const std::string& path) {
  static std::atomic<std::uint64_t>& opens = StoreCounter("store.opens");

  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  if (fd < 0) {
    return Status::NotFound("genotype store " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Unavailable("cannot stat genotype store " + path);
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return Corrupt(path, "truncated header (" + std::to_string(size) +
                             " bytes, need " + std::to_string(kHeaderBytes) +
                             ")");
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  if (mapped == MAP_FAILED) {
    ::close(fd);
    return Status::Unavailable("mmap failed for genotype store " + path +
                               ": " + std::strerror(errno));
  }
  // The dominant access pattern is one forward pass per budget-bounded
  // run; sequential readahead keeps the prefetch lane fed from disk.
  (void)::madvise(mapped, size, MADV_SEQUENTIAL);

  auto store = std::shared_ptr<GenotypeStore>(
      // ss-lint: allow(naked-new) private ctor; make_shared cannot reach it
      new GenotypeStore());
  store->path_ = path;
  store->fd_ = fd;
  store->map_ = static_cast<const std::uint8_t*>(mapped);
  store->map_bytes_ = size;
  const std::uint8_t* base = store->map_;

  // Header. Magic first, with an explicit wrong-endianness diagnostic: a
  // store written on a big-endian host has the byte-swapped magic, which
  // is worth naming precisely instead of "bad magic".
  const std::uint64_t magic = ReadU64At(base, 0);
  if (magic != kStoreMagic) {
    if (ByteSwap64(magic) == kStoreMagic) {
      return Corrupt(path,
                     "byte-swapped magic: store was written on an "
                     "opposite-endianness host and cannot be mapped here");
    }
    return Corrupt(path, "bad magic (not a genotype store)");
  }
  if (ReadU64At(base, kHeaderChecksummedBytes) !=
      ChecksumSpan(base, kHeaderChecksummedBytes)) {
    return Corrupt(path, "header checksum mismatch");
  }
  const std::uint32_t version = ReadU32At(base, 8);
  if (version != kStoreVersion) {
    return Corrupt(path, "unsupported store version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kStoreVersion) + ")");
  }
  store->meta_.num_partitions = ReadU32At(base, 12);
  store->meta_.num_snps = ReadU64At(base, 16);
  store->meta_.num_patients = ReadU64At(base, 24);
  store->meta_.fingerprint = ReadU64At(base, 32);
  const std::uint64_t index_offset = ReadU64At(base, 40);
  const std::uint64_t index_entries = ReadU64At(base, 48);
  const std::uint64_t data_end = ReadU64At(base, 56);
  if (store->meta_.num_partitions == 0 ||
      index_entries != store->meta_.num_partitions + kStoreAuxFrames) {
    return Corrupt(path, "implausible frame count in header");
  }

  // Index: bounds, then content checksum. A file cut inside the index
  // region fails here ("truncated"), BEFORE any frame bounds check.
  const std::uint64_t index_bytes = index_entries * kIndexEntryBytes;
  if (index_offset != kHeaderBytes ||
      index_offset + index_bytes + 8 > size) {
    return Corrupt(path, "frame index truncated");
  }
  if (ReadU64At(base, index_offset + index_bytes) !=
      ChecksumSpan(base + index_offset, index_bytes)) {
    return Corrupt(path, "frame index checksum mismatch");
  }
  if (data_end > size) {
    return Corrupt(path, "file shorter than header's data_end (torn frame)");
  }

  store->genotype_frames_.assign(store->meta_.num_partitions, FrameRef{});
  std::vector<bool> seen(store->meta_.num_partitions, false);
  for (std::uint64_t i = 0; i < index_entries; ++i) {
    const std::uint64_t at = index_offset + i * kIndexEntryBytes;
    const FrameRef ref{ReadU64At(base, at), ReadU64At(base, at + 8)};
    const std::uint32_t kind = ReadU32At(base, at + 16);
    const std::uint32_t ordinal = ReadU32At(base, at + 20);
    if (ref.length < kFrameHeaderBytes || ref.offset < kHeaderBytes ||
        ref.offset + ref.length > size) {
      return Corrupt(path, "frame " + std::to_string(i) +
                               " out of bounds (torn frame)");
    }
    if (kind == static_cast<std::uint32_t>(StoreFrameKind::kGenotypes)) {
      if (ordinal >= store->meta_.num_partitions || seen[ordinal]) {
        return Corrupt(path, "bad genotype frame ordinal in index");
      }
      seen[ordinal] = true;
      store->genotype_frames_[ordinal] = ref;
    } else {
      store->aux_frames_.push_back({kind, ref});
    }
  }
  for (std::uint32_t p = 0; p < store->meta_.num_partitions; ++p) {
    if (!seen[p]) {
      return Corrupt(path, "missing genotype frame for partition " +
                               std::to_string(p));
    }
  }

  // Decode the provenance string eagerly — it is the one frame every
  // mismatch diagnostic needs.
  Result<std::vector<std::uint8_t>> description =
      store->ReadAuxFrame(StoreFrameKind::kDescription);
  if (!description.ok()) return description.status();
  store->description_.assign(description.value().begin(),
                             description.value().end());

  opens.fetch_add(1, std::memory_order_relaxed);
  engine::Tracer::Global().Instant(
      "store", "open",
      {engine::Arg("path", path), engine::Arg("bytes", size),
       engine::Arg("partitions", store->meta_.num_partitions)});
  return store;
}

GenotypeStore::~GenotypeStore() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Result<std::vector<std::uint8_t>> GenotypeStore::ReadFrame(
    const FrameRef& ref, bool retire) const {
  static std::atomic<std::uint64_t>& frame_reads =
      StoreCounter("store.frame_reads");
  static std::atomic<std::uint64_t>& read_bytes =
      StoreCounter("store.read_bytes");

  const std::uint8_t* frame = map_ + ref.offset;
  if (ReadU64At(frame, 0) != kFrameMagic) {
    return Corrupt(path_, "frame magic mismatch at offset " +
                              std::to_string(ref.offset));
  }
  const std::uint64_t checksum = ReadU64At(frame, 8);
  const std::uint64_t payload_size = ReadU64At(frame, 16);
  if (payload_size != ref.length - kFrameHeaderBytes) {
    return Corrupt(path_, "frame length mismatch at offset " +
                              std::to_string(ref.offset));
  }
  const std::uint8_t* payload = frame + kFrameHeaderBytes;
  if (ChecksumSpan(payload, payload_size) != checksum) {
    return Corrupt(path_, "frame payload checksum mismatch at offset " +
                              std::to_string(ref.offset));
  }
  std::vector<std::uint8_t> out(payload, payload + payload_size);

  if (retire) {
    // The caller owns a decoded copy now (charged to the cache budget);
    // the mapped pages are dead weight. Page-align the range — DONTNEED
    // on a file-backed read-only map just drops clean pages, and a
    // concurrent reader of the same frame simply refaults them.
    const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const std::uint64_t begin = (ref.offset / page) * page;
    const std::uint64_t end = ref.offset + ref.length;
    (void)::madvise(const_cast<std::uint8_t*>(map_) + begin, end - begin,
                    MADV_DONTNEED);
  }

  frame_reads.fetch_add(1, std::memory_order_relaxed);
  read_bytes.fetch_add(payload_size, std::memory_order_relaxed);
  return out;
}

Result<std::vector<std::uint8_t>> GenotypeStore::ReadGenotypeFrame(
    std::uint32_t partition) const {
  if (partition >= genotype_frames_.size()) {
    return Status::InvalidArgument("store partition out of range");
  }
  return ReadFrame(genotype_frames_[partition], /*retire=*/true);
}

Result<std::vector<std::uint8_t>> GenotypeStore::ReadAuxFrame(
    StoreFrameKind kind) const {
  for (const auto& [frame_kind, ref] : aux_frames_) {
    if (frame_kind == static_cast<std::uint32_t>(kind)) {
      return ReadFrame(ref, /*retire=*/false);
    }
  }
  return Corrupt(path_, "missing aux frame kind " +
                            std::to_string(static_cast<std::uint32_t>(kind)));
}

}  // namespace ss::dfs
