#include "cluster/resource_manager.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace ss::cluster {

ResourceManager::ResourceManager(const InstanceType& instance, int num_nodes,
                                 ResourceCalculator calculator,
                                 double reserved_memory_gib)
    : calculator_(calculator),
      node_memory_gib_(std::max(0.0, instance.memory_gib - reserved_memory_gib)),
      node_vcores_(instance.vcpus) {
  SS_CHECK(num_nodes >= 1);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  for (auto& node : nodes_) {
    node.free_memory_gib = node_memory_gib_;
    node.free_vcores = node_vcores_;
  }
}

bool ResourceManager::Fits(const NodeState& node,
                           const ContainerRequest& request) const {
  if (!node.alive) return false;
  if (node.free_memory_gib < request.memory_gib) return false;
  if (calculator_ == ResourceCalculator::kDominant &&
      node.free_vcores < request.vcores) {
    return false;
  }
  return true;
}

Result<Container> ResourceManager::Allocate(const ContainerRequest& request) {
  if (request.memory_gib <= 0 || request.vcores < 1) {
    return Status::InvalidArgument("container shape must be positive");
  }
  support::MutexLock lock(mutex_);
  // Least-loaded placement: pick the eligible node with most free memory,
  // which spreads executors evenly like YARN's fair placement under
  // identical nodes.
  int best = -1;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (!Fits(nodes_[static_cast<std::size_t>(i)], request)) continue;
    if (best < 0 ||
        nodes_[static_cast<std::size_t>(i)].free_memory_gib >
            nodes_[static_cast<std::size_t>(best)].free_memory_gib) {
      best = i;
    }
  }
  if (best < 0) {
    return Status::ResourceExhausted("no node can host the container");
  }
  NodeState& node = nodes_[static_cast<std::size_t>(best)];
  node.free_memory_gib -= request.memory_gib;
  node.free_vcores -= request.vcores;
  Container container{next_id_++, best, request.memory_gib, request.vcores};
  live_.push_back(container);
  return container;
}

Result<std::vector<Container>> ResourceManager::AllocateMany(
    const ContainerRequest& request, int count) {
  std::vector<Container> granted;
  granted.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Result<Container> container = Allocate(request);
    if (!container.ok()) {
      for (const Container& c : granted) Release(c.id);
      return container.status();
    }
    granted.push_back(container.value());
  }
  return granted;
}

void ResourceManager::Release(std::uint64_t container_id) {
  support::MutexLock lock(mutex_);
  auto it = std::find_if(live_.begin(), live_.end(),
                         [&](const Container& c) { return c.id == container_id; });
  if (it == live_.end()) return;
  NodeState& node = nodes_[static_cast<std::size_t>(it->node)];
  node.free_memory_gib += it->memory_gib;
  node.free_vcores += it->vcores;
  live_.erase(it);
}

void ResourceManager::ReleaseAll() {
  support::MutexLock lock(mutex_);
  for (const Container& c : live_) {
    NodeState& node = nodes_[static_cast<std::size_t>(c.node)];
    node.free_memory_gib += c.memory_gib;
    node.free_vcores += c.vcores;
  }
  live_.clear();
}

int ResourceManager::DecommissionNode(int node) {
  support::MutexLock lock(mutex_);
  SS_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  nodes_[static_cast<std::size_t>(node)].alive = false;
  int lost = 0;
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->node == node) {
      ++lost;
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  // Capacity of a dead node is unusable until recommissioned.
  nodes_[static_cast<std::size_t>(node)].free_memory_gib = 0;
  nodes_[static_cast<std::size_t>(node)].free_vcores = 0;
  SS_LOG(kInfo, "yarn") << "decommissioned node " << node << ", lost " << lost
                        << " containers";
  return lost;
}

void ResourceManager::RecommissionNode(int node) {
  support::MutexLock lock(mutex_);
  SS_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  NodeState& state = nodes_[static_cast<std::size_t>(node)];
  state.alive = true;
  state.free_memory_gib = node_memory_gib_;
  state.free_vcores = node_vcores_;
}

double ResourceManager::FreeMemoryGib(int node) const {
  support::MutexLock lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].free_memory_gib;
}

int ResourceManager::FreeVcores(int node) const {
  support::MutexLock lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].free_vcores;
}

int ResourceManager::LiveContainerCount() const {
  support::MutexLock lock(mutex_);
  return static_cast<int>(live_.size());
}

}  // namespace ss::cluster
