#include "cluster/fault_injector.hpp"

#include "engine/trace.hpp"
#include "support/log.hpp"

namespace ss::cluster {

void FaultInjector::FailNodeAfterTasks(int node,
                                       std::uint64_t task_completions) {
  std::lock_guard<std::mutex> lock(mutex_);
  node_failures_.push_back({node, task_completions, false});
}

void FaultInjector::FailTask(std::uint64_t stage_id, std::uint32_t partition,
                             int times) {
  std::lock_guard<std::mutex> lock(mutex_);
  task_failures_.push_back({stage_id, partition, times});
}

void FaultInjector::SetOnNodeFailure(std::function<void(int)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_node_failure_ = std::move(callback);
}

void FaultInjector::OnTaskCompleted() {
  std::vector<int> to_fire;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& failure : node_failures_) {
      if (failure.fired) continue;
      if (failure.remaining > 0) --failure.remaining;
      if (failure.remaining == 0) {
        failure.fired = true;
        to_fire.push_back(failure.node);
      }
    }
  }
  // Fire outside the lock: the callback typically re-enters engine/DFS code.
  for (int node : to_fire) {
    engine::CounterRegistry::Global().Add("fault.node_failures", 1);
    engine::Tracer::Global().Instant("fault", "injected node failure",
                                     {engine::Arg("node", node)});
    SS_LOG(kInfo, "fault") << "injected failure of node " << node;
    std::function<void(int)> callback;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      callback = on_node_failure_;
    }
    if (callback) callback(node);
  }
}

bool FaultInjector::ShouldFailTask(std::uint64_t stage_id,
                                   std::uint32_t partition) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& failure : task_failures_) {
    if (failure.stage_id == stage_id && failure.partition == partition &&
        failure.remaining > 0) {
      --failure.remaining;
      engine::CounterRegistry::Global().Add("fault.task_failures", 1);
      engine::Tracer::Global().Instant(
          "fault", "injected task failure",
          {engine::Arg("stage", stage_id), engine::Arg("partition", partition)});
      return true;
    }
  }
  return false;
}

bool FaultInjector::HasFired(int node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& failure : node_failures_) {
    if (failure.node == node && failure.fired) return true;
  }
  return false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  node_failures_.clear();
  task_failures_.clear();
  on_node_failure_ = nullptr;
}

}  // namespace ss::cluster
