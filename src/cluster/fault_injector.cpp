#include "cluster/fault_injector.hpp"

#include "engine/trace.hpp"
#include "support/log.hpp"

namespace ss::cluster {

void FaultInjector::FailNodeAfterTasks(int node,
                                       std::uint64_t task_completions) {
  support::MutexLock lock(mutex_);
  node_failures_.push_back({node, task_completions, false});
}

void FaultInjector::FailTask(std::uint64_t stage_id, std::uint32_t partition,
                             int times) {
  support::MutexLock lock(mutex_);
  task_failures_.push_back({stage_id, partition, times});
}

void FaultInjector::CorruptSpillAfterTasks(std::uint64_t task_completions) {
  support::MutexLock lock(mutex_);
  spill_faults_.push_back({/*drop=*/false, task_completions, false});
}

void FaultInjector::DropSpillAfterTasks(std::uint64_t task_completions) {
  support::MutexLock lock(mutex_);
  spill_faults_.push_back({/*drop=*/true, task_completions, false});
}

void FaultInjector::SetOnNodeFailure(std::function<void(int)> callback) {
  support::MutexLock lock(mutex_);
  on_node_failure_ = std::move(callback);
}

void FaultInjector::SetOnSpillFault(std::function<void(bool)> callback) {
  support::MutexLock lock(mutex_);
  on_spill_fault_ = std::move(callback);
}

void FaultInjector::OnTaskCompleted() {
  std::vector<int> to_fire;
  std::vector<bool> spill_to_fire;
  {
    support::MutexLock lock(mutex_);
    for (auto& failure : node_failures_) {
      if (failure.fired) continue;
      if (failure.remaining > 0) --failure.remaining;
      if (failure.remaining == 0) {
        failure.fired = true;
        to_fire.push_back(failure.node);
      }
    }
    for (auto& fault : spill_faults_) {
      if (fault.fired) continue;
      if (fault.remaining > 0) --fault.remaining;
      if (fault.remaining == 0) {
        fault.fired = true;
        spill_to_fire.push_back(fault.drop);
      }
    }
  }
  // Fire outside the lock: the callback typically re-enters engine/DFS code.
  for (int node : to_fire) {
    engine::CounterRegistry::Global().Add("fault.node_failures", 1);
    engine::Tracer::Global().Instant("fault", "injected node failure",
                                     {engine::Arg("node", node)});
    SS_LOG(kInfo, "fault") << "injected failure of node " << node;
    std::function<void(int)> callback;
    {
      support::MutexLock lock(mutex_);
      callback = on_node_failure_;
    }
    if (callback) callback(node);
  }
  for (bool drop : spill_to_fire) {
    engine::CounterRegistry::Global().Add("fault.spill_injuries", 1);
    engine::Tracer::Global().Instant(
        "fault", drop ? "injected spill loss" : "injected spill corruption",
        {});
    SS_LOG(kInfo, "fault") << "injected spill "
                           << (drop ? "loss" : "corruption");
    std::function<void(bool)> callback;
    {
      support::MutexLock lock(mutex_);
      callback = on_spill_fault_;
    }
    if (callback) callback(drop);
  }
}

bool FaultInjector::ShouldFailTask(std::uint64_t stage_id,
                                   std::uint32_t partition) {
  support::MutexLock lock(mutex_);
  for (auto& failure : task_failures_) {
    if (failure.stage_id == stage_id && failure.partition == partition &&
        failure.remaining > 0) {
      --failure.remaining;
      engine::CounterRegistry::Global().Add("fault.task_failures", 1);
      engine::Tracer::Global().Instant(
          "fault", "injected task failure",
          {engine::Arg("stage", stage_id), engine::Arg("partition", partition)});
      return true;
    }
  }
  return false;
}

bool FaultInjector::HasFired(int node) const {
  support::MutexLock lock(mutex_);
  for (const auto& failure : node_failures_) {
    if (failure.node == node && failure.fired) return true;
  }
  return false;
}

void FaultInjector::Reset() {
  support::MutexLock lock(mutex_);
  node_failures_.clear();
  task_failures_.clear();
  spill_faults_.clear();
  on_node_failure_ = nullptr;
  on_spill_fault_ = nullptr;
}

}  // namespace ss::cluster
