// Event-driven makespan simulation: replays per-task costs onto the slots
// of a ClusterTopology.
//
// Given the (measured or modelled) compute seconds of every task in every
// stage of a job, the simulator performs list scheduling: each stage's
// tasks are queued; `TotalSlots()` slots pull tasks as they free up; a
// barrier separates stages (Spark stages cannot overlap across a shuffle
// dependency); CostModel overheads are added per task, stage, and job.
// The result is the job's virtual wall-clock on the simulated cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/topology.hpp"

namespace ss::cluster {

/// One stage's workload: per-task compute seconds plus shuffle volume.
struct StageProfile {
  std::vector<double> task_compute_s;  ///< One entry per task.
  std::uint64_t shuffle_read_bytes = 0;   ///< Total fetched by this stage.
  std::uint64_t shuffle_write_bytes = 0;  ///< Total emitted by this stage.
};

/// A job is an ordered list of stages (barriers between them).
struct JobProfile {
  std::vector<StageProfile> stages;
};

/// Simulation output.
struct MakespanReport {
  double total_s = 0.0;
  std::vector<double> stage_s;    ///< Per-stage makespan incl. overheads.
  double compute_s = 0.0;         ///< Sum of raw task compute (work).
  double overhead_s = 0.0;        ///< Everything that is not task compute.
  int slots = 0;
};

class VirtualScheduler {
 public:
  /// `speculation` mirrors spark.speculation: when a task is flagged as a
  /// straggler (per CostModel's straggler model), a speculative copy is
  /// launched on the next free slot at the time the original would have
  /// finished unslowed; the stage takes whichever attempt finishes first.
  /// `seed` drives the deterministic straggler draws.
  VirtualScheduler(ClusterTopology topology, CostModel cost_model,
                   bool speculation = false, std::uint64_t seed = 99)
      : topology_(std::move(topology)),
        cost_model_(cost_model),
        speculation_(speculation),
        seed_(seed) {}

  /// Simulates one stage on `slots` slots; returns its makespan (seconds).
  /// Greedy earliest-available-slot assignment in task order — exactly what
  /// Spark's task scheduler does within a stage with FIFO pools.
  /// `stage_salt` decorrelates straggler draws across stages.
  double SimulateStage(const StageProfile& stage,
                       std::uint64_t stage_salt = 0) const;

  /// Simulates a whole job: sum of stage makespans + job overhead.
  MakespanReport Simulate(const JobProfile& job) const;

  const ClusterTopology& topology() const { return topology_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  ClusterTopology topology_;
  CostModel cost_model_;
  bool speculation_ = false;
  std::uint64_t seed_ = 99;
};

}  // namespace ss::cluster
