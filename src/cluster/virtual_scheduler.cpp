#include "cluster/virtual_scheduler.hpp"

#include <algorithm>
#include <queue>

#include "support/rng.hpp"

namespace ss::cluster {

double VirtualScheduler::SimulateStage(const StageProfile& stage,
                                       std::uint64_t stage_salt) const {
  const int slots = std::max(1, topology_.TotalSlots());
  // Min-heap of slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(0.0);

  // Shuffle read cost is paid by the stage's tasks; spread it evenly (hash
  // partitioning yields near-uniform bucket sizes for our keys).
  const double per_task_shuffle_read =
      stage.task_compute_s.empty()
          ? 0.0
          : cost_model_.TransferSeconds(stage.shuffle_read_bytes) /
                static_cast<double>(stage.task_compute_s.size());
  const double per_task_shuffle_write =
      stage.task_compute_s.empty()
          ? 0.0
          : cost_model_.TransferSeconds(stage.shuffle_write_bytes) /
                static_cast<double>(stage.task_compute_s.size());

  Rng straggler_rng = Rng(seed_).Split(stage_salt + 1);
  double makespan = 0.0;
  for (double compute : stage.task_compute_s) {
    const double start = free_at.top();
    free_at.pop();
    const double nominal = cost_model_.task_launch_overhead_s + compute +
                           per_task_shuffle_read + per_task_shuffle_write;
    double duration = nominal;
    const bool straggles =
        cost_model_.straggler_probability > 0.0 &&
        straggler_rng.NextDouble() < cost_model_.straggler_probability;
    if (straggles) {
      duration = nominal * cost_model_.straggler_slowdown;
      if (speculation_) {
        // Spark flags the attempt once it runs well past the typical task
        // duration; we model the speculative copy starting when the
        // original would have finished unslowed, on the then-next free
        // slot, and the attempt finishing first winning. The backup is
        // assumed not to straggle (fresh executor).
        const double flag_time = start + nominal;
        const double backup_start = std::max(flag_time, free_at.top());
        const double backup_end = backup_start + nominal;
        duration = std::min(start + duration, backup_end) - start;
        // The backup occupied the next-free slot until the race resolved.
        if (backup_end <= start + nominal * cost_model_.straggler_slowdown) {
          const double occupied_until = backup_end;
          const double next_free = free_at.top();
          free_at.pop();
          free_at.push(std::max(next_free, occupied_until));
        }
      }
    }
    const double end = start + duration;
    free_at.push(end);
    makespan = std::max(makespan, end);
  }
  return makespan + cost_model_.stage_overhead_s;
}

MakespanReport VirtualScheduler::Simulate(const JobProfile& job) const {
  MakespanReport report;
  report.slots = topology_.TotalSlots();
  report.total_s = cost_model_.job_overhead_s;
  std::uint64_t stage_salt = 0;
  for (const StageProfile& stage : job.stages) {
    const double stage_time = SimulateStage(stage, stage_salt++);
    report.stage_s.push_back(stage_time);
    report.total_s += stage_time;
    for (double compute : stage.task_compute_s) report.compute_s += compute;
  }
  // Overhead relative to the ideal (perfectly divisible work, no barriers).
  report.overhead_s =
      report.total_s - report.compute_s / std::max(1, report.slots);
  return report;
}

}  // namespace ss::cluster
