// Cluster topology description: instance type, node count, and the
// executor (container) layout on each node.
//
// Mirrors the paper's setup: m3.2xlarge EC2 instances (Table I), clusters
// of 6/12/18/36 nodes (Tables II, IV, VI, VII), and YARN container
// configurations varying executors-per-node × cores-per-executor
// (Table VIII).
#pragma once

#include <string>

#include "support/status.hpp"

namespace ss::cluster {

/// Hardware description of one node.
struct InstanceType {
  std::string name;
  int vcpus = 0;
  double memory_gib = 0.0;
  double storage_gb = 0.0;
};

/// Table I of the paper: m3.2xlarge — Intel Xeon E5-2670 v2 (Ivy Bridge),
/// 8 vCPU, 30 GiB, 2×80 GB SSD.
InstanceType M3_2xlarge();

/// A single-node "local" machine sized from the host (for tests/examples).
InstanceType LocalMachine();

/// Full cluster layout. The product nodes × executors_per_node is the
/// container count; slots = containers × cores_per_executor.
struct ClusterTopology {
  InstanceType instance = M3_2xlarge();
  int num_nodes = 1;
  int executors_per_node = 1;
  int cores_per_executor = 1;
  double memory_per_executor_gib = 1.0;

  /// YARN's DefaultResourceCalculator admits containers on memory alone and
  /// ignores vcores; that is how Table VIII's 6-cores-per-container config
  /// fits on 8-vCPU nodes. Set true to model DominantResourceCalculator.
  bool enforce_vcores = false;

  /// When > 0, the exact cluster-wide container count, for counts that do
  /// not divide evenly across nodes (Table VIII places 42 containers on
  /// 36 nodes — some nodes host two, most host one). executors_per_node
  /// then only bounds the per-node packing for Validate().
  int total_executors_override = 0;

  int TotalExecutors() const {
    return total_executors_override > 0 ? total_executors_override
                                        : num_nodes * executors_per_node;
  }
  int TotalSlots() const { return TotalExecutors() * cores_per_executor; }
  double TotalExecutorMemoryGib() const {
    return TotalExecutors() * memory_per_executor_gib;
  }

  /// Checks per-node CPU and memory capacity against the instance type.
  Status Validate() const;

  std::string ToString() const;
};

/// Convenience builders for the paper's configurations.
/// `EmrCluster(n)` = n m3.2xlarge nodes, one executor per node using all
/// 8 cores and 24 GiB (leaving headroom for YARN/OS, as EMR defaults do).
ClusterTopology EmrCluster(int num_nodes);

/// One row of Table VIII: `containers` spread over `num_nodes` nodes with
/// the given memory/cores per container.
ClusterTopology ContainerConfig(int num_nodes, int containers,
                                double memory_gib, int cores);

}  // namespace ss::cluster
