// Deterministic failure injection for the engine and DFS.
//
// Tests and the failover example arm failures ("kill node 2 after 5 task
// completions"); the engine polls the injector at task boundaries, which is
// where Spark also observes executor loss.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/check.hpp"
#include "support/ranked_mutex.hpp"

namespace ss::cluster {

class FaultInjector {
 public:
  /// Arms a node failure that fires after `task_completions` more tasks
  /// complete anywhere in the cluster.
  void FailNodeAfterTasks(int node, std::uint64_t task_completions);

  /// Arms a one-shot task failure: the next task whose (stage, partition)
  /// matches will report failure `times` times before succeeding.
  void FailTask(std::uint64_t stage_id, std::uint32_t partition, int times);

  /// Arms spill-store sabotage that fires after `task_completions` more
  /// tasks complete: every spill frame is corrupted (checksum will trip)
  /// or deleted outright. The cache must degrade to lineage recompute.
  void CorruptSpillAfterTasks(std::uint64_t task_completions);
  void DropSpillAfterTasks(std::uint64_t task_completions);

  /// Callback invoked when an armed node failure fires.
  void SetOnNodeFailure(std::function<void(int node)> callback);

  /// Callback invoked when an armed spill fault fires (`drop` false =
  /// corrupt frames in place, true = delete them).
  void SetOnSpillFault(std::function<void(bool drop)> callback);

  /// Engine hook: called after every task completion.
  void OnTaskCompleted();

  /// Engine hook: returns true if this attempt should fail (and consumes
  /// one armed failure).
  bool ShouldFailTask(std::uint64_t stage_id, std::uint32_t partition);

  /// True once the armed failure for `node` has fired.
  bool HasFired(int node) const;

  void Reset();

 private:
  struct PendingNodeFailure {
    int node;
    std::uint64_t remaining;
    bool fired = false;
  };
  struct PendingTaskFailure {
    std::uint64_t stage_id;
    std::uint32_t partition;
    int remaining;
  };
  struct PendingSpillFault {
    bool drop;
    std::uint64_t remaining;
    bool fired = false;
  };

  mutable support::RankedMutex mutex_{support::lock_rank::kFaultInjector};
  std::vector<PendingNodeFailure> node_failures_ SS_GUARDED_BY(mutex_);
  std::vector<PendingTaskFailure> task_failures_ SS_GUARDED_BY(mutex_);
  std::vector<PendingSpillFault> spill_faults_ SS_GUARDED_BY(mutex_);
  std::function<void(int)> on_node_failure_ SS_GUARDED_BY(mutex_);
  std::function<void(bool)> on_spill_fault_ SS_GUARDED_BY(mutex_);
};

}  // namespace ss::cluster
