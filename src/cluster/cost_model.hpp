// Cost model translating task metrics into simulated-cluster time.
//
// One physical core cannot demonstrate 6-node vs 18-node scaling, so the
// scaling benches replay *measured* per-task compute costs through an
// explicit analytical model of the distributed overheads Spark adds on a
// real cluster. Every parameter is documented and adjustable; defaults are
// order-of-magnitude figures for 2015-era EMR (1 GbE-ish effective
// inter-node bandwidth after TCP/serialization overheads, Spark task launch
// latency as reported by the Spark 1.x docs and the Sparrow paper).
//
// The model is deliberately simple and conservative: it captures the three
// effects the paper's experiments exercise — per-wave task scheduling,
// shuffle data movement, and the driver-side barrier between stages — and
// nothing speculative.
#pragma once

#include <cstdint>

namespace ss::cluster {

struct CostModel {
  /// Driver-side latency to launch one task (serialization of the closure,
  /// RPC, deserialization). Spark 1.x measured ~5-20 ms per task.
  double task_launch_overhead_s = 0.010;

  /// Fixed per-stage cost: DAG scheduling, broadcast of task binaries.
  double stage_overhead_s = 0.150;

  /// Effective point-to-point bandwidth for shuffle/broadcast traffic.
  double network_bandwidth_bytes_per_s = 100e6;  // ~0.8 Gb/s effective

  /// Per-byte serialization + deserialization CPU cost (both ends).
  double serialization_s_per_byte = 4e-9;

  /// Job submission/result collection constant.
  double job_overhead_s = 0.300;

  /// Straggler model: with probability `straggler_probability` a task runs
  /// `straggler_slowdown`x slower than measured (GC pause, noisy
  /// neighbour, degraded disk — the phenomena Spark's speculative
  /// execution exists for). 0 disables stragglers.
  double straggler_probability = 0.0;
  double straggler_slowdown = 8.0;

  /// Cost to move `bytes` across the network once, including ser/deser.
  double TransferSeconds(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / network_bandwidth_bytes_per_s +
           static_cast<double>(bytes) * serialization_s_per_byte;
  }
};

}  // namespace ss::cluster
