#include "cluster/topology.hpp"

#include <sstream>
#include <thread>

namespace ss::cluster {

InstanceType M3_2xlarge() {
  return InstanceType{.name = "m3.2xlarge",
                      .vcpus = 8,
                      .memory_gib = 30.0,
                      .storage_gb = 160.0};
}

InstanceType LocalMachine() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return InstanceType{.name = "local",
                      .vcpus = static_cast<int>(hw),
                      .memory_gib = 4.0,
                      .storage_gb = 64.0};
}

Status ClusterTopology::Validate() const {
  if (num_nodes < 1 || executors_per_node < 1 || cores_per_executor < 1) {
    return Status::InvalidArgument("all topology counts must be >= 1");
  }
  if (memory_per_executor_gib <= 0.0) {
    return Status::InvalidArgument("executor memory must be positive");
  }
  if (enforce_vcores &&
      executors_per_node * cores_per_executor > instance.vcpus) {
    return Status::ResourceExhausted(
        "executors x cores exceeds node vCPUs on " + instance.name);
  }
  if (executors_per_node * memory_per_executor_gib > instance.memory_gib) {
    return Status::ResourceExhausted(
        "executor memory exceeds node memory on " + instance.name);
  }
  return Status::Ok();
}

std::string ClusterTopology::ToString() const {
  std::ostringstream out;
  out << num_nodes << "x " << instance.name << " (" << TotalExecutors()
      << " executors, " << cores_per_executor << " cores & "
      << memory_per_executor_gib << " GiB each, " << TotalSlots()
      << " slots)";
  return out.str();
}

ClusterTopology EmrCluster(int num_nodes) {
  ClusterTopology topology;
  topology.instance = M3_2xlarge();
  topology.num_nodes = num_nodes;
  topology.executors_per_node = 1;
  topology.cores_per_executor = 8;
  topology.memory_per_executor_gib = 24.0;
  return topology;
}

ClusterTopology ContainerConfig(int num_nodes, int containers,
                                double memory_gib, int cores) {
  ClusterTopology topology;
  topology.instance = M3_2xlarge();
  topology.num_nodes = num_nodes;
  topology.executors_per_node =
      (containers + num_nodes - 1) / std::max(1, num_nodes);
  topology.total_executors_override = containers;
  topology.cores_per_executor = cores;
  topology.memory_per_executor_gib = memory_gib;
  return topology;
}

}  // namespace ss::cluster
