// cost_model.hpp is header-only; this translation unit exists so the
// library always has at least one object file per public header and to
// anchor the vtable-free struct's documentation in the build.
#include "cluster/cost_model.hpp"
