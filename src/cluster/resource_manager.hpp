// YARN-like resource manager: applications request containers with a
// (memory, vcores) shape; the RM places them on nodes with free capacity.
//
// Models the scheduling behaviour relevant to the paper's auto-tuning
// experiment (Fig 7 / Tables VII–VIII): how many containers of a given
// shape fit on a cluster, and on which nodes they land.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "support/ranked_mutex.hpp"
#include "support/status.hpp"

namespace ss::cluster {

/// Container request shape.
struct ContainerRequest {
  double memory_gib = 1.0;
  int vcores = 1;
};

/// A granted container.
struct Container {
  std::uint64_t id = 0;
  int node = 0;
  double memory_gib = 0.0;
  int vcores = 0;
};

/// Which resources gate placement; YARN's default considers memory only.
enum class ResourceCalculator { kMemoryOnly, kDominant };

class ResourceManager {
 public:
  ResourceManager(const InstanceType& instance, int num_nodes,
                  ResourceCalculator calculator = ResourceCalculator::kMemoryOnly,
                  double reserved_memory_gib = 6.0);

  /// Allocates one container on the least-loaded eligible node.
  /// ResourceExhausted if nothing fits.
  Result<Container> Allocate(const ContainerRequest& request);

  /// Allocates `count` identical containers, or fails without granting any
  /// (all-or-nothing, matching spark-submit --num-executors semantics).
  Result<std::vector<Container>> AllocateMany(const ContainerRequest& request,
                                              int count);

  /// Releases a previously granted container (idempotent).
  void Release(std::uint64_t container_id);

  /// Releases everything.
  void ReleaseAll();

  /// Marks a node unusable and releases its containers; returns how many
  /// containers were lost (the application must re-request them).
  int DecommissionNode(int node);
  void RecommissionNode(int node);

  int num_nodes() const {
    support::MutexLock lock(mutex_);
    return static_cast<int>(nodes_.size());
  }
  double FreeMemoryGib(int node) const;
  int FreeVcores(int node) const;
  int LiveContainerCount() const;

 private:
  struct NodeState {
    double free_memory_gib = 0.0;
    int free_vcores = 0;
    bool alive = true;
  };

  // Pure predicate over one NodeState snapshot; callers pass a reference
  // into nodes_ and therefore must already hold mutex_.
  bool Fits(const NodeState& node, const ContainerRequest& request) const
      SS_REQUIRES(mutex_);

  const ResourceCalculator calculator_;
  const double node_memory_gib_;
  const int node_vcores_;

  mutable support::RankedMutex mutex_{support::lock_rank::kResourceManager};
  std::vector<NodeState> nodes_ SS_GUARDED_BY(mutex_);
  std::vector<Container> live_ SS_GUARDED_BY(mutex_);
  std::uint64_t next_id_ SS_GUARDED_BY(mutex_) = 1;
};

}  // namespace ss::cluster
