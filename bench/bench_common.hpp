// Shared scaffolding for the reproduction benches.
//
// Each bench binary regenerates one table/figure of the paper. Problem
// sizes default to scaled-down values that finish in seconds on a laptop;
// pass key=value arguments (e.g. `bench_caching snps_large=100000 reps=5`)
// to approach the paper's sizes. Every bench prints the scale it ran at so
// EXPERIMENTS.md comparisons stay honest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "baseline/serial_skat.hpp"
#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "support/option_map.hpp"
#include "support/stopwatch.hpp"
#include "support/summary.hpp"
#include "support/table.hpp"

namespace ss::bench {

/// key=value command-line arguments with typed getters and unknown-key
/// diagnostics; shared with the CLI. Benches should finish with
/// `args.WarnUnknownKeys(<bench name>)` so typos are not silently ignored.
using Args = support::OptionMap;

/// Applies the shared observability keys every bench accepts:
/// trace=<file> enables the engine tracer (the file is written by
/// WriteRunArtifacts), metrics=<file> selects the run-summary path,
/// profile=0|1 toggles task-timeline collection (default on; results are
/// bitwise identical either way), and loglevel=debug|info|warn|error
/// adjusts stderr verbosity. Call once before the timing loops; see
/// docs/OBSERVABILITY.md.
void ConfigureObservability(const Args& args);

/// Writes the trace=/metrics= artifacts named in `args` from `ctx`'s
/// recorded state. A path of "-" streams instead of writing a file —
/// metrics to stdout, trace to stderr — for piping into tools/ss_prof.py
/// or tools/check_trace.py. No-op for keys that were not passed.
void WriteRunArtifacts(const Args& args, engine::EngineContext& ctx);

/// Prints the bench banner: paper reference, simulated hardware (Table I),
/// and the scale the bench runs at.
void PrintBanner(const std::string& bench_name, const std::string& reproduces,
                 const std::string& scale_note);

/// Times `fn` once, returning seconds.
double TimeOnce(const std::function<void()>& fn);

/// Times `fn` `reps` times, returning all measurements.
std::vector<double> TimeRepeated(int reps, const std::function<void()>& fn);

struct Workload;

/// Builds a fresh pipeline per repetition (outside the timer — generation
/// and DFS staging are not part of the measured analysis, matching the
/// paper's timing of the Spark job only) and times `fn` over it. When
/// `args` is given, the trace=/metrics= artifacts are written from the
/// last repetition's context before it is torn down.
std::vector<double> TimeAnalysisRuns(
    const Workload& workload, int reps,
    const std::function<void(core::SkatPipeline&)>& fn,
    const Args* args = nullptr);

/// "123.4 ± 5.6" formatting for Table III/V style cells.
std::string MeanStdevCell(const std::vector<double>& seconds);

/// A generated study plus the engine scaffolding to analyze it.
struct Workload {
  simdata::GeneratorConfig generator;
  core::PipelineConfig pipeline;
  engine::EngineContext::Options engine;

  /// Stage inputs in the mini-DFS and read them through Algorithm 1's
  /// text-file path (default). This matters for the caching experiment:
  /// without the cached U RDD each replicate re-reads and re-parses its
  /// inputs, exactly like Spark re-scanning HDFS. Set false for a pure
  /// in-memory pipeline.
  bool use_dfs = true;

  /// Builds a DFS (when configured) + context + pipeline over freshly
  /// generated data; all owned by the returned Instance, destroyed
  /// together (members declared in dependency order). Zeroes the
  /// process-global CounterRegistry first so each configuration's
  /// metrics JSON reflects only its own run.
  struct Instance {
    std::unique_ptr<dfs::MiniDfs> dfs;
    std::unique_ptr<engine::EngineContext> ctx;
    std::unique_ptr<core::SkatPipeline> pipeline;
  };
  Instance Build() const;
};

/// Default scaled-down workload derived from the paper's Table II shape
/// (n patients=1000, 100k SNPs, 1000 sets) shrunk by ~50x per dimension.
Workload DefaultWorkload(const Args& args, std::uint64_t snps_default = 2000,
                         std::uint64_t sets_default = 100);

}  // namespace ss::bench
