#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "stats/kernels/kernels.hpp"
#include "support/log.hpp"

namespace ss::bench {

void ConfigureObservability(const Args& args) {
  const std::string loglevel = args.GetStr("loglevel", "");
  if (!loglevel.empty()) {
    if (std::optional<LogLevel> level = ParseLogLevel(loglevel)) {
      SetLogLevel(*level);
    } else {
      std::fprintf(stderr, "unrecognized loglevel '%s' ignored\n",
                   loglevel.c_str());
    }
  }
  if (!args.GetStr("trace", "").empty()) {
    engine::Tracer::Global().Enable();
  }
  // profile=0 ablates task-timeline collection (results are bitwise
  // identical; the metrics JSON's timeline section reports collected:false).
  engine::SetProfilingEnabled(args.GetBool("profile", true));
  // kernel=scalar|sse2|avx2 forces the SIMD dispatch level process-wide
  // (same as SS_KERNEL; unsupported requests clamp down with a warning).
  const std::string kernel = args.GetStr("kernel", "");
  if (!kernel.empty()) {
    Result<stats::kernels::DispatchLevel> level =
        stats::kernels::ParseDispatchLevel(kernel);
    if (level.ok()) {
      stats::kernels::SetDispatchLevel(level.value());
    } else {
      std::fprintf(stderr, "%s; ignored\n",
                   level.status().ToString().c_str());
    }
  }
  // Registers the key for unknown-key diagnostics even in benches that
  // only write artifacts conditionally.
  args.GetStr("metrics", "");
  // Seed the unknown-key suggestion vocabulary with every registry key a
  // bench can honor, whether or not this bench's code paths read them.
  args.DeclareKeys({"workload", "engine", "exec", "observability", "bench"});
}

void WriteRunArtifacts(const Args& args, engine::EngineContext& ctx) {
  const std::string trace_path = args.GetStr("trace", "");
  if (trace_path == "-") {
    // Stream to stderr so the metrics stream (stdout) stays parseable.
    std::fputs(engine::Tracer::Global().ChromeTraceJson().c_str(), stderr);
  } else if (!trace_path.empty()) {
    if (engine::Tracer::Global().WriteChromeTraceJson(trace_path)) {
      std::printf("trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "could not write trace to %s\n", trace_path.c_str());
    }
  }
  const std::string metrics_path = args.GetStr("metrics", "");
  if (metrics_path == "-") {
    std::fputs(ctx.RunMetricsJson().c_str(), stdout);
  } else if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << ctx.RunMetricsJson();
    if (out.good()) {
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
}

void PrintBanner(const std::string& bench_name, const std::string& reproduces,
                 const std::string& scale_note) {
  const cluster::InstanceType m3 = cluster::M3_2xlarge();
  std::printf("==============================================================\n");
  std::printf("%s\n", bench_name.c_str());
  std::printf("Reproduces: %s\n", reproduces.c_str());
  std::printf("Paper: SparkScore (Bahmani et al., IPDPSW 2016)\n");
  std::printf("Simulated node (Table I): %s — %d vCPU, %.0f GiB, %.0f GB\n",
              m3.name.c_str(), m3.vcpus, m3.memory_gib, m3.storage_gb);
  std::printf("Scale: %s\n", scale_note.c_str());
  std::printf("==============================================================\n");
}

double TimeOnce(const std::function<void()>& fn) {
  Stopwatch stopwatch;
  fn();
  return stopwatch.ElapsedSeconds();
}

std::vector<double> TimeRepeated(int reps, const std::function<void()>& fn) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) seconds.push_back(TimeOnce(fn));
  return seconds;
}

std::vector<double> TimeAnalysisRuns(
    const Workload& workload, int reps,
    const std::function<void(core::SkatPipeline&)>& fn, const Args* args) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Workload::Instance instance = workload.Build();
    seconds.push_back(TimeOnce([&]() { fn(*instance.pipeline); }));
    if (args != nullptr && r + 1 == reps) {
      WriteRunArtifacts(*args, *instance.ctx);
    }
  }
  return seconds;
}

std::string MeanStdevCell(const std::vector<double>& seconds) {
  const Summary s = Summarize(seconds);
  return Table::Num(s.mean, 3) + " ± " + Table::Num(s.stdev, 3);
}

Workload::Instance Workload::Build() const {
  // Each configuration starts from zeroed process-global counters so its
  // metrics JSON reflects only its own run, not the accumulated totals of
  // earlier configurations in the same bench binary. Reset happens BEFORE
  // the context/pipeline are built: constructors re-stamp level gauges
  // (e.g. kernel.dispatch) that a later reset would wipe.
  engine::CounterRegistry::Global().ResetAll();
  Instance instance;
  if (use_dfs) {
    // Block size chosen so the genotype file splits into ~num_partitions
    // input partitions, matching the in-memory configuration.
    dfs::DfsOptions dfs_options;
    dfs_options.num_nodes = std::max(2, engine.topology.num_nodes);
    dfs_options.replication = 2;
    dfs_options.block_lines = std::max<std::uint32_t>(
        1, generator.num_snps / std::max(1u, pipeline.num_partitions));
    instance.dfs = std::make_unique<dfs::MiniDfs>(dfs_options);
    instance.ctx =
        std::make_unique<engine::EngineContext>(engine, instance.dfs.get());
    Result<simdata::StudyPaths> paths =
        simdata::GenerateToDfs(*instance.dfs, "/bench", generator);
    instance.pipeline = std::make_unique<core::SkatPipeline>(
        core::SkatPipeline::Open(*instance.ctx, paths.value(), pipeline)
            .value());
    return instance;
  }
  instance.ctx = std::make_unique<engine::EngineContext>(engine);
  const simdata::SyntheticDataset dataset = simdata::Generate(generator);
  instance.pipeline = std::make_unique<core::SkatPipeline>(
      core::SkatPipeline::FromMemory(*instance.ctx, dataset, pipeline));
  return instance;
}

Workload DefaultWorkload(const Args& args, std::uint64_t snps_default,
                         std::uint64_t sets_default) {
  Workload workload;
  workload.generator.num_patients =
      static_cast<std::uint32_t>(args.GetU64("patients", 200));
  workload.generator.num_snps =
      static_cast<std::uint32_t>(args.GetU64("snps", snps_default));
  workload.generator.num_sets =
      static_cast<std::uint32_t>(args.GetU64("sets", sets_default));
  workload.generator.seed = args.GetU64("seed", 2016);

  workload.pipeline.seed = workload.generator.seed;
  // Timing benches reproduce the paper's cost regime: per-patient (O(n²)
  // per SNP) Cox evaluation, re-executed per permutation replicate. Pass
  // faithful=0 to time this library's O(n) risk-set path instead.
  workload.pipeline.paper_faithful_scores = args.GetU64("faithful", 1) != 0;
  workload.pipeline.num_partitions =
      static_cast<std::uint32_t>(args.GetU64("partitions", 8));
  workload.pipeline.num_reducers =
      static_cast<std::uint32_t>(args.GetU64("reducers", 8));
  // Monte Carlo replicates per engine pass; results are bitwise invariant
  // to this knob (batch=1 recovers per-replicate scheduling).
  workload.pipeline.resampling_batch_size = std::max<std::uint64_t>(
      1, args.GetU64("batch", workload.pipeline.resampling_batch_size));

  workload.engine.topology =
      cluster::EmrCluster(static_cast<int>(args.GetU64("nodes", 6)));
  workload.engine.physical_threads = args.GetU64("threads", 4);
  workload.engine.seed = workload.generator.seed;
  // Constrained-memory runs: cache_budget= caps the partition cache (bytes,
  // 0 = unlimited) and spill_dir= redirects spill frames to real files.
  workload.engine.cache_capacity_bytes = args.GetU64("cache_budget", 0);
  workload.pipeline.cache_budget_bytes = workload.engine.cache_capacity_bytes;
  workload.engine.spill_dir = args.GetStr("spill_dir", "");
  // pack=0 ablates 2-bit packed genotype storage (bitwise-identical
  // results; only cache/spill bytes change).
  workload.pipeline.pack_genotypes = args.GetU64("pack", 1) != 0;
  // Async executor (registry group "exec"): prefetch=0 ablates the whole
  // I/O lane; results are bitwise invariant to all three knobs.
  workload.engine.exec.prefetch_depth =
      static_cast<int>(args.GetU64("prefetch", 1));
  workload.engine.exec.io_threads = static_cast<int>(
      std::max<std::uint64_t>(1, args.GetU64("io_threads", 1)));
  workload.engine.exec.spill_async = args.GetBool("spill_async", false);
  return workload;
}

}  // namespace ss::bench
