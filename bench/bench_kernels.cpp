// bench_kernels — microbenchmark for the runtime-dispatched SIMD kernels
// (src/stats/kernels): batched Monte Carlo MAC, Cox score scan, SKAT
// folds, and 2-bit genotype pack/unpack, timed at every dispatch level
// this CPU can execute. Cross-level outputs are verified bitwise equal
// while timing, so the speedup numbers are guaranteed to compare
// identical computations.
//
// Keys: patients= count= iters= snps= seed= out=<json path>
// `out=` writes a BENCH_kernels.json datapoint consumed by
// tools/check_kernel_speedup.py (the bench_kernels_smoke ctest gate).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "stats/kernels/kernels.hpp"
#include "stats/kernels/packed_genotype.hpp"

namespace ss::bench {
namespace {

using stats::kernels::DispatchLevel;

bool BitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Best-of-N timing: the minimum over repeated measurements is the
/// standard microbench estimator — scheduler noise and frequency dips
/// only ever inflate a sample, never deflate it.
double BestOf(int samples, const std::function<void()>& fn) {
  double best = TimeOnce(fn);
  for (int s = 1; s < samples; ++s) best = std::min(best, TimeOnce(fn));
  return best;
}

struct LevelTiming {
  const char* name = nullptr;
  double mac_seconds = 0.0;
  double cox_seconds = 0.0;
  double fold_seconds = 0.0;
};

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  const std::size_t n = args.GetU64("patients", 4096);
  const std::size_t count = args.GetU64("count", 256);
  const int iters = static_cast<int>(args.GetU64("iters", 40));
  const std::size_t num_snps = args.GetU64("snps", 512);
  const std::uint64_t seed = args.GetU64("seed", 2016);

  char scale[160];
  std::snprintf(scale, sizeof(scale),
                "patients=%zu count=%zu iters=%d snps=%zu", n, count, iters,
                num_snps);
  PrintBanner("bench_kernels",
              "SIMD kernel dispatch (MAC / Cox scan / SKAT folds / 2-bit "
              "genotype packing)",
              scale);

  Rng rng(seed);
  std::vector<double> u(n);
  std::vector<double> zblock(n * count);
  for (double& v : u) v = rng.NextDouble() * 2.0 - 1.0;
  for (double& v : zblock) v = rng.NextDouble() * 2.0 - 1.0;

  std::vector<std::uint8_t> event(n);
  std::vector<std::uint8_t> genotypes(n);
  std::vector<std::uint32_t> prefix_end(n);
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    event[i] = static_cast<std::uint8_t>(rng.NextBounded(2));
    genotypes[i] = static_cast<std::uint8_t>(rng.NextBounded(3));
    prefix_end[i] = static_cast<std::uint32_t>(1 + rng.NextBounded(n));
    prefix[i + 1] = prefix[i] + static_cast<double>(genotypes[i]);
  }

  const int best = static_cast<int>(stats::kernels::BestSupportedLevel());
  std::vector<LevelTiming> timings;
  std::vector<double> mac_reference;
  std::vector<double> cox_reference;
  bool bitwise_ok = true;

  for (int level = 0; level <= best; ++level) {
    const stats::kernels::KernelTable& table =
        stats::kernels::KernelsFor(static_cast<DispatchLevel>(level));
    LevelTiming timing;
    timing.name =
        stats::kernels::DispatchLevelName(static_cast<DispatchLevel>(level));

    std::vector<double> mac_out(count);
    table.batched_mac(u.data(), n, zblock.data(), count, mac_out.data());
    timing.mac_seconds = BestOf(5, [&]() {
                           for (int r = 0; r < iters; ++r) {
                             table.batched_mac(u.data(), n, zblock.data(),
                                               count, mac_out.data());
                           }
                         }) /
                         iters;

    std::vector<double> cox_out(n);
    table.cox_scan(event.data(), genotypes.data(), prefix.data(),
                   prefix_end.data(), n, cox_out.data());
    timing.cox_seconds = BestOf(5, [&]() {
                           for (int r = 0; r < iters; ++r) {
                             table.cox_scan(event.data(), genotypes.data(),
                                            prefix.data(), prefix_end.data(),
                                            n, cox_out.data());
                           }
                         }) /
                         iters;

    std::vector<double> skat(count, 0.0);
    std::vector<double> burden(count, 0.0);
    timing.fold_seconds =
        BestOf(5, [&]() {
          for (int r = 0; r < iters; ++r) {
            table.skat_burden_fold(mac_out.data(), count, 0.5, 0.25,
                                   skat.data(), burden.data());
          }
        }) /
        iters;

    if (level == 0) {
      mac_reference = mac_out;
      cox_reference = cox_out;
    } else if (!BitEqual(mac_out, mac_reference) ||
               !BitEqual(cox_out, cox_reference)) {
      bitwise_ok = false;
      std::fprintf(stderr, "BITWISE MISMATCH at level %s\n", timing.name);
    }
    timings.push_back(timing);
  }

  // Pack/unpack throughput and the byte savings the partition cache sees.
  std::vector<std::vector<std::uint8_t>> snps(num_snps);
  std::uint64_t unpacked_bytes = 0;
  for (auto& snp : snps) {
    snp.resize(n);
    for (auto& d : snp) d = static_cast<std::uint8_t>(rng.NextBounded(3));
    unpacked_bytes += snp.size();
  }
  std::vector<stats::PackedGenotypeBlock> blocks;
  blocks.reserve(num_snps);
  const double pack_seconds = TimeOnce([&]() {
    for (const auto& snp : snps) {
      blocks.push_back(stats::PackedGenotypeBlock::Pack(snp));
    }
  });
  std::uint64_t packed_bytes = 0;
  for (const auto& block : blocks) packed_bytes += block.payload().size();
  std::vector<std::uint8_t> scratch;
  std::uint64_t allele_sink = 0;
  const double unpack_seconds = TimeOnce([&]() {
    for (const auto& block : blocks) {
      block.UnpackInto(&scratch);
      allele_sink += scratch.back();
    }
  });

  Table table("Per-call kernel timings (seconds, lower is better)",
              {"level", "batched MAC", "Cox scan", "SKAT fold", "MAC speedup"});
  const double scalar_mac = timings.front().mac_seconds;
  for (const LevelTiming& t : timings) {
    table.AddRow({t.name, Table::Num(t.mac_seconds, 6),
                  Table::Num(t.cox_seconds, 6), Table::Num(t.fold_seconds, 6),
                  Table::Num(scalar_mac / t.mac_seconds, 2) + "x"});
  }
  table.Print();
  std::printf("  genotype packing: %llu -> %llu bytes (%.2fx), pack %.4fs, "
              "unpack %.4fs (allele sink %llu)\n",
              static_cast<unsigned long long>(unpacked_bytes),
              static_cast<unsigned long long>(packed_bytes),
              static_cast<double>(unpacked_bytes) /
                  static_cast<double>(packed_bytes),
              pack_seconds, unpack_seconds,
              static_cast<unsigned long long>(allele_sink));
  std::printf("  bitwise cross-level check: %s\n",
              bitwise_ok ? "identical" : "MISMATCH");

#if defined(__OPTIMIZE__)
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(SPARKSCORE_SANITIZE_BUILD)
  const bool sanitized = true;
#else
  const bool sanitized = false;
#endif

  const std::string out_path = args.GetStr("out", "");
  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "could not write datapoint to %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\"bench\":\"bench_kernels\",\"patients\":%zu,\"count\":%zu,"
                 "\"iters\":%d,\"snps\":%zu,\"optimized\":%s,\"sanitized\":%s,"
                 "\"bitwise_identical\":%s,\"best_level\":\"%s\",\"levels\":{",
                 n, count, iters, num_snps, optimized ? "true" : "false",
                 sanitized ? "true" : "false", bitwise_ok ? "true" : "false",
                 timings.back().name);
    for (std::size_t i = 0; i < timings.size(); ++i) {
      const LevelTiming& t = timings[i];
      std::fprintf(out,
                   "%s\"%s\":{\"mac_seconds\":%.9f,\"cox_seconds\":%.9f,"
                   "\"fold_seconds\":%.9f,\"mac_speedup\":%.4f}",
                   i == 0 ? "" : ",", t.name, t.mac_seconds, t.cox_seconds,
                   t.fold_seconds, scalar_mac / t.mac_seconds);
    }
    std::fprintf(out,
                 "},\"pack\":{\"unpacked_bytes\":%llu,\"packed_bytes\":%llu,"
                 "\"ratio\":%.4f,\"pack_seconds\":%.6f,\"unpack_seconds\":%.6f}"
                 "}\n",
                 static_cast<unsigned long long>(unpacked_bytes),
                 static_cast<unsigned long long>(packed_bytes),
                 static_cast<double>(unpacked_bytes) /
                     static_cast<double>(packed_bytes),
                 pack_seconds, unpack_seconds);
    std::fclose(out);
    std::printf("datapoint written to %s\n", out_path.c_str());
  }

  args.WarnUnknownKeys("bench_kernels");
  return bitwise_ok ? 0 : 1;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
