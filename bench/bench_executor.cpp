// Beyond the paper: what the async executor buys on a budget-constrained
// Monte Carlo run — the configuration where compute must share the
// critical path with spill writes, spill reloads, and per-batch Z-block
// generation, i.e. exactly the I/O the lane exists to overlap.
//
// Two runs of the same workload:
//   synchronous — prefetch=0 spill_async=0: the legacy loop; every
//                 reload, decode, frame write, and Z-block runs inline
//                 on the stage workers;
//   overlapped  — prefetch=N spill_async=1: reload+decode runs ahead of
//                 the compute frontier on the I/O lane, frame writes move
//                 off the evicting task, the next batch's Z-block is
//                 staged while the current one scores.
//
// The hard gate (bench_executor_smoke) is bitwise identity:
// `resampling.result_hash` must not move between the two runs — the lane
// changes scheduling, never results. Timing is reported (and recorded in
// the datapoint) but only the structural overlap evidence is gated:
// exec.io_jobs > 0, staged Z-blocks when batching, async frame writes
// when spilling.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "engine/trace.hpp"

namespace ss::bench {
namespace {

std::uint64_t Counter(const char* name) {
  return engine::CounterRegistry::Global().Get(name).load();
}

struct ConfigResult {
  double seconds = 0.0;
  std::uint64_t result_hash = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t prefetch_reloads = 0;
  std::uint64_t io_jobs = 0;
  std::uint64_t zblock_prefetches = 0;
  std::uint64_t spill_async_writes = 0;
  std::uint64_t spill_async_failures = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t spills = 0;
  std::uint64_t reloads = 0;
};

/// Times `reps` runs of the workload and snapshots the executor/cache
/// counters of the LAST run (Workload::Build zeroes the registry per run,
/// so post-run counters describe exactly one run).
ConfigResult RunConfig(const Workload& workload, std::uint64_t iters,
                       int reps, const Args* args) {
  ConfigResult out;
  out.seconds = Mean(TimeAnalysisRuns(
      workload, reps,
      [&](core::SkatPipeline& pipeline) {
        core::RunResampling(
            pipeline, {core::ResamplingMethod::kMonteCarlo, iters});
      },
      args));
  out.result_hash = Counter("resampling.result_hash");
  out.prefetches = Counter("exec.prefetches");
  out.prefetch_reloads = Counter("exec.prefetch_reloads");
  out.io_jobs = Counter("exec.io_jobs");
  out.zblock_prefetches = Counter("exec.zblock_prefetches");
  out.spill_async_writes = Counter("exec.spill_async_writes");
  out.spill_async_failures = Counter("exec.spill_async_failures");
  out.backpressure_waits = Counter("exec.backpressure_waits");
  out.spills = Counter("cache.spills");
  out.reloads = Counter("cache.reloads");
  return out;
}

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  const int reps = static_cast<int>(args.GetU64("reps", 2));
  const std::uint64_t iters = args.GetU64("budget_iters", 80);

  Workload base = DefaultWorkload(args, /*snps_default=*/400,
                                  /*sets_default=*/40);
  base.pipeline.cache_contributions = true;
  // Budget small enough to force eviction of cached U partitions, so the
  // run actually has spill/reload traffic to overlap (same default shape
  // as bench_caching's constrained-budget mode).
  const std::uint64_t u_bytes =
      static_cast<std::uint64_t>(base.generator.num_snps) *
      (static_cast<std::uint64_t>(base.generator.num_patients) * 8 + 48);
  const std::uint64_t budget =
      args.GetU64("budget", std::max<std::uint64_t>(1, u_bytes / 4));
  base.engine.cache_capacity_bytes = budget;
  base.pipeline.cache_budget_bytes = budget;

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u budget=%llu budget_iters=%llu "
                "batch=%llu reps=%d",
                base.generator.num_patients, base.generator.num_snps,
                base.generator.num_sets,
                static_cast<unsigned long long>(budget),
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(
                    base.pipeline.resampling_batch_size),
                reps);
  PrintBanner("bench_executor",
              "Beyond the paper: async I/O lane vs synchronous stage loop "
              "(budget-constrained MC)",
              scale);

  Workload sync = base;
  sync.engine.exec.prefetch_depth = 0;
  sync.engine.exec.spill_async = false;
  const ConfigResult sync_result = RunConfig(sync, iters, reps, nullptr);

  Workload overlap = base;
  overlap.engine.exec.prefetch_depth =
      static_cast<int>(args.GetU64("prefetch", 2));
  if (overlap.engine.exec.prefetch_depth <= 0) {
    overlap.engine.exec.prefetch_depth = 2;  // the point of this bench
  }
  overlap.engine.exec.io_threads =
      static_cast<int>(std::max<std::uint64_t>(1, args.GetU64("io_threads", 2)));
  overlap.engine.exec.spill_async = args.GetBool("spill_async", true);
  // Runs last with args so metrics=/trace= artifacts capture the
  // overlapped configuration (prefetch spans, exec.* counters).
  const ConfigResult overlap_result = RunConfig(overlap, iters, reps, &args);

  Table table("Budget-constrained MC @ " + std::to_string(iters) +
                  " iters, budget=" + std::to_string(budget) + " bytes",
              {"configuration", "seconds", "spills", "reloads", "io jobs"});
  table.AddRow({"synchronous (prefetch=0)", Table::Num(sync_result.seconds, 3),
                std::to_string(sync_result.spills),
                std::to_string(sync_result.reloads),
                std::to_string(sync_result.io_jobs)});
  table.AddRow({"overlapped (prefetch=" +
                    std::to_string(overlap.engine.exec.prefetch_depth) +
                    ", async spill)",
                Table::Num(overlap_result.seconds, 3),
                std::to_string(overlap_result.spills),
                std::to_string(overlap_result.reloads),
                std::to_string(overlap_result.io_jobs)});
  table.Print();

  const bool identical = sync_result.result_hash == overlap_result.result_hash;
  std::printf("  determinism: result hashes %s (%016llx vs %016llx)\n",
              identical ? "IDENTICAL" : "DIFFER",
              static_cast<unsigned long long>(sync_result.result_hash),
              static_cast<unsigned long long>(overlap_result.result_hash));
  std::printf("  overlap traffic: %llu prefetches (%llu hit spill frames), "
              "%llu z-blocks staged, %llu async frame writes "
              "(%llu failed), %llu backpressure waits\n",
              static_cast<unsigned long long>(overlap_result.prefetches),
              static_cast<unsigned long long>(overlap_result.prefetch_reloads),
              static_cast<unsigned long long>(overlap_result.zblock_prefetches),
              static_cast<unsigned long long>(overlap_result.spill_async_writes),
              static_cast<unsigned long long>(
                  overlap_result.spill_async_failures),
              static_cast<unsigned long long>(
                  overlap_result.backpressure_waits));
  std::printf("  shape check: overlapped (%.3fs) %s synchronous (%.3fs)\n\n",
              overlap_result.seconds,
              overlap_result.seconds < sync_result.seconds ? "BEATS"
                                                           : "does NOT beat",
              sync_result.seconds);

  const std::string datapoint_path = args.GetStr("datapoint", "");
  if (!datapoint_path.empty()) {
    std::FILE* out = std::fopen(datapoint_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(
          out,
          "{\"bench\":\"bench_executor\",\"mode\":\"budget\","
          "\"patients\":%u,\"snps\":%u,\"sets\":%u,\"iters\":%llu,"
          "\"budget_bytes\":%llu,\"batch\":%llu,"
          "\"prefetch\":%d,\"io_threads\":%d,\"spill_async\":%s,"
          "\"faithful\":%s,"
          "\"hashes_identical\":%s,"
          "\"result_hash\":{\"sync\":\"%016llx\",\"overlap\":\"%016llx\"},"
          "\"seconds\":{\"sync\":%.6f,\"overlap\":%.6f},"
          "\"exec\":{\"prefetches\":%llu,\"prefetch_reloads\":%llu,"
          "\"io_jobs\":%llu,\"zblock_prefetches\":%llu,"
          "\"spill_async_writes\":%llu,\"spill_async_failures\":%llu,"
          "\"backpressure_waits\":%llu},"
          "\"spills\":{\"sync\":%llu,\"overlap\":%llu},"
          "\"reloads\":{\"sync\":%llu,\"overlap\":%llu}}\n",
          base.generator.num_patients, base.generator.num_snps,
          base.generator.num_sets, static_cast<unsigned long long>(iters),
          static_cast<unsigned long long>(budget),
          static_cast<unsigned long long>(
              base.pipeline.resampling_batch_size),
          overlap.engine.exec.prefetch_depth, overlap.engine.exec.io_threads,
          overlap.engine.exec.spill_async ? "true" : "false",
          base.pipeline.paper_faithful_scores ? "true" : "false",
          identical ? "true" : "false",
          static_cast<unsigned long long>(sync_result.result_hash),
          static_cast<unsigned long long>(overlap_result.result_hash),
          sync_result.seconds, overlap_result.seconds,
          static_cast<unsigned long long>(overlap_result.prefetches),
          static_cast<unsigned long long>(overlap_result.prefetch_reloads),
          static_cast<unsigned long long>(overlap_result.io_jobs),
          static_cast<unsigned long long>(overlap_result.zblock_prefetches),
          static_cast<unsigned long long>(overlap_result.spill_async_writes),
          static_cast<unsigned long long>(
              overlap_result.spill_async_failures),
          static_cast<unsigned long long>(overlap_result.backpressure_waits),
          static_cast<unsigned long long>(sync_result.spills),
          static_cast<unsigned long long>(overlap_result.spills),
          static_cast<unsigned long long>(sync_result.reloads),
          static_cast<unsigned long long>(overlap_result.reloads));
      std::fclose(out);
      std::printf("datapoint written to %s\n", datapoint_path.c_str());
    } else {
      std::fprintf(stderr, "could not write datapoint to %s\n",
                   datapoint_path.c_str());
    }
  }

  args.WarnUnknownKeys("bench_executor");
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
