// Experiment B — impact of RDD caching on the Monte Carlo method.
// Reproduces Figures 4 & 5 and Tables IV & V.
//
// Paper shape to reproduce:
//   * cached MC is dramatically faster than uncached at every iteration
//     count > 0 (uncached recomputes the genotype -> U lineage, including
//     the DFS read + parse, every replicate);
//   * small matrix (Fig 4, 10k SNPs): cached @ 10000 iters beats uncached
//     @ 200 iters;
//   * large matrix (Fig 5, 1M SNPs): cached @ 1000 iters beats uncached
//     @ 10 iters.
//
// Paper scale (Table IV): n=1000, 10k & 1M SNPs, 1000 sets, 18 nodes.
// Defaults here shrink SNPs to 500 & 5000; override via `snps_small=
// snps_large= patients= reps=`.
#include <cstdio>

#include "bench_common.hpp"
#include "engine/trace.hpp"

namespace ss::bench {
namespace {

/// One Fig-4/5-style sweep over iteration counts, cached vs uncached.
/// The uncached sweep stops early (`uncached_max`) exactly as the paper's
/// N/A cells do — the configuration becomes impractically slow.
void RunSweep(const char* figure, const Workload& base,
              const std::vector<std::uint64_t>& iteration_counts,
              std::uint64_t uncached_max, int reps, const Args* args) {
  Table table(figure, {"iterations", "MC w/ cache", "MC w/o cache"});
  double cached_at_max = 0.0;
  double uncached_at_cutoff = 0.0;
  for (std::uint64_t iters : iteration_counts) {
    Workload cached = base;
    cached.pipeline.cache_contributions = true;
    const auto cached_runs = TimeAnalysisRuns(
        cached, reps,
        [&](core::SkatPipeline& pipeline) {
          core::RunMonteCarloMethod(pipeline, iters);
        },
        args);
    cached_at_max = Mean(cached_runs);

    std::string uncached_cell = "N/A";
    if (iters <= uncached_max) {
      Workload uncached = base;
      uncached.pipeline.cache_contributions = false;
      // Keep the paper's uncached cost model honest: a batched pass would
      // amortize the lineage recomputation over the whole batch, which is
      // exactly the effect Figures 4/5 exist to show the absence of.
      uncached.pipeline.resampling_batch_size = 1;
      const auto uncached_runs =
          TimeAnalysisRuns(uncached, reps, [&](core::SkatPipeline& pipeline) {
            core::RunMonteCarloMethod(pipeline, iters);
          });
      uncached_cell = MeanStdevCell(uncached_runs);
      uncached_at_cutoff = Mean(uncached_runs);
    }
    table.AddRow({std::to_string(iters), MeanStdevCell(cached_runs),
                  uncached_cell});
  }
  table.Print();
  std::printf("  shape check: cached @ %llu iters (%.3fs) %s uncached @ %llu "
              "iters (%.3fs)\n\n",
              static_cast<unsigned long long>(iteration_counts.back()),
              cached_at_max,
              cached_at_max < uncached_at_cutoff ? "BEATS" : "does NOT beat",
              static_cast<unsigned long long>(uncached_max),
              uncached_at_cutoff);
}

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  const std::uint64_t snps_small = args.GetU64("snps_small", 500);
  const std::uint64_t snps_large = args.GetU64("snps_large", 5000);
  const int reps = static_cast<int>(args.GetU64("reps", 2));

  // The small/large sweeps override snps/sets per figure; every other key
  // (patients=, seed=, batch=, threads=, ...) flows through DefaultWorkload.
  Workload small = DefaultWorkload(args, snps_small, snps_small / 10);
  small.generator.num_snps = static_cast<std::uint32_t>(snps_small);
  small.generator.num_sets = static_cast<std::uint32_t>(snps_small / 10);

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "snps_small=%llu snps_large=%llu reps=%d batch=%llu (paper "
                "Table IV: 10k & 1M SNPs, n=1000, 18 nodes, 5 reps)",
                static_cast<unsigned long long>(snps_small),
                static_cast<unsigned long long>(snps_large), reps,
                static_cast<unsigned long long>(
                    small.pipeline.resampling_batch_size));
  PrintBanner("bench_caching",
              "Figures 4 & 5 + Tables IV & V (MC with vs without caching)",
              scale);

  small.engine.topology = cluster::EmrCluster(18);
  // Fig 4's x-axis (10, 100, ..., 10000) scaled down by ~10.
  RunSweep("Figure 4 / Table V — small genotype matrix (seconds)", small,
           {0, 10, 50, 100, 200, 500, 1000},
           /*uncached_max=*/100, reps, &args);

  Workload large = small;
  large.generator.num_snps = static_cast<std::uint32_t>(snps_large);
  large.generator.num_sets = static_cast<std::uint32_t>(snps_large / 10);
  // Fig 5's x-axis (10..1000) scaled down by ~10.
  RunSweep("Figure 5 — large genotype matrix (seconds)", large,
           {0, 10, 50, 100}, /*uncached_max=*/10, reps, &args);

  // Per-replicate cost, amortized over every batch the sweeps ran — the
  // honest per-replicate figure now that one engine pass serves a whole
  // batch (see docs/OBSERVABILITY.md, `resampling.*` counters).
  const std::uint64_t nanos =
      engine::CounterRegistry::Global().Get("resampling.batch_nanos").load();
  const std::uint64_t replicates =
      engine::CounterRegistry::Global().Get("resampling.replicates").load();
  const std::uint64_t batches =
      engine::CounterRegistry::Global().Get("resampling.batches").load();
  if (replicates > 0) {
    std::printf("Replicate accounting: %llu replicates in %llu engine "
                "batches, %.3f ms/replicate amortized\n",
                static_cast<unsigned long long>(replicates),
                static_cast<unsigned long long>(batches),
                static_cast<double>(nanos) / 1e6 /
                    static_cast<double>(replicates));
  }
  args.WarnUnknownKeys("bench_caching");
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
