// Experiment B — impact of RDD caching on the Monte Carlo method.
// Reproduces Figures 4 & 5 and Tables IV & V.
//
// Paper shape to reproduce:
//   * cached MC is dramatically faster than uncached at every iteration
//     count > 0 (uncached recomputes the genotype -> U lineage, including
//     the DFS read + parse, every replicate);
//   * small matrix (Fig 4, 10k SNPs): cached @ 10000 iters beats uncached
//     @ 200 iters;
//   * large matrix (Fig 5, 1M SNPs): cached @ 1000 iters beats uncached
//     @ 10 iters.
//
// Paper scale (Table IV): n=1000, 10k & 1M SNPs, 1000 sets, 18 nodes.
// Defaults here shrink SNPs to 500 & 5000; override via `snps_small=
// snps_large= patients= reps=`.
#include <cstdio>

#include "bench_common.hpp"
#include "engine/trace.hpp"

namespace ss::bench {
namespace {

/// One Fig-4/5-style sweep over iteration counts, cached vs uncached.
/// The uncached sweep stops early (`uncached_max`) exactly as the paper's
/// N/A cells do — the configuration becomes impractically slow.
void RunSweep(const char* figure, const Workload& base,
              const std::vector<std::uint64_t>& iteration_counts,
              std::uint64_t uncached_max, int reps, const Args* args) {
  Table table(figure, {"iterations", "MC w/ cache", "MC w/o cache"});
  double cached_at_max = 0.0;
  double uncached_at_cutoff = 0.0;
  for (std::uint64_t iters : iteration_counts) {
    Workload cached = base;
    cached.pipeline.cache_contributions = true;
    const auto cached_runs = TimeAnalysisRuns(
        cached, reps,
        [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
        },
        args);
    cached_at_max = Mean(cached_runs);

    std::string uncached_cell = "N/A";
    if (iters <= uncached_max) {
      Workload uncached = base;
      uncached.pipeline.cache_contributions = false;
      // Keep the paper's uncached cost model honest: a batched pass would
      // amortize the lineage recomputation over the whole batch, which is
      // exactly the effect Figures 4/5 exist to show the absence of.
      uncached.pipeline.resampling_batch_size = 1;
      const auto uncached_runs =
          TimeAnalysisRuns(uncached, reps, [&](core::SkatPipeline& pipeline) {
            core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
          });
      uncached_cell = MeanStdevCell(uncached_runs);
      uncached_at_cutoff = Mean(uncached_runs);
    }
    table.AddRow({std::to_string(iters), MeanStdevCell(cached_runs),
                  uncached_cell});
  }
  table.Print();
  std::printf("  shape check: cached @ %llu iters (%.3fs) %s uncached @ %llu "
              "iters (%.3fs)\n\n",
              static_cast<unsigned long long>(iteration_counts.back()),
              cached_at_max,
              cached_at_max < uncached_at_cutoff ? "BEATS" : "does NOT beat",
              static_cast<unsigned long long>(uncached_max),
              uncached_at_cutoff);
}

/// Constrained-budget mode: a cache budget small enough to force eviction
/// of the cached U partitions, run three ways at the same iteration count:
///   unlimited     — every U partition stays resident (reference);
///   tight+spill   — evicted partitions move to the spill tier, misses
///                   reload + decode them;
///   tight w/o spill — evictions discard, misses replay the lineage.
/// In the paper-faithful cost regime a U partition costs O(n²) per SNP to
/// recompute but only O(bytes) to reload, so the spill tier must win; the
/// shape check (and tools/check_spill_benefit.py in the smoke suite)
/// asserts exactly that. `datapoint=<file>` records the result as JSON.
void RunConstrainedBudget(const Workload& base, int reps, const Args& args) {
  // Default budget: ~a quarter of the U RDD footprint (one row of n
  // doubles per SNP), forcing evictions while keeping some partitions.
  const std::uint64_t u_bytes =
      static_cast<std::uint64_t>(base.generator.num_snps) *
      (static_cast<std::uint64_t>(base.generator.num_patients) * 8 + 48);
  const std::uint64_t budget =
      args.GetU64("budget", std::max<std::uint64_t>(1, u_bytes / 4));
  const std::uint64_t iters = args.GetU64("budget_iters", 100);

  Workload unlimited = base;
  unlimited.pipeline.cache_contributions = true;
  Workload tight = unlimited;
  tight.engine.cache_capacity_bytes = budget;
  tight.pipeline.cache_budget_bytes = budget;
  Workload no_spill = tight;
  no_spill.engine.cache_spill = false;

  const auto mc = [iters](core::SkatPipeline& pipeline) {
    core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
  };
  const double t_unlimited = Mean(TimeAnalysisRuns(unlimited, reps, mc));
  const double t_recompute = Mean(TimeAnalysisRuns(no_spill, reps, mc));
  auto& spills_counter = engine::CounterRegistry::Global().Get("cache.spills");
  auto& reloads_counter =
      engine::CounterRegistry::Global().Get("cache.reloads");
  const std::uint64_t spills_before = spills_counter.load();
  const std::uint64_t reloads_before = reloads_counter.load();
  // Runs last with args so metrics=/trace= artifacts capture a run whose
  // cache stats include nonzero spills and reloads.
  const double t_spill = Mean(TimeAnalysisRuns(tight, reps, mc, &args));
  const std::uint64_t spills = spills_counter.load() - spills_before;
  const std::uint64_t reloads = reloads_counter.load() - reloads_before;

  Table table("Constrained budget — MC @ " + std::to_string(iters) +
                  " iters, budget=" + std::to_string(budget) + " bytes",
              {"configuration", "seconds"});
  table.AddRow({"unlimited memory", Table::Num(t_unlimited, 3)});
  table.AddRow({"tight + spill tier", Table::Num(t_spill, 3)});
  table.AddRow({"tight, lineage recompute", Table::Num(t_recompute, 3)});
  table.Print();
  std::printf("  spill traffic: %llu spills, %llu reloads\n",
              static_cast<unsigned long long>(spills),
              static_cast<unsigned long long>(reloads));
  std::printf("  shape check: reload-from-spill (%.3fs) %s lineage "
              "recompute (%.3fs) under budget=%llu\n\n",
              t_spill, t_spill < t_recompute ? "BEATS" : "does NOT beat",
              t_recompute, static_cast<unsigned long long>(budget));

  const std::string datapoint_path = args.GetStr("datapoint", "");
  if (!datapoint_path.empty()) {
    std::FILE* out = std::fopen(datapoint_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(
          out,
          "{\"bench\":\"bench_caching\",\"mode\":\"constrained_budget\","
          "\"patients\":%u,\"snps\":%u,\"iters\":%llu,\"budget_bytes\":%llu,"
          "\"faithful\":%s,"
          "\"seconds\":{\"unlimited\":%.6f,\"tight_spill\":%.6f,"
          "\"tight_recompute\":%.6f},"
          "\"spills\":%llu,\"reloads\":%llu}\n",
          base.generator.num_patients, base.generator.num_snps,
          static_cast<unsigned long long>(iters),
          static_cast<unsigned long long>(budget),
          base.pipeline.paper_faithful_scores ? "true" : "false",
          t_unlimited, t_spill, t_recompute,
          static_cast<unsigned long long>(spills),
          static_cast<unsigned long long>(reloads));
      std::fclose(out);
      std::printf("datapoint written to %s\n", datapoint_path.c_str());
    } else {
      std::fprintf(stderr, "could not write datapoint to %s\n",
                   datapoint_path.c_str());
    }
  }
}

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  const std::uint64_t snps_small = args.GetU64("snps_small", 500);
  const std::uint64_t snps_large = args.GetU64("snps_large", 5000);
  const int reps = static_cast<int>(args.GetU64("reps", 2));

  // The small/large sweeps override snps/sets per figure; every other key
  // (patients=, seed=, batch=, threads=, ...) flows through DefaultWorkload.
  Workload small = DefaultWorkload(args, snps_small, snps_small / 10);
  small.generator.num_snps = static_cast<std::uint32_t>(snps_small);
  small.generator.num_sets = static_cast<std::uint32_t>(snps_small / 10);

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "snps_small=%llu snps_large=%llu reps=%d batch=%llu (paper "
                "Table IV: 10k & 1M SNPs, n=1000, 18 nodes, 5 reps)",
                static_cast<unsigned long long>(snps_small),
                static_cast<unsigned long long>(snps_large), reps,
                static_cast<unsigned long long>(
                    small.pipeline.resampling_batch_size));
  PrintBanner("bench_caching",
              "Figures 4 & 5 + Tables IV & V (MC with vs without caching)",
              scale);

  small.engine.topology = cluster::EmrCluster(18);
  // `mode=budget` skips the figure sweeps and runs only the constrained-
  // budget comparison (used by the bench_smoke spill-benefit check).
  const bool sweeps = args.GetStr("mode", "all") != "budget";
  if (sweeps) {
    // Fig 4's x-axis (10, 100, ..., 10000) scaled down by ~10.
    RunSweep("Figure 4 / Table V — small genotype matrix (seconds)", small,
             {0, 10, 50, 100, 200, 500, 1000},
             /*uncached_max=*/100, reps, &args);

    Workload large = small;
    large.generator.num_snps = static_cast<std::uint32_t>(snps_large);
    large.generator.num_sets = static_cast<std::uint32_t>(snps_large / 10);
    // Fig 5's x-axis (10..1000) scaled down by ~10.
    RunSweep("Figure 5 — large genotype matrix (seconds)", large,
             {0, 10, 50, 100}, /*uncached_max=*/10, reps, &args);
  }

  // Beyond the paper: what a budget too small for the U RDD costs, with
  // and without the spill tier (budget= budget_iters= datapoint= keys).
  RunConstrainedBudget(small, reps, args);

  // Per-replicate cost, amortized over every batch the sweeps ran — the
  // honest per-replicate figure now that one engine pass serves a whole
  // batch (see docs/OBSERVABILITY.md, `resampling.*` counters).
  const std::uint64_t nanos =
      engine::CounterRegistry::Global().Get("resampling.batch_nanos").load();
  const std::uint64_t replicates =
      engine::CounterRegistry::Global().Get("resampling.replicates").load();
  const std::uint64_t batches =
      engine::CounterRegistry::Global().Get("resampling.batches").load();
  if (replicates > 0) {
    std::printf("Replicate accounting: %llu replicates in %llu engine "
                "batches, %.3f ms/replicate amortized\n",
                static_cast<unsigned long long>(replicates),
                static_cast<unsigned long long>(batches),
                static_cast<double>(nanos) / 1e6 /
                    static_cast<double>(replicates));
  }
  args.WarnUnknownKeys("bench_caching");
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
