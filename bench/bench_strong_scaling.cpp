// Experiment C (first part) — strong scaling. Reproduces Figure 6 and
// Table VI: the same large-SNP Monte Carlo job on 6, 12, and 18
// m3.2xlarge nodes at 0/10/20 iterations.
//
// The paper's text claims the 18-node cluster is two orders of magnitude
// faster than 6 nodes at 20 iterations — far beyond the 3x slot ratio.
// The mechanism that produces such superlinear gaps on real Spark/EMR is
// aggregate cache capacity: with 2015-era executor-memory defaults, six
// nodes cannot hold the 1M-SNP U RDD in memory, so every Monte Carlo
// iteration evicts and recomputes it through lineage (the uncached regime
// of Figure 5), while 12-18 nodes keep it resident. This bench models
// exactly that: each node contributes a fixed cache budget, sized so the
// U RDD fits in the aggregate memory of the larger clusters only.
//
// Method: for each node count the job executes for real with that
// cluster's cache budget (recomputation costs land in the measured task
// times), then the virtual scheduler replays the recorded profile onto
// the topology to produce the cluster makespan.
#include <cstdio>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  Workload base = DefaultWorkload(args, /*snps_default=*/3000,
                                  /*sets_default=*/200);
  base.generator.num_patients =
      static_cast<std::uint32_t>(args.GetU64("patients", 400));
  base.pipeline.num_partitions =
      static_cast<std::uint32_t>(args.GetU64("partitions", 96));
  base.pipeline.num_reducers =
      static_cast<std::uint32_t>(args.GetU64("reducers", 32));

  // The data are scaled ~50x below the paper's; the scheduling overheads
  // must scale with them or they dominate every prediction and flatten
  // all scaling curves (a 150 ms stage overhead is 'free' next to a
  // 1250 s full-scale iteration but crushing next to a 50 ms scaled one).
  // Dividing the fixed overheads by the same factor preserves the
  // full-scale compute-to-overhead ratio.
  base.engine.cost_model.stage_overhead_s = 0.002;
  base.engine.cost_model.task_launch_overhead_s = 0.0005;
  base.engine.cost_model.job_overhead_s = 0.010;

  // U RDD footprint: one double per patient per SNP plus container
  // overhead. The per-node budget defaults to 1/10 of it, so the 6-node
  // aggregate (0.6x U) evicts while 12 nodes (1.2x) and 18 nodes (1.8x)
  // hold it — mirroring the paper's 1M-SNP job against per-node executor
  // memory.
  const std::uint64_t u_bytes =
      static_cast<std::uint64_t>(base.generator.num_snps) *
      (8ULL * base.generator.num_patients + 48ULL);
  const std::uint64_t per_node_cache =
      args.GetU64("per_node_cache_bytes", u_bytes / 10);

  char scale[512];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u partitions=%u U~%.1fMB "
                "cache/node=%.1fMB (paper Table VI: n=1000, 1M SNPs, 1000 "
                "sets)",
                base.generator.num_patients, base.generator.num_snps,
                base.generator.num_sets, base.pipeline.num_partitions,
                static_cast<double>(u_bytes) / 1e6,
                static_cast<double>(per_node_cache) / 1e6);
  PrintBanner("bench_strong_scaling",
              "Figure 6 + Table VI (strong scaling, 6/12/18 nodes)", scale);

  const std::vector<std::uint64_t> iteration_counts = {0, 10, 20};
  const std::vector<int> node_counts = {6, 12, 18};

  Table figure6("Figure 6 — predicted execution time (seconds) on the "
                "simulated EMR clusters",
                {"iterations", "6 nodes", "12 nodes", "18 nodes",
                 "speedup 6->18"});
  Table cache_table("Cache behaviour per configuration (20 iterations)",
                    {"nodes", "aggregate cache (MB)", "U fits", "hits",
                     "misses", "evictions"});

  double speedup_at_20 = 0.0;
  for (std::uint64_t iters : iteration_counts) {
    std::vector<std::string> row = {std::to_string(iters)};
    double t6 = 0.0;
    double t18 = 0.0;
    for (int nodes : node_counts) {
      Workload workload = base;
      workload.engine.topology = cluster::EmrCluster(nodes);
      workload.engine.cache_capacity_bytes =
          per_node_cache * static_cast<std::uint64_t>(nodes);

      Workload::Instance instance = workload.Build();
      instance.ctx->metrics().Reset();
      core::RunResampling(*instance.pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
      if (iters == iteration_counts.back() && nodes == node_counts.back()) {
        WriteRunArtifacts(args, *instance.ctx);
      }
      const double t =
          instance.ctx->ReplayOn(workload.engine.topology).total_s;
      row.push_back(Table::Num(t, 2));
      if (nodes == 6) t6 = t;
      if (nodes == 18) t18 = t;

      if (iters == iteration_counts.back()) {
        const engine::CacheStats stats = instance.ctx->cache().stats();
        const std::uint64_t aggregate =
            per_node_cache * static_cast<std::uint64_t>(nodes);
        cache_table.AddRow(
            {std::to_string(nodes),
             Table::Num(static_cast<double>(aggregate) / 1e6, 1),
             aggregate > u_bytes ? "yes" : "NO",
             std::to_string(stats.hits), std::to_string(stats.misses),
             std::to_string(stats.evictions)});
      }
    }
    row.push_back(Table::Num(t6 / std::max(1e-9, t18), 1) + "x");
    figure6.AddRow(std::move(row));
    if (iters == 20) speedup_at_20 = t6 / std::max(1e-9, t18);
  }
  figure6.Print();
  cache_table.Print();

  std::printf("\nShape checks:\n");
  std::printf("  6->18 node speedup at 20 iterations: %.1fx — superlinear "
              "(>3x slot ratio) because the 6-node aggregate cache cannot "
              "hold the U RDD and every iteration recomputes it (paper "
              "text: two orders of magnitude; see EXPERIMENTS.md)\n",
              speedup_at_20);
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
