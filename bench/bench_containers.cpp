// Experiment C (second part) — Spark run-time properties on YARN.
// Reproduces Figure 7 and Tables VII & VIII: the same 1M-SNP job under
// three container configurations on a 36-node cluster — 42 x (10 GiB, 6
// cores), 84 x (5 GiB, 3 cores), 126 x (3 GiB, 2 cores).
//
// Paper shape: the performance difference between container splits at a
// fixed node count is almost negligible (the slot total barely moves and
// the workload is compute-bound).
#include <cstdio>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  Workload workload = DefaultWorkload(args, /*snps_default=*/5000,
                                      /*sets_default=*/200);
  workload.pipeline.num_partitions =
      static_cast<std::uint32_t>(args.GetU64("partitions", 512));
  workload.pipeline.num_reducers =
      static_cast<std::uint32_t>(args.GetU64("reducers", 64));

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u partitions=%u (paper Table VII: "
                "n=1000, 1M SNPs, 1000 sets, 36 nodes)",
                workload.generator.num_patients, workload.generator.num_snps,
                workload.generator.num_sets,
                workload.pipeline.num_partitions);
  PrintBanner("bench_containers",
              "Figure 7 + Tables VII & VIII (container auto-tuning on YARN)",
              scale);

  // Table VIII rows, validated against the YARN-like ResourceManager.
  const std::vector<cluster::ClusterTopology> configs =
      core::ContainerSweepCandidates();
  Table table8("Table VIII — container configurations (36 nodes)",
               {"containers", "memory/container (GiB)", "cores/container",
                "total slots", "placeable"});
  for (const auto& topology : configs) {
    table8.AddRow({std::to_string(topology.TotalExecutors()),
                   Table::Num(topology.memory_per_executor_gib, 0),
                   std::to_string(topology.cores_per_executor),
                   std::to_string(topology.TotalSlots()),
                   core::IsPlaceable(topology) ? "yes" : "no"});
  }
  table8.Print();

  const std::vector<std::uint64_t> iteration_counts = {0, 10, 100};
  Table figure7("Figure 7 — predicted execution time (seconds) per container "
                "configuration",
                {"iterations", "42 containers", "84 containers",
                 "126 containers", "max/min"});
  for (std::uint64_t iters : iteration_counts) {
    Workload::Instance instance = workload.Build();
    instance.ctx->metrics().Reset();
    core::RunResampling(*instance.pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
    if (iters == iteration_counts.back()) {
      WriteRunArtifacts(args, *instance.ctx);
    }

    std::vector<std::string> row = {std::to_string(iters)};
    double lo = 1e100;
    double hi = 0.0;
    for (const auto& topology : configs) {
      const double t = instance.ctx->ReplayOn(topology).total_s;
      row.push_back(Table::Num(t, 2));
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    row.push_back(Table::Num(hi / std::max(1e-9, lo), 3) + "x");
    figure7.AddRow(std::move(row));
  }
  figure7.Print();

  std::printf("\nShape check: max/min spread per row should stay close to "
              "1.0 (paper: \"performance difference ... is almost "
              "negligible\").\n");
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
