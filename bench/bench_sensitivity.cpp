// Sensitivity — Figure 3: with the product iterations x SNPs held
// constant, runtime within each method stays roughly flat (the same total
// work), while Monte Carlo beats permutation at every configuration.
//
// Paper configurations: 1000x10k, 100x100k, 10x1M (n=1000 patients).
// Default scale here divides both factors by ~10-20; override via
// `patients= work= reps=` where `work` = iterations x SNPs.
#include <cstdio>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  // Iteration counts are kept large relative to the single observed pass
  // (as in the paper, where even the 10-iteration configuration amortizes
  // the observed 1M-SNP pass); otherwise the observed pass skews the
  // few-iteration configurations upward.
  const std::uint64_t patients = args.GetU64("patients", 100);
  const std::uint64_t work = args.GetU64("work", 300000);  // iters x snps
  const int reps = static_cast<int>(args.GetU64("reps", 2));

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "patients=%llu iterations*snps=%llu reps=%d (paper: "
                "n=1000, product=10^7)",
                static_cast<unsigned long long>(patients),
                static_cast<unsigned long long>(work), reps);
  PrintBanner("bench_sensitivity",
              "Figure 3 (runtime under constant iterations x SNPs)", scale);

  // Three configurations spanning two orders of magnitude in the split,
  // like the paper's 1000x10k / 100x100k / 10x1M.
  struct Config {
    std::uint64_t iterations;
    std::uint64_t snps;
  };
  const std::vector<Config> configs = {
      {work / 1000, 1000}, {work / 10000, 10000}, {std::max<std::uint64_t>(work / 100000, 1), 100000}};

  Table figure3("Figure 3 — execution time (seconds), iterations x SNPs constant",
                {"iterations x SNPs", "Monte Carlo", "Permutation"});

  std::vector<double> mc_means;
  std::vector<double> perm_means;
  for (const Config& config : configs) {
    Args workload_args(0, nullptr);
    Workload workload = DefaultWorkload(workload_args, config.snps,
                                        std::max<std::uint64_t>(config.snps / 100, 1));
    workload.generator.num_patients = static_cast<std::uint32_t>(patients);
    workload.generator.num_snps = static_cast<std::uint32_t>(config.snps);

    const auto mc_runs =
        TimeAnalysisRuns(workload, reps, [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, config.iterations}).scores;
        });
    const auto perm_runs = TimeAnalysisRuns(
        workload, reps,
        [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kPermutation, config.iterations}).scores;
        },
        &args);
    mc_means.push_back(Mean(mc_runs));
    perm_means.push_back(Mean(perm_runs));
    figure3.AddRow({std::to_string(config.iterations) + " x " +
                        std::to_string(config.snps),
                    Table::Num(mc_means.back(), 3),
                    Table::Num(perm_means.back(), 3)});
  }
  figure3.Print();

  std::printf("\nShape checks:\n");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::printf("  config %zu: MC %s permutation (%.3fs vs %.3fs)\n", i + 1,
                mc_means[i] < perm_means[i] ? "beats" : "does NOT beat",
                mc_means[i], perm_means[i]);
  }
  const double perm_spread =
      *std::max_element(perm_means.begin(), perm_means.end()) /
      std::max(1e-9, *std::min_element(perm_means.begin(), perm_means.end()));
  std::printf("  permutation spread across configs: %.2fx (paper: ~flat; "
              "per-iteration fixed costs make the few-iteration configs "
              "relatively cheaper at this scale)\n", perm_spread);
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
