// Out-of-core paper scale: the 1M-SNP x 1k-patient cohort the paper's
// cluster handles, on one machine, under a cache budget far below the
// data size. The cohort is staged once into a memory-mapped packed
// genotype store (simdata::GenerateToStore — streaming, never holding
// the dense matrix); every configuration then reopens that file with
// SkatPipeline::OpenFromStore and runs budget-constrained Monte Carlo
// resampling over partitions streamed off the mmap.
//
// What the table shows, per cache budget:
//   * throughput (replicate-SNP scores/s) — the cost of streaming vs
//     keeping everything resident;
//   * peak RSS — the point of the store: it must track budget + a fixed
//     driver-side slack, not the data size. Budgets run tightest-first
//     and the unlimited baseline last, so each constrained run's RSS
//     delta is measured before the resident-everything run inflates the
//     process footprint.
//
// Gates (exit code): result hashes bitwise identical across budgets,
// zero store corruption, and the flat-RSS assertion
// peak_rss - baseline <= budget + rss_slack_mb for every constrained
// run. Throughput ratios are reported in the datapoint and gated by
// tools/check_scale.py (tight budget must stay within 2x of unlimited).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "core/resampling_methods.hpp"
#include "dfs/genotype_store.hpp"
#include "engine/trace.hpp"
#include "simdata/store_codec.hpp"

namespace ss::bench {
namespace {

std::uint64_t Counter(const char* name) {
  return engine::CounterRegistry::Global().Get(name).load();
}

/// Resident-set size of this process in bytes (0 where unsupported).
std::uint64_t CurrentRssBytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long pages_total = 0;
  unsigned long long pages_resident = 0;
  const int got = std::fscanf(statm, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(statm);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(pages_resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

/// Samples RSS on a background thread for the duration of one run and
/// keeps the maximum — the mmap'd store pages count toward it, so frame
/// retirement (MADV_DONTNEED) is part of what this measures.
class RssSampler {
 public:
  RssSampler()
      : baseline_(CurrentRssBytes()),
        peak_(baseline_),
        thread_([this] { Loop(); }) {}

  RssSampler(const RssSampler&) = delete;
  RssSampler& operator=(const RssSampler&) = delete;

  ~RssSampler() { Stop(); }

  void Stop() {
    if (!stopped_.exchange(true) && thread_.joinable()) {
      thread_.join();
      Sample();  // one final sample after the workload finished
    }
  }

  std::uint64_t baseline() const { return baseline_; }
  std::uint64_t peak() const { return peak_.load(); }

 private:
  void Loop() {
    while (!stopped_.load()) {
      Sample();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  void Sample() {
    const std::uint64_t now = CurrentRssBytes();
    std::uint64_t seen = peak_.load();
    while (now > seen && !peak_.compare_exchange_weak(seen, now)) {
    }
  }

  std::uint64_t baseline_;
  std::atomic<std::uint64_t> peak_;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

struct ScaleRun {
  std::uint64_t budget = 0;  ///< cache budget in bytes; 0 = unlimited
  double seconds = 0.0;
  double scores_per_sec = 0.0;  ///< snps * iters / seconds
  std::uint64_t result_hash = 0;
  std::uint64_t baseline_rss = 0;
  std::uint64_t peak_rss = 0;
  std::uint64_t spills = 0;
  std::uint64_t reloads = 0;
  std::uint64_t store_opens = 0;
  std::uint64_t frame_reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t prefetch_frames = 0;
  std::uint64_t corrupt = 0;

  std::uint64_t RssDelta() const {
    return peak_rss > baseline_rss ? peak_rss - baseline_rss : 0;
  }
};

/// One budget configuration: fresh context + pipeline reopened from the
/// staged store, one timed resampling run, counters snapshotted after.
std::optional<ScaleRun> RunBudget(const Workload& base,
                                  const std::string& store_path,
                                  std::uint64_t fingerprint,
                                  std::uint64_t budget, std::uint64_t iters,
                                  const Args* args) {
  engine::CounterRegistry::Global().ResetAll();
  engine::EngineContext::Options options = base.engine;
  options.cache_capacity_bytes = budget;
  core::PipelineConfig pipeline_config = base.pipeline;
  pipeline_config.cache_budget_bytes = budget;

  engine::EngineContext ctx(options);
  auto pipeline = core::SkatPipeline::OpenFromStore(ctx, store_path,
                                                    pipeline_config, fingerprint);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "bench_scale: OpenFromStore failed: %s\n",
                 pipeline.status().ToString().c_str());
    return std::nullopt;
  }

  ScaleRun run;
  run.budget = budget;
  RssSampler rss;
  run.seconds = TimeOnce([&] {
    core::RunResampling(pipeline.value(),
                        {core::ResamplingMethod::kMonteCarlo, iters});
  });
  rss.Stop();
  run.baseline_rss = rss.baseline();
  run.peak_rss = rss.peak();
  run.scores_per_sec =
      run.seconds > 0.0
          ? static_cast<double>(base.generator.num_snps) *
                static_cast<double>(iters) / run.seconds
          : 0.0;
  run.result_hash = Counter("resampling.result_hash");
  run.spills = Counter("cache.spills");
  run.reloads = Counter("cache.reloads");
  run.store_opens = Counter("store.opens");
  run.frame_reads = Counter("store.frame_reads");
  run.read_bytes = Counter("store.read_bytes");
  run.prefetch_frames = Counter("store.prefetch_frames");
  run.corrupt = Counter("store.corrupt");
  if (args != nullptr) WriteRunArtifacts(*args, ctx);
  return run;
}

std::vector<std::uint64_t> ParseBudgets(const std::string& text,
                                        std::uint64_t store_bytes) {
  std::vector<std::uint64_t> budgets;
  if (!text.empty()) {
    std::size_t begin = 0;
    while (begin <= text.size()) {
      const std::size_t comma = text.find(',', begin);
      const std::string token =
          text.substr(begin, comma == std::string::npos ? std::string::npos
                                                        : comma - begin);
      if (!token.empty()) {
        budgets.push_back(std::strtoull(token.c_str(), nullptr, 10));
      }
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  if (budgets.empty()) {
    // Default sweep: unlimited baseline plus budgets at the packed file
    // size and far below it (the out-of-core regime the store exists for).
    budgets = {0, store_bytes, store_bytes / 4, store_bytes / 16};
  }
  // Tightest first, unlimited (0) last: constrained runs measure their
  // RSS before the resident-everything baseline bloats the allocator.
  std::sort(budgets.begin(), budgets.end(), [](std::uint64_t a, std::uint64_t b) {
    if ((a == 0) != (b == 0)) return b == 0;
    return a < b;
  });
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);

  // Paper-scale defaults (Table II's 1M-SNP row): override for smoke runs.
  Workload base = DefaultWorkload(args, /*snps_default=*/1'000'000,
                                  /*sets_default=*/1'000);
  // DefaultWorkload's 200-patient default suits the timing benches; the
  // paper-scale cohort is 1M SNPs x 1k patients.
  base.generator.num_patients =
      static_cast<std::uint32_t>(args.GetU64("patients", 1'000));
  // The O(n^2)-per-SNP faithful Cox regime is for the timing benches;
  // at 10^9 genotype cells this bench times the streaming machinery, so
  // it defaults to the O(n) path.
  base.pipeline.paper_faithful_scores = args.GetU64("faithful", 0) != 0;
  // ~1000 SNP rows per store frame keeps per-task transients (one decoded
  // partition + its U block) small relative to any sane budget.
  base.pipeline.num_partitions = static_cast<std::uint32_t>(args.GetU64(
      "partitions",
      std::max<std::uint64_t>(1, base.generator.num_snps / 1000)));
  base.pipeline.resampling_batch_size =
      std::max<std::uint64_t>(1, args.GetU64("batch", 32));
  // Cache the observed U RDD (Algorithm 3); under a tight budget it
  // spills to real files while store-backed genotype partitions drop and
  // re-read off the mmap. cache_u=0 ablates to recompute-per-pass.
  base.pipeline.cache_contributions = args.GetBool("cache_u", true);
  // The async I/O lane is the default here: streaming off the store is
  // exactly the workload prefetch + background spill exist to overlap.
  base.engine.exec.prefetch_depth =
      static_cast<int>(args.GetU64("prefetch", 2));
  base.engine.exec.io_threads = static_cast<int>(
      std::max<std::uint64_t>(1, args.GetU64("io_threads", 2)));
  base.engine.exec.spill_async = args.GetBool("spill_async", true);

  const std::filesystem::path tmp = std::filesystem::temp_directory_path();
  if (base.engine.spill_dir.empty()) {
    // Spilled U frames must hit real files: an in-memory spill tier would
    // count against the very RSS this bench asserts on.
    base.engine.spill_dir = (tmp / "ss_bench_scale_spill").string();
  }
  std::filesystem::create_directories(base.engine.spill_dir);

  // Resampling depth amortizes the streaming I/O: each MC replicate reuses
  // the same U partitions, so out-of-core overhead shrinks as B grows —
  // the paper's workload runs B=1000 replicates. 32 keeps the bench under
  // a half hour on one core while staying in the amortized regime.
  const std::uint64_t iters = args.GetU64("iters", 32);
  const std::uint64_t slack_mb = args.GetU64("rss_slack_mb", 1024);
  const std::string store_path = args.GetStr(
      "store", (tmp / ("ss_bench_scale_" +
                       std::to_string(base.generator.num_snps) + "x" +
                       std::to_string(base.generator.num_patients) + "_s" +
                       std::to_string(base.generator.seed) + ".ssg"))
                   .string());

  char scale[320];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u partitions=%u iters=%llu "
                "batch=%llu prefetch=%d io_threads=%d cache_u=%d faithful=%d",
                base.generator.num_patients, base.generator.num_snps,
                base.generator.num_sets, base.pipeline.num_partitions,
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(
                    base.pipeline.resampling_batch_size),
                base.engine.exec.prefetch_depth, base.engine.exec.io_threads,
                base.pipeline.cache_contributions ? 1 : 0,
                base.pipeline.paper_faithful_scores ? 1 : 0);
  PrintBanner("bench_scale",
              "Out-of-core paper scale: mmap'd genotype store + streaming "
              "partitions under a cache budget",
              scale);

  // Stage (or reuse) the store. A file whose fingerprint matches the
  // generator parameters is trusted as-is — that is the store's contract;
  // anything else (missing, corrupt, other parameters) is restaged.
  const std::uint64_t fingerprint = simdata::StoreFingerprint(base.generator);
  double stage_seconds = 0.0;
  bool restage = true;
  {
    auto existing = dfs::GenotypeStore::Open(store_path);
    if (existing.ok() && existing.value()->fingerprint() == fingerprint) {
      restage = false;
      std::printf("  store: reusing %s (fingerprint %016llx)\n",
                  store_path.c_str(),
                  static_cast<unsigned long long>(fingerprint));
    }
  }
  if (restage) {
    std::error_code ec;
    std::filesystem::remove(store_path, ec);
    stage_seconds = TimeOnce([&] {
      auto staged = simdata::GenerateToStore(base.generator, store_path,
                                             base.pipeline.num_partitions);
      if (!staged.ok()) {
        std::fprintf(stderr, "bench_scale: staging failed: %s\n",
                     staged.status().ToString().c_str());
        std::exit(2);
      }
    });
    std::printf("  store: staged %s in %.1fs (streamed, no dense matrix)\n",
                store_path.c_str(), stage_seconds);
  }
  const std::uint64_t store_bytes = std::filesystem::file_size(store_path);
  std::printf("  store file: %.1f MiB packed (2-bit genotypes + aux frames)\n\n",
              static_cast<double>(store_bytes) / (1024.0 * 1024.0));

  const std::vector<std::uint64_t> budgets =
      ParseBudgets(args.GetStr("budgets", ""), store_bytes);

  std::vector<ScaleRun> runs;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const bool last = i + 1 == budgets.size();
    auto run = RunBudget(base, store_path, fingerprint, budgets[i], iters,
                         last ? &args : nullptr);
    if (!run.has_value()) return 2;
    runs.push_back(*run);
  }

  Table table("Streaming MC @ " + std::to_string(iters) + " iters, store=" +
                  std::to_string(store_bytes) + " bytes",
              {"budget (bytes)", "seconds", "Mscores/s", "peak RSS MiB",
               "dRSS MiB", "spills", "reloads", "frame reads", "prefetched"});
  for (const ScaleRun& run : runs) {
    table.AddRow(
        {run.budget == 0 ? "unlimited" : std::to_string(run.budget),
         Table::Num(run.seconds, 3), Table::Num(run.scores_per_sec / 1e6, 3),
         Table::Num(static_cast<double>(run.peak_rss) / (1024.0 * 1024.0), 1),
         Table::Num(static_cast<double>(run.RssDelta()) / (1024.0 * 1024.0), 1),
         std::to_string(run.spills), std::to_string(run.reloads),
         std::to_string(run.frame_reads), std::to_string(run.prefetch_frames)});
  }
  table.Print();

  bool hashes_identical = true;
  for (const ScaleRun& run : runs) {
    if (run.result_hash != runs.front().result_hash) hashes_identical = false;
  }
  std::printf("  determinism: result hashes %s across %zu budgets "
              "(%016llx reference)\n",
              hashes_identical ? "IDENTICAL" : "DIFFER", runs.size(),
              static_cast<unsigned long long>(runs.front().result_hash));

  // The flat-RSS assertion: every constrained run's growth over its own
  // pre-run baseline stays within budget + fixed driver-side slack.
  const std::uint64_t slack_bytes = slack_mb * 1024 * 1024;
  bool rss_ok = true;
  bool corrupt_free = true;
  for (const ScaleRun& run : runs) {
    corrupt_free = corrupt_free && run.corrupt == 0;
    if (run.budget == 0 || run.peak_rss == 0) continue;  // unlimited / no /proc
    const bool ok = run.RssDelta() <= run.budget + slack_bytes;
    rss_ok = rss_ok && ok;
    std::printf("  flat-RSS: budget=%llu dRSS=%.1f MiB <= budget+%llu MiB: %s\n",
                static_cast<unsigned long long>(run.budget),
                static_cast<double>(run.RssDelta()) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(slack_mb),
                ok ? "PASS" : "FAIL");
  }
  const ScaleRun* unlimited = nullptr;
  for (const ScaleRun& run : runs) {
    if (run.budget == 0) unlimited = &run;
  }
  if (unlimited != nullptr && runs.size() > 1) {
    const double tight = runs.front().scores_per_sec;
    std::printf("  throughput: tightest budget runs at %.2fx the unlimited "
                "baseline (gated >= 0.5x by tools/check_scale.py)\n\n",
                unlimited->scores_per_sec > 0.0
                    ? tight / unlimited->scores_per_sec
                    : 0.0);
  }

  const std::string datapoint_path = args.GetStr("datapoint", "");
  if (!datapoint_path.empty()) {
    std::FILE* out = std::fopen(datapoint_path.c_str(), "w");
    if (out != nullptr) {
      std::fprintf(
          out,
          "{\"bench\":\"bench_scale\",\"patients\":%u,\"snps\":%u,"
          "\"sets\":%u,\"partitions\":%u,\"iters\":%llu,\"batch\":%llu,"
          "\"prefetch\":%d,\"io_threads\":%d,\"spill_async\":%s,"
          "\"cache_u\":%s,\"faithful\":%s,\"store_bytes\":%llu,"
          "\"stage_seconds\":%.3f,\"rss_slack_mb\":%llu,"
          "\"hashes_identical\":%s,\"rss_within_budget\":%s,\"runs\":[",
          base.generator.num_patients, base.generator.num_snps,
          base.generator.num_sets, base.pipeline.num_partitions,
          static_cast<unsigned long long>(iters),
          static_cast<unsigned long long>(base.pipeline.resampling_batch_size),
          base.engine.exec.prefetch_depth, base.engine.exec.io_threads,
          base.engine.exec.spill_async ? "true" : "false",
          base.pipeline.cache_contributions ? "true" : "false",
          base.pipeline.paper_faithful_scores ? "true" : "false",
          static_cast<unsigned long long>(store_bytes), stage_seconds,
          static_cast<unsigned long long>(slack_mb),
          hashes_identical ? "true" : "false", rss_ok ? "true" : "false");
      for (std::size_t i = 0; i < runs.size(); ++i) {
        const ScaleRun& run = runs[i];
        std::fprintf(
            out,
            "%s{\"budget_bytes\":%llu,\"seconds\":%.6f,"
            "\"scores_per_sec\":%.1f,\"result_hash\":\"%016llx\","
            "\"baseline_rss_bytes\":%llu,\"peak_rss_bytes\":%llu,"
            "\"rss_delta_bytes\":%llu,\"spills\":%llu,\"reloads\":%llu,"
            "\"store_opens\":%llu,\"frame_reads\":%llu,\"read_bytes\":%llu,"
            "\"prefetch_frames\":%llu,\"corrupt\":%llu}",
            i == 0 ? "" : ",",
            static_cast<unsigned long long>(run.budget), run.seconds,
            run.scores_per_sec,
            static_cast<unsigned long long>(run.result_hash),
            static_cast<unsigned long long>(run.baseline_rss),
            static_cast<unsigned long long>(run.peak_rss),
            static_cast<unsigned long long>(run.RssDelta()),
            static_cast<unsigned long long>(run.spills),
            static_cast<unsigned long long>(run.reloads),
            static_cast<unsigned long long>(run.store_opens),
            static_cast<unsigned long long>(run.frame_reads),
            static_cast<unsigned long long>(run.read_bytes),
            static_cast<unsigned long long>(run.prefetch_frames),
            static_cast<unsigned long long>(run.corrupt));
      }
      std::fprintf(out, "]}\n");
      std::fclose(out);
      std::printf("datapoint written to %s\n", datapoint_path.c_str());
    } else {
      std::fprintf(stderr, "could not write datapoint to %s\n",
                   datapoint_path.c_str());
    }
  }

  args.WarnUnknownKeys("bench_scale");
  return (hashes_identical && rss_ok && corrupt_free) ? 0 : 1;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
