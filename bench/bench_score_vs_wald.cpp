// Ablation benches for the paper's Section II motivation and for our own
// design choices (DESIGN.md §5):
//
//   1. Efficient score vs Wald/LRT (per-SNP Newton-Raphson): the paper
//      argues the score statistic's one-pass evaluation is what makes
//      GWAS-scale resampling feasible. We measure per-SNP cost of both and
//      report the Newton iteration counts and convergence failures the
//      Wald path must babysit.
//   2. O(n log n) risk-set suffix sums vs the naive O(n^2) definition.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "stats/cox_score.hpp"
#include "stats/wald.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  const auto patients = static_cast<std::uint32_t>(args.GetU64("patients", 1000));
  const auto snps = static_cast<std::uint32_t>(args.GetU64("snps", 400));

  char scale[256];
  std::snprintf(scale, sizeof(scale), "patients=%u snps=%u", patients, snps);
  PrintBanner("bench_score_vs_wald",
              "Section II motivation (score vs Wald/LRT) + risk-set ablation",
              scale);

  simdata::GeneratorConfig config;
  config.num_patients = patients;
  config.num_snps = snps;
  config.num_sets = std::max(1u, snps / 50);
  const simdata::SyntheticDataset dataset = simdata::Generate(config);
  const stats::RiskSetIndex index(dataset.survival);

  // -- 1. score vs Newton-Raphson MLE ----------------------------------------
  double score_total = 0.0;  // keep the optimizer honest
  const double score_seconds = TimeOnce([&]() {
    for (std::uint32_t j = 0; j < snps; ++j) {
      const auto u = stats::CoxScoreContributions(dataset.survival, index,
                                                  dataset.genotypes.by_snp[j]);
      score_total += stats::CoxScoreStatistic(u);
    }
  });

  long total_newton_iterations = 0;
  int non_converged = 0;
  double wald_total = 0.0;
  const double wald_seconds = TimeOnce([&]() {
    for (std::uint32_t j = 0; j < snps; ++j) {
      const stats::CoxMleResult result = stats::FitCoxMle(
          dataset.survival, index, dataset.genotypes.by_snp[j]);
      total_newton_iterations += result.iterations;
      if (!result.converged) ++non_converged;
      wald_total += result.wald_statistic;
    }
  });

  Table table1("Score test vs Wald/LRT (all SNPs, one analysis pass)",
               {"method", "total (s)", "us/SNP", "Newton iters/SNP",
                "non-converged"});
  table1.AddRow({"efficient score", Table::Num(score_seconds, 4),
                 Table::Num(1e6 * score_seconds / snps, 2), "0 (closed form)",
                 "0"});
  table1.AddRow({"Wald/LRT (Newton-Raphson)", Table::Num(wald_seconds, 4),
                 Table::Num(1e6 * wald_seconds / snps, 2),
                 Table::Num(static_cast<double>(total_newton_iterations) / snps, 2),
                 std::to_string(non_converged)});
  table1.Print();
  std::printf("  speedup of score over Wald/LRT: %.1fx (checksums %.3g/%.3g)\n\n",
              wald_seconds / std::max(1e-12, score_seconds), score_total,
              wald_total);

  // -- 2. fast vs naive risk-set computation ---------------------------------
  const std::uint32_t naive_snps = std::min(snps, 50u);  // O(n^2) is slow
  double fast_sum = 0.0;
  const double fast_seconds = TimeOnce([&]() {
    for (std::uint32_t j = 0; j < naive_snps; ++j) {
      for (double u : stats::CoxScoreContributions(
               dataset.survival, index, dataset.genotypes.by_snp[j])) {
        fast_sum += u;
      }
    }
  });
  double naive_sum = 0.0;
  const double naive_seconds = TimeOnce([&]() {
    for (std::uint32_t j = 0; j < naive_snps; ++j) {
      for (double u : stats::CoxScoreContributionsNaive(
               dataset.survival, dataset.genotypes.by_snp[j])) {
        naive_sum += u;
      }
    }
  });
  Table table2("Risk-set ablation: suffix sums vs naive O(n^2) definition",
               {"implementation", "SNPs", "total (s)", "us/SNP"});
  table2.AddRow({"suffix sums (O(n log n) setup + O(n)/SNP)",
                 std::to_string(naive_snps), Table::Num(fast_seconds, 4),
                 Table::Num(1e6 * fast_seconds / naive_snps, 2)});
  table2.AddRow({"naive O(n^2)/SNP", std::to_string(naive_snps),
                 Table::Num(naive_seconds, 4),
                 Table::Num(1e6 * naive_seconds / naive_snps, 2)});
  table2.Print();
  std::printf("  speedup: %.1fx; results agree to %.2e\n",
              naive_seconds / std::max(1e-12, fast_seconds),
              std::fabs(fast_sum - naive_sum));
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
