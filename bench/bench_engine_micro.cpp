// google-benchmark micro benchmarks for the minispark engine primitives:
// the per-record costs of the map/filter path, the shuffle, the partition
// cache, and the statistics kernels the pipeline spends its time in.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/record_traits.hpp"
#include "engine/dataset.hpp"
#include "engine/profile.hpp"
#include "simdata/generator.hpp"
#include "stats/cox_score.hpp"
#include "stats/resampling.hpp"

namespace ss {
namespace {

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 2;
  return options;
}

void BM_MapCollect(benchmark::State& state) {
  engine::EngineContext ctx(LocalOptions());
  std::vector<int> data(static_cast<std::size_t>(state.range(0)));
  std::iota(data.begin(), data.end(), 0);
  auto ds = engine::Parallelize(ctx, data, 8).Map([](const int& x) {
    return x * 3 + 1;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Collect());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MapCollect)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_CachedCollect(benchmark::State& state) {
  engine::EngineContext ctx(LocalOptions());
  std::vector<int> data(static_cast<std::size_t>(state.range(0)));
  std::iota(data.begin(), data.end(), 0);
  auto ds = engine::Parallelize(ctx, data, 8).Map([](const int& x) {
    return x * 3 + 1;
  });
  ds.Cache();
  ds.Collect();  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Collect());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CachedCollect)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ProfiledCollect(benchmark::State& state) {
  // The task-timeline profiler's overhead claim: Arg is profile on/off
  // over an otherwise identical many-task stage, so comparing the two
  // rows shows the collection cost (a handful of clock reads per task;
  // the contract in docs/OBSERVABILITY.md is <= 2% on task-bound work).
  engine::SetProfilingEnabled(state.range(0) != 0);
  engine::EngineContext ctx(LocalOptions());
  std::vector<int> data(1 << 14);
  std::iota(data.begin(), data.end(), 0);
  auto ds = engine::Parallelize(ctx, data, 64).Map([](const int& x) {
    return x * 3 + 1;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.Collect());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
  engine::SetProfilingEnabled(true);
  state.SetLabel(state.range(0) != 0 ? "profile=1" : "profile=0");
}
BENCHMARK(BM_ProfiledCollect)->Arg(0)->Arg(1);

void BM_ReduceByKey(benchmark::State& state) {
  engine::EngineContext ctx(LocalOptions());
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<std::size_t>(state.range(0)));
  for (int i = 0; i < state.range(0); ++i) pairs.push_back({i % 64, i});
  for (auto _ : state) {
    auto ds = engine::Parallelize(ctx, pairs, 8);
    auto reduced =
        engine::ReduceByKey(ds, [](int a, int b) { return a + b; }, 4);
    benchmark::DoNotOptimize(reduced.Collect());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 10)->Arg(1 << 14);

void BM_CoxContributions(benchmark::State& state) {
  simdata::GeneratorConfig config;
  config.num_patients = static_cast<std::uint32_t>(state.range(0));
  config.num_snps = 4;
  config.num_sets = 1;
  const simdata::SyntheticDataset dataset = simdata::Generate(config);
  const stats::RiskSetIndex index(dataset.survival);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::CoxScoreContributions(
        dataset.survival, index, dataset.genotypes.by_snp[0]));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoxContributions)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RiskSetIndexBuild(benchmark::State& state) {
  const stats::SurvivalData data = simdata::GenerateSurvival(
      3, static_cast<std::uint32_t>(state.range(0)), 12.0, 0.85);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::RiskSetIndex(data));
  }
}
BENCHMARK(BM_RiskSetIndexBuild)->Arg(1000)->Arg(10000);

void BM_MonteCarloReplicate(benchmark::State& state) {
  // The Algorithm 3 hot loop: one dot product per SNP per replicate.
  const std::size_t n = 1000;
  std::vector<double> contributions(n);
  for (std::size_t i = 0; i < n; ++i) {
    contributions[i] = static_cast<double>(i % 17) - 8.0;
  }
  const stats::MonteCarloWeights weights(7, n, 8);
  std::size_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::MonteCarloReplicateScore(
        contributions, weights.Get(b++ % 8)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MonteCarloReplicate);

void BM_PermutationPlanGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::PermutationPlan(11, static_cast<std::size_t>(state.range(0)), 8));
  }
}
BENCHMARK(BM_PermutationPlanGeneration)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ss

BENCHMARK_MAIN();
