// Experiment A — scalability & runtime predictability of Monte Carlo vs
// permutation resampling. Reproduces Figure 2 (runtime vs iterations for
// both methods) and Table III (mean ± stdev over repeated runs).
//
// Paper shape to reproduce:
//   * permutation grows steeply (≈ linearly) with the iteration count;
//   * Monte Carlo stays nearly flat through hundreds of iterations;
//   * MC at the largest iteration count still beats permutation at 16;
//   * standard deviations stay small relative to means (predictability).
//
// Paper scale (Table II): n=1000 patients, 100k SNPs, 1000 sets, 6 nodes.
// Default scale here is ~50x smaller per dimension; override via
// `patients= snps= sets= mc_max_iters= reps=`.
#include <cstdio>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  Workload workload = DefaultWorkload(args);
  workload.generator.num_patients =
      static_cast<std::uint32_t>(args.GetU64("patients", 300));
  const std::uint64_t mc_max = args.GetU64("mc_max_iters", 1000);
  const int reps = static_cast<int>(args.GetU64("reps", 5));

  char scale[256];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u nodes=%d reps=%d batch=%llu "
                "(paper: 1000/100000/1000/6/5)",
                workload.generator.num_patients, workload.generator.num_snps,
                workload.generator.num_sets,
                workload.engine.topology.num_nodes, reps,
                static_cast<unsigned long long>(
                    workload.pipeline.resampling_batch_size));
  PrintBanner("bench_experiment_a",
              "Figure 2 + Tables II & III (MC vs permutation scalability)",
              scale);

  const std::vector<std::uint64_t> both_methods = {0, 2, 4, 8, 16};
  std::vector<std::uint64_t> mc_only;
  for (std::uint64_t b : {100ULL, 1000ULL, 10000ULL}) {
    if (b <= mc_max) mc_only.push_back(b);
  }

  Table figure2("Figure 2 — execution time (seconds) vs iterations",
                {"iterations", "Monte Carlo", "Permutation"});
  Table table3("Table III — mean ± stdev over repeated runs (seconds)",
               {"iterations", "Monte Carlo", "Permutation"});

  std::vector<double> mc16;
  std::vector<double> perm16;
  for (std::uint64_t iters : both_methods) {
    const auto mc_runs =
        TimeAnalysisRuns(workload, reps, [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
        });
    const auto perm_runs =
        TimeAnalysisRuns(workload, reps, [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kPermutation, iters}).scores;
        });
    figure2.AddRow({std::to_string(iters), Table::Num(Mean(mc_runs), 3),
                    Table::Num(Mean(perm_runs), 3)});
    table3.AddRow({std::to_string(iters), MeanStdevCell(mc_runs),
                   MeanStdevCell(perm_runs)});
    if (iters == 16) {
      mc16 = mc_runs;
      perm16 = perm_runs;
    }
  }

  double mc_at_max = 0.0;
  for (std::uint64_t iters : mc_only) {
    const auto mc_runs = TimeAnalysisRuns(
        workload, std::min(reps, 2), [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, iters}).scores;
        });
    figure2.AddRow({std::to_string(iters), Table::Num(Mean(mc_runs), 3),
                    "N/A (too slow in the paper as well)"});
    table3.AddRow({std::to_string(iters), MeanStdevCell(mc_runs), "N/A"});
    mc_at_max = Mean(mc_runs);
  }

  figure2.Print();
  table3.Print();

  // Honesty row: the serial (engine-free) baseline on the same data and
  // seed. On one physical machine the engine cannot beat it — this
  // quantifies the orchestration overhead the distributed machinery costs
  // at this scale (the engine pays off only with real parallel hardware,
  // which the strong-scaling bench models).
  {
    const simdata::SyntheticDataset dataset =
        simdata::Generate(workload.generator);
    const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
    baseline::SkatInputs inputs{&dataset.genotypes, &phenotype,
                                &dataset.weights, &dataset.sets};
    const double serial_seconds = TimeOnce([&]() {
      baseline::SerialMonteCarlo(inputs, workload.generator.seed, 16);
    });
    const auto engine_runs = TimeAnalysisRuns(
        workload, 1,
        [&](core::SkatPipeline& pipeline) {
          core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 16}).scores;
        },
        &args);
    std::printf("\nSerial baseline (engine-free, fast scores), MC B=16: "
                "%.3fs; engine (1 machine, faithful scores): %.3fs — the "
                "engine's overhead buys fault tolerance and the ability to "
                "scale out.\n",
                serial_seconds, Mean(engine_runs));
  }

  const double speedup16 = Mean(perm16) / std::max(1e-9, Mean(mc16));
  std::printf("\nShape checks (paper claims in parentheses):\n");
  std::printf("  MC speedup over permutation at 16 iterations: %.1fx "
              "(paper: ~an order of magnitude)\n", speedup16);
  if (!mc_only.empty()) {
    std::printf("  MC at %llu iterations %s permutation at 16 iterations "
                "(paper: MC@10000 < permutation@16): %.3fs vs %.3fs\n",
                static_cast<unsigned long long>(mc_only.back()),
                mc_at_max < Mean(perm16) ? "BEATS" : "does NOT beat",
                mc_at_max, Mean(perm16));
  }
  args.WarnUnknownKeys("bench_experiment_a");
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
