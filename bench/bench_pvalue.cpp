// bench_pvalue — adaptive p-value engine: replicate savings vs the
// exhaustive resampling baseline, with the statistical-equivalence
// contract re-checked on the measured run (a speedup that changed the
// answers would be meaningless).
//
// Runs the same generated study twice from the same seed: once with the
// legacy exhaustive counter (pmethod=resampling) and once in hybrid mode
// (saddlepoint screen + Besag–Clifford early stopping). Reports replicate
// consumption, wall time, per-set agreement, and the savings ratio.
//
// Keys: patients= snps= sets= reps= h= threshold= seed= out=<json path>
// `out=` writes a BENCH_pvalue.json datapoint consumed by
// tools/check_pvalue_savings.py (the bench_pvalue_smoke ctest gate:
// savings >= 10x, zero classification disagreements, tolerances hold).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

/// Equivalence tolerance, same contract as the integration battery:
/// 5 MC standard errors + 3% relative, plus the stopped estimator's own
/// noise for early-stopped sets.
double Tolerance(double p_exh, std::uint64_t replicates, bool early_stopped,
                 std::uint64_t h) {
  const double mc_sd =
      std::sqrt(std::max(p_exh * (1.0 - p_exh), 1e-12) /
                static_cast<double>(replicates));
  double tol = 5.0 * mc_sd + 0.03 * p_exh;
  if (early_stopped && h > 1) {
    tol += 5.0 * p_exh / std::sqrt(static_cast<double>(h - 1));
  }
  return tol;
}

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  Workload workload = DefaultWorkload(args, /*snps_default=*/1200,
                                      /*sets_default=*/60);
  workload.use_dfs = false;  // the p-value engine, not the ingest path
  const std::uint64_t replicates = args.GetU64("reps", 1000);
  const std::uint64_t h = args.GetU64("h", 9);
  const double threshold = args.GetDouble("threshold", 0.05);
  const std::uint64_t seed = workload.generator.seed;

  char scale[200];
  std::snprintf(scale, sizeof(scale),
                "patients=%u snps=%u sets=%u reps=%llu h=%llu threshold=%g",
                workload.generator.num_patients, workload.generator.num_snps,
                workload.generator.num_sets,
                static_cast<unsigned long long>(replicates),
                static_cast<unsigned long long>(h), threshold);
  PrintBanner("bench_pvalue",
              "adaptive p-value engine: hybrid screen + early stopping vs "
              "exhaustive resampling",
              scale);

  core::ResamplingResult exhaustive;
  double exhaustive_seconds = 0.0;
  {
    Workload::Instance inst = workload.Build();
    core::ResamplingRequest request(core::ResamplingMethod::kMonteCarlo,
                                    replicates);
    exhaustive_seconds = TimeOnce([&] {
      exhaustive = core::RunResampling(*inst.pipeline, request).scores;
    });
  }

  core::ResamplingResult hybrid;
  double hybrid_seconds = 0.0;
  {
    Workload::Instance inst = workload.Build();
    core::ResamplingRequest request(core::ResamplingMethod::kMonteCarlo,
                                    replicates);
    request.pvalue_method = core::PValueMethod::kHybrid;
    request.refine_threshold = threshold;
    request.early_stop = h;
    hybrid_seconds = TimeOnce([&] {
      hybrid = core::RunResampling(*inst.pipeline, request).scores;
    });
  }

  const std::uint64_t num_sets = hybrid.inference.size();
  const std::uint64_t exhaustive_replicates = replicates * num_sets;
  std::uint64_t hybrid_replicates = 0;
  std::uint64_t refined_sets = 0;
  std::uint64_t early_stops = 0;
  std::uint64_t disagreements = 0;
  std::uint64_t tolerance_violations = 0;
  double max_abs_diff = 0.0;
  constexpr double kAlpha = 0.05;
  for (const auto& [set_id, info] : hybrid.inference) {
    hybrid_replicates += info.replicates_used;
    if (info.refined) ++refined_sets;
    if (info.early_stopped) ++early_stops;
    const double p_exh = exhaustive.PValue(set_id);
    const double p_hyb = hybrid.PValue(set_id);
    const double diff = std::fabs(p_hyb - p_exh);
    max_abs_diff = std::max(max_abs_diff, diff);
    if (diff > Tolerance(p_exh, replicates, info.early_stopped, h)) {
      ++tolerance_violations;
      std::fprintf(stderr, "TOLERANCE set %u: exhaustive %.6g hybrid %.6g\n",
                   set_id, p_exh, p_hyb);
    }
    // Classification agreement outside the exemption band [alpha/2, 2*alpha].
    if ((p_exh < 0.5 * kAlpha || p_exh > 2.0 * kAlpha) &&
        (p_exh < kAlpha) != (p_hyb < kAlpha)) {
      ++disagreements;
      std::fprintf(stderr, "DISAGREEMENT set %u: exhaustive %.6g hybrid %.6g\n",
                   set_id, p_exh, p_hyb);
    }
  }
  const double savings =
      static_cast<double>(exhaustive_replicates) /
      static_cast<double>(std::max<std::uint64_t>(1, hybrid_replicates));

  Table table("Adaptive p-value engine — replicate consumption",
              {"mode", "set-replicates", "seconds"});
  table.AddRow({"exhaustive", std::to_string(exhaustive_replicates),
                MeanStdevCell({exhaustive_seconds})});
  table.AddRow({"hybrid", std::to_string(hybrid_replicates),
                MeanStdevCell({hybrid_seconds})});
  table.Print();
  std::printf(
      "savings %.1fx | %llu/%llu sets refined, %llu early-stopped | "
      "max |dp| %.3g | %llu disagreements, %llu tolerance violations\n",
      savings, static_cast<unsigned long long>(refined_sets),
      static_cast<unsigned long long>(num_sets),
      static_cast<unsigned long long>(early_stops), max_abs_diff,
      static_cast<unsigned long long>(disagreements),
      static_cast<unsigned long long>(tolerance_violations));

  const std::string out_path = args.GetStr("out", "");
  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "could not write datapoint to %s\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(
        out,
        "{\"bench\":\"bench_pvalue\",\"patients\":%u,\"snps\":%u,"
        "\"sets\":%u,\"reps\":%llu,\"h\":%llu,\"threshold\":%g,"
        "\"seed\":%llu,"
        "\"exhaustive\":{\"set_replicates\":%llu,\"seconds\":%.6f},"
        "\"hybrid\":{\"set_replicates\":%llu,\"seconds\":%.6f,"
        "\"refined_sets\":%llu,\"early_stops\":%llu},"
        "\"savings_ratio\":%.4f,\"max_abs_diff\":%.9g,"
        "\"disagreements\":%llu,\"tolerance_violations\":%llu}\n",
        workload.generator.num_patients, workload.generator.num_snps,
        workload.generator.num_sets,
        static_cast<unsigned long long>(replicates),
        static_cast<unsigned long long>(h), threshold,
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(exhaustive_replicates),
        exhaustive_seconds,
        static_cast<unsigned long long>(hybrid_replicates), hybrid_seconds,
        static_cast<unsigned long long>(refined_sets),
        static_cast<unsigned long long>(early_stops), savings, max_abs_diff,
        static_cast<unsigned long long>(disagreements),
        static_cast<unsigned long long>(tolerance_violations));
    std::fclose(out);
    std::printf("datapoint written to %s\n", out_path.c_str());
  }

  args.WarnUnknownKeys("bench_pvalue");
  return (disagreements == 0 && tolerance_violations == 0) ? 0 : 1;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
