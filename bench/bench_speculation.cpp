// Ablation: speculative execution under stragglers (DESIGN.md §5).
//
// Not a paper table — the paper runs on EMR where Spark's speculation and
// straggler mitigation are ambient. This bench quantifies what that
// machinery is worth for SparkScore's stage profile: the same recorded
// Monte Carlo job is replayed on an 18-node cluster while the straggler
// probability sweeps upward, with and without speculation.
#include <cstdio>

#include "bench_common.hpp"

namespace ss::bench {
namespace {

int Run(int argc, char** argv) {
  const Args args(argc, argv);
  ConfigureObservability(args);
  Workload workload = DefaultWorkload(args, /*snps_default=*/2000,
                                      /*sets_default=*/100);
  workload.pipeline.num_partitions =
      static_cast<std::uint32_t>(args.GetU64("partitions", 144));
  workload.engine.topology = cluster::EmrCluster(18);

  char scale[256];
  std::snprintf(scale, sizeof(scale), "patients=%u snps=%u partitions=%u",
                workload.generator.num_patients, workload.generator.num_snps,
                workload.pipeline.num_partitions);
  PrintBanner("bench_speculation",
              "Ablation: speculative execution vs stragglers (18 nodes)",
              scale);

  // One real execution provides the task profile.
  Workload::Instance instance = workload.Build();
  instance.ctx->metrics().Reset();
  core::RunResampling(*instance.pipeline, {core::ResamplingMethod::kMonteCarlo, 10}).scores;
  const cluster::JobProfile profile = instance.ctx->metrics().ToJobProfile();
  WriteRunArtifacts(args, *instance.ctx);

  Table table("Predicted makespan (seconds) vs straggler rate",
              {"straggler probability", "no speculation", "speculation",
               "recovered"});
  for (double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    cluster::CostModel model = workload.engine.cost_model;
    model.straggler_probability = p;
    model.straggler_slowdown = 10.0;
    const double plain =
        cluster::VirtualScheduler(workload.engine.topology, model)
            .Simulate(profile)
            .total_s;
    const double speculated =
        cluster::VirtualScheduler(workload.engine.topology, model, true)
            .Simulate(profile)
            .total_s;
    const double clean =
        cluster::VirtualScheduler(workload.engine.topology,
                                  workload.engine.cost_model)
            .Simulate(profile)
            .total_s;
    const double recovered =
        plain > clean ? (plain - speculated) / (plain - clean) : 0.0;
    table.AddRow({Table::Num(p, 2), Table::Num(plain, 2),
                  Table::Num(speculated, 2),
                  Table::Num(100.0 * recovered, 0) + "%"});
  }
  table.Print();
  std::printf("\nShape check: speculation should recover most of the "
              "straggler-induced slowdown at every rate.\n");
  return 0;
}

}  // namespace
}  // namespace ss::bench

int main(int argc, char** argv) { return ss::bench::Run(argc, argv); }
