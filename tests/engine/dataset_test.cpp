#include "engine/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cluster/topology.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  options.seed = 7;
  return options;
}

std::vector<int> Ints(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DatasetTest, ParallelizeCollectRoundTrip) {
  EngineContext ctx(LocalOptions());
  const auto data = Ints(100);
  auto ds = Parallelize(ctx, data, 7);
  EXPECT_EQ(ds.NumPartitions(), 7u);
  EXPECT_EQ(ds.Collect(), data);  // partition order preserved
}

TEST(DatasetTest, ParallelizeMorePartitionsThanElements) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(3), 10);
  EXPECT_EQ(ds.NumPartitions(), 10u);
  EXPECT_EQ(ds.Collect(), Ints(3));
}

TEST(DatasetTest, ParallelizeEmpty) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, std::vector<int>{}, 4);
  EXPECT_TRUE(ds.Collect().empty());
  EXPECT_EQ(ds.Count(), 0u);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  EngineContext ctx(LocalOptions());
  auto doubled =
      Parallelize(ctx, Ints(50), 5).Map([](const int& x) { return x * 2; });
  const auto got = doubled.Collect();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], 2 * i);
}

TEST(DatasetTest, MapChangesType) {
  EngineContext ctx(LocalOptions());
  auto strings = Parallelize(ctx, Ints(5), 2).Map([](const int& x) {
    return std::to_string(x);
  });
  EXPECT_EQ(strings.Collect(),
            (std::vector<std::string>{"0", "1", "2", "3", "4"}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  EngineContext ctx(LocalOptions());
  auto evens =
      Parallelize(ctx, Ints(20), 3).Filter([](const int& x) { return x % 2 == 0; });
  const auto got = evens.Collect();
  EXPECT_EQ(got.size(), 10u);
  for (int x : got) EXPECT_EQ(x % 2, 0);
}

TEST(DatasetTest, FlatMapExpands) {
  EngineContext ctx(LocalOptions());
  auto expanded = Parallelize(ctx, Ints(4), 2).FlatMap([](const int& x) {
    return std::vector<int>(static_cast<std::size_t>(x), x);
  });
  EXPECT_EQ(expanded.Collect(), (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

TEST(DatasetTest, MapPartitionsSeesWholePartition) {
  EngineContext ctx(LocalOptions());
  auto sizes = Parallelize(ctx, Ints(10), 3)
                   .MapPartitions([](std::uint32_t, const std::vector<int>& p) {
                     return std::vector<std::size_t>{p.size()};
                   });
  const auto got = sizes.Collect();
  EXPECT_EQ(got, (std::vector<std::size_t>{4, 3, 3}));
}

TEST(DatasetTest, MapPartitionsReceivesIndex) {
  EngineContext ctx(LocalOptions());
  auto indices = Parallelize(ctx, Ints(6), 3)
                     .MapPartitions([](std::uint32_t idx, const std::vector<int>&) {
                       return std::vector<std::uint32_t>{idx};
                     });
  EXPECT_EQ(indices.Collect(), (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(DatasetTest, KeyByPairsElements) {
  EngineContext ctx(LocalOptions());
  auto keyed =
      Parallelize(ctx, Ints(4), 2).KeyBy([](const int& x) { return x % 2; });
  const auto got = keyed.Collect();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(got[2], (std::pair<int, int>{0, 2}));
}

TEST(DatasetTest, UnionConcatenates) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, std::vector<int>{1, 2}, 1);
  auto b = Parallelize(ctx, std::vector<int>{3, 4}, 2);
  auto u = a.Union(b);
  EXPECT_EQ(u.NumPartitions(), 3u);
  EXPECT_EQ(u.Collect(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(DatasetTest, SampleFractionBounds) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(2000), 4);
  EXPECT_TRUE(ds.Sample(0.0).Collect().empty());
  EXPECT_EQ(ds.Sample(1.0).Collect().size(), 2000u);
  const std::size_t half = ds.Sample(0.5).Collect().size();
  EXPECT_NEAR(half, 1000.0, 120.0);
}

TEST(DatasetTest, SampleIsDeterministicPerSalt) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(100), 4);
  EXPECT_EQ(ds.Sample(0.3, 1).Collect(), ds.Sample(0.3, 1).Collect());
}

TEST(DatasetTest, CountMatchesCollectSize) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(123), 9);
  EXPECT_EQ(ds.Count(), 123u);
}

TEST(DatasetTest, ReduceSums) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(101), 8);
  const int total = ds.Reduce([](int a, int b) { return a + b; }, 0);
  EXPECT_EQ(total, 100 * 101 / 2);
}

TEST(DatasetTest, ChainedNarrowOps) {
  EngineContext ctx(LocalOptions());
  auto result = Parallelize(ctx, Ints(100), 5)
                    .Map([](const int& x) { return x + 1; })
                    .Filter([](const int& x) { return x % 3 == 0; })
                    .Map([](const int& x) { return x * x; })
                    .Collect();
  std::vector<int> expected;
  for (int x = 0; x < 100; ++x) {
    if ((x + 1) % 3 == 0) expected.push_back((x + 1) * (x + 1));
  }
  EXPECT_EQ(result, expected);
}

TEST(DatasetTest, TextFileOnePartitionPerBlock) {
  dfs::MiniDfs store({.num_nodes = 2, .replication = 1, .block_lines = 4});
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) {
    std::string line = "l";
    line += std::to_string(i);
    lines.push_back(std::move(line));
  }
  ASSERT_TRUE(store.WriteTextFile("/t", lines).ok());
  EngineContext ctx(LocalOptions(), &store);
  auto ds = TextFile(ctx, "/t");
  EXPECT_EQ(ds.NumPartitions(), 3u);
  EXPECT_EQ(ds.Collect(), lines);
}

TEST(DatasetTest, TextFileMissingThrows) {
  dfs::MiniDfs store({.num_nodes = 2, .replication = 1, .block_lines = 4});
  EngineContext ctx(LocalOptions(), &store);
  EXPECT_THROW(TextFile(ctx, "/missing"), StatusError);
}

TEST(DatasetTest, DebugStringShowsLineage) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(4), 2)
                .Map([](const int& x) { return x; })
                .Filter([](const int&) { return true; });
  const std::string debug = ds.DebugString();
  EXPECT_NE(debug.find("filter"), std::string::npos);
  EXPECT_NE(debug.find("map"), std::string::npos);
  EXPECT_NE(debug.find("parallelize"), std::string::npos);
}

TEST(DatasetTest, MetricsRecordStages) {
  EngineContext ctx(LocalOptions());
  Parallelize(ctx, Ints(10), 2).Collect("my-stage");
  const auto stages = ctx.metrics().stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].label, "my-stage");
  EXPECT_EQ(stages[0].task_seconds.size(), 2u);
  EXPECT_EQ(stages[0].records_out, 10u);
}

/// Sweep: collect order is stable for any partitioning.
class PartitionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionSweep, CollectPreservesOrder) {
  EngineContext ctx(LocalOptions());
  const auto data = Ints(97);
  EXPECT_EQ(Parallelize(ctx, data, GetParam()).Collect(), data);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweep,
                         ::testing::Values(1, 2, 3, 8, 16, 97, 200));

}  // namespace
}  // namespace ss::engine
