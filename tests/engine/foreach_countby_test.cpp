#include <gtest/gtest.h>

#include <numeric>

#include "engine/accumulator.hpp"
#include "engine/dataset_ops.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

TEST(ForeachTest, VisitsEveryElement) {
  EngineContext ctx(LocalOptions());
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 1);
  Accumulator<long> sum(0);
  Foreach(Parallelize(ctx, data, 8),
          [&sum](const int& x) { sum.Add(x); });
  EXPECT_EQ(sum.value(), 100L * 101 / 2);
}

TEST(ForeachTest, EmptyDataset) {
  EngineContext ctx(LocalOptions());
  Accumulator<int> count(0);
  Foreach(Parallelize(ctx, std::vector<int>{}, 3),
          [&count](const int&) { count.Add(1); });
  EXPECT_EQ(count.value(), 0);
}

TEST(ForeachTest, RecordsStageMetrics) {
  EngineContext ctx(LocalOptions());
  Foreach(Parallelize(ctx, std::vector<int>{1, 2, 3}, 2),
          [](const int&) {}, "my-foreach");
  const auto stages = ctx.metrics().stages();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].label, "my-foreach");
  EXPECT_EQ(stages[0].records_out, 3u);
}

TEST(CountByValueTest, Counts) {
  EngineContext ctx(LocalOptions());
  std::vector<std::string> words = {"a", "b", "a", "c", "a", "b"};
  auto counts = CountByValue(Parallelize(ctx, words, 3), 2);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 1u);
}

TEST(CountByValueTest, GenotypeDosageHistogram) {
  // The natural use: dosage distribution across a genotype row.
  EngineContext ctx(LocalOptions());
  std::vector<int> dosages;
  for (int i = 0; i < 300; ++i) dosages.push_back(i % 3);
  auto counts = CountByValue(Parallelize(ctx, dosages, 4), 3);
  EXPECT_EQ(counts[0], 100u);
  EXPECT_EQ(counts[1], 100u);
  EXPECT_EQ(counts[2], 100u);
}

}  // namespace
}  // namespace ss::engine
