#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/accumulator.hpp"
#include "engine/broadcast.hpp"
#include "engine/dataset.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions(int nodes = 4) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(nodes);
  options.physical_threads = 4;
  return options;
}

TEST(BroadcastTest, ValueAccessible) {
  EngineContext ctx(LocalOptions());
  auto b = MakeBroadcast(ctx, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(b);
  EXPECT_EQ(b->size(), 3u);
  EXPECT_DOUBLE_EQ((*b)[1], 2.0);
  EXPECT_DOUBLE_EQ(b.value()[2], 3.0);
}

TEST(BroadcastTest, DefaultIsEmpty) {
  Broadcast<int> b;
  EXPECT_FALSE(b);
}

TEST(BroadcastTest, CopiesShareValue) {
  EngineContext ctx(LocalOptions());
  auto a = MakeBroadcast(ctx, 42);
  Broadcast<int> b = a;
  EXPECT_EQ(&a.value(), &b.value());
}

TEST(BroadcastTest, RecordsTrafficProportionalToExecutors) {
  EngineContext ctx6(LocalOptions(6));
  EngineContext ctx12(LocalOptions(12));
  const std::vector<double> payload(1000, 1.0);
  MakeBroadcast(ctx6, payload);
  MakeBroadcast(ctx12, payload);
  EXPECT_EQ(ctx12.metrics().broadcast_bytes(),
            2 * ctx6.metrics().broadcast_bytes());
}

TEST(BroadcastTest, UsableInsideTasks) {
  EngineContext ctx(LocalOptions());
  auto offsets = MakeBroadcast(ctx, std::vector<int>{100, 200, 300});
  auto ds = Parallelize(ctx, std::vector<int>{0, 1, 2}, 3)
                .Map([offsets](const int& x) { return (*offsets)[x]; });
  EXPECT_EQ(ds.Collect(), (std::vector<int>{100, 200, 300}));
}

TEST(AccumulatorTest, SumsFromManyThreads) {
  Accumulator<long> acc(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&acc]() {
      for (int i = 0; i < 1000; ++i) acc.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(acc.value(), 8000);
}

TEST(AccumulatorTest, Reset) {
  Accumulator<int> acc(5);
  acc.Add(10);
  EXPECT_EQ(acc.value(), 15);
  acc.Reset();
  EXPECT_EQ(acc.value(), 0);
}

TEST(AccumulatorTest, UsableFromTasks) {
  EngineContext ctx(LocalOptions());
  Accumulator<int> count(0);
  std::vector<int> data(100, 1);
  Parallelize(ctx, data, 8)
      .Map([&count](const int& x) {
        count.Add(x);
        return x;
      })
      .Collect();
  EXPECT_EQ(count.value(), 100);
}

TEST(VectorAccumulatorTest, ElementWiseAdds) {
  VectorAccumulator<int> acc(3);
  acc.Add(0, 5);
  acc.Add(2, 7);
  acc.AddAll({1, 1, 1});
  EXPECT_EQ(acc.values(), (std::vector<int>{6, 1, 8}));
  EXPECT_EQ(acc.size(), 3u);
}

TEST(VectorAccumulatorTest, AddAllIgnoresExtraElements) {
  VectorAccumulator<int> acc(2);
  acc.AddAll({1, 2, 3, 4});  // extras beyond size are dropped
  EXPECT_EQ(acc.values(), (std::vector<int>{1, 2}));
}

TEST(VectorAccumulatorTest, ConcurrentExceedanceCounting) {
  // The pattern Algorithms 2/3 use for counter_k.
  VectorAccumulator<std::uint64_t> counters(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counters, t]() {
      for (int i = 0; i < 500; ++i) {
        counters.Add(static_cast<std::size_t>(t), 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counters.values(),
            (std::vector<std::uint64_t>{500, 500, 500, 500}));
}

}  // namespace
}  // namespace ss::engine
