// Golden tests for the human-readable reports: FormatStageReport,
// FormatRunReport, and FormatProfileReport rendered over a fixed fixture
// and compared against the exact expected text. These pin the table
// layout and wording that people grep for in CI logs and that
// docs/OBSERVABILITY.md documents — a deliberate formatting change must
// update both the golden strings here and the docs.
#include <gtest/gtest.h>

#include "engine/metrics.hpp"
#include "engine/profile.hpp"

namespace ss::engine {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // nanoseconds per millisecond

TaskTimeline MakeTimeline(std::uint32_t partition, std::uint32_t worker,
                          std::int64_t enqueue_ns, std::int64_t start_ns,
                          std::int64_t end_ns) {
  TaskTimeline t;
  t.partition = partition;
  t.worker = worker;
  t.enqueue_ns = enqueue_ns;
  t.start_ns = start_ns;
  t.end_ns = end_ns;
  return t;
}

/// Two stages with exact millisecond-aligned timestamps: a map stage
/// whose partition-1 task is critical (ends at 9ms of a [0,10ms] stage)
/// and a reduce stage bound by partition 0 (ends at 16ms of [10,20ms]).
std::vector<StageMetrics> Fixture() {
  StageMetrics s1;
  s1.stage_id = 1;
  s1.label = "map";
  s1.task_seconds = {0.004, 0.008};
  s1.shuffle_write_bytes = 4096;
  s1.records_out = 2000;
  s1.begin_ns = 0;
  s1.end_ns = 10 * kMs;
  s1.timelines.push_back(MakeTimeline(0, 0, 0, 1 * kMs, 5 * kMs));
  s1.timelines.push_back(MakeTimeline(1, 1, 0, 1 * kMs, 9 * kMs));
  s1.timelines[1].phases.push_back({TaskPhase::kFetch, 1 * kMs, 2 * kMs});

  StageMetrics s2;
  s2.stage_id = 2;
  s2.label = "reduce";
  s2.task_seconds = {0.005, 0.003};
  s2.shuffle_read_bytes = 4096;
  s2.records_out = 16;
  s2.failed_attempts = 1;
  s2.begin_ns = 10 * kMs;
  s2.end_ns = 20 * kMs;
  s2.timelines.push_back(MakeTimeline(0, 0, 10 * kMs, 11 * kMs, 16 * kMs));
  s2.timelines.push_back(MakeTimeline(1, 1, 10 * kMs, 11 * kMs, 14 * kMs));
  return {s1, s2};
}

constexpr char kStageReport[] =
    "== Stages ==\n"
    "+----+--------+-------+--------------+------------+-------------+-------------------+--------+\n"
    "| id | label  | tasks | total task s | max task s | records out | shuffle R/W bytes | failed |\n"
    "+----+--------+-------+--------------+------------+-------------+-------------------+--------+\n"
    "| 1  | map    | 2     | 0.0120       | 0.0080     | 2000        | 0/4096            | 0      |\n"
    "| 2  | reduce | 2     | 0.0080       | 0.0050     | 16          | 4096/0            | 1      |\n"
    "+----+--------+-------+--------------+------------+-------------+-------------------+--------+\n";

TEST(ReportGoldenTest, FormatStageReport) {
  EXPECT_EQ(FormatStageReport(Fixture()), kStageReport);
}

TEST(ReportGoldenTest, FormatRunReport) {
  CacheStats cache;
  cache.hits = 3;
  cache.misses = 1;
  cache.insertions = 4;
  cache.evictions = 2;
  cache.bytes_cached = 1024;
  cache.spills = 2;
  cache.spill_bytes = 512;
  cache.reloads = 1;
  cache.bytes_spilled = 256;
  const std::string expected =
      std::string(kStageReport) +
      "cache: 3 hits / 1 misses (75.0% hit rate), 4 insertions, "
      "2 evictions, 0 dropped by failure, 1024 bytes resident\n"
      "spill: 2 spills (512 bytes written), 1 reloads, 0 corrupt frames, "
      "256 bytes spilled\n"
      "traffic: 2048 broadcast bytes, 4096/4096 shuffle R/W bytes\n";
  EXPECT_EQ(FormatRunReport(Fixture(), cache, 2048), expected);
}

TEST(ReportGoldenTest, FormatProfileReport) {
  const char kExpected[] =
      "profile: wall 0.0160s, critical path 0.0150s (93.8%) across 2 stages\n"
      "== Stage phase breakdown (seconds) ==\n"
      "+----+--------+-------+--------+--------+--------+---------+--------+---------+----------+---------+--------+--------+--------+------------+\n"
      "| id | label  | tasks | queue  | fetch  | decode | compute | spill  | handoff | prefetch | io_wait | p50    | p95    | max    | stragglers |\n"
      "+----+--------+-------+--------+--------+--------+---------+--------+---------+----------+---------+--------+--------+--------+------------+\n"
      "| 1  | map    | 2     | 0.0020 | 0.0010 | 0.0000 | 0.0110  | 0.0000 | 0.0000  | 0.0000   | 0.0000  | 0.0040 | 0.0080 | 0.0080 | 0          |\n"
      "| 2  | reduce | 2     | 0.0020 | 0.0000 | 0.0000 | 0.0080  | 0.0000 | 0.0000  | 0.0000   | 0.0000  | 0.0030 | 0.0050 | 0.0050 | 0          |\n"
      "+----+--------+-------+--------+--------+--------+---------+--------+---------+----------+---------+--------+--------+--------+------------+\n"
      "== Critical path (stage-binding tasks) ==\n"
      "+-------+-----------+---------+-------+\n"
      "| stage | partition | seconds | share |\n"
      "+-------+-----------+---------+-------+\n"
      "| 1     | 1         | 0.0090  | 60.0% |\n"
      "| 2     | 0         | 0.0060  | 40.0% |\n"
      "+-------+-----------+---------+-------+\n"
      "== Worker utilization ==\n"
      "+--------+-------+--------+-------+-----------+--------------+------------+\n"
      "| worker | tasks | busy s | util  | idle gaps | idle total s | idle max s |\n"
      "+--------+-------+--------+-------+-----------+--------------+------------+\n"
      "| 0      | 2     | 0.0090 | 56.2% | 2         | 0.0070       | 0.0060     |\n"
      "| 1      | 2     | 0.0110 | 68.8% | 3         | 0.0050       | 0.0020     |\n"
      "+--------+-------+--------+-------+-----------+--------------+------------+\n";
  EXPECT_EQ(FormatProfileReport(BuildRunProfile(Fixture())), kExpected);
}

TEST(ReportGoldenTest, FormatProfileReportWhenNotCollected) {
  RunProfile empty;
  EXPECT_EQ(FormatProfileReport(empty),
            "profile: no timelines collected (profiling disabled)\n");
}

}  // namespace
}  // namespace ss::engine
