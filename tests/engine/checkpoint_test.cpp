// Codec round-trips and checkpoint semantics: persistence to the DFS,
// lineage truncation, reopening, and recovery under node failure.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "engine/dataset_ops.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

dfs::DfsOptions ReplicatedDfs() {
  return {.num_nodes = 3, .replication = 2, .block_lines = 16};
}

TEST(CodecTest, PodRoundTrip) {
  BinaryWriter writer;
  Codec<int>::Encode(writer, -42);
  Codec<double>::Encode(writer, 2.75);
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(Codec<int>::Decode(reader), -42);
  EXPECT_DOUBLE_EQ(Codec<double>::Decode(reader), 2.75);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CodecTest, StringAndPairRoundTrip) {
  BinaryWriter writer;
  Codec<std::pair<std::string, double>>::Encode(writer, {"snp42", 1.5});
  BinaryReader reader(writer.bytes());
  const auto pair = Codec<std::pair<std::string, double>>::Decode(reader);
  EXPECT_EQ(pair.first, "snp42");
  EXPECT_DOUBLE_EQ(pair.second, 1.5);
}

TEST(CodecTest, NestedVectorRoundTrip) {
  using Record = std::pair<std::uint32_t, std::vector<double>>;
  const std::vector<Record> records = {{1, {0.5, -1.5}}, {2, {}}, {3, {9.0}}};
  const auto bytes = EncodePartition(records);
  EXPECT_EQ(DecodePartition<Record>(bytes), records);
}

TEST(CodecTest, EmptyPartition) {
  EXPECT_TRUE(DecodePartition<int>(EncodePartition<int>({})).empty());
}

TEST(CheckpointTest, RoundTripsData) {
  dfs::MiniDfs store(ReplicatedDfs());
  EngineContext ctx(LocalOptions(), &store);
  std::vector<int> data(50);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 5).Map([](const int& x) { return x * 2; });
  auto checkpointed = Checkpoint(ds, "/ckpt");
  ASSERT_TRUE(checkpointed.ok());
  EXPECT_EQ(checkpointed.value().NumPartitions(), 5u);
  std::vector<int> expected;
  for (int x : data) expected.push_back(x * 2);
  EXPECT_EQ(checkpointed.value().Collect(), expected);
}

TEST(CheckpointTest, TruncatesLineage) {
  dfs::MiniDfs store(ReplicatedDfs());
  EngineContext ctx(LocalOptions(), &store);
  std::atomic<int> upstream{0};
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                .Map([&upstream](const int& x) {
                  upstream.fetch_add(1);
                  return x;
                });
  auto checkpointed = Checkpoint(ds, "/ckpt");
  ASSERT_TRUE(checkpointed.ok());
  const int after_write = upstream.load();
  checkpointed.value().Collect();
  checkpointed.value().Collect();
  EXPECT_EQ(upstream.load(), after_write);  // upstream never re-runs
  // Lineage string shows a source node, not the map chain.
  EXPECT_NE(checkpointed.value().DebugString().find("checkpoint(/ckpt)"),
            std::string::npos);
  EXPECT_EQ(checkpointed.value().DebugString().find("parallelize"),
            std::string::npos);
}

TEST(CheckpointTest, ReopenInNewContext) {
  dfs::MiniDfs store(ReplicatedDfs());
  {
    EngineContext ctx(LocalOptions(), &store);
    auto ds = Parallelize(ctx, std::vector<std::string>{"a", "b", "c"}, 2);
    ASSERT_TRUE(Checkpoint(ds, "/persisted").ok());
  }
  EngineContext ctx2(LocalOptions(), &store);
  auto reopened = OpenCheckpoint<std::string>(ctx2, "/persisted");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Collect(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CheckpointTest, OpenMissingFails) {
  dfs::MiniDfs store(ReplicatedDfs());
  EngineContext ctx(LocalOptions(), &store);
  EXPECT_FALSE(OpenCheckpoint<int>(ctx, "/nope").ok());
}

TEST(CheckpointTest, SurvivesDfsNodeLoss) {
  dfs::MiniDfs store(ReplicatedDfs());
  EngineContext ctx(LocalOptions(), &store);
  std::vector<int> data(30);
  std::iota(data.begin(), data.end(), 0);
  auto checkpointed = Checkpoint(Parallelize(ctx, data, 3), "/ckpt");
  ASSERT_TRUE(checkpointed.ok());
  store.KillNode(1);
  EXPECT_EQ(checkpointed.value().Collect(), data);
}

TEST(CheckpointTest, FailsWithoutDfs) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, std::vector<int>{1}, 1);
  EXPECT_EQ(Checkpoint(ds, "/x").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CheckpointTest, DownstreamOpsCompose) {
  dfs::MiniDfs store(ReplicatedDfs());
  EngineContext ctx(LocalOptions(), &store);
  std::vector<int> data(40);
  std::iota(data.begin(), data.end(), 0);
  auto checkpointed = Checkpoint(Parallelize(ctx, data, 4), "/ckpt");
  ASSERT_TRUE(checkpointed.ok());
  const int evens =
      static_cast<int>(checkpointed.value()
                           .Filter([](const int& x) { return x % 2 == 0; })
                           .Count());
  EXPECT_EQ(evens, 20);
}

TEST(DfsBinaryTest, WriteReadBlocks) {
  dfs::MiniDfs store(ReplicatedDfs());
  std::vector<std::vector<std::uint8_t>> blocks = {{1, 2, 3}, {}, {4, 5}};
  ASSERT_TRUE(store.WriteBinaryFile("/bin", blocks).ok());
  EXPECT_EQ(store.BlockCount("/bin").value(), 3u);
  for (std::uint32_t b = 0; b < 3; ++b) {
    auto got = store.ReadBinaryBlock("/bin", b);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), blocks[b]);
  }
  EXPECT_FALSE(store.ReadBinaryBlock("/bin", 3).ok());
  EXPECT_FALSE(store.ReadBinaryBlock("/missing", 0).ok());
}

TEST(DfsBinaryTest, ChecksumFailover) {
  dfs::MiniDfs store(ReplicatedDfs());
  ASSERT_TRUE(store.WriteBinaryFile("/bin", {{9, 9, 9, 9}}).ok());
  const auto meta = store.name_node().Lookup("/bin").value();
  ASSERT_TRUE(
      store.CorruptReplica("/bin", 0, meta.blocks[0].replica_nodes[0]).ok());
  auto got = store.ReadBinaryBlock("/bin", 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), (std::vector<std::uint8_t>{9, 9, 9, 9}));
}

}  // namespace
}  // namespace ss::engine
