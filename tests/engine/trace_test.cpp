// Telemetry tests: tracer span balance across a cached + shuffled +
// fault-injected job, Chrome trace / run-metrics JSON well-formedness,
// the counter registry, and report stability on an empty recorder.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cluster/fault_injector.hpp"
#include "engine/dataset.hpp"
#include "engine/dataset_ops.hpp"
#include "engine/trace.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  return options;
}

/// Structural JSON check: braces/brackets balance outside string
/// literals and every string literal closes. Not a full parser, but it
/// catches the escaping and nesting mistakes a serializer can make.
bool LooksLikeJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceTest, InstrumentedJobProducesBalancedSpans) {
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(), nullptr, &faults);
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();

  // Stage ids are per-context, starting at 1: fail partition 0 of the
  // first stage once so the trace contains a retried attempt.
  faults.FailTask(1, 0, 1);

  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4, 5, 6}, 3)
                .Map([](const int& x) { return x + 1; });
  ds.Cache();
  ds.Collect();  // computes + populates the cache
  ds.Collect();  // served from the cache -> hits

  auto pairs = ds.Map([](const int& x) {
    return std::pair<std::uint32_t, int>(static_cast<std::uint32_t>(x % 2), x);
  });
  auto reduced =
      ReduceByKey(pairs, [](int a, int b) { return a + b; }, /*reducers=*/2);
  reduced.Collect();

  tracer.Disable();
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(tracer.dropped_events(), 0u);

  // Every Begin nests with an End on the same thread, even for the
  // injected-failure attempt (the span closes during unwinding).
  std::map<std::uint32_t, int> open_per_tid;
  bool saw_task = false;
  bool saw_stage = false;
  std::int64_t last_ts = 0;
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.ts_ns, last_ts);  // Snapshot sorts by timestamp
    last_ts = event.ts_ns;
    if (std::string(event.category) == "task") saw_task = true;
    if (std::string(event.category) == "stage") saw_stage = true;
    if (event.phase == TraceEvent::Phase::kBegin) ++open_per_tid[event.tid];
    if (event.phase == TraceEvent::Phase::kEnd) {
      ASSERT_GT(open_per_tid[event.tid], 0)
          << "End without Begin on tid " << event.tid;
      --open_per_tid[event.tid];
    }
  }
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0) << "unclosed span on tid " << tid;
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_stage);

  // The injected failure surfaced both in metrics and in the trace.
  ASSERT_FALSE(ctx.metrics().stages().empty());
  EXPECT_EQ(ctx.metrics().stages()[0].failed_attempts, 1);
  bool saw_injected = false;
  for (const TraceEvent& event : events) {
    if (event.name == "injected task failure") saw_injected = true;
  }
  EXPECT_TRUE(saw_injected);

  // The second Collect was served from the cache.
  EXPECT_GE(ctx.cache().stats().hits, 1u);

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(LooksLikeJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  tracer.Clear();
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  tracer.Clear();
  tracer.Begin("test", "span");
  tracer.Instant("test", "instant");
  tracer.End("test", "span");
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TraceTest, ArgsSurviveJsonEscaping) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  tracer.Instant("test", "quote\"back\\slash\nnewline",
                 {Arg("key", "va\"lue"), Arg("n", 42)});
  tracer.Disable();
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_TRUE(LooksLikeJson(json)) << json;
  EXPECT_NE(json.find("va\\\"lue"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  tracer.Clear();
}

TEST(CounterRegistryTest, GetAddSnapshot) {
  CounterRegistry& registry = CounterRegistry::Global();
  std::atomic<std::uint64_t>& counter = registry.Get("test.trace_test.a");
  const std::uint64_t before = counter.load();
  registry.Add("test.trace_test.a", 3);
  EXPECT_EQ(counter.load(), before + 3);

  // The same name resolves to the same counter.
  EXPECT_EQ(&registry.Get("test.trace_test.a"), &counter);

  bool found = false;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "test.trace_test.a") {
      found = true;
      EXPECT_EQ(value, before + 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CounterRegistryTest, ResetZeroesButKeepsReferences) {
  CounterRegistry registry;  // local instance: don't zero global counters
  std::atomic<std::uint64_t>& counter = registry.Get("x");
  counter.fetch_add(7);
  registry.ResetAll();
  EXPECT_EQ(counter.load(), 0u);
  EXPECT_EQ(&registry.Get("x"), &counter);
}

TEST(MetricsReportTest, EmptyRecorderReportsAreStable) {
  MetricsRecorder recorder;
  const std::string stage_report = FormatStageReport(recorder.stages());
  EXPECT_FALSE(stage_report.empty());
  const std::string run_report = FormatRunReport(
      recorder.stages(), CacheStats{}, recorder.broadcast_bytes());
  EXPECT_FALSE(run_report.empty());
  EXPECT_NE(run_report.find("cache:"), std::string::npos);
  EXPECT_NE(run_report.find("traffic:"), std::string::npos);
}

TEST(MetricsReportTest, RunMetricsJsonIsWellFormed) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2);
  ds.Collect();
  const std::string json = ctx.RunMetricsJson();
  EXPECT_TRUE(LooksLikeJson(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"sparkscore-run-metrics-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("\"task_seconds_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"timeline\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

}  // namespace
}  // namespace ss::engine
