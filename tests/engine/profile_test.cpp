// Unit tests for the task-timeline profiler (engine/profile.hpp): phase
// accounting, PhaseTimer binding/nesting/coalescing semantics, and the
// BuildRunProfile analyzer (critical path, stragglers, worker idle gaps)
// over hand-built fixtures with exact nanosecond timestamps.
#include "engine/profile.hpp"

#include <gtest/gtest.h>

#include "engine/metrics.hpp"

namespace ss::engine {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // nanoseconds per millisecond

TaskTimeline MakeTimeline(std::uint32_t partition, std::uint32_t worker,
                          std::int64_t enqueue_ns, std::int64_t start_ns,
                          std::int64_t end_ns) {
  TaskTimeline t;
  t.partition = partition;
  t.worker = worker;
  t.enqueue_ns = enqueue_ns;
  t.start_ns = start_ns;
  t.end_ns = end_ns;
  return t;
}

TEST(PhaseSecondsTest, ExplicitSpansPlusDerivedQueueAndCompute) {
  TaskTimeline t = MakeTimeline(0, 0, 1000, 3000, 13000);
  t.phases.push_back({TaskPhase::kFetch, 3000, 5000});
  t.phases.push_back({TaskPhase::kDecode, 5000, 6000});

  const auto seconds = PhaseSecondsOf(t);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(TaskPhase::kQueueWait)], 2000e-9);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(TaskPhase::kFetch)], 2000e-9);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(TaskPhase::kDecode)], 1000e-9);
  // Compute is derived: task total (10000ns) minus the explicit spans.
  EXPECT_NEAR(seconds[static_cast<int>(TaskPhase::kCompute)], 7000e-9, 1e-15);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(TaskPhase::kSpillWrite)], 0.0);
  EXPECT_DOUBLE_EQ(seconds[static_cast<int>(TaskPhase::kHandoff)], 0.0);

  // The accounting invariant: entries sum to queue-wait + task wall time.
  double sum = 0.0;
  for (double s : seconds) sum += s;
  EXPECT_NEAR(sum, 2000e-9 + 10000e-9, 1e-15);
}

TEST(PhaseTimerTest, RecordsIntoBoundTimelineAndCoalescesSamePhase) {
  TaskTimeline t;
  {
    TaskTimelineScope scope(&t);
    { PhaseTimer decode(TaskPhase::kDecode); }
    { PhaseTimer decode(TaskPhase::kDecode); }  // coalesces into the first
    { PhaseTimer fetch(TaskPhase::kFetch); }
  }
  ASSERT_EQ(t.phases.size(), 2u);
  EXPECT_EQ(t.phases[0].phase, TaskPhase::kDecode);
  EXPECT_EQ(t.phases[1].phase, TaskPhase::kFetch);
  EXPECT_GE(t.phases[0].end_ns, t.phases[0].begin_ns);
  EXPECT_GE(t.phases[1].end_ns, t.phases[1].begin_ns);
}

TEST(PhaseTimerTest, InnerTimerIsInertWhileAnotherPhaseIsOpen) {
  TaskTimeline t;
  {
    TaskTimelineScope scope(&t);
    PhaseTimer fetch(TaskPhase::kFetch);
    { PhaseTimer decode(TaskPhase::kDecode); }  // attributed to fetch
  }
  ASSERT_EQ(t.phases.size(), 1u);
  EXPECT_EQ(t.phases[0].phase, TaskPhase::kFetch);
}

TEST(PhaseTimerTest, InertWithoutBoundTimeline) {
  ASSERT_EQ(ActiveTaskTimeline(), nullptr);
  PhaseTimer fetch(TaskPhase::kFetch);  // must not crash or record
}

TEST(TaskTimelineScopeTest, RestoresPreviousBindingAndIgnoresNull) {
  TaskTimeline outer_timeline;
  TaskTimeline inner_timeline;
  EXPECT_EQ(ActiveTaskTimeline(), nullptr);
  {
    TaskTimelineScope outer(&outer_timeline);
    EXPECT_EQ(ActiveTaskTimeline(), &outer_timeline);
    {
      TaskTimelineScope inner(&inner_timeline);
      EXPECT_EQ(ActiveTaskTimeline(), &inner_timeline);
    }
    EXPECT_EQ(ActiveTaskTimeline(), &outer_timeline);
    {
      TaskTimelineScope null_scope(nullptr);  // no-op binding
      EXPECT_EQ(ActiveTaskTimeline(), &outer_timeline);
    }
    EXPECT_EQ(ActiveTaskTimeline(), &outer_timeline);
  }
  EXPECT_EQ(ActiveTaskTimeline(), nullptr);
}

std::vector<StageMetrics> TwoStageFixture() {
  // Stage 1: driver span [0, 10ms]; tasks on workers 0/1, the partition-1
  // task binds the stage (ends at 9ms). Stage 2: [10ms, 20ms]; the
  // partition-0 task binds it (ends at 16ms).
  StageMetrics s1;
  s1.stage_id = 1;
  s1.label = "map";
  s1.begin_ns = 0;
  s1.end_ns = 10 * kMs;
  s1.timelines.push_back(MakeTimeline(0, 0, 0, 1 * kMs, 5 * kMs));
  s1.timelines.push_back(MakeTimeline(1, 1, 0, 1 * kMs, 9 * kMs));

  StageMetrics s2;
  s2.stage_id = 2;
  s2.label = "reduce";
  s2.begin_ns = 10 * kMs;
  s2.end_ns = 20 * kMs;
  s2.timelines.push_back(MakeTimeline(0, 0, 10 * kMs, 11 * kMs, 16 * kMs));
  s2.timelines.push_back(MakeTimeline(1, 1, 10 * kMs, 11 * kMs, 14 * kMs));
  return {s1, s2};
}

TEST(BuildRunProfileTest, CriticalPathAndWallClock) {
  const RunProfile profile = BuildRunProfile(TwoStageFixture());
  ASSERT_TRUE(profile.collected);
  // Run span: first stage begin (0) to last task end (16ms).
  EXPECT_DOUBLE_EQ(profile.wall_seconds, 0.016);

  ASSERT_EQ(profile.critical_path.size(), 2u);
  EXPECT_EQ(profile.critical_path[0].stage_id, 1u);
  EXPECT_EQ(profile.critical_path[0].partition, 1u);
  EXPECT_DOUBLE_EQ(profile.critical_path[0].seconds, 0.009);
  EXPECT_EQ(profile.critical_path[1].stage_id, 2u);
  EXPECT_EQ(profile.critical_path[1].partition, 0u);
  EXPECT_DOUBLE_EQ(profile.critical_path[1].seconds, 0.006);
  EXPECT_NEAR(profile.critical_path_seconds, 0.015, 1e-12);
  // The defining invariant: sequential stages bound by their critical
  // tasks can never exceed the measured wall-clock.
  EXPECT_LE(profile.critical_path_seconds, profile.wall_seconds);
}

TEST(BuildRunProfileTest, WorkerUtilizationAndIdleGaps) {
  const RunProfile profile = BuildRunProfile(TwoStageFixture());
  ASSERT_EQ(profile.workers.size(), 2u);

  // Worker 0 ran [1,5]ms and [11,16]ms of a 16ms run: busy 9ms with two
  // idle gaps (run start -> 1ms, 5 -> 11ms) and no tail gap.
  const WorkerStats& w0 = profile.workers[0];
  EXPECT_EQ(w0.worker, 0u);
  EXPECT_EQ(w0.tasks, 2u);
  EXPECT_DOUBLE_EQ(w0.busy_seconds, 0.009);
  EXPECT_DOUBLE_EQ(w0.utilization, 0.009 / 0.016);
  EXPECT_EQ(w0.idle_gaps, 2u);
  EXPECT_NEAR(w0.idle_total_seconds, 0.007, 1e-12);
  EXPECT_DOUBLE_EQ(w0.idle_max_seconds, 0.006);

  // Worker 1 ran [1,9]ms and [11,14]ms: busy 11ms with gaps of 1, 2, and
  // a 2ms tail before the run ends at 16ms.
  const WorkerStats& w1 = profile.workers[1];
  EXPECT_EQ(w1.worker, 1u);
  EXPECT_DOUBLE_EQ(w1.busy_seconds, 0.011);
  EXPECT_EQ(w1.idle_gaps, 3u);
  EXPECT_NEAR(w1.idle_total_seconds, 0.005, 1e-12);
  EXPECT_DOUBLE_EQ(w1.idle_max_seconds, 0.002);
}

TEST(BuildRunProfileTest, FlagsStragglersAboveMadThreshold) {
  StageMetrics stage;
  stage.stage_id = 1;
  stage.label = "skewed";
  stage.begin_ns = 0;
  stage.end_ns = 20 * kMs;
  // Durations 0.9, 1.0, 1.0, 1.1, 10 ms: median 1ms, MAD 0.1ms, so the
  // k=3 threshold is 1.3ms and only the 10ms task (partition 4) trips it.
  const std::int64_t durations_us[] = {1000, 1000, 1100, 900, 10000};
  for (std::uint32_t p = 0; p < 5; ++p) {
    stage.timelines.push_back(
        MakeTimeline(p, 0, 0, 0, durations_us[p] * 1000));
  }
  const RunProfile profile = BuildRunProfile({stage}, /*straggler_mad_k=*/3.0);
  ASSERT_EQ(profile.stages.size(), 1u);
  const StageTimingStats& s = profile.stages[0];
  EXPECT_NEAR(s.mad_seconds, 0.0001, 1e-12);
  EXPECT_NEAR(s.straggler_threshold_seconds, 0.0013, 1e-12);
  ASSERT_EQ(s.straggler_partitions.size(), 1u);
  EXPECT_EQ(s.straggler_partitions[0], 4u);
  EXPECT_EQ(s.critical_partition, 4u);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.01);
}

TEST(BuildRunProfileTest, NoStragglersOnUniformOrTinyStages) {
  // Uniform durations: MAD is zero, nothing may be flagged no matter how
  // tight the threshold.
  StageMetrics uniform;
  uniform.stage_id = 1;
  uniform.begin_ns = 0;
  uniform.end_ns = 10 * kMs;
  for (std::uint32_t p = 0; p < 5; ++p) {
    uniform.timelines.push_back(MakeTimeline(p, 0, 0, 0, 1 * kMs));
  }
  RunProfile profile = BuildRunProfile({uniform}, /*straggler_mad_k=*/0.1);
  EXPECT_TRUE(profile.stages[0].straggler_partitions.empty());

  // Under four tasks the MAD is too noisy: never flag.
  StageMetrics tiny;
  tiny.stage_id = 1;
  tiny.begin_ns = 0;
  tiny.end_ns = 10 * kMs;
  tiny.timelines.push_back(MakeTimeline(0, 0, 0, 0, 1 * kMs));
  tiny.timelines.push_back(MakeTimeline(1, 0, 0, 0, 1 * kMs));
  tiny.timelines.push_back(MakeTimeline(2, 0, 0, 0, 9 * kMs));
  profile = BuildRunProfile({tiny}, /*straggler_mad_k=*/0.1);
  EXPECT_TRUE(profile.stages[0].straggler_partitions.empty());
}

TEST(BuildRunProfileTest, EmptyWhenNoTimelinesRecorded) {
  StageMetrics stage;  // e.g. recorded with profiling disabled
  stage.stage_id = 1;
  stage.label = "map";
  stage.task_seconds = {0.1, 0.2};
  const RunProfile profile = BuildRunProfile({stage});
  EXPECT_FALSE(profile.collected);
  EXPECT_TRUE(profile.stages.empty());
  EXPECT_TRUE(profile.workers.empty());
  EXPECT_EQ(FormatProfileReport(profile),
            "profile: no timelines collected (profiling disabled)\n");
}

TEST(BuildRunProfileTest, DriverTasksCarryNoWorkerStats) {
  // worker == ~0u marks a task that ran inline on the driver (no pool);
  // it contributes to stage stats but not to the worker inventory.
  StageMetrics stage;
  stage.stage_id = 1;
  stage.begin_ns = 0;
  stage.end_ns = 10 * kMs;
  stage.timelines.push_back(MakeTimeline(0, ~0u, 0, 0, 5 * kMs));
  const RunProfile profile = BuildRunProfile({stage});
  ASSERT_TRUE(profile.collected);
  EXPECT_EQ(profile.stages.size(), 1u);
  EXPECT_TRUE(profile.workers.empty());
}

TEST(ProfilingSwitchTest, TogglesAndDefaultsOn) {
  EXPECT_TRUE(ProfilingEnabled());
  SetProfilingEnabled(false);
  EXPECT_FALSE(ProfilingEnabled());
  SetProfilingEnabled(true);
  EXPECT_TRUE(ProfilingEnabled());
}

}  // namespace
}  // namespace ss::engine
