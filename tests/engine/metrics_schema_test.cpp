// Golden-file regression test for the run-metrics JSON (schema
// "sparkscore-run-metrics-v2"): the key set, key order, and value shapes
// below are a compatibility contract for external consumers
// (tools/check_trace.py, tools/ss_prof.py, scripts parsing metrics=
// artifacts). New telemetry must EXTEND the document — appending keys
// updates this snapshot; renaming or removing keys breaks consumers and
// this test. v2 added the `timeline` section (between `kernel` and
// `counters`); every v1 key kept its name, shape, and relative order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/dataset.hpp"

namespace ss::engine {
namespace {

/// A context with one completed stage, some cache traffic, and spill
/// activity, so every section of the document is populated.
std::string SampleRunMetricsJson() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 2;
  options.cache_capacity_bytes = 64;  // forces eviction -> spill
  EngineContext ctx(options);
  std::vector<int> data(100);
  auto ds = Parallelize(ctx, data, 4).Map([](const int& x) { return x + 1; });
  ds.Cache();
  ds.Collect();
  ds.Collect();
  return ctx.RunMetricsJson();
}

/// Asserts `keys` occur in `json` in order, each spelled `"key":`.
void ExpectOrderedKeys(const std::string& json,
                       const std::vector<std::string>& keys,
                       const char* where) {
  std::size_t position = 0;
  for (const std::string& key : keys) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t found = json.find(needle, position);
    ASSERT_NE(found, std::string::npos)
        << where << ": key '" << key << "' missing (or out of order) in\n"
        << json;
    position = found + needle.size();
  }
}

TEST(RunMetricsSchemaTest, SchemaTagIsFirst) {
  const std::string json = SampleRunMetricsJson();
  EXPECT_EQ(json.rfind("{\"schema\":\"sparkscore-run-metrics-v2\"", 0), 0u)
      << json;
}

TEST(RunMetricsSchemaTest, TopLevelKeySetAndOrder) {
  // v1 keys in their v1 relative order; v2 inserts `timeline` between
  // `kernel` and `counters`; the adaptive p-value engine appends its
  // `pvalue` section between `kernel` and `timeline`.
  ExpectOrderedKeys(SampleRunMetricsJson(),
                    {"schema", "tasks_completed", "totals", "stages", "cache",
                     "broadcast_bytes", "kernel", "pvalue", "store", "timeline",
                     "counters"},
                    "top level");
}

TEST(RunMetricsSchemaTest, PValueKeySetAndOrder) {
  // The adaptive p-value section mirrors the four pvalue.* counters
  // (docs/OBSERVABILITY.md); always present, zeros on legacy runs.
  const std::string json = SampleRunMetricsJson();
  ExpectOrderedKeys(json,
                    {"pvalue", "analytic_screens", "refined_sets",
                     "early_stops", "replicates_saved"},
                    "pvalue");
  // This sample run does no resampling at all, so the section must be
  // exactly the zero golden (pvalue.* are process-global counters, but
  // nothing in this test binary drives the resampling drivers).
  EXPECT_NE(json.find("\"pvalue\":{\"analytic_screens\":"),
            std::string::npos)
      << json;
}

TEST(RunMetricsSchemaTest, StoreKeySetAndOrder) {
  // The genotype-store section mirrors the seven store.* counters
  // (docs/OBSERVABILITY.md); always present, zeros on storeless runs.
  const std::string json = SampleRunMetricsJson();
  ExpectOrderedKeys(json,
                    {"store", "opens", "frame_reads", "read_bytes",
                     "frame_writes", "write_bytes", "prefetch_frames",
                     "corrupt"},
                    "store");
  // This sample run never touches a store file, so the section is the
  // zero golden (store.* are process-global counters, but nothing in
  // this test binary opens or stages a store).
  EXPECT_NE(json.find("\"store\":{\"opens\":"), std::string::npos) << json;
}

TEST(RunMetricsSchemaTest, TimelineKeySetAndOrder) {
  // The v2 timeline section: run rollup, per-stage breakdowns, the
  // critical path, and per-worker occupancy — contract with
  // tools/check_trace.py and tools/ss_prof.py.
  ExpectOrderedKeys(SampleRunMetricsJson(),
                    {"timeline", "collected", "wall_seconds",
                     "straggler_mad_k", "phases", "stages", "critical_path",
                     "workers"},
                    "timeline");
}

TEST(RunMetricsSchemaTest, TimelineStageKeySetAndOrder) {
  const std::string json = SampleRunMetricsJson();
  const std::size_t timeline = json.find("\"timeline\":{");
  ASSERT_NE(timeline, std::string::npos) << json;
  ExpectOrderedKeys(json.substr(timeline),
                    {"stages", "id", "label", "tasks", "stage_seconds",
                     "queue_peak", "phase_seconds", "task_seconds", "p50",
                     "p95", "max", "mad", "straggler_threshold_seconds",
                     "stragglers", "records", "bytes", "critical"},
                    "timeline stage");
}

TEST(RunMetricsSchemaTest, TimelinePhaseNamesArePinned) {
  const std::string json = SampleRunMetricsJson();
  EXPECT_NE(json.find("\"phases\":[\"queue_wait\",\"fetch\",\"decode\","
                      "\"compute\",\"spill_write\",\"handoff\","
                      "\"prefetch\",\"io_wait\"]"),
            std::string::npos)
      << json;
}

TEST(RunMetricsSchemaTest, TimelineCollectedReflectsProfilingSwitch) {
  SetProfilingEnabled(false);
  const std::string off = SampleRunMetricsJson();
  SetProfilingEnabled(true);
  const std::string on = SampleRunMetricsJson();
  // The section is always present; only `collected` flips.
  EXPECT_NE(off.find("\"timeline\":{\"collected\":false"), std::string::npos)
      << off;
  EXPECT_NE(on.find("\"timeline\":{\"collected\":true"), std::string::npos)
      << on;
}

TEST(RunMetricsSchemaTest, KernelKeySetAndOrder) {
  // The kernel section's keys are a contract with tools/check_trace.py.
  // dispatch_name is host-dependent (scalar/sse2/avx2), so assert key
  // order rather than a digit-stripped golden.
  ExpectOrderedKeys(
      SampleRunMetricsJson(),
      {"kernel", "dispatch", "dispatch_name", "packed_bytes",
       "unpacked_bytes"},
      "kernel");
}

TEST(RunMetricsSchemaTest, TotalsKeySetAndOrder) {
  ExpectOrderedKeys(SampleRunMetricsJson(),
                    {"totals", "stages", "tasks", "failed_attempts",
                     "shuffle_read_bytes", "shuffle_write_bytes",
                     "task_seconds"},
                    "totals");
}

TEST(RunMetricsSchemaTest, CacheKeySetAndOrderIncludingSpillTier) {
  const std::string json = SampleRunMetricsJson();
  // The golden cache snapshot: the memory-tier keys shipped in v1 plus the
  // spill-tier extension. Order matters (the emitter concatenates by hand
  // and consumers may rely on it).
  const std::string cache_golden =
      "\"cache\":{\"hits\":,\"misses\":,\"insertions\":,\"evictions\":,"
      "\"dropped_by_failure\":,\"bytes_cached\":,\"spills\":,"
      "\"spill_bytes\":,\"reloads\":,\"reload_nanos\":,\"spill_corrupt\":,"
      "\"bytes_spilled\":}";
  // Rebuild the same shape from the document: strip digits inside the
  // cache object, then compare against the golden skeleton.
  const std::size_t begin = json.find("\"cache\":{");
  ASSERT_NE(begin, std::string::npos) << json;
  const std::size_t end = json.find('}', begin);
  ASSERT_NE(end, std::string::npos) << json;
  std::string skeleton;
  for (std::size_t i = begin; i <= end; ++i) {
    if (json[i] < '0' || json[i] > '9') skeleton += json[i];
  }
  EXPECT_EQ(skeleton, cache_golden);
}

TEST(RunMetricsSchemaTest, CacheValuesAreUnsignedIntegers) {
  const std::string json = SampleRunMetricsJson();
  const std::size_t begin = json.find("\"cache\":{");
  ASSERT_NE(begin, std::string::npos);
  const std::size_t end = json.find('}', begin);
  std::size_t cursor = json.find('{', begin);  // scan inside the object only
  while (true) {
    const std::size_t colon = json.find("\":", cursor);
    if (colon == std::string::npos || colon > end) break;
    const char next = json[colon + 2];
    EXPECT_TRUE(next >= '0' && next <= '9')
        << "non-integer cache value near position " << colon << " in "
        << json.substr(begin, end - begin + 1);
    cursor = colon + 2;
  }
}

TEST(RunMetricsSchemaTest, SpillCountersAppearInCounterRegistry) {
  const std::string json = SampleRunMetricsJson();
  // Spill activity in the sample run must surface the new counters in the
  // global registry section too (they are always-on counters).
  for (const char* counter : {"cache.spills", "cache.reloads"}) {
    EXPECT_NE(json.find(std::string("\"") + counter + "\":"),
              std::string::npos)
        << "counter " << counter << " missing in " << json;
  }
}

}  // namespace
}  // namespace ss::engine
