// Determinism regression: the result of a distributed computation must
// never depend on the number of physical threads or on task scheduling
// order. Every replicate statistic is required to be *byte-identical*
// between a 1-thread and an N-thread run from the same seed — the
// property the resampling literature this repo reproduces silently
// assumes, and the one a data race would corrupt first.
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/resampling_methods.hpp"
#include "engine/context.hpp"
#include "stats/kernels/kernels.hpp"

namespace ss::core {
namespace {

constexpr std::uint64_t kSeed = 20160521;  // Fixed: see file comment.

/// Bit-pattern equality: distinguishes -0.0 from 0.0 and differing NaN
/// payloads, i.e. strictly stronger than operator== on doubles.
bool BitEqual(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

simdata::SyntheticDataset FixedDataset() {
  simdata::GeneratorConfig config;
  config.num_patients = 60;
  config.num_snps = 48;
  config.num_sets = 6;
  config.seed = kSeed;
  return simdata::Generate(config);
}

engine::EngineContext::Options OptionsWithThreads(std::size_t threads) {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = threads;
  options.seed = kSeed;
  return options;
}

ResamplingResult RunMonteCarlo(std::size_t threads, std::uint64_t replicates,
                               const simdata::SyntheticDataset& dataset) {
  engine::EngineContext ctx(OptionsWithThreads(threads));
  PipelineConfig config;
  config.seed = kSeed;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  return RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, replicates})
      .scores;
}

ResamplingResult RunMonteCarloConfigured(std::size_t threads,
                                         std::uint64_t batch, bool pack,
                                         std::uint64_t replicates,
                                         const simdata::SyntheticDataset& dataset) {
  engine::EngineContext ctx(OptionsWithThreads(threads));
  PipelineConfig config;
  config.seed = kSeed;
  config.resampling_batch_size = batch;
  config.pack_genotypes = pack;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  return RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, replicates})
      .scores;
}

ResamplingResult RunPermutation(std::size_t threads, std::uint64_t replicates,
                                const simdata::SyntheticDataset& dataset) {
  engine::EngineContext ctx(OptionsWithThreads(threads));
  PipelineConfig config;
  config.seed = kSeed;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  return RunResampling(pipeline, {ResamplingMethod::kPermutation, replicates})
      .scores;
}

void ExpectByteIdentical(const ResamplingResult& a, const ResamplingResult& b) {
  ASSERT_EQ(a.replicates, b.replicates);
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (const auto& [set_id, score] : a.observed) {
    ASSERT_TRUE(b.observed.count(set_id)) << "set " << set_id;
    EXPECT_TRUE(BitEqual(score, b.observed.at(set_id)))
        << "observed score for set " << set_id << " differs across runs";
  }
  ASSERT_EQ(a.exceed.size(), b.exceed.size());
  for (const auto& [set_id, count] : a.exceed) {
    ASSERT_TRUE(b.exceed.count(set_id)) << "set " << set_id;
    EXPECT_EQ(count, b.exceed.at(set_id))
        << "exceedance counter for set " << set_id << " differs across runs";
  }
}

TEST(DeterminismTest, MonteCarloReplicatesIdentical1v4Threads) {
  const simdata::SyntheticDataset dataset = FixedDataset();
  ExpectByteIdentical(RunMonteCarlo(1, 20, dataset),
                      RunMonteCarlo(4, 20, dataset));
}

TEST(DeterminismTest, MonteCarloRepeatedNThreadRunsIdentical) {
  const simdata::SyntheticDataset dataset = FixedDataset();
  ExpectByteIdentical(RunMonteCarlo(4, 20, dataset),
                      RunMonteCarlo(4, 20, dataset));
}

TEST(DeterminismTest, PermutationReplicatesIdentical1v4Threads) {
  const simdata::SyntheticDataset dataset = FixedDataset();
  ExpectByteIdentical(RunPermutation(1, 10, dataset),
                      RunPermutation(4, 10, dataset));
}

TEST(DeterminismTest, ThreadCountDoesNotLeakIntoPValues) {
  const simdata::SyntheticDataset dataset = FixedDataset();
  const ResamplingResult serial = RunMonteCarlo(1, 15, dataset);
  const ResamplingResult wide = RunMonteCarlo(8, 15, dataset);
  for (const auto& [set_id, score] : serial.observed) {
    EXPECT_TRUE(BitEqual(serial.PValue(set_id), wide.PValue(set_id)))
        << "p-value for set " << set_id;
  }
}

TEST(DeterminismTest, PackedGenotypesIdenticalAcrossThreadsAndBatches) {
  // The 2-bit packed genotype path is a pure storage change: every
  // combination of packing x threads {1,4} x batch {1,64} must be
  // byte-identical to the unpacked single-thread per-replicate run.
  const simdata::SyntheticDataset dataset = FixedDataset();
  const ResamplingResult reference =
      RunMonteCarloConfigured(1, 1, /*pack=*/false, 20, dataset);
  for (std::size_t threads : {1u, 4u}) {
    for (std::uint64_t batch : {1u, 64u}) {
      for (bool pack : {false, true}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " batch=" +
                     std::to_string(batch) + " pack=" + std::to_string(pack));
        ExpectByteIdentical(
            reference,
            RunMonteCarloConfigured(threads, batch, pack, 20, dataset));
      }
    }
  }
}

TEST(DeterminismTest, DispatchLevelsProduceIdenticalResults) {
  // SIMD kernels keep the scalar lane/accumulation order, so forcing any
  // executable dispatch level must reproduce the scalar run bit-for-bit.
  const simdata::SyntheticDataset dataset = FixedDataset();
  const stats::kernels::DispatchLevel saved =
      stats::kernels::ActiveDispatchLevel();
  stats::kernels::SetDispatchLevel(stats::kernels::DispatchLevel::kScalar);
  const ResamplingResult scalar = RunMonteCarloConfigured(4, 4, true, 20, dataset);
  const int best = static_cast<int>(stats::kernels::BestSupportedLevel());
  for (int level = 1; level <= best; ++level) {
    stats::kernels::SetDispatchLevel(
        static_cast<stats::kernels::DispatchLevel>(level));
    SCOPED_TRACE(std::string("level=") + stats::kernels::DispatchLevelName(
                     stats::kernels::ActiveDispatchLevel()));
    ExpectByteIdentical(scalar,
                        RunMonteCarloConfigured(4, 4, true, 20, dataset));
  }
  stats::kernels::SetDispatchLevel(saved);
}

// ---------------------------------------------------------------------
// Adaptive p-value engine: early stopping decides per-replicate in the
// canonical fold order, so a stopped run must be byte-identical across
// every scheduling knob — threads, batch size, and prefetch depth.
// ---------------------------------------------------------------------

ResamplingResult RunAdaptive(std::size_t threads, std::uint64_t batch,
                             int prefetch, PValueMethod pmethod,
                             std::uint64_t early_stop,
                             const simdata::SyntheticDataset& dataset) {
  engine::EngineContext ctx(OptionsWithThreads(threads));
  PipelineConfig config;
  config.seed = kSeed;
  config.resampling_batch_size = batch;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  ResamplingRequest request(ResamplingMethod::kMonteCarlo, 200);
  request.pvalue_method = pmethod;
  request.refine_threshold = 0.5;  // refine several sets, not just one
  request.early_stop = early_stop;
  engine::ExecConfig exec;
  exec.prefetch_depth = prefetch;
  request.exec = exec;
  return RunResampling(pipeline, request).scores;
}

/// ExpectByteIdentical plus the adaptive per-set inference records and
/// the final routed p-values (bit patterns, not just values).
void ExpectAdaptiveIdentical(const ResamplingResult& a,
                             const ResamplingResult& b) {
  ExpectByteIdentical(a, b);
  ASSERT_EQ(a.early_stop_h, b.early_stop_h);
  ASSERT_EQ(a.inference.size(), b.inference.size());
  for (const auto& [set_id, info] : a.inference) {
    ASSERT_TRUE(b.inference.count(set_id)) << "set " << set_id;
    const SetInference& other = b.inference.at(set_id);
    EXPECT_TRUE(BitEqual(info.analytic_p, other.analytic_p))
        << "analytic p for set " << set_id;
    EXPECT_EQ(info.replicates_used, other.replicates_used)
        << "replicates used for set " << set_id;
    EXPECT_EQ(info.early_stopped, other.early_stopped) << "set " << set_id;
    EXPECT_EQ(info.refined, other.refined) << "set " << set_id;
    EXPECT_TRUE(BitEqual(a.PValue(set_id), b.PValue(set_id)))
        << "routed p-value for set " << set_id;
  }
}

TEST(DeterminismTest, EarlyStoppedRunsIdenticalAcrossSchedulingKnobs) {
  // Early stopping interacts with batching (a stop mid-batch must not
  // depend on where the batch boundary fell) — sweep the full grid
  // threads {1,4} x batch {1,64} x prefetch {0,2} against a serial
  // per-replicate reference.
  const simdata::SyntheticDataset dataset = FixedDataset();
  const ResamplingResult reference = RunAdaptive(
      1, 1, 0, PValueMethod::kResampling, /*early_stop=*/5, dataset);
  for (std::size_t threads : {1u, 4u}) {
    for (std::uint64_t batch : {1u, 64u}) {
      for (int prefetch : {0, 2}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " batch=" +
                     std::to_string(batch) + " prefetch=" +
                     std::to_string(prefetch));
        ExpectAdaptiveIdentical(
            reference, RunAdaptive(threads, batch, prefetch,
                                   PValueMethod::kResampling, 5, dataset));
      }
    }
  }
}

TEST(DeterminismTest, HybridRunsIdenticalAcrossSchedulingKnobs) {
  // Same grid for the full hybrid mode: analytic screen + refinement
  // with early stopping. The screen itself is replicate-independent, so
  // any divergence here isolates to the refinement driver.
  const simdata::SyntheticDataset dataset = FixedDataset();
  const ResamplingResult reference =
      RunAdaptive(1, 1, 0, PValueMethod::kHybrid, /*early_stop=*/5, dataset);
  for (std::size_t threads : {1u, 4u}) {
    for (std::uint64_t batch : {1u, 64u}) {
      for (int prefetch : {0, 2}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) + " batch=" +
                     std::to_string(batch) + " prefetch=" +
                     std::to_string(prefetch));
        ExpectAdaptiveIdentical(
            reference, RunAdaptive(threads, batch, prefetch,
                                   PValueMethod::kHybrid, 5, dataset));
      }
    }
  }
}

TEST(DeterminismTest, TaskRngIndependentOfAttemptNumber) {
  // A retried task must reproduce the same randomness as its first
  // attempt, or fault injection would silently change the statistics.
  engine::TaskContext first(7, 3, /*attempt=*/0, 0, 0, kSeed);
  engine::TaskContext retry(7, 3, /*attempt=*/2, 1, 1, kSeed);
  Rng a = first.MakeRng(5);
  Rng b = retry.MakeRng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
}

}  // namespace
}  // namespace ss::core
