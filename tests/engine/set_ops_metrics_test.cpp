// Intersection/Subtract, the stage report, and the driver-only guard.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/dataset_ops.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

TEST(IntersectionTest, CommonElementsOnly) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, std::vector<int>{1, 2, 3, 4, 5}, 2);
  auto b = Parallelize(ctx, std::vector<int>{4, 5, 6, 7}, 3);
  auto got = Intersection(a, b, 2).Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{4, 5}));
}

TEST(IntersectionTest, DeduplicatesAndHandlesEmpty) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, std::vector<int>{1, 1, 2, 2}, 2);
  auto b = Parallelize(ctx, std::vector<int>{2, 2, 3}, 1);
  EXPECT_EQ(Intersection(a, b, 2).Collect(), (std::vector<int>{2}));
  auto empty = Parallelize(ctx, std::vector<int>{}, 1);
  EXPECT_TRUE(Intersection(a, empty, 2).Collect().empty());
}

TEST(SubtractTest, LeftOnlyElements) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2);
  auto b = Parallelize(ctx, std::vector<int>{3, 4, 5}, 2);
  auto got = Subtract(a, b, 3).Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(SubtractTest, DisjointAndIdentical) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, std::vector<int>{1, 2}, 1);
  auto b = Parallelize(ctx, std::vector<int>{3}, 1);
  auto disjoint = Subtract(a, b, 2).Collect();
  std::sort(disjoint.begin(), disjoint.end());
  EXPECT_EQ(disjoint, (std::vector<int>{1, 2}));
  EXPECT_TRUE(Subtract(a, a, 2).Collect().empty());
}

TEST(SetAlgebraTest, IntersectionPlusSubtractCoversLeft) {
  EngineContext ctx(LocalOptions());
  std::vector<int> left_data;
  std::vector<int> right_data;
  for (int i = 0; i < 100; ++i) left_data.push_back(i);
  for (int i = 50; i < 150; ++i) right_data.push_back(i);
  auto left = Parallelize(ctx, left_data, 4);
  auto right = Parallelize(ctx, right_data, 4);
  auto inter = Intersection(left, right, 3).Collect();
  auto sub = Subtract(left, right, 3).Collect();
  std::vector<int> reunion;
  reunion.insert(reunion.end(), inter.begin(), inter.end());
  reunion.insert(reunion.end(), sub.begin(), sub.end());
  std::sort(reunion.begin(), reunion.end());
  EXPECT_EQ(reunion, left_data);
}

TEST(StageReportTest, ListsStagesWithMetrics) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                .Map([](const int& x) {
                  return std::pair<int, int>(x % 2, x);
                });
  CollectAsMap(ReduceByKey(ds, [](int a, int b) { return a + b; }, 2));
  const std::string report = FormatStageReport(ctx.metrics().stages());
  EXPECT_NE(report.find("shuffle-map"), std::string::npos);
  EXPECT_NE(report.find("collectAsMap"), std::string::npos);
  EXPECT_NE(report.find("Stages"), std::string::npos);
}

TEST(DriverGuardTest, ActionInsideTaskAborts) {
  // Everything lives inside the death statement: the forked child must
  // create its own thread pool (worker threads do not survive fork).
  auto nested_action = []() {
    EngineContext ctx(LocalOptions());
    auto inner = Parallelize(ctx, std::vector<int>{1, 2}, 1);
    auto outer = Parallelize(ctx, std::vector<int>{10}, 1)
                     .Map([inner](const int& x) {
                       // Nested action from a task closure: forbidden.
                       return x + inner.Collect().front();
                     });
    outer.Collect();
  };
  EXPECT_DEATH(nested_action(), "inside a task");
}

}  // namespace
}  // namespace ss::engine
