// Async executor regression battery.
//
// The contract under test: the I/O lane (prefetch + async spill) changes
// *scheduling only* — `resampling.result_hash` is bitwise invariant
// across every prefetch depth, thread count, batch size, and spill
// configuration; prefetch_depth=0 fully ablates the lane; a failed
// background spill write degrades to lineage recompute without
// corrupting results; and tearing an engine down while prefetches are in
// flight is safe.
#include "engine/executor.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/resampling_methods.hpp"
#include "engine/context.hpp"
#include "engine/trace.hpp"

namespace ss::core {
namespace {

constexpr std::uint64_t kSeed = 20160808;
constexpr std::uint64_t kReplicates = 12;

// The CI executor-matrix job forces SS_PREFETCH / SS_SPILL_ASYNC across
// the whole tier-1 suite. This binary tests *explicit* exec configs — the
// override would rewrite every ablation assertion — so drop it up front.
class ExecEnvGuard : public ::testing::Environment {
 public:
  void SetUp() override {
    ::unsetenv("SS_PREFETCH");
    ::unsetenv("SS_SPILL_ASYNC");
  }
};
const ::testing::Environment* const kExecEnvGuard =
    ::testing::AddGlobalTestEnvironment(new ExecEnvGuard);

std::uint64_t Counter(const std::string& name) {
  return engine::CounterRegistry::Global().Get(name).load();
}

simdata::SyntheticDataset FixedDataset() {
  simdata::GeneratorConfig config;
  config.num_patients = 60;
  config.num_snps = 48;
  config.num_sets = 6;
  config.seed = kSeed;
  return simdata::Generate(config);
}

struct RunConfig {
  engine::ExecConfig exec;
  std::size_t threads = 4;
  std::uint64_t batch = 1;
  std::uint64_t cache_budget = 0;  ///< 0 = unlimited (no spill traffic).
  std::string spill_dir;
};

/// One full Monte Carlo run from zeroed counters; returns the
/// order-independent result hash the engine folds into
/// `resampling.result_hash` (see HashResamplingResult).
std::uint64_t RunAndHash(const RunConfig& run,
                         const simdata::SyntheticDataset& dataset) {
  engine::CounterRegistry::Global().ResetAll();
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = run.threads;
  options.seed = kSeed;
  options.cache_capacity_bytes = run.cache_budget;
  options.spill_dir = run.spill_dir;
  engine::EngineContext ctx(options);
  PipelineConfig config;
  config.seed = kSeed;
  config.resampling_batch_size = run.batch;
  config.cache_budget_bytes = run.cache_budget;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  ResamplingRequest request(ResamplingMethod::kMonteCarlo, kReplicates);
  request.exec = run.exec;
  RunResampling(pipeline, request);
  const std::uint64_t hash = Counter("resampling.result_hash");
  EXPECT_NE(hash, 0u);
  return hash;
}

TEST(ExecutorDeterminismTest, ResultHashInvariantAcrossTheMatrix) {
  // prefetch {0,1,2} x threads {1,4} x batch {1,64} x spill {off,on}:
  // every cell must reproduce the ablated single-thread hash bit for bit.
  const simdata::SyntheticDataset dataset = FixedDataset();
  RunConfig reference;
  reference.exec.prefetch_depth = 0;
  reference.threads = 1;
  reference.batch = 1;
  const std::uint64_t expected = RunAndHash(reference, dataset);
  for (int prefetch : {0, 1, 2}) {
    for (std::size_t threads : {1u, 4u}) {
      for (std::uint64_t batch : {1u, 64u}) {
        for (std::uint64_t budget : {0u, 4096u}) {
          RunConfig run;
          run.exec.prefetch_depth = prefetch;
          run.exec.io_threads = 2;
          run.exec.spill_async = budget != 0;  // exercised only with spill
          run.threads = threads;
          run.batch = batch;
          run.cache_budget = budget;
          SCOPED_TRACE("prefetch=" + std::to_string(prefetch) +
                       " threads=" + std::to_string(threads) +
                       " batch=" + std::to_string(batch) +
                       " budget=" + std::to_string(budget));
          EXPECT_EQ(RunAndHash(run, dataset), expected);
        }
      }
    }
  }
}

TEST(ExecutorDeterminismTest, PrefetchZeroFullyAblatesTheLane) {
  const simdata::SyntheticDataset dataset = FixedDataset();
  RunConfig ablated;
  ablated.exec.prefetch_depth = 0;
  RunAndHash(ablated, dataset);
  EXPECT_EQ(Counter("exec.channel_stages"), 0u);
  EXPECT_EQ(Counter("exec.io_jobs"), 0u);
  EXPECT_EQ(Counter("exec.prefetches"), 0u);
  EXPECT_EQ(Counter("exec.zblock_prefetches"), 0u);

  RunConfig active;
  active.exec.prefetch_depth = 2;
  RunAndHash(active, dataset);
  EXPECT_GT(Counter("exec.channel_stages"), 0u)
      << "prefetch_depth=2 must route stages through channel dispatch";
}

TEST(ExecutorDeterminismTest, ZBlockDoubleBufferRunsOnTheLane) {
  // batch < replicates means multiple engine passes, so the next batch's
  // Z-block is staged on the I/O lane while the current one scores.
  const simdata::SyntheticDataset dataset = FixedDataset();
  RunConfig run;
  run.exec.prefetch_depth = 1;
  run.batch = 4;
  const std::uint64_t overlapped = RunAndHash(run, dataset);
  EXPECT_GT(Counter("exec.zblock_prefetches"), 0u);
  EXPECT_GT(Counter("exec.io_jobs"), 0u);

  RunConfig ablated = run;
  ablated.exec.prefetch_depth = 0;
  EXPECT_EQ(RunAndHash(ablated, dataset), overlapped);
}

TEST(ExecutorFaultTest, AsyncSpillWriteFailureDegradesToRecompute) {
  // A spill directory that cannot be created makes every background
  // frame write fail. The failure must be counted, the entry dropped,
  // and the run must still produce the reference results (the next
  // access recomputes from lineage instead of reloading).
  const simdata::SyntheticDataset dataset = FixedDataset();
  RunConfig clean;
  clean.exec.prefetch_depth = 1;
  const std::uint64_t expected = RunAndHash(clean, dataset);

  // A regular file where the spill directory should go blocks
  // create_directories (even for root) and every frame write below it.
  const std::string blocker = ::testing::TempDir() + "ss_executor_notadir";
  { std::ofstream out(blocker); out << "x"; }
  RunConfig failing;
  failing.exec.prefetch_depth = 1;
  failing.exec.spill_async = true;
  failing.cache_budget = 1024;  // force evictions -> spill attempts
  failing.spill_dir = blocker + "/frames";
  EXPECT_EQ(RunAndHash(failing, dataset), expected);
  EXPECT_GE(Counter("exec.spill_async_failures"), 1u);
  EXPECT_EQ(Counter("cache.spills"), 0u)
      << "failed async writes must not be double-counted as spills";
}

TEST(ExecutorShutdownTest, DestructorRunsEveryAcceptedJob) {
  std::atomic<int> ran{0};
  {
    engine::ExecConfig config;
    config.io_threads = 2;
    config.queue_bound = 4;
    engine::AsyncExecutor executor(config);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(executor.Enqueue([&ran]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      }));
    }
  }  // dtor: close, drain residue, join
  EXPECT_EQ(ran.load(), 16);
}

TEST(ExecutorShutdownTest, TeardownWhilePrefetchingIsSafe) {
  // Regression: destroying the engine right after a run must not race
  // in-flight prefetch jobs against cache/pool teardown (the executor is
  // declared last in EngineContext, so it drains first).
  const simdata::SyntheticDataset dataset = FixedDataset();
  for (int round = 0; round < 4; ++round) {
    RunConfig run;
    run.exec.prefetch_depth = 2;
    run.exec.io_threads = 2;
    run.cache_budget = 4096;  // keep reload/prefetch traffic flowing
    RunAndHash(run, dataset);
  }  // context destroyed with the lane potentially mid-prefetch
}

TEST(ExecutorShutdownTest, DrainWaitsForPendingJobs) {
  engine::ExecConfig config;
  config.io_threads = 1;
  engine::AsyncExecutor executor(config);
  std::atomic<bool> done{false};
  ASSERT_TRUE(executor.Enqueue([&done]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    done = true;
  }));
  executor.Drain();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(executor.pending(), 0u);
}

}  // namespace
}  // namespace ss::core
