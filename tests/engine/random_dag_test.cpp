// Property test: randomly composed dataflow pipelines must agree with a
// straightforward std:: reference computation, across seeds, partition
// counts, caching decisions, and injected task failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/fault_injector.hpp"
#include "engine/dataset.hpp"
#include "engine/dataset_ops.hpp"
#include "support/rng.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions(std::uint64_t seed) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  options.seed = seed;
  return options;
}

/// Applies one random order-preserving transformation to both the dataset
/// and the reference vector, keeping them semantically identical.
void ApplyRandomOp(Rng& rng, Dataset<int>& ds, std::vector<int>& reference) {
  switch (rng.NextBounded(4)) {
    case 0: {  // map: affine transform
      const int a = static_cast<int>(rng.NextBounded(5)) + 1;
      const int b = static_cast<int>(rng.NextBounded(100));
      ds = ds.Map([a, b](const int& x) { return a * x + b; });
      for (int& x : reference) x = a * x + b;
      break;
    }
    case 1: {  // filter: modulus predicate
      const int m = static_cast<int>(rng.NextBounded(4)) + 2;
      const int r =
          static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(m)));
      auto keep = [m, r](int x) { return ((x % m) + m) % m == r; };
      ds = ds.Filter([keep](const int& x) { return keep(x); });
      std::vector<int> kept;
      for (int x : reference) {
        if (keep(x)) kept.push_back(x);
      }
      reference = std::move(kept);
      break;
    }
    case 2: {  // flatMap: duplicate k times
      const int k = static_cast<int>(rng.NextBounded(3)) + 1;
      ds = ds.FlatMap([k](const int& x) {
        return std::vector<int>(static_cast<std::size_t>(k), x);
      });
      std::vector<int> expanded;
      expanded.reserve(reference.size() * static_cast<std::size_t>(k));
      for (int x : reference) {
        for (int i = 0; i < k; ++i) expanded.push_back(x);
      }
      reference = std::move(expanded);
      break;
    }
    case 3: {  // coalesce: structural change, order preserved
      ds = Coalesce(ds, static_cast<std::uint32_t>(rng.NextBounded(3)) + 1);
      break;
    }
  }
}

class RandomDagSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSweep, PipelineMatchesReference) {
  Rng rng(GetParam());
  EngineContext ctx(LocalOptions(GetParam()));

  // Random input and partitioning.
  const std::size_t n = 50 + rng.NextBounded(300);
  std::vector<int> reference;
  reference.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reference.push_back(static_cast<int>(rng.NextBounded(1000)) - 500);
  }
  const auto partitions = static_cast<std::uint32_t>(rng.NextBounded(9)) + 1;
  Dataset<int> ds = Parallelize(ctx, reference, partitions);

  // 2-5 random ops with random persistence in between.
  const std::uint64_t ops = 2 + rng.NextBounded(4);
  for (std::uint64_t o = 0; o < ops; ++o) {
    ApplyRandomOp(rng, ds, reference);
    if (rng.NextDouble() < 0.3) ds.Cache();
  }

  // Order-preserving comparison, twice (cache hits on the second pass).
  EXPECT_EQ(ds.Collect(), reference) << "seed " << GetParam();
  EXPECT_EQ(ds.Collect(), reference) << "seed " << GetParam();
  EXPECT_EQ(ds.Count(), reference.size());

  const long expected_sum =
      std::accumulate(reference.begin(), reference.end(), 0L);
  auto longs = ds.Map([](const int& x) { return static_cast<long>(x); });
  EXPECT_EQ(longs.Reduce([](long a, long b) { return a + b; }, 0L),
            expected_sum);

  std::vector<int> sorted_ref = reference;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  EXPECT_EQ(SortBy(ds, [](const int& x) { return x; }, 3).Collect(),
            sorted_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomDagFaultSweep, ResultsUnchangedByInjectedFailures) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<int> data;
    for (int i = 0; i < 200; ++i) {
      data.push_back(static_cast<int>(rng.NextBounded(100)));
    }
    auto run = [&](cluster::FaultInjector* faults) {
      EngineContext ctx(LocalOptions(seed), nullptr, faults);
      auto ds = Parallelize(ctx, data, 6)
                    .Map([](const int& x) { return x * 3; })
                    .Filter([](const int& x) { return x % 2 == 0; });
      ds.Cache();
      auto keyed = ds.Map([](const int& x) {
        return std::pair<int, int>(x % 5, x);
      });
      return CollectAsMap(
          ReduceByKey(keyed, [](int a, int b) { return a + b; }, 3));
    };
    const auto clean = run(nullptr);
    cluster::FaultInjector faults;
    faults.FailTask(1, 0, 2);
    faults.FailTask(2, 1, 1);
    faults.FailNodeAfterTasks(0, 4);
    const auto with_faults = run(&faults);
    EXPECT_EQ(clean, with_faults) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ss::engine
