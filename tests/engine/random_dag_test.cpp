// Property test: randomly composed dataflow pipelines must agree with a
// straightforward std:: reference computation, across seeds, partition
// counts, caching decisions, and injected task failures. Also hosts the
// spill-tier differential soak matrix (ctest label `soak`): Monte Carlo
// resampling across (cache budget) x (threads) x (batch) cells must be
// bitwise identical to the unlimited-memory reference, with and without
// the spill tier and under injected spill corruption.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "cluster/fault_injector.hpp"
#include "core/pipeline.hpp"
#include "core/resampling_methods.hpp"
#include "engine/dataset.hpp"
#include "engine/dataset_ops.hpp"
#include "engine/trace.hpp"
#include "support/rng.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions(std::uint64_t seed) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  options.seed = seed;
  return options;
}

/// Applies one random order-preserving transformation to both the dataset
/// and the reference vector, keeping them semantically identical.
void ApplyRandomOp(Rng& rng, Dataset<int>& ds, std::vector<int>& reference) {
  switch (rng.NextBounded(4)) {
    case 0: {  // map: affine transform
      const int a = static_cast<int>(rng.NextBounded(5)) + 1;
      const int b = static_cast<int>(rng.NextBounded(100));
      ds = ds.Map([a, b](const int& x) { return a * x + b; });
      for (int& x : reference) x = a * x + b;
      break;
    }
    case 1: {  // filter: modulus predicate
      const int m = static_cast<int>(rng.NextBounded(4)) + 2;
      const int r =
          static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(m)));
      auto keep = [m, r](int x) { return ((x % m) + m) % m == r; };
      ds = ds.Filter([keep](const int& x) { return keep(x); });
      std::vector<int> kept;
      for (int x : reference) {
        if (keep(x)) kept.push_back(x);
      }
      reference = std::move(kept);
      break;
    }
    case 2: {  // flatMap: duplicate k times
      const int k = static_cast<int>(rng.NextBounded(3)) + 1;
      ds = ds.FlatMap([k](const int& x) {
        return std::vector<int>(static_cast<std::size_t>(k), x);
      });
      std::vector<int> expanded;
      expanded.reserve(reference.size() * static_cast<std::size_t>(k));
      for (int x : reference) {
        for (int i = 0; i < k; ++i) expanded.push_back(x);
      }
      reference = std::move(expanded);
      break;
    }
    case 3: {  // coalesce: structural change, order preserved
      ds = Coalesce(ds, static_cast<std::uint32_t>(rng.NextBounded(3)) + 1);
      break;
    }
  }
}

class RandomDagSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagSweep, PipelineMatchesReference) {
  Rng rng(GetParam());
  EngineContext ctx(LocalOptions(GetParam()));

  // Random input and partitioning.
  const std::size_t n = 50 + rng.NextBounded(300);
  std::vector<int> reference;
  reference.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reference.push_back(static_cast<int>(rng.NextBounded(1000)) - 500);
  }
  const auto partitions = static_cast<std::uint32_t>(rng.NextBounded(9)) + 1;
  Dataset<int> ds = Parallelize(ctx, reference, partitions);

  // 2-5 random ops with random persistence in between.
  const std::uint64_t ops = 2 + rng.NextBounded(4);
  for (std::uint64_t o = 0; o < ops; ++o) {
    ApplyRandomOp(rng, ds, reference);
    if (rng.NextDouble() < 0.3) ds.Cache();
  }

  // Order-preserving comparison, twice (cache hits on the second pass).
  EXPECT_EQ(ds.Collect(), reference) << "seed " << GetParam();
  EXPECT_EQ(ds.Collect(), reference) << "seed " << GetParam();
  EXPECT_EQ(ds.Count(), reference.size());

  const long expected_sum =
      std::accumulate(reference.begin(), reference.end(), 0L);
  auto longs = ds.Map([](const int& x) { return static_cast<long>(x); });
  EXPECT_EQ(longs.Reduce([](long a, long b) { return a + b; }, 0L),
            expected_sum);

  std::vector<int> sorted_ref = reference;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  EXPECT_EQ(SortBy(ds, [](const int& x) { return x; }, 3).Collect(),
            sorted_ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomDagFaultSweep, ResultsUnchangedByInjectedFailures) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<int> data;
    for (int i = 0; i < 200; ++i) {
      data.push_back(static_cast<int>(rng.NextBounded(100)));
    }
    auto run = [&](cluster::FaultInjector* faults) {
      EngineContext ctx(LocalOptions(seed), nullptr, faults);
      auto ds = Parallelize(ctx, data, 6)
                    .Map([](const int& x) { return x * 3; })
                    .Filter([](const int& x) { return x % 2 == 0; });
      ds.Cache();
      auto keyed = ds.Map([](const int& x) {
        return std::pair<int, int>(x % 5, x);
      });
      return CollectAsMap(
          ReduceByKey(keyed, [](int a, int b) { return a + b; }, 3));
    };
    const auto clean = run(nullptr);
    cluster::FaultInjector faults;
    faults.FailTask(1, 0, 2);
    faults.FailTask(2, 1, 1);
    faults.FailNodeAfterTasks(0, 4);
    const auto with_faults = run(&faults);
    EXPECT_EQ(clean, with_faults) << "seed " << seed;
  }
}

// -- Spill-tier differential soak matrix -------------------------------------

/// One matrix cell: Monte Carlo resampling of a small synthetic study,
/// fingerprinted via the `resampling.result_hash` counter delta (the
/// order-independent fold RunResampling always records). `budget` 0 is
/// unlimited; 1 byte approximates "zero" (capacity 0 means unlimited).
struct SoakCell {
  std::uint64_t budget = 0;
  bool spill = true;
  std::size_t threads = 4;
  std::uint64_t batch = 64;
  bool corrupt_mid_run = false;
  bool drop_mid_run = false;
  bool pack = true;
};

std::uint64_t RunSoakCell(std::uint64_t seed, const SoakCell& cell) {
  auto& hash_counter =
      CounterRegistry::Global().Get("resampling.result_hash");
  const std::uint64_t before = hash_counter.load();

  cluster::FaultInjector faults;
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = cell.threads;
  options.seed = seed;
  options.cache_capacity_bytes = cell.budget;
  options.cache_spill = cell.spill;
  EngineContext ctx(options, nullptr, &faults);
  if (cell.corrupt_mid_run) faults.CorruptSpillAfterTasks(12);
  if (cell.drop_mid_run) faults.DropSpillAfterTasks(12);

  simdata::GeneratorConfig generator;
  generator.num_patients = 40;
  generator.num_snps = 60;
  generator.num_sets = 6;
  generator.seed = seed;
  core::PipelineConfig config;
  config.seed = seed;
  config.num_partitions = 4;
  config.num_reducers = 4;
  config.resampling_batch_size = cell.batch;
  config.pack_genotypes = cell.pack;
  core::SkatPipeline pipeline = core::SkatPipeline::FromMemory(
      ctx, simdata::Generate(generator), config);

  core::ResamplingRequest request;
  request.method = core::ResamplingMethod::kMonteCarlo;
  request.replicates = 24;
  core::RunResampling(pipeline, request);
  return hash_counter.load() - before;
}

std::string SoakCellName(const SoakCell& cell) {
  std::string name = "budget=" + std::to_string(cell.budget) +
                     " spill=" + std::to_string(cell.spill) +
                     " threads=" + std::to_string(cell.threads) +
                     " batch=" + std::to_string(cell.batch);
  if (cell.corrupt_mid_run) name += " corrupt_mid_run";
  if (cell.drop_mid_run) name += " drop_mid_run";
  if (!cell.pack) name += " pack=0";
  return name;
}

TEST(SpillSoakMatrix, EveryCellBitwiseEqualsUnlimitedMemoryRun) {
  // ~6 KB holds roughly one U partition of this study (40 patients x 15
  // SNPs per partition), forcing constant eviction; 1 byte evicts all but
  // the most recent entry ("zero" budget — capacity 0 means unlimited).
  constexpr std::uint64_t kTight = 6000;
  constexpr std::uint64_t kBudgets[] = {0, kTight, 1};
  std::vector<std::uint64_t> failing_seeds;

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::uint64_t reference = RunSoakCell(seed, SoakCell{});
    bool seed_failed = false;
    const auto check = [&](const SoakCell& cell) {
      const std::uint64_t hash = RunSoakCell(seed, cell);
      if (hash != reference) {
        seed_failed = true;
        ADD_FAILURE() << "seed " << seed << " diverged from the unlimited "
                      << "reference in cell [" << SoakCellName(cell) << "]";
      }
    };

    for (std::uint64_t budget : kBudgets) {
      for (bool spill : {true, false}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{64}}) {
            check(SoakCell{budget, spill, threads, batch, false, false});
          }
        }
      }
      // Packed-genotype ablation: the 2-bit representation must not leak
      // into results under any budget (only cache/spill bytes change).
      check(SoakCell{budget, true, 4, 64, false, false, /*pack=*/false});
      if (budget != 0) {
        // Sabotaged spill store mid-run: results must still match (the
        // cache degrades corrupt frames to lineage recomputes).
        check(SoakCell{budget, true, 4, 64, /*corrupt_mid_run=*/true, false});
        check(SoakCell{budget, true, 4, 64, false, /*drop_mid_run=*/true});
      }
    }
    if (seed_failed) failing_seeds.push_back(seed);
  }

  for (std::uint64_t seed : failing_seeds) {
    std::fprintf(stderr,
                 "[spill-soak] replay failing seed with: "
                 "--gtest_filter=SpillSoakMatrix.* (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
  }
  EXPECT_TRUE(failing_seeds.empty());
}

TEST(SpillSoakMatrix, TightBudgetActuallyExercisesTheSpillTier) {
  // Guard against a miscalibrated budget making the matrix vacuous: the
  // tight cell must spill and reload for real.
  auto& spills = CounterRegistry::Global().Get("cache.spills");
  auto& reloads = CounterRegistry::Global().Get("cache.reloads");
  const std::uint64_t spills_before = spills.load();
  const std::uint64_t reloads_before = reloads.load();
  RunSoakCell(7, SoakCell{/*budget=*/6000, true, 4, 64, false, false});
  EXPECT_GT(spills.load(), spills_before);
  EXPECT_GT(reloads.load(), reloads_before);
}

}  // namespace
}  // namespace ss::engine
