// CacheManager unit tests plus Dataset::Cache() integration: hit counting,
// LRU eviction, node-tagged drops, and the guarantee that eviction never
// changes results (lineage recomputes).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "engine/cache_manager.hpp"
#include "engine/dataset.hpp"

namespace ss::engine {
namespace {

std::shared_ptr<void> Payload(int v) {
  return std::make_shared<int>(v);
}

TEST(CacheManagerTest, LookupMissThenHit) {
  CacheManager cache;
  const CacheKey key{1, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, Payload(5), 100, 0);
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(hit), 5);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_cached, 100u);
}

TEST(CacheManagerTest, InsertRefreshesExisting) {
  CacheManager cache;
  const CacheKey key{1, 0};
  cache.Insert(key, Payload(1), 100, 0);
  cache.Insert(key, Payload(2), 50, 0);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().bytes_cached, 50u);
  EXPECT_EQ(*std::static_pointer_cast<int>(cache.Lookup(key)), 2);
}

TEST(CacheManagerTest, LruEvictionUnderPressure) {
  CacheManager cache(/*capacity=*/250);
  cache.Insert({1, 0}, Payload(0), 100, 0);
  cache.Insert({1, 1}, Payload(1), 100, 0);
  // Touch {1,0} so {1,1} is the LRU victim.
  ASSERT_NE(cache.Lookup({1, 0}), nullptr);
  cache.Insert({1, 2}, Payload(2), 100, 0);  // 300 > 250: evict {1,1}
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);
  EXPECT_NE(cache.Lookup({1, 2}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheManagerTest, OversizedEntryAdmitted) {
  CacheManager cache(/*capacity=*/10);
  cache.Insert({1, 0}, Payload(0), 1000, 0);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);  // kept despite being oversized
}

TEST(CacheManagerTest, UnlimitedCapacityNeverEvicts) {
  CacheManager cache(0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    cache.Insert({1, i}, Payload(static_cast<int>(i)), 1 << 20, 0);
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheManagerTest, DropDatasetRemovesAllItsPartitions) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, 0);
  cache.Insert({1, 1}, Payload(1), 10, 0);
  cache.Insert({2, 0}, Payload(2), 10, 0);
  cache.DropDataset(1);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({2, 0}), nullptr);
}

TEST(CacheManagerTest, DropNodeRemovesOnlyThatNodesEntries) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, /*node=*/0);
  cache.Insert({1, 1}, Payload(1), 10, /*node=*/1);
  EXPECT_EQ(cache.DropNode(1), 1);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_EQ(cache.stats().dropped_by_failure, 1u);
}

TEST(CacheManagerTest, ClearResetsOccupancy) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, 0);
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

// -- Dataset::Cache() integration -------------------------------------------

EngineContext::Options LocalOptions(std::uint64_t cache_bytes = 0) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  options.cache_capacity_bytes = cache_bytes;
  return options;
}

TEST(DatasetCacheTest, CachedDatasetComputesOnce) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  std::vector<int> data(40);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 4).Map([&compute_calls](const int& x) {
    compute_calls.fetch_add(1);
    return x * 10;
  });
  ds.Cache();
  const auto first = ds.Collect();
  EXPECT_EQ(compute_calls.load(), 40);
  const auto second = ds.Collect();
  EXPECT_EQ(compute_calls.load(), 40);  // all partitions served from cache
  EXPECT_EQ(first, second);
}

TEST(DatasetCacheTest, UncachedDatasetRecomputes) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                .Map([&compute_calls](const int& x) {
                  compute_calls.fetch_add(1);
                  return x;
                });
  ds.Collect();
  ds.Collect();
  EXPECT_EQ(compute_calls.load(), 8);
}

TEST(DatasetCacheTest, UnpersistForcesRecompute) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  auto ds = Parallelize(ctx, std::vector<int>{1, 2}, 1)
                .Map([&compute_calls](const int& x) {
                  compute_calls.fetch_add(1);
                  return x;
                });
  ds.Cache();
  ds.Collect();
  ds.Unpersist();
  ds.Collect();
  EXPECT_EQ(compute_calls.load(), 4);
}

TEST(DatasetCacheTest, EvictionNeverChangesResults) {
  // Tiny cache budget forces constant eviction; lineage recomputation must
  // keep results identical.
  EngineContext ctx(LocalOptions(/*cache_bytes=*/64));
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 16).Map([](const int& x) { return x + 7; });
  ds.Cache();
  const auto first = ds.Collect();
  const auto second = ds.Collect();
  EXPECT_EQ(first, second);
  EXPECT_GT(ctx.cache().stats().evictions, 0u);
}

TEST(DatasetCacheTest, DownstreamOfCachedNodeUsesCache) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> upstream_calls{0};
  auto cached = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                    .Map([&upstream_calls](const int& x) {
                      upstream_calls.fetch_add(1);
                      return x;
                    });
  cached.Cache();
  cached.Collect();  // populate
  auto downstream = cached.Map([](const int& x) { return x * 2; });
  EXPECT_EQ(downstream.Collect(), (std::vector<int>{2, 4, 6, 8}));
  EXPECT_EQ(upstream_calls.load(), 4);  // downstream pulled cached partitions
}

}  // namespace
}  // namespace ss::engine
