// CacheManager unit tests plus Dataset::Cache() integration: hit counting,
// cost-based eviction, the spill tier (evict -> reload, corruption
// fallback), node-tagged drops, and the guarantee that eviction never
// changes results (lineage recomputes).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <numeric>

#include "engine/cache_manager.hpp"
#include "engine/dataset.hpp"
#include "engine/node.hpp"

namespace ss::engine {
namespace {

std::shared_ptr<void> Payload(int v) {
  return std::make_shared<int>(v);
}

/// A spillable payload: the vector<int> partitions Node<T> caches.
std::shared_ptr<void> VecPayload(std::vector<int> v) {
  return std::make_shared<std::vector<int>>(std::move(v));
}

const std::vector<int>& VecOf(const std::shared_ptr<void>& value) {
  return *std::static_pointer_cast<std::vector<int>>(value);
}

TEST(CacheManagerTest, LookupMissThenHit) {
  CacheManager cache;
  const CacheKey key{1, 0};
  EXPECT_EQ(cache.Lookup(key), nullptr);
  cache.Insert(key, Payload(5), 100, 0);
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*std::static_pointer_cast<int>(hit), 5);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_cached, 100u);
}

TEST(CacheManagerTest, InsertRefreshesExisting) {
  CacheManager cache;
  const CacheKey key{1, 0};
  cache.Insert(key, Payload(1), 100, 0);
  cache.Insert(key, Payload(2), 50, 0);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.stats().bytes_cached, 50u);
  EXPECT_EQ(*std::static_pointer_cast<int>(cache.Lookup(key)), 2);
}

TEST(CacheManagerTest, LruEvictionUnderPressure) {
  CacheManager cache(/*capacity=*/250);
  cache.Insert({1, 0}, Payload(0), 100, 0);
  cache.Insert({1, 1}, Payload(1), 100, 0);
  // Touch {1,0} so {1,1} is the LRU victim.
  ASSERT_NE(cache.Lookup({1, 0}), nullptr);
  cache.Insert({1, 2}, Payload(2), 100, 0);  // 300 > 250: evict {1,1}
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);
  EXPECT_NE(cache.Lookup({1, 2}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheManagerTest, OversizedEntryAdmitted) {
  CacheManager cache(/*capacity=*/10);
  cache.Insert({1, 0}, Payload(0), 1000, 0);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);  // kept despite being oversized
}

TEST(CacheManagerTest, UnlimitedCapacityNeverEvicts) {
  CacheManager cache(0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    cache.Insert({1, i}, Payload(static_cast<int>(i)), 1 << 20, 0);
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheManagerTest, DropDatasetRemovesAllItsPartitions) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, 0);
  cache.Insert({1, 1}, Payload(1), 10, 0);
  cache.Insert({2, 0}, Payload(2), 10, 0);
  cache.DropDataset(1);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({2, 0}), nullptr);
}

TEST(CacheManagerTest, DropNodeRemovesOnlyThatNodesEntries) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, /*node=*/0);
  cache.Insert({1, 1}, Payload(1), 10, /*node=*/1);
  EXPECT_EQ(cache.DropNode(1), 1);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_EQ(cache.stats().dropped_by_failure, 1u);
}

TEST(CacheManagerTest, ClearResetsOccupancy) {
  CacheManager cache;
  cache.Insert({1, 0}, Payload(0), 10, 0);
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().bytes_cached, 0u);
}

// -- Spill tier --------------------------------------------------------------

TEST(CacheSpillTest, EvictionSpillsAndMissReloads) {
  CacheManager cache(/*capacity=*/250);
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_NE(cache.Lookup({1, 0}), nullptr);  // make {1,1} the victim
  cache.Insert({1, 2}, VecPayload({4, 5}), 100, 0, 0.0, MakeSpillCodec<int>());

  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.spilled_count(), 1u);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.spills, 1u);
  EXPECT_GT(stats.spill_bytes, 0u);
  EXPECT_GT(stats.bytes_spilled, 0u);

  auto reloaded = cache.Lookup({1, 1});
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(VecOf(reloaded), (std::vector<int>{2, 3}));
  stats = cache.stats();
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.spill_corrupt, 0u);
}

TEST(CacheSpillTest, PrefetchFillsSpareCapacityOnly) {
  CacheManager cache(/*capacity=*/150);
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_EQ(cache.entry_count(), 1u);  // {1,0} evicted to the spill tier
  ASSERT_EQ(cache.spilled_count(), 1u);

  // Re-admitting {1,0} would evict the resident partition the compute
  // path is about to use: the prefetch declines — still "handled", so a
  // chained caller does not fall through — and both tiers stay put.
  EXPECT_TRUE(cache.Prefetch({1, 0}));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.spilled_count(), 1u);
  EXPECT_EQ(cache.stats().reloads, 0u);
  EXPECT_NE(cache.Lookup({1, 1}), nullptr);  // resident partition intact

  // With spare capacity the same prefetch moves the frame back in.
  cache.SetCapacityBytes(300);
  EXPECT_TRUE(cache.Prefetch({1, 0}));
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.spilled_count(), 0u);
  EXPECT_EQ(cache.stats().reloads, 1u);
  EXPECT_EQ(VecOf(cache.Lookup({1, 0})), (std::vector<int>{0, 1}));
}

TEST(CacheSpillTest, PrefetchFetchDeclinedWhenBudgetFull) {
  CacheManager cache(/*capacity=*/150);
  cache.RegisterFetcher(7, [](std::uint32_t) {
    return FetchedPartition{std::make_shared<std::vector<int>>(3, 9), 100,
                            0.0};
  });
  cache.Insert({7, 0}, VecPayload({1}), 140, 0, 0.0, MakeSpillCodec<int>());
  // The tier is effectively full; the fetch admission (sized by the mean
  // resident partition, 140 bytes) would force an eviction — declined.
  EXPECT_TRUE(cache.Prefetch({7, 1}));
  EXPECT_EQ(cache.entry_count(), 1u);
  // Raising the budget lets the same prefetch stream the frame in.
  cache.SetCapacityBytes(400);
  EXPECT_TRUE(cache.Prefetch({7, 1}));
  EXPECT_EQ(VecOf(cache.Lookup({7, 1})), (std::vector<int>{9, 9, 9}));
  cache.UnregisterFetcher(7);
}

TEST(CacheSpillTest, CostBasedEvictionPrefersSpillableEntry) {
  CacheManager cache(/*capacity=*/250);
  // Both entries record an expensive lineage recompute, but only {1,1}
  // carries a codec: its restore is a cheap reload, so it is the rational
  // victim even though {1,0} is least recently used.
  cache.Insert({1, 0}, Payload(0), 100, 0, /*compute_seconds=*/10.0);
  cache.Insert({1, 1}, VecPayload({1, 2, 3}), 100, 0, /*compute_seconds=*/10.0,
               MakeSpillCodec<int>());
  cache.Insert({1, 2}, Payload(2), 100, 0, /*compute_seconds=*/10.0);

  EXPECT_EQ(cache.spilled_count(), 1u);
  EXPECT_EQ(cache.stats().spills, 1u);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);  // the LRU entry survived
  auto reloaded = cache.Lookup({1, 1});
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(VecOf(reloaded), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cache.stats().reloads, 1u);
}

TEST(CacheSpillTest, CorruptFrameFallsBackToMiss) {
  CacheManager cache(/*capacity=*/150);
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_EQ(cache.spilled_count(), 1u);

  EXPECT_EQ(cache.InjureSpill(/*drop=*/false), 1);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);  // checksum trips -> miss
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.spill_corrupt, 1u);
  EXPECT_EQ(stats.reloads, 0u);
  EXPECT_EQ(cache.spilled_count(), 0u);  // loss is detected exactly once
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);
}

TEST(CacheSpillTest, DroppedFramesFallBackToMiss) {
  CacheManager cache(/*capacity=*/150);
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_EQ(cache.spilled_count(), 1u);

  EXPECT_EQ(cache.InjureSpill(/*drop=*/true), 1);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);
}

TEST(CacheSpillTest, SpillDisabledDiscardsOnEviction) {
  CacheManager cache(CacheOptions{/*capacity_bytes=*/150,
                                  /*spill_enabled=*/false, ""});
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, 0, 0.0, MakeSpillCodec<int>());
  EXPECT_EQ(cache.spilled_count(), 0u);
  EXPECT_EQ(cache.stats().spills, 0u);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);  // discarded, not spilled
}

TEST(CacheSpillTest, SpillDirWritesRealFiles) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ss_spill_dir_test")
          .string();
  std::filesystem::remove_all(dir);
  CacheManager cache(CacheOptions{/*capacity_bytes=*/150,
                                  /*spill_enabled=*/true, dir});
  cache.Insert({1, 0}, VecPayload({7, 8}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({9}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_EQ(cache.spilled_count(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(std::filesystem::path(dir) / "spill-1-0.bin"));

  auto reloaded = cache.Lookup({1, 0});
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(VecOf(reloaded), (std::vector<int>{7, 8}));
  std::filesystem::remove_all(dir);
}

TEST(CacheSpillTest, DropDatasetClearsBothTiers) {
  CacheManager cache(/*capacity=*/150);
  cache.Insert({1, 0}, VecPayload({0}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({1}), 100, 0, 0.0, MakeSpillCodec<int>());
  ASSERT_EQ(cache.spilled_count(), 1u);
  cache.DropDataset(1);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.spilled_count(), 0u);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.stats().spill_corrupt, 0u);  // a drop, not a loss
}

TEST(CacheSpillTest, SetCapacityBytesSpillsDown) {
  CacheManager cache;  // unlimited
  cache.Insert({1, 0}, VecPayload({0}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({1}), 100, 0, 0.0, MakeSpillCodec<int>());
  cache.Insert({1, 2}, VecPayload({2}), 100, 0, 0.0, MakeSpillCodec<int>());
  EXPECT_EQ(cache.spilled_count(), 0u);
  cache.SetCapacityBytes(100);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.spilled_count(), 2u);
  EXPECT_EQ(cache.stats().bytes_cached, 100u);
  // Everything is still reachable, just via the spill tier.
  for (std::uint32_t p = 0; p < 3; ++p) {
    ASSERT_NE(cache.Lookup({1, p}), nullptr) << "partition " << p;
  }
}

TEST(CacheSpillTest, NodeFailureKeepsSpillFrames) {
  CacheManager cache(/*capacity=*/150);
  cache.Insert({1, 0}, VecPayload({0, 1}), 100, /*node=*/0, 0.0,
               MakeSpillCodec<int>());
  cache.Insert({1, 1}, VecPayload({2, 3}), 100, /*node=*/0, 0.0,
               MakeSpillCodec<int>());
  ASSERT_EQ(cache.spilled_count(), 1u);  // {1,0} spilled
  // Reload {1,0}: it is memory-resident again with a still-valid frame.
  ASSERT_NE(cache.Lookup({1, 0}), nullptr);

  cache.DropNode(0);
  EXPECT_EQ(cache.entry_count(), 0u);
  // The reloaded entry's frame models reliable storage: it survives the
  // node failure and serves the next miss without a recompute.
  auto survivor = cache.Lookup({1, 0});
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(VecOf(survivor), (std::vector<int>{0, 1}));
}

// -- Dataset::Cache() integration -------------------------------------------

EngineContext::Options LocalOptions(std::uint64_t cache_bytes = 0) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  options.cache_capacity_bytes = cache_bytes;
  return options;
}

TEST(DatasetCacheTest, CachedDatasetComputesOnce) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  std::vector<int> data(40);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 4).Map([&compute_calls](const int& x) {
    compute_calls.fetch_add(1);
    return x * 10;
  });
  ds.Cache();
  const auto first = ds.Collect();
  EXPECT_EQ(compute_calls.load(), 40);
  const auto second = ds.Collect();
  EXPECT_EQ(compute_calls.load(), 40);  // all partitions served from cache
  EXPECT_EQ(first, second);
}

TEST(DatasetCacheTest, UncachedDatasetRecomputes) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                .Map([&compute_calls](const int& x) {
                  compute_calls.fetch_add(1);
                  return x;
                });
  ds.Collect();
  ds.Collect();
  EXPECT_EQ(compute_calls.load(), 8);
}

TEST(DatasetCacheTest, UnpersistForcesRecompute) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> compute_calls{0};
  auto ds = Parallelize(ctx, std::vector<int>{1, 2}, 1)
                .Map([&compute_calls](const int& x) {
                  compute_calls.fetch_add(1);
                  return x;
                });
  ds.Cache();
  ds.Collect();
  ds.Unpersist();
  ds.Collect();
  EXPECT_EQ(compute_calls.load(), 4);
}

TEST(DatasetCacheTest, EvictionNeverChangesResults) {
  // Tiny cache budget forces constant eviction; lineage recomputation must
  // keep results identical.
  EngineContext ctx(LocalOptions(/*cache_bytes=*/64));
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 16).Map([](const int& x) { return x + 7; });
  ds.Cache();
  const auto first = ds.Collect();
  const auto second = ds.Collect();
  EXPECT_EQ(first, second);
  EXPECT_GT(ctx.cache().stats().evictions, 0u);
}

TEST(DatasetCacheTest, DownstreamOfCachedNodeUsesCache) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> upstream_calls{0};
  auto cached = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2)
                    .Map([&upstream_calls](const int& x) {
                      upstream_calls.fetch_add(1);
                      return x;
                    });
  cached.Cache();
  cached.Collect();  // populate
  auto downstream = cached.Map([](const int& x) { return x * 2; });
  EXPECT_EQ(downstream.Collect(), (std::vector<int>{2, 4, 6, 8}));
  EXPECT_EQ(upstream_calls.load(), 4);  // downstream pulled cached partitions
}

}  // namespace
}  // namespace ss::engine
