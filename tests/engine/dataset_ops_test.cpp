// Tests for the extended operations in engine/dataset_ops.hpp.
#include "engine/dataset_ops.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  options.seed = 17;
  return options;
}

std::vector<int> Ints(int n) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

using P = std::pair<int, int>;

TEST(MapValuesTest, TransformsValuesKeepsKeys) {
  EngineContext ctx(LocalOptions());
  std::vector<P> pairs = {{1, 10}, {2, 20}};
  auto doubled = MapValues(Parallelize(ctx, pairs, 2),
                           [](const int& v) { return v * 2; });
  EXPECT_EQ(doubled.Collect(), (std::vector<P>{{1, 20}, {2, 40}}));
}

TEST(KeysValuesTest, Project) {
  EngineContext ctx(LocalOptions());
  std::vector<P> pairs = {{1, 10}, {2, 20}};
  auto ds = Parallelize(ctx, pairs, 1);
  EXPECT_EQ(Keys(ds).Collect(), (std::vector<int>{1, 2}));
  EXPECT_EQ(Values(ds).Collect(), (std::vector<int>{10, 20}));
}

TEST(CountByKeyTest, Counts) {
  EngineContext ctx(LocalOptions());
  std::vector<P> pairs;
  for (int i = 0; i < 30; ++i) pairs.push_back({i % 3, i});
  auto counts = CountByKey(Parallelize(ctx, pairs, 4), 2);
  ASSERT_EQ(counts.size(), 3u);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(counts[k], 10u);
}

TEST(DistinctTest, RemovesDuplicates) {
  EngineContext ctx(LocalOptions());
  std::vector<int> data = {3, 1, 3, 2, 1, 1, 2};
  auto unique = Distinct(Parallelize(ctx, data, 3), 2);
  auto got = unique.Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(DistinctTest, EmptyAndAlreadyUnique) {
  EngineContext ctx(LocalOptions());
  EXPECT_TRUE(Distinct(Parallelize(ctx, std::vector<int>{}, 2), 2)
                  .Collect()
                  .empty());
  auto got = Distinct(Parallelize(ctx, Ints(10), 2), 3).Collect();
  EXPECT_EQ(got.size(), 10u);
}

TEST(LeftOuterJoinTest, MatchedAndUnmatched) {
  EngineContext ctx(LocalOptions());
  std::vector<std::pair<int, std::string>> left = {{1, "a"}, {2, "b"}, {3, "c"}};
  std::vector<std::pair<int, double>> right = {{2, 2.5}};
  auto joined =
      LeftOuterJoin(Parallelize(ctx, left, 2), Parallelize(ctx, right, 1), 2);
  auto rows = joined.Collect();
  ASSERT_EQ(rows.size(), 3u);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  EXPECT_FALSE(rows[0].second.second.has_value());  // key 1 unmatched
  ASSERT_TRUE(rows[1].second.second.has_value());
  EXPECT_DOUBLE_EQ(*rows[1].second.second, 2.5);
  EXPECT_FALSE(rows[2].second.second.has_value());  // key 3 unmatched
}

TEST(LeftOuterJoinTest, DuplicatesOnBothSides) {
  EngineContext ctx(LocalOptions());
  std::vector<P> left = {{1, 10}, {1, 11}};
  std::vector<P> right = {{1, 20}, {1, 21}};
  auto joined =
      LeftOuterJoin(Parallelize(ctx, left, 1), Parallelize(ctx, right, 1), 2);
  EXPECT_EQ(joined.Collect().size(), 4u);  // 2 x 2 cross per key
}

TEST(CoGroupTest, GathersBothSidesIncludingOneSidedKeys) {
  EngineContext ctx(LocalOptions());
  std::vector<P> left = {{1, 10}, {1, 11}, {2, 20}};
  std::vector<std::pair<int, std::string>> right = {{1, "x"}, {3, "y"}};
  auto cogrouped =
      CoGroup(Parallelize(ctx, left, 2), Parallelize(ctx, right, 1), 2);
  auto result = CollectAsMap(cogrouped);
  ASSERT_EQ(result.size(), 3u);
  auto k1 = result[1];
  std::sort(k1.first.begin(), k1.first.end());
  EXPECT_EQ(k1.first, (std::vector<int>{10, 11}));
  EXPECT_EQ(k1.second, (std::vector<std::string>{"x"}));
  EXPECT_EQ(result[2].first, (std::vector<int>{20}));
  EXPECT_TRUE(result[2].second.empty());
  EXPECT_TRUE(result[3].first.empty());
  EXPECT_EQ(result[3].second, (std::vector<std::string>{"y"}));
}

TEST(SortByTest, TotalOrder) {
  EngineContext ctx(LocalOptions());
  std::vector<int> data;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<int>(rng.NextBounded(10000)));
  }
  auto sorted = SortBy(Parallelize(ctx, data, 7),
                       [](const int& x) { return x; }, 4).Collect();
  std::vector<int> expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST(SortByTest, CustomKeyDescending) {
  EngineContext ctx(LocalOptions());
  auto sorted = SortBy(Parallelize(ctx, Ints(50), 3),
                       [](const int& x) { return -x; }, 3).Collect();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], 49 - i);
}

TEST(SortByTest, EmptyAndSingleton) {
  EngineContext ctx(LocalOptions());
  EXPECT_TRUE(SortBy(Parallelize(ctx, std::vector<int>{}, 2),
                     [](const int& x) { return x; }, 2)
                  .Collect()
                  .empty());
  EXPECT_EQ(SortBy(Parallelize(ctx, std::vector<int>{42}, 1),
                   [](const int& x) { return x; }, 3)
                .Collect(),
            std::vector<int>{42});
}

TEST(CoalesceTest, MergesPreservingOrder) {
  EngineContext ctx(LocalOptions());
  auto coalesced = Coalesce(Parallelize(ctx, Ints(100), 10), 3);
  EXPECT_EQ(coalesced.NumPartitions(), 3u);
  EXPECT_EQ(coalesced.Collect(), Ints(100));
}

TEST(CoalesceTest, ToOnePartition) {
  EngineContext ctx(LocalOptions());
  auto one = Coalesce(Parallelize(ctx, Ints(17), 5), 1);
  EXPECT_EQ(one.NumPartitions(), 1u);
  EXPECT_EQ(one.Collect(), Ints(17));
}

TEST(RepartitionTest, RebalancesPreservingMultiset) {
  EngineContext ctx(LocalOptions());
  auto repartitioned = Repartition(Parallelize(ctx, Ints(100), 2), 8);
  EXPECT_EQ(repartitioned.NumPartitions(), 8u);
  auto got = repartitioned.Collect();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, Ints(100));
  // Balance check: no partition holds more than half the data.
  auto sizes = repartitioned.MapPartitions(
      [](std::uint32_t, const std::vector<int>& p) {
        return std::vector<std::size_t>{p.size()};
      });
  for (std::size_t size : sizes.Collect()) EXPECT_LE(size, 50u);
}

TEST(ZipTest, PairsUp) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, Ints(10), 2);
  auto b = Parallelize(ctx, std::vector<std::string>{"0", "1", "2", "3", "4",
                                                     "5", "6", "7", "8", "9"},
                       2);
  auto zipped = Zip(a, b).Collect();
  ASSERT_EQ(zipped.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipped[i].first, i);
    EXPECT_EQ(zipped[i].second, std::to_string(i));
  }
}

TEST(ZipTest, MismatchedSizesFail) {
  EngineContext ctx(LocalOptions());
  auto a = Parallelize(ctx, Ints(10), 2);
  auto b = Parallelize(ctx, Ints(9), 2);
  EXPECT_THROW(Zip(a, b).Collect(), TaskFailure);
}

TEST(TakeTest, TakesPrefixWithoutComputingEverything) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> computes{0};
  auto ds = Parallelize(ctx, Ints(100), 10).Map([&computes](const int& x) {
    computes.fetch_add(1);
    return x;
  });
  EXPECT_EQ(Take(ds, 5), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_LT(computes.load(), 100);  // later partitions untouched
}

TEST(TakeTest, MoreThanAvailable) {
  EngineContext ctx(LocalOptions());
  EXPECT_EQ(Take(Parallelize(ctx, Ints(3), 2), 10), Ints(3));
}

TEST(FirstTest, FirstElementAndEmptyThrows) {
  EngineContext ctx(LocalOptions());
  EXPECT_EQ(First(Parallelize(ctx, std::vector<int>{7, 8}, 2)), 7);
  EXPECT_THROW(First(Parallelize(ctx, std::vector<int>{}, 2)), StatusError);
}

TEST(TakeOrderedTopTest, OrderedExtremes) {
  EngineContext ctx(LocalOptions());
  std::vector<int> data = {5, 3, 9, 1, 7, 2, 8, 0, 6, 4};
  auto ds = Parallelize(ctx, data, 3);
  EXPECT_EQ(TakeOrdered(ds, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Top(ds, 2), (std::vector<int>{9, 8}));
  EXPECT_EQ(TakeOrdered(ds, 20).size(), 10u);  // clamped to data size
}

TEST(AggregateTest, TwoLevelFold) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, Ints(101), 7);
  // Sum of squares via aggregate.
  const long total = Aggregate(
      ds, 0L, [](long acc, const int& x) { return acc + 1L * x * x; },
      [](long a, long b) { return a + b; });
  long expected = 0;
  for (int x = 0; x <= 100; ++x) expected += 1L * x * x;
  EXPECT_EQ(total, expected);
}

TEST(AggregateTest, DifferentAccumulatorType) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(
      ctx, std::vector<std::string>{"a", "bb", "ccc"}, 2);
  const std::size_t total_length = Aggregate(
      ds, std::size_t{0},
      [](std::size_t acc, const std::string& s) { return acc + s.size(); },
      [](std::size_t a, std::size_t b) { return a + b; });
  EXPECT_EQ(total_length, 6u);
}

TEST(SaveAsTextFileTest, OneFilePerPartition) {
  dfs::MiniDfs store({.num_nodes = 3, .replication = 2, .block_lines = 64});
  EngineContext ctx(LocalOptions(), &store);
  std::vector<std::string> lines;
  for (int i = 0; i < 20; ++i) lines.push_back("row" + std::to_string(i));
  auto ds = Parallelize(ctx, lines, 4);
  ASSERT_TRUE(SaveAsTextFile(ds, "/out").ok());
  std::vector<std::string> read_back;
  for (int p = 0; p < 4; ++p) {
    char name[32];
    std::snprintf(name, sizeof(name), "/out/part-%05d", p);
    auto part = store.ReadTextFile(name);
    ASSERT_TRUE(part.ok());
    for (auto& line : part.value()) read_back.push_back(std::move(line));
  }
  EXPECT_EQ(read_back, lines);
}

TEST(SaveAsTextFileTest, RequiresDfs) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, std::vector<std::string>{"x"}, 1);
  EXPECT_EQ(SaveAsTextFile(ds, "/out").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ss::engine
